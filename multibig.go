package gs3

import (
	"fmt"
	"math"
)

// MultiNetwork implements the paper's §7 extension 1: a mobile dynamic
// network with multiple big nodes, where each small node chooses the
// best (closest) big node to communicate with. Each big node anchors
// its own GS³ structure over the small nodes that chose it.
type MultiNetwork struct {
	nets []*Network
	bigs []Point
}

// NewMulti creates one GS³ network per big node: every small node is
// assigned to its closest big node, and each partition self-configures
// independently (local coordination makes the structures compatible at
// the seams — cells simply stop growing where another structure's
// cells already stand; here the partitions are disjoint by
// construction).
func NewMulti(opts Options, bigNodes []Point, smallNodes []Point) (*MultiNetwork, error) {
	if len(bigNodes) == 0 {
		return nil, fmt.Errorf("gs3: at least one big node is required")
	}
	partitions := make([][]Point, len(bigNodes))
	for i, b := range bigNodes {
		partitions[i] = []Point{b}
	}
	for _, p := range smallNodes {
		best, bestD := 0, math.Inf(1)
		for i, b := range bigNodes {
			if d := math.Hypot(p.X-b.X, p.Y-b.Y); d < bestD {
				best, bestD = i, d
			}
		}
		partitions[best] = append(partitions[best], p)
	}
	m := &MultiNetwork{bigs: bigNodes}
	for i, part := range partitions {
		o := opts
		o.Seed = opts.seed() + uint64(i)
		net, err := New(o, part)
		if err != nil {
			return nil, fmt.Errorf("gs3: partition %d: %w", i, err)
		}
		m.nets = append(m.nets, net)
	}
	return m, nil
}

// Configure self-configures every partition and returns the slowest
// partition's virtual configuration time (they run concurrently in a
// real deployment).
func (m *MultiNetwork) Configure() (float64, error) {
	var maxT float64
	for i, net := range m.nets {
		t, err := net.Configure()
		if err != nil {
			return 0, fmt.Errorf("gs3: partition %d: %w", i, err)
		}
		maxT = math.Max(maxT, t)
	}
	return maxT, nil
}

// EnableSelfHealing enables maintenance on every partition.
func (m *MultiNetwork) EnableSelfHealing(h Healing) {
	for _, net := range m.nets {
		net.EnableSelfHealing(h)
	}
}

// RunFor advances every partition by d virtual seconds.
func (m *MultiNetwork) RunFor(d float64) {
	for _, net := range m.nets {
		net.RunFor(d)
	}
}

// Partitions returns the per-big-node networks for inspection.
func (m *MultiNetwork) Partitions() []*Network {
	return m.nets
}

// BigNodes returns the big-node positions.
func (m *MultiNetwork) BigNodes() []Point {
	return append([]Point(nil), m.bigs...)
}

// Cells returns the cells of all partitions, tagged by partition index.
func (m *MultiNetwork) Cells() map[int][]Cell {
	out := make(map[int][]Cell, len(m.nets))
	for i, net := range m.nets {
		out[i] = net.Cells()
	}
	return out
}

// Verify checks the invariant on every partition and returns all
// violations, prefixed by partition index.
func (m *MultiNetwork) Verify() []string {
	var out []string
	for i, net := range m.nets {
		for _, v := range net.Verify() {
			out = append(out, fmt.Sprintf("partition %d: %s", i, v))
		}
	}
	return out
}
