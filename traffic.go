package gs3

import (
	"gs3/internal/rng"
	"gs3/internal/traffic"
)

// TrafficSpec parameterizes a packet-level traffic run (ServeTraffic).
// Where Collect computes one instantaneous aggregation round over a
// snapshot, a traffic run routes individual packets through the live
// network — each hop a scheduled radio delivery that healing, faults,
// and membership churn interleave with.
type TrafficSpec struct {
	// Packets is the total number of packets to generate. Required.
	Packets int
	// Rate is the aggregate packet arrival rate per virtual second.
	// Required.
	Rate float64
	// P2PFraction routes this fraction of packets point-to-point with
	// cell-coordinate geographic routing; the rest are convergecast to
	// the sink. Default 0 (all convergecast).
	P2PFraction float64
	// TTL bounds per-packet hops (default 64); HopRetries bounds
	// per-hop retransmission attempts (default 3).
	TTL        int
	HopRetries int
	// Seed feeds the load generator's own RNG stream; 0 means 1. The
	// generator never draws from the network's stream, so enabling
	// traffic does not perturb protocol behavior.
	Seed uint64
}

// TrafficReport is the outcome of one ServeTraffic run. Latencies are
// virtual seconds from generation to delivery; head load counts
// successful transmissions by head-role nodes.
type TrafficReport struct {
	Generated     uint64
	Delivered     uint64
	Lost          uint64
	DeliveryRatio float64
	// Latency percentiles and maximum over delivered packets.
	LatencyP50  float64
	LatencyP99  float64
	LatencyP999 float64
	LatencyMean float64
	LatencyMax  float64
	// Retries counts per-hop re-attempts — the work the data plane
	// spent bridging dead links and lost deliveries until healing (or
	// luck) restored the route.
	Retries uint64
	// MeanHops and MaxHops summarize delivered path lengths; Detours
	// counts geographic hops that could not strictly approach the
	// destination (0 on a settled gap-free structure).
	MeanHops float64
	MaxHops  float64
	Detours  uint64
	// Forwards, HeadsUsed, and HeadEnergy summarize the relay load the
	// run placed on heads (energy at unit cost per forward).
	Forwards      uint64
	HeadsUsed     int
	HeadEnergy    float64
	MaxHeadEnergy float64
}

// ServeTraffic generates spec.Packets packets open-loop at spec.Rate
// and routes each hop-by-hop over the current structure: convergecast
// packets climb associate→head→parent to the sink, point-to-point
// packets follow greedy cell-coordinate forwarding across the head
// graph. The call drives the network's virtual clock until every
// packet is delivered or lost (plus a bounded drain window), with
// maintenance sweeps — if EnableSelfHealing is on — running
// interleaved between packet hops; combine with Kill/Join/Move calls
// beforehand to measure delivery through an actively healing
// structure. See Collect for the instantaneous snapshot alternative.
func (n *Network) ServeTraffic(spec TrafficSpec) (TrafficReport, error) {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	plane, err := traffic.New(n.nw, traffic.Config{
		Packets:     spec.Packets,
		Rate:        spec.Rate,
		P2PFraction: spec.P2PFraction,
		TTL:         spec.TTL,
		HopRetries:  spec.HopRetries,
	}, rng.New(seed))
	if err != nil {
		return TrafficReport{}, err
	}
	rep := plane.Run()
	return TrafficReport{
		Generated:     rep.Generated,
		Delivered:     rep.Delivered,
		Lost:          rep.Lost(),
		DeliveryRatio: rep.DeliveryRatio,
		LatencyP50:    rep.LatencyP50,
		LatencyP99:    rep.LatencyP99,
		LatencyP999:   rep.LatencyP999,
		LatencyMean:   rep.LatencyMean,
		LatencyMax:    rep.LatencyMax,
		Retries:       rep.Retries,
		MeanHops:      rep.MeanHops,
		MaxHops:       rep.MaxHops,
		Detours:       rep.Detours,
		Forwards:      rep.Forwards,
		HeadsUsed:     rep.HeadsUsed,
		HeadEnergy:    rep.HeadEnergy,
		MaxHeadEnergy: rep.MaxHeadEnergy,
	}, nil
}
