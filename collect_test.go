package gs3

import (
	"math"
	"testing"
)

func TestCollectFacade(t *testing.T) {
	net := demoNetwork(t)
	readings := map[NodeID]float64{}
	for _, c := range net.Cells() {
		for _, m := range c.Members {
			readings[m] = 10
		}
		readings[c.Head] = 10
	}
	res, err := net.Collect(readings)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != len(readings) {
		t.Errorf("count = %d, want %d", res.Count, len(readings))
	}
	if math.Abs(res.Mean-10) > 1e-9 || res.Min != 10 || res.Max != 10 {
		t.Errorf("aggregate = %+v", res)
	}
	if res.IntraMessages == 0 || res.InterMessages == 0 {
		t.Errorf("no messages counted: %+v", res)
	}
	if len(res.Unreported) != 0 {
		t.Errorf("unreported: %v", res.Unreported)
	}
}

func TestCollectEmptyReadings(t *testing.T) {
	net := demoNetwork(t)
	res, err := net.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || res.IntraMessages != 0 {
		t.Errorf("empty collect = %+v", res)
	}
}

func TestCollectSurvivesHealing(t *testing.T) {
	net := demoNetwork(t)
	net.EnableSelfHealing(Dynamic)
	var victim NodeID = None
	for _, c := range net.Cells() {
		if !c.IsBig {
			victim = c.Head
			break
		}
	}
	net.Kill(victim)
	net.RunFor(8)

	readings := map[NodeID]float64{}
	for _, c := range net.Cells() {
		for _, m := range c.Members {
			readings[m] = 1
		}
	}
	res, err := net.Collect(readings)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count < len(readings)-2 {
		t.Errorf("only %d of %d readings arrived after healing", res.Count, len(readings))
	}
}
