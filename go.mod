module gs3

go 1.22
