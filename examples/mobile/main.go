// Mobile sink: the big node (a commander's vehicle, say) drives across
// the field. GS³-M keeps the head graph rooted correctly the whole way
// through the proxy mechanism, and Theorem 11 keeps each move's impact
// local.
package main

import (
	"fmt"
	"log"
	"math"

	"gs3"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	positions, err := gs3.GridDeployment(500, 20, 0.2, 11)
	if err != nil {
		return err
	}
	net, err := gs3.New(gs3.Options{CellRadius: 100, Seed: 11}, positions)
	if err != nil {
		return err
	}
	if _, err := net.Configure(); err != nil {
		return err
	}
	net.EnableSelfHealing(gs3.Mobile)
	net.RunFor(6) // let the tree settle

	// Drive the big node along a path in steps.
	path := []gs3.Point{
		{X: 90, Y: 30},
		{X: 180, Y: 60},
		{X: 260, Y: 40},
		{X: 180, Y: -40},
		{X: 0, Y: 0}, // and home again
	}
	for i, p := range path {
		net.Move(0, p)
		net.RunFor(10)

		info, _ := net.NodeInfo(0)
		role := "heading a cell"
		if info.Role == gs3.RoleBigMoving {
			role = "moving (represented by proxy)"
		}
		fmt.Printf("leg %d: big node at (%.0f,%.0f), %s\n", i+1, p.X, p.Y, role)

		// Every node still routes to the sink along the head graph.
		broken := 0
		checked := 0
		for _, c := range net.Cells() {
			for _, m := range c.Members[:min(2, len(c.Members))] {
				checked++
				route := net.RouteToSink(m)
				if len(route) == 0 {
					broken++
					continue
				}
				last, ok := net.NodeInfo(route[len(route)-1])
				// The route ends at the big node, or at its proxy while
				// the big node is between cells.
				if !ok || (!last.IsBig && info.Role != gs3.RoleBigMoving) {
					broken++
				}
			}
		}
		fmt.Printf("        routes checked=%d broken=%d, cells=%d\n", checked, broken, len(net.Cells()))
	}

	// Home again: the big node must have reclaimed its original cell.
	info, _ := net.NodeInfo(0)
	if info.Role != gs3.RoleHead {
		return fmt.Errorf("big node did not reclaim headship at home (role %v)", info.Role)
	}
	home := net.RouteToSink(pickAnyMember(net))
	fmt.Printf("back home: big node heads its cell again; sample route length %d\n", len(home))

	if v := net.Verify(); len(v) > 0 {
		return fmt.Errorf("invariant violated: %v", v[0])
	}
	fmt.Println("invariant held through the whole journey")
	return nil
}

func pickAnyMember(net *gs3.Network) gs3.NodeID {
	best := gs3.None
	bestDist := 0.0
	for _, c := range net.Cells() {
		if len(c.Members) == 0 {
			continue
		}
		d := math.Hypot(c.IL.X, c.IL.Y)
		if d > bestDist {
			best, bestDist = c.Members[0], d
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
