// Disaster recovery: the paper's motivating scenario. A commander's
// vehicle (the big node) moves through a disaster field of deployed
// sensors; sensors fail in bursts (collapsing structures), fresh ones
// are air-dropped, and the whole time the command post needs situation
// reports collected over the self-healing cell structure, with a
// conflict-free radio channel plan for the cells.
package main

import (
	"fmt"
	"log"
	"math"

	"gs3"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	positions, err := gs3.GridDeployment(450, 20, 0.2, 31)
	if err != nil {
		return err
	}
	net, err := gs3.New(gs3.Options{CellRadius: 100, Seed: 31}, positions)
	if err != nil {
		return err
	}
	if _, err := net.Configure(); err != nil {
		return err
	}
	net.EnableSelfHealing(gs3.Mobile)
	net.EnableTracing(50000)
	fmt.Printf("field online: %d cells over %d nodes\n", len(net.Cells()), net.Stats().Nodes)

	// The cells get a reuse-3 channel plan so neighboring cells never
	// interfere.
	plan, err := net.ChannelPlan()
	if err != nil {
		return err
	}
	chCount := map[int]int{}
	for _, ch := range plan {
		chCount[ch]++
	}
	fmt.Printf("channel plan: %d cells on ch0, %d on ch1, %d on ch2 (3 channels total)\n",
		chCount[0], chCount[1], chCount[2])

	commanderPath := []gs3.Point{
		{X: 120, Y: 0}, {X: 240, Y: 60}, {X: 160, Y: 180}, {X: 0, Y: 120},
	}
	for leg, waypoint := range commanderPath {
		// The commander advances.
		net.Move(0, waypoint)

		// A structure collapses: a burst of casualties near a point.
		blast := gs3.Point{X: -150 + float64(leg)*90, Y: -120}
		casualties := 0
		for _, c := range net.Cells() {
			for _, m := range append(c.Members, c.Head) {
				info, ok := net.NodeInfo(m)
				if !ok || info.IsBig {
					continue
				}
				if math.Hypot(info.Pos.X-blast.X, info.Pos.Y-blast.Y) < 60 {
					net.Kill(m)
					casualties++
				}
			}
		}

		// Reinforcements are air-dropped around the blast site.
		for i := 0; i < 25; i++ {
			p := gs3.Point{
				X: blast.X + float64(i%5-2)*22,
				Y: blast.Y + float64(i/5-2)*22,
			}
			net.Join(p)
		}

		net.RunFor(12) // the structure heals and the commander's proxy tracks

		// Situation report: collect every surviving sensor's reading
		// (here: 1.0 = alive and reporting) over the head graph.
		readings := map[gs3.NodeID]float64{}
		for _, c := range net.Cells() {
			for _, m := range append(c.Members, c.Head) {
				readings[m] = 1
			}
		}
		rep, err := net.Collect(readings)
		if err != nil {
			return err
		}
		fmt.Printf("leg %d: commander at (%4.0f,%4.0f)  casualties=%2d  cells=%d  report: %d/%d sensors in %d+%d msgs (depth %d)\n",
			leg+1, waypoint.X, waypoint.Y, casualties, len(net.Cells()),
			rep.Count, len(readings), rep.IntraMessages, rep.InterMessages, rep.MaxDepth)
	}

	if v := net.Verify(); len(v) > 0 {
		return fmt.Errorf("invariant violated: %s", v[0])
	}
	counts := net.TraceCounts()
	fmt.Printf("protocol events: %d head shifts, %d promotions, %d joins, %d deaths, %d proxy changes\n",
		counts["head_shift"], counts["candidate_promotion"], counts["join"], counts["death"], counts["proxy_change"])
	fmt.Println("invariant holds: the structure survived the whole operation")
	return nil
}
