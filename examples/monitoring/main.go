// Environment monitoring: the application the paper's introduction
// motivates. Sensors sample a temperature field; readings are
// aggregated cell-by-cell at the heads and forwarded up the head graph
// to the sink — the hierarchical "divide and conquer" the structure
// exists to support. The run also exercises the energy model: heads
// spend more, head/cell shift rotates the role, and the field outlives
// any single head by far.
package main

import (
	"fmt"
	"log"
	"math"

	"gs3"
)

// temperature is the synthetic field being sensed: a warm blob whose
// center drifts with time.
func temperature(p gs3.Point, t float64) float64 {
	cx, cy := 120+8*t, 60-4*t
	d2 := (p.X-cx)*(p.X-cx) + (p.Y-cy)*(p.Y-cy)
	return 15 + 25*math.Exp(-d2/(2*90*90))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	positions, err := gs3.GridDeployment(400, 20, 0.2, 23)
	if err != nil {
		return err
	}
	net, err := gs3.New(gs3.Options{
		CellRadius:       100,
		Seed:             23,
		InitialEnergy:    120,
		EnergyRate:       1,
		HeadEnergyFactor: 5,
	}, positions)
	if err != nil {
		return err
	}
	if _, err := net.Configure(); err != nil {
		return err
	}
	net.EnableSelfHealing(gs3.Dynamic)
	fmt.Printf("monitoring field with %d cells\n", len(net.Cells()))

	for round := 0; round < 6; round++ {
		net.RunFor(10)
		t := net.Now()

		// Every node samples the field; Collect aggregates cell by cell
		// at the heads and convergecasts up the head graph to the sink —
		// the in-network processing the bounded cell radius makes cheap.
		readings := map[gs3.NodeID]float64{}
		hottest, hottestVal := gs3.Point{}, -1.0
		for _, c := range net.Cells() {
			cellSum, cellN := 0.0, 0
			for _, m := range append(c.Members, c.Head) {
				info, ok := net.NodeInfo(m)
				if !ok {
					continue
				}
				v := temperature(info.Pos, t)
				readings[m] = v
				cellSum += v
				cellN++
			}
			if cellN > 0 && cellSum/float64(cellN) > hottestVal {
				hottestVal = cellSum / float64(cellN)
				hottest = c.IL
			}
		}
		agg, err := net.Collect(readings)
		if err != nil {
			return err
		}
		s := net.Stats()
		fmt.Printf("t=%5.1f  field mean %.2f°C (n=%d)  hottest cell IL=(%4.0f,%4.0f) %.2f°C  msgs intra=%d inter=%d depth=%d  headShifts=%d cellShifts=%d\n",
			t, agg.Mean, agg.Count, hottest.X, hottest.Y, hottestVal,
			agg.IntraMessages, agg.InterMessages, agg.MaxDepth, s.HeadShifts, s.CellShifts)
	}

	// The energy model forced role rotation but the structure held.
	if v := net.Verify(); len(v) > 0 {
		return fmt.Errorf("invariant violated: %v", v[0])
	}
	s := net.Stats()
	fmt.Printf("done: structure alive with %d cells after %.0fs; %d head shifts kept it so\n",
		s.Heads, net.Now(), s.HeadShifts)
	return nil
}
