// Quickstart: deploy a sensor field, self-configure it into the GS³
// cellular hexagonal structure, and inspect the result.
package main

import (
	"fmt"
	"log"

	"gs3"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A dense field: big node (the sink) at the center of a 500-unit
	// disk, small sensors on a jittered grid. A Poisson deployment via
	// gs3.PoissonDeployment works the same way.
	positions, err := gs3.GridDeployment(500, 20, 0.2, 42)
	if err != nil {
		return err
	}
	fmt.Printf("deployed %d nodes\n", len(positions))

	net, err := gs3.New(gs3.Options{
		CellRadius: 100, // the ideal cell radius R
		Seed:       42,
	}, positions)
	if err != nil {
		return err
	}

	// GS³-S: one top-down diffusing computation from the big node.
	elapsed, err := net.Configure()
	if err != nil {
		return err
	}
	fmt.Printf("self-configured in %.2f virtual seconds\n", elapsed)

	// Inspect the structure: hexagonal cells of radius ≈ R, one head
	// each, heads forming a tree rooted at the big node.
	cells := net.Cells()
	fmt.Printf("cells: %d\n", len(cells))
	for _, c := range cells[:min(5, len(cells))] {
		fmt.Printf("  head %4d  hops=%d  members=%3d  IL=(%.0f,%.0f)  boundary=%v\n",
			c.Head, c.Hops, len(c.Members), c.IL.X, c.IL.Y, c.Boundary)
	}

	// Machine-check the paper's invariant (Theorem 1).
	if violations := net.Verify(); len(violations) > 0 {
		return fmt.Errorf("invariant violated: %v", violations[0])
	}
	fmt.Println("invariant SI holds: hexagonal structure with bounded radii")

	s := net.Stats()
	fmt.Printf("mean cell radius %.1f (R=100), mean neighbor-head distance %.1f (√3·R≈173.2)\n",
		s.MeanCellRadius, s.MeanNeighborDist)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
