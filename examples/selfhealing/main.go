// Self-healing: batter a configured network with the paper's
// perturbations — head deaths, a mass die-off, joins — and watch GS³-D
// mask every one of them locally.
package main

import (
	"fmt"
	"log"
	"math"

	"gs3"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	positions, err := gs3.GridDeployment(450, 20, 0.2, 7)
	if err != nil {
		return err
	}
	net, err := gs3.New(gs3.Options{CellRadius: 100, Seed: 7}, positions)
	if err != nil {
		return err
	}
	if _, err := net.Configure(); err != nil {
		return err
	}
	net.EnableSelfHealing(gs3.Dynamic)
	fmt.Printf("configured: %d cells\n", len(net.Cells()))

	// Perturbation 1: kill three cell heads at once. Head shift — the
	// highest-ranked candidate in each cell takes over — masks it.
	killed := 0
	for _, c := range net.Cells() {
		if !c.IsBig && killed < 3 {
			net.Kill(c.Head)
			killed++
		}
	}
	net.RunFor(8)
	fmt.Printf("after killing %d heads: %d cells, violations=%d (head shift healed them)\n",
		killed, len(net.Cells()), len(net.Verify()))

	// Perturbation 2: a localized mass die-off — every node within 80
	// units of a point. Neighbor cells absorb survivors; rescans
	// re-cover the area as nodes rejoin.
	var at gs3.Point
	for _, c := range net.Cells() {
		if !c.IsBig && math.Hypot(c.IL.X, c.IL.Y) < 200 {
			at = c.IL
			break
		}
	}
	before := net.Stats()
	for _, c := range net.Cells() {
		for _, m := range append(c.Members, c.Head) {
			if info, ok := net.NodeInfo(m); ok {
				if math.Hypot(info.Pos.X-at.X, info.Pos.Y-at.Y) < 80 {
					net.Kill(m)
				}
			}
		}
	}
	net.RunFor(15)
	after := net.Stats()
	fmt.Printf("after mass die-off at (%.0f,%.0f): nodes %d→%d, uncovered=%d\n",
		at.X, at.Y, before.Nodes, after.Nodes, after.Uncovered)

	// Perturbation 3: 40 fresh nodes join near the die-off site and are
	// absorbed by the surrounding cells.
	joined := make([]gs3.NodeID, 0, 40)
	for i := 0; i < 40; i++ {
		p := gs3.Point{
			X: at.X + float64(i%7-3)*18,
			Y: at.Y + float64(i/7-2)*18,
		}
		joined = append(joined, net.Join(p))
	}
	net.RunFor(12)
	covered := 0
	for _, id := range joined {
		if info, ok := net.NodeInfo(id); ok && info.Role != gs3.RoleBootup {
			covered++
		}
	}
	fmt.Printf("after 40 joins: %d/40 absorbed into cells\n", covered)

	if v := net.Verify(); len(v) > 0 {
		return fmt.Errorf("invariant violated at the end: %v", v[0])
	}
	fmt.Println("invariant holds after every perturbation — self-healing is local and complete")
	s := net.Stats()
	fmt.Printf("healing actions: headShifts=%d cellShifts=%d\n", s.HeadShifts, s.CellShifts)
	return nil
}
