// Traffic: route real packets over the GS³ structure in three windows —
// a settled network delivering everything, the same network carrying
// load while it heals a mass die-off, and the recovered structure back
// at full delivery. The structure is not just a pretty hexagon: it is a
// routing substrate, and this example measures what it costs to keep
// routing while GS³-D repairs it.
package main

import (
	"fmt"
	"log"
	"math"

	"gs3"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	positions, err := gs3.GridDeployment(350, 12, 0.15, 7)
	if err != nil {
		return err
	}
	net, err := gs3.New(gs3.Options{CellRadius: 60, Seed: 7}, positions)
	if err != nil {
		return err
	}
	if _, err := net.Configure(); err != nil {
		return err
	}
	net.EnableSelfHealing(gs3.Dynamic)
	net.RunFor(15) // settle: fill candidate lists and neighbor tables
	fmt.Printf("configured: %d nodes, %d cells\n", len(positions), len(net.Cells()))

	spec := gs3.TrafficSpec{Packets: 5000, Rate: 1500, P2PFraction: 0.3, Seed: 7}

	// Window 1: the settled structure. Convergecast readings climb the
	// parent tree; point-to-point packets hop cell to cell by greedy
	// geographic forwarding. Nothing is lost and nothing detours.
	rep, err := net.ServeTraffic(spec)
	if err != nil {
		return err
	}
	fmt.Printf("settled:   delivered %.1f%%, p99 latency %.2fs, %.0f mean head forwards, detours=%d retries=%d\n",
		100*rep.DeliveryRatio, rep.LatencyP99, float64(rep.Forwards)/float64(rep.HeadsUsed), rep.Detours, rep.Retries)

	// Window 2: kill every node within 160 units of an off-center cell —
	// several whole cells, heads included — then immediately push the
	// same load while healing runs. The greedy rule simply skips dead
	// neighbor heads, so packets bend around the crater; a stalled hop
	// retries after half a heartbeat, by which time head shift has
	// usually refilled the route. Delivery barely moves — the paper's
	// locality claim, measured on live traffic instead of asserted.
	var crater gs3.Point
	for _, c := range net.Cells() {
		if !c.IsBig && math.Hypot(c.IL.X, c.IL.Y) > 150 {
			crater = c.IL
			break
		}
	}
	killed := 0
	for _, c := range net.Cells() {
		for _, m := range append(c.Members, c.Head) {
			if info, ok := net.NodeInfo(m); ok {
				if math.Hypot(info.Pos.X-crater.X, info.Pos.Y-crater.Y) < 160 {
					net.Kill(m)
					killed++
				}
			}
		}
	}
	spec.Seed = 8
	rep, err = net.ServeTraffic(spec)
	if err != nil {
		return err
	}
	fmt.Printf("healing:   killed %d nodes, delivered %.1f%%, worst latency %.2fs, detours=%d retries=%d\n",
		killed, 100*rep.DeliveryRatio, rep.LatencyMax, rep.Detours, rep.Retries)

	// Window 3: let healing finish, then measure again. The structure
	// has re-formed around the crater and delivery recovers.
	net.RunFor(20)
	spec.Seed = 9
	rep, err = net.ServeTraffic(spec)
	if err != nil {
		return err
	}
	fmt.Printf("recovered: delivered %.1f%%, p99 latency %.2fs, detours=%d retries=%d, violations=%d\n",
		100*rep.DeliveryRatio, rep.LatencyP99, rep.Detours, rep.Retries, len(net.Verify()))
	return nil
}
