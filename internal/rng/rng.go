// Package rng provides a small deterministic pseudo-random number
// generator used by all simulations and experiments in this repository.
//
// The generator is splitmix64 (Steele, Lea & Flood): a tiny, fast,
// well-distributed 64-bit generator whose output stream depends only on
// the seed, independent of Go version or platform. Determinism matters
// here because every experiment in EXPERIMENTS.md must be reproducible
// from its recorded seed.
package rng

import "math"

// Source is a deterministic stream of pseudo-random numbers.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64-bit value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// Use the high 53 bits for a uniformly distributed mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics for programmer errors.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal variate via Box–Muller.
func (s *Source) Norm() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Poisson returns a Poisson variate with mean lambda.
//
// For small lambda it uses Knuth's product method; for large lambda it
// uses the normal approximation with continuity correction, which is
// accurate enough for the node-count sampling done here and avoids
// underflow of exp(−lambda).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	k := int(math.Round(lambda + math.Sqrt(lambda)*s.Norm()))
	if k < 0 {
		return 0
	}
	return k
}

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// InDisk returns a uniform point in the disk of the given radius
// centered at the origin, as (x, y).
func (s *Source) InDisk(radius float64) (x, y float64) {
	r := radius * math.Sqrt(s.Float64())
	theta := s.Range(0, 2*math.Pi)
	return r * math.Cos(theta), r * math.Sin(theta)
}

// InRect returns a uniform point in the axis-aligned rectangle
// [x0,x1) × [y0,y1).
func (s *Source) InRect(x0, y0, x1, y1 float64) (x, y float64) {
	return s.Range(x0, x1), s.Range(y0, y1)
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Fork returns a new Source whose stream is derived from, but
// independent of, this one. Useful for giving each subsystem its own
// stream so adding draws in one place does not perturb another.
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xda3e39cb94b95bdb)
}
