package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered %d values, want 10", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRangeBounds(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) = %v", v)
		}
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(13)
	const n = 100000
	lambda := 4.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		k := float64(s.Poisson(lambda))
		sum += k
		sumSq += k * k
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-lambda) > 0.1 {
		t.Errorf("Poisson(4) mean = %v", mean)
	}
	if math.Abs(variance-lambda) > 0.2 {
		t.Errorf("Poisson(4) variance = %v, want ≈4", variance)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	s := New(17)
	const n = 50000
	lambda := 200.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(s.Poisson(lambda))
	}
	mean := sum / n
	if math.Abs(mean-lambda) > 1.0 {
		t.Errorf("Poisson(200) mean = %v", mean)
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	s := New(19)
	for i := 0; i < 100; i++ {
		if k := s.Poisson(0); k != 0 {
			t.Fatalf("Poisson(0) = %d", k)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(23)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(5)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Exp(5) mean = %v", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(29)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v", variance)
	}
}

func TestInDisk(t *testing.T) {
	s := New(31)
	const n = 50000
	inside := 0
	for i := 0; i < n; i++ {
		x, y := s.InDisk(10)
		r := math.Hypot(x, y)
		if r > 10 {
			t.Fatalf("InDisk point outside radius: %v", r)
		}
		if r <= 10/math.Sqrt2 {
			inside++
		}
	}
	// Uniform in area: P(r ≤ R/√2) = 1/2.
	frac := float64(inside) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("disk uniformity: inner-half fraction = %v, want ≈0.5", frac)
	}
}

func TestInRect(t *testing.T) {
	s := New(37)
	for i := 0; i < 1000; i++ {
		x, y := s.InRect(-1, -2, 3, 4)
		if x < -1 || x >= 3 || y < -2 || y >= 4 {
			t.Fatalf("InRect out of bounds: (%v,%v)", x, y)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(41)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(99)
	f := a.Fork()
	// The fork must not replay the parent's stream.
	if a.Uint64() == f.Uint64() {
		t.Error("fork replays parent stream")
	}
	// Forking is deterministic given the parent state.
	x := New(99).Fork().Uint64()
	y := New(99).Fork().Uint64()
	if x != y {
		t.Error("fork not deterministic")
	}
}
