// Package gather implements convergecast over the GS³ head graph: the
// in-network aggregation pattern ("sense-compute-actuate") the paper's
// introduction motivates the structure for. Every associate reports to
// its cell head (one intra-cell message over a link of bounded length
// ≤ R + 2Rt/√3), each head merges its cell's samples, and aggregates
// flow up the parent tree to the big node — one inter-cell message per
// head per round.
//
// # Purity and thread safety
//
// Collect is a pure function of its inputs: it walks an immutable
// snapshot, advances no virtual time, touches no radio or fault state,
// and draws no randomness — the round is instantaneous and lossless by
// construction. That makes it safe to call from any goroutine, on any
// snapshot, concurrently with a live simulation. The packet-level
// counterpart — real per-hop deliveries on the virtual clock, with
// loss, latency, and in-flight healing — is internal/traffic.
package gather

import (
	"fmt"

	"gs3/internal/core"
	"gs3/internal/radio"
)

// Sample is a mergeable aggregate of sensor readings.
type Sample struct {
	Sum   float64
	Count int
	Min   float64
	Max   float64
}

// NewSample wraps a single reading.
func NewSample(v float64) Sample {
	return Sample{Sum: v, Count: 1, Min: v, Max: v}
}

// Merge combines two aggregates.
func (s Sample) Merge(t Sample) Sample {
	if s.Count == 0 {
		return t
	}
	if t.Count == 0 {
		return s
	}
	out := Sample{Sum: s.Sum + t.Sum, Count: s.Count + t.Count, Min: s.Min, Max: s.Max}
	if t.Min < out.Min {
		out.Min = t.Min
	}
	if t.Max > out.Max {
		out.Max = t.Max
	}
	return out
}

// Mean returns the aggregate mean (0 for an empty sample).
func (s Sample) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Result is one convergecast round.
type Result struct {
	// Root is the merged aggregate delivered at the big node.
	Root Sample
	// PerCell holds each head's cell-level aggregate.
	PerCell map[radio.NodeID]Sample
	// IntraMessages is the number of associate→head reports.
	IntraMessages int
	// InterMessages is the number of head→parent forwards.
	InterMessages int
	// MaxDepth is the longest head-graph path an aggregate traveled.
	MaxDepth int
	// Unreported lists nodes whose reading could not reach the big node
	// (uncovered nodes, or heads disconnected from the root).
	Unreported []radio.NodeID
}

// Collect runs one convergecast round over the snapshot: readings maps
// node IDs to their sensor values (nodes without an entry contribute
// nothing). It returns an error when the snapshot has no big node.
func Collect(snap core.Snapshot, readings map[radio.NodeID]float64) (Result, error) {
	views := make(map[radio.NodeID]core.NodeView, len(snap.Nodes))
	for _, v := range snap.Nodes {
		views[v.ID] = v
	}
	if _, ok := views[snap.BigID]; !ok {
		return Result{}, fmt.Errorf("gather: snapshot has no big node")
	}

	res := Result{PerCell: map[radio.NodeID]Sample{}}

	// Phase 1: intra-cell reports. Each covered node's reading lands in
	// its head's cell aggregate. Heads sample locally for free.
	for _, v := range snap.Nodes {
		reading, has := readings[v.ID]
		if !has {
			continue
		}
		switch {
		case v.IsHead():
			res.PerCell[v.ID] = res.PerCell[v.ID].Merge(NewSample(reading))
		case v.Status == core.StatusAssociate:
			hv, ok := views[v.Head]
			if !ok || !hv.IsHead() {
				res.Unreported = append(res.Unreported, v.ID)
				continue
			}
			res.PerCell[v.Head] = res.PerCell[v.Head].Merge(NewSample(reading))
			res.IntraMessages++
		default:
			res.Unreported = append(res.Unreported, v.ID)
		}
	}

	// Phase 2: convergecast up the parent tree. Process heads deepest
	// first so each forwards exactly one merged aggregate.
	root := rootHead(snap, views)
	if root == radio.None {
		return Result{}, fmt.Errorf("gather: no root head (big node absent and no proxy)")
	}
	depth := treeDepths(views, root)
	order := headsByDepthDesc(views, depth)
	pending := map[radio.NodeID]Sample{}
	for h, s := range res.PerCell {
		pending[h] = s
	}
	for _, h := range order {
		s, has := pending[h]
		if !has || h == root {
			continue
		}
		hv := views[h]
		pv, ok := views[hv.Parent]
		if !ok || !pv.IsHead() {
			res.Unreported = append(res.Unreported, h)
			delete(pending, h)
			continue
		}
		pending[hv.Parent] = pending[hv.Parent].Merge(s)
		res.InterMessages++
		if d := depth[h]; d > res.MaxDepth {
			res.MaxDepth = d
		}
		delete(pending, h)
	}
	res.Root = pending[root]
	return res, nil
}

// rootHead returns the head the tree drains to: the big node when it
// holds the head role, otherwise its proxy.
func rootHead(snap core.Snapshot, views map[radio.NodeID]core.NodeView) radio.NodeID {
	big := views[snap.BigID]
	if big.IsHead() {
		return big.ID
	}
	if big.Proxy != radio.None {
		if pv, ok := views[big.Proxy]; ok && pv.IsHead() {
			return pv.ID
		}
	}
	return radio.None
}

// treeDepths computes each head's hop depth from the root by walking
// parents (bounded by the head count to survive broken chains).
func treeDepths(views map[radio.NodeID]core.NodeView, root radio.NodeID) map[radio.NodeID]int {
	depth := map[radio.NodeID]int{root: 0}
	var walk func(id radio.NodeID, hops int) int
	walk = func(id radio.NodeID, hops int) int {
		if d, ok := depth[id]; ok {
			return d
		}
		if hops <= 0 {
			return 1 << 20 // cycle or overlong chain: effectively unreachable
		}
		v, ok := views[id]
		if !ok || !v.IsHead() || v.Parent == id {
			return 1 << 20
		}
		d := walk(v.Parent, hops-1)
		if d >= 1<<20 {
			depth[id] = 1 << 20
			return depth[id]
		}
		depth[id] = d + 1
		return depth[id]
	}
	for id, v := range views {
		if v.IsHead() {
			walk(id, len(views))
		}
	}
	return depth
}

// headsByDepthDesc returns head IDs ordered deepest first (ties by ID
// for determinism).
func headsByDepthDesc(views map[radio.NodeID]core.NodeView, depth map[radio.NodeID]int) []radio.NodeID {
	var out []radio.NodeID
	for id, v := range views {
		if v.IsHead() {
			out = append(out, id)
		}
	}
	// Insertion sort on (depth desc, id asc): head counts are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if depth[a] > depth[b] || (depth[a] == depth[b] && a < b) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}
