package gather

import (
	"math"
	"testing"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/radio"
)

func configuredSnap(t *testing.T) (core.Snapshot, *netsim.Sim) {
	t.Helper()
	s, err := netsim.Build(netsim.DefaultOptions(100, 350))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	return s.Net.Snapshot(), s
}

func TestSampleMerge(t *testing.T) {
	a := NewSample(3)
	b := NewSample(7)
	m := a.Merge(b)
	if m.Count != 2 || m.Sum != 10 || m.Min != 3 || m.Max != 7 {
		t.Errorf("merge = %+v", m)
	}
	if m.Mean() != 5 {
		t.Errorf("mean = %v", m.Mean())
	}
	var zero Sample
	if got := zero.Merge(a); got != a {
		t.Errorf("zero merge = %+v", got)
	}
	if got := a.Merge(zero); got != a {
		t.Errorf("merge zero = %+v", got)
	}
	if zero.Mean() != 0 {
		t.Error("zero mean != 0")
	}
}

func TestSampleMergeCommutative(t *testing.T) {
	a := Sample{Sum: 10, Count: 3, Min: 1, Max: 6}
	b := Sample{Sum: -4, Count: 2, Min: -5, Max: 1}
	if a.Merge(b) != b.Merge(a) {
		t.Error("merge not commutative")
	}
}

func TestCollectAllReadings(t *testing.T) {
	snap, _ := configuredSnap(t)
	readings := map[radio.NodeID]float64{}
	var sum float64
	for _, v := range snap.Nodes {
		readings[v.ID] = float64(v.ID % 10)
		sum += float64(v.ID % 10)
	}
	res, err := Collect(snap, readings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unreported) != 0 {
		t.Fatalf("%d unreported in a fully configured network", len(res.Unreported))
	}
	if res.Root.Count != len(snap.Nodes) {
		t.Errorf("root count = %d, want %d", res.Root.Count, len(snap.Nodes))
	}
	if math.Abs(res.Root.Sum-sum) > 1e-9 {
		t.Errorf("root sum = %v, want %v", res.Root.Sum, sum)
	}
}

func TestCollectMessageCounts(t *testing.T) {
	snap, _ := configuredSnap(t)
	readings := map[radio.NodeID]float64{}
	for _, v := range snap.Nodes {
		readings[v.ID] = 1
	}
	res, err := Collect(snap, readings)
	if err != nil {
		t.Fatal(err)
	}
	heads := len(snap.Heads())
	associates := len(snap.Nodes) - heads
	if res.IntraMessages != associates {
		t.Errorf("intra = %d, associates = %d", res.IntraMessages, associates)
	}
	// Every head except the root forwards exactly once.
	if res.InterMessages != heads-1 {
		t.Errorf("inter = %d, heads = %d", res.InterMessages, heads)
	}
	if res.MaxDepth < 1 {
		t.Errorf("max depth = %d", res.MaxDepth)
	}
}

func TestCollectPartialReadings(t *testing.T) {
	snap, _ := configuredSnap(t)
	// Only the big node's cell reports.
	readings := map[radio.NodeID]float64{}
	for _, m := range snap.Members(snap.BigID) {
		readings[m] = 2
	}
	res, err := Collect(snap, readings)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root.Count != len(readings) {
		t.Errorf("count = %d, want %d", res.Root.Count, len(readings))
	}
	if res.InterMessages != 0 {
		t.Errorf("inter messages = %d for intra-cell-only data", res.InterMessages)
	}
}

func TestCollectNoBigNode(t *testing.T) {
	snap, _ := configuredSnap(t)
	snap.BigID = 99999
	if _, err := Collect(snap, nil); err == nil {
		t.Error("missing big node accepted")
	}
}

func TestCollectWithProxyRoot(t *testing.T) {
	// When the big node is between cells (GS³-M), the proxy drains the
	// tree.
	snap, s := configuredSnap(t)
	_ = snap
	s.Net.StartMaintenance(core.VariantM)
	cfg := s.Opt.Config
	big := s.Net.BigID()
	pos := s.Net.Position(big)
	s.Net.Move(big, pos.Add(geom.Vec{X: cfg.HeadSpacing() / 2, Y: cfg.R / 3}))
	s.RunSweeps(4)

	snap2 := s.Net.Snapshot()
	bigView, _ := snap2.View(big)
	if bigView.IsHead() {
		t.Skip("big node reclaimed a cell; proxy path not exercised")
	}
	readings := map[radio.NodeID]float64{}
	for _, v := range snap2.Nodes {
		readings[v.ID] = 1
	}
	res, err := Collect(snap2, readings)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except possibly the moving big node itself reports.
	if res.Root.Count < len(snap2.Nodes)-1 {
		t.Errorf("root count = %d of %d", res.Root.Count, len(snap2.Nodes))
	}
}

func TestCollectUnreportedStragglers(t *testing.T) {
	snap, s := configuredSnap(t)
	_ = snap
	id := s.Net.Join(geom.Point{X: 350 + 3*s.Opt.Config.SearchRadius()})
	snap2 := s.Net.Snapshot()
	readings := map[radio.NodeID]float64{id: 5}
	res, err := Collect(snap2, readings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unreported) != 1 || res.Unreported[0] != id {
		t.Errorf("unreported = %v", res.Unreported)
	}
}
