package netsim

import (
	"testing"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/runner"
)

// chaosTrial builds, configures, and chaos-runs one faulty scenario.
func chaosTrial(t *testing.T, seed uint64, plan fault.Plan, budget int) ChaosReport {
	t.Helper()
	opt := DefaultOptions(100, 250)
	opt.Seed = seed
	opt.Faults = plan
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	return s.RunChaos(check.Dynamic, 3, budget)
}

// Identical (seed, plan) pairs must produce the identical chaos report:
// the fault schedule, the healing, and the watchdog verdict all replay.
func TestChaosDeterminism(t *testing.T) {
	plan := fault.Plan{Loss: 0.2, Dup: 0.05, Jitter: 0.3, BlackoutRate: 0.01, BlackoutSweeps: 3}
	a := chaosTrial(t, 11, plan, 80)
	b := chaosTrial(t, 11, plan, 80)
	if a != b {
		t.Fatalf("chaos replay diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// Chaos trials fanned across a pool must report exactly what a serial
// run reports: trials share nothing, so the schedule cannot matter.
func TestChaosParallelMatchesSerial(t *testing.T) {
	run := func(p runner.Pool) []ChaosReport {
		out, err := runner.Map(p, 4, func(i int) (ChaosReport, error) {
			opt := DefaultOptions(100, 250)
			opt.Seed = runner.TrialSeed(21, i)
			opt.Faults = fault.Plan{Loss: 0.15, BlackoutRate: 0.01, BlackoutSweeps: 2}
			s, err := Build(opt)
			if err != nil {
				return ChaosReport{}, err
			}
			if _, err := s.Configure(); err != nil {
				return ChaosReport{}, err
			}
			s.Net.StartMaintenance(core.VariantD)
			return s.RunChaos(check.Dynamic, 3, 60), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(runner.Seq)
	parallel := run(runner.Parallel(4))
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// The headline robustness claim: at 20% message loss the default grid
// scenario still reaches the GS³-D fixpoint in nearly every seeded
// trial within the sweep budget.
func TestChaosConvergenceUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("32 chaos trials")
	}
	const trials = 32
	converged := 0
	var retries uint64
	out, err := runner.Map(runner.Pool{}, trials, func(i int) (ChaosReport, error) {
		opt := DefaultOptions(100, 250)
		opt.Seed = runner.TrialSeed(1, i)
		opt.Faults = fault.Plan{Loss: 0.2}
		s, err := Build(opt)
		if err != nil {
			return ChaosReport{}, err
		}
		if _, err := s.Configure(); err != nil {
			return ChaosReport{}, err
		}
		s.Net.StartMaintenance(core.VariantD)
		return s.RunChaos(check.Dynamic, 3, 120), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range out {
		if rep.Converged {
			converged++
		}
		retries += rep.Retries
	}
	if frac := float64(converged) / trials; frac < 0.95 {
		t.Errorf("converged in %d/%d trials (%.0f%%), want >= 95%%", converged, trials, 100*frac)
	}
	_ = retries // retry counters are surfaced per-trial via radio.Stats
}

// A run with faults disabled must behave exactly like one built before
// the fault layer existed: same structure, same radio traffic, and no
// fault counters ticking.
func TestZeroFaultPlanIsByteIdentical(t *testing.T) {
	build := func(plan fault.Plan) (core.Snapshot, uint64) {
		opt := DefaultOptions(100, 300)
		opt.Seed = 9
		opt.Faults = plan
		s, err := Build(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Configure(); err != nil {
			t.Fatal(err)
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(10)
		return s.Net.Snapshot(), s.Net.Medium().Stats().Deliveries
	}
	snapA, delivA := build(fault.Plan{})
	snapB, delivB := build(fault.Plan{BlackoutSweeps: 3}) // inactive: no rate
	if delivA != delivB {
		t.Fatalf("deliveries differ: %d vs %d", delivA, delivB)
	}
	a, err := snapA.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapB.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("zero-fault snapshots differ")
	}
}

// RunChaos must demand the streak: a fixpoint that holds once but then
// breaks is not convergence.
func TestChaosStreakSemantics(t *testing.T) {
	opt := DefaultOptions(100, 250)
	opt.Seed = 4
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	// Reliable network, already configured: the fixpoint holds
	// immediately and stays; HealTime must be 0.
	rep := s.RunChaos(check.Dynamic, 3, 20)
	if !rep.Converged || rep.HealTime != 0 {
		t.Fatalf("reliable configured run: %+v, want immediate convergence", rep)
	}
	// Budget 0 with streak 3 cannot converge (only one evaluation).
	rep = s.RunChaos(check.Dynamic, 3, 0)
	if rep.Converged {
		t.Fatalf("budget 0 with streak 3 converged: %+v", rep)
	}
}
