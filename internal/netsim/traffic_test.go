package netsim

import (
	"testing"

	"gs3/internal/core"
	"gs3/internal/traffic"
)

// TestServeTrafficForkIsolation pins the RNG layering contract: a
// build that never serves traffic and a build that does must produce
// identical protocol behavior, because ServeTraffic forks its stream
// after everything the network draws from.
func TestServeTrafficForkIsolation(t *testing.T) {
	build := func(serve bool) core.Snapshot {
		opt := DefaultOptions(10, 45)
		opt.Seed = 11
		s, err := Build(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Configure(); err != nil {
			t.Fatal(err)
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(10)
		if serve {
			plane, err := s.ServeTraffic(traffic.Config{Packets: 200, Rate: 100})
			if err != nil {
				t.Fatal(err)
			}
			plane.Run()
		} else {
			// Advance the same wall of virtual time the traffic run covers
			// so both snapshots are taken at comparable sweep counts.
			s.RunSweeps(30)
		}
		return s.Net.Snapshot()
	}
	with := build(true)
	without := build(false)
	// Structure must be identical: traffic reads the structure but its
	// RNG stream and packet events never feed back into head election.
	if len(with.Nodes) != len(without.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(with.Nodes), len(without.Nodes))
	}
	for id, v := range with.Nodes {
		w := without.Nodes[id]
		if v.Status != w.Status || v.Head != w.Head || v.Parent != w.Parent {
			t.Errorf("node %d diverged: with=%+v without=%+v", id, v, w)
		}
	}
}

func TestStartChurnTurnsOver(t *testing.T) {
	opt := DefaultOptions(10, 45)
	opt.Seed = 4
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	before := s.Net.Medium().Count()
	s.StartChurn(s.Opt.Config.HeartbeatInterval, 12)
	s.RunSweeps(20)
	after := s.Net.Medium().Count()
	// Kill+join pairs keep the population constant (joins may race the
	// final sweep boundary, so allow the budget as slack).
	if after < before-12 || after > before+12 {
		t.Errorf("population drifted from %d to %d under paired churn", before, after)
	}
	m := s.Net.Metrics()
	if m.HeadShifts == 0 && m.CellShifts == 0 && m.HeadsSelected == 0 {
		t.Error("churn ran but no healing actions were recorded")
	}
	// No-op budgets must schedule nothing.
	s.StartChurn(0, 5)
	s.StartChurn(1, 0)
}
