package netsim

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/rng"
)

// The sharded sweep executor is an optimization, never a semantics
// change: a run with any worker count must be observably identical —
// snapshot, metrics, radio stats, virtual clock — to the serial engine
// at every sweep boundary, under any perturbation schedule, including
// schedules that force healing mid-batch. The tests here drive a
// serial and a sharded build in lock-step and fail on the first
// boundary where any observable diverges. Run them under -race: the
// parallel phases' read-only discipline is part of what's being
// verified.

// shardSweepWorkers is the worker budget the sharded builds use. More
// workers than cores is deliberate — correctness must not depend on
// the schedule.
const shardSweepWorkers = 8

// randomShardScript draws a perturbation schedule exercising every
// classification kind of the executor: disk kills and repopulations
// (healing escalation), node moves (epoch invalidation), and direct
// radio blackouts with paired restores (the reschedule-only kind —
// induced via Medium.SetBlackout, not the fault layer, because an
// active fault plan would disqualify the sharded path entirely).
func randomShardScript(opt Options, seed uint64, sweeps int) []propStep {
	script := randomScript(opt, seed, sweeps)
	src := rng.New(seed ^ 0x9e3779b97f4a7c15)
	n := 2 + src.Intn(2)
	for i := 0; i < n; i++ {
		at := 2 + src.Intn(sweeps-6)
		k := src.Intn(40)
		script = append(script,
			propStep{at, "blackout", func(s *Sim) {
				ids := s.Net.SortedIDs()
				for off := 0; off < len(ids); off++ {
					id := ids[(k+off)%len(ids)]
					if id != s.Net.BigID() && s.Net.Alive(id) && !s.Net.Medium().InBlackout(id) {
						s.Net.Medium().SetBlackout(id, true)
						return
					}
				}
			}},
			propStep{at + 3, "restore", func(s *Sim) {
				for _, id := range s.Net.SortedIDs() {
					if s.Net.Medium().InBlackout(id) {
						s.Net.Medium().SetBlackout(id, false)
						return
					}
				}
			}},
		)
	}
	return script
}

// runShardSweepEquivalence drives a serial and a sharded build of opt
// in lock-step through the script and fails on the first boundary
// where any observable diverges.
func runShardSweepEquivalence(t *testing.T, opt Options, variant core.Variant, script []propStep, sweeps int) {
	t.Helper()
	build := func(workers int) *Sim {
		o := opt
		o.SweepWorkers = workers
		s, err := Build(o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Configure(); err != nil {
			t.Fatal(err)
		}
		s.Net.StartMaintenance(variant)
		return s
	}
	serial := build(0)
	sharded := build(shardSweepWorkers)

	for i := 0; i < sweeps; i++ {
		for _, st := range script {
			if st.sweep == i {
				st.apply(serial)
				st.apply(sharded)
			}
		}
		serial.RunSweeps(1)
		sharded.RunSweeps(1)

		if a, b := serial.Net.Engine().Now(), sharded.Net.Engine().Now(); a != b {
			t.Fatalf("sweep %d: clock diverged: serial %v, sharded %v", i, a, b)
		}
		if a, b := serial.Net.Metrics(), sharded.Net.Metrics(); a != b {
			t.Fatalf("sweep %d: metrics diverged:\nserial  %+v\nsharded %+v", i, a, b)
		}
		if a, b := serial.Net.Medium().Stats(), sharded.Net.Medium().Stats(); a != b {
			t.Fatalf("sweep %d: radio stats diverged:\nserial  %+v\nsharded %+v", i, a, b)
		}
		if a, b := serial.Net.Medium().Epoch(), sharded.Net.Medium().Epoch(); a != b {
			t.Fatalf("sweep %d: topology epoch diverged: serial %d, sharded %d", i, a, b)
		}
		sa, sb := serial.Net.Snapshot(), sharded.Net.Snapshot()
		if !reflect.DeepEqual(sa, sb) {
			for j := range sa.Nodes {
				if j >= len(sb.Nodes) || !reflect.DeepEqual(sa.Nodes[j], sb.Nodes[j]) {
					t.Fatalf("sweep %d: snapshot diverged at node index %d:\nserial  %+v\nsharded %+v",
						i, j, sa.Nodes[j], sb.Nodes[j])
				}
			}
			t.Fatalf("sweep %d: snapshot diverged (node count %d vs %d)",
				i, len(sa.Nodes), len(sb.Nodes))
		}
	}
}

// shardSweepOptions is a field large enough that every heartbeat batch
// (one per ID residue class mod 17) clears the executor's minimum
// batch size.
func shardSweepOptions(seed uint64) Options {
	opt := DefaultOptions(100, 320)
	opt.Seed = seed
	return opt
}

// TestShardedSweepMatchesSerial is the main property: across randomized
// topologies and perturbation schedules — kills, joins, moves, and
// blackouts every few rounds — the sharded build is boundary-for-
// boundary identical to the serial one.
func TestShardedSweepMatchesSerial(t *testing.T) {
	const sweeps = 30
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			opt := shardSweepOptions(seed)
			opt.GridJitter = 0.1 + 0.05*float64(seed%3)
			script := randomShardScript(opt, seed*13+5, sweeps)
			runShardSweepEquivalence(t, opt, core.VariantD, script, sweeps)
		})
	}
}

// TestShardedSweepMatchesSerialMobile exercises Variant M: the big node
// relocates mid-run, so the batch holding it always carries a full
// (never cacheable) sweep and the merge path runs every round.
func TestShardedSweepMatchesSerialMobile(t *testing.T) {
	const sweeps = 30
	opt := shardSweepOptions(3)
	script := randomShardScript(opt, 99, sweeps)
	script = append(script,
		propStep{5, "big-slide", func(s *Sim) {
			p := s.Net.Position(s.Net.BigID())
			s.Net.Move(s.Net.BigID(), p.Add(geom.Vec{X: opt.Config.Rt * 0.8}))
		}},
		propStep{14, "big-move", func(s *Sim) {
			s.Net.Move(s.Net.BigID(), geom.Point{X: -140, Y: 100})
		}},
	)
	runShardSweepEquivalence(t, opt, core.VariantM, script, sweeps)
}

// TestShardedSweepMatchesSerialEnergy turns on the duty-cycle energy
// model (no per-send costs, which would disqualify sharding): heads
// drain five times faster, retreat when low, and nodes die at sweep
// boundaries — the energy-death escalation path.
func TestShardedSweepMatchesSerialEnergy(t *testing.T) {
	const sweeps = 30
	opt := shardSweepOptions(17)
	opt.Config.InitialEnergy = 60
	script := randomShardScript(opt, 23, sweeps)
	runShardSweepEquivalence(t, opt, core.VariantD, script, sweeps)
}

// TestShardedSweepMatchesSerialObstacle runs the equivalence on an
// occluded field: obstacles qualify for both sharded executors now
// (occlusion only shrinks interference neighborhoods), so the sharded
// maintenance path must match serial around a wall too.
func TestShardedSweepMatchesSerialObstacle(t *testing.T) {
	const sweeps = 25
	opt := shardSweepOptions(29)
	opt.Obstacles = []field.Obstacle{
		{{X: 30, Y: -140}, {X: 90, Y: -140}, {X: 90, Y: 50}, {X: -100, Y: 50},
			{X: -100, Y: 110}, {X: 30, Y: 110}},
	}
	script := randomShardScript(opt, 31, sweeps)
	runShardSweepEquivalence(t, opt, core.VariantD, script, sweeps)
}

// TestShardedSweepHealsKillDisk pins the healing story end to end: a
// converged sharded field loses a whole disk of nodes mid-maintenance
// and must re-heal to the dynamic fixpoint, byte-identical to serial
// at every boundary along the way.
func TestShardedSweepHealsKillDisk(t *testing.T) {
	const sweeps = 40
	opt := shardSweepOptions(5)
	c := geom.Point{X: opt.RegionRadius * 0.4, Y: 0}
	script := []propStep{
		{8, "disaster", func(s *Sim) { s.KillDisk(c, opt.Config.SearchRadius()) }},
	}
	runShardSweepEquivalence(t, opt, core.VariantD, script, sweeps)
}

// TestShardedSweepFaultyFallback proves the gate: with an active fault
// plan the executor must refuse to shard (replays would shift the
// per-delivery randomness), so a worker-configured build still equals
// serial — trivially, by taking the same path.
func TestShardedSweepFaultyFallback(t *testing.T) {
	const sweeps = 20
	opt := shardSweepOptions(11)
	opt.Faults = fault.Plan{Loss: 0.05, BlackoutRate: 0.01, BlackoutSweeps: 2}
	script := randomScript(opt, 77, sweeps)
	runShardSweepEquivalence(t, opt, core.VariantD, script, sweeps)
}

// TestSweepSmoke56k is the large-field smoke: a ~56k-node field
// configures sharded, converges under sharded maintenance, loses a
// disk two search radii wide, and re-heals to the dynamic fixpoint.
// It runs only with GS3_SWEEP_SMOKE=1 (the Makefile's sweep-smoke
// target runs it under -race).
func TestSweepSmoke56k(t *testing.T) {
	if os.Getenv("GS3_SWEEP_SMOKE") == "" {
		t.Skip("set GS3_SWEEP_SMOKE=1 to run the 56k-node sweep smoke")
	}
	opt := DefaultOptions(100, 2800)
	opt.Seed = 9
	opt.SweepWorkers = 8
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("deployed %d nodes", s.Net.Medium().Count())
	if _, err := s.ConfigureSharded(8); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	if _, err := s.RunToFixpoint(check.Dynamic, 12); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	c := geom.Point{X: opt.RegionRadius * 0.3, Y: opt.RegionRadius * 0.2}
	killed := s.KillDisk(c, 2*opt.Config.SearchRadius())
	if killed == 0 {
		t.Fatal("kill disk hit nothing")
	}
	t.Logf("killed %d nodes", killed)
	if _, err := s.RunToFixpoint(check.Dynamic, 30); err != nil {
		t.Fatalf("post-disaster healing: %v", err)
	}
	// The healed structure must have no bootup stragglers left outside
	// the crater and no insane heads anywhere.
	snap := s.Net.Snapshot()
	for _, v := range snap.Nodes {
		if v.Status == core.StatusBootup && v.Pos.Dist(c) > 3*opt.Config.SearchRadius() {
			t.Errorf("node %d still bootup far from the crater", v.ID)
		}
	}
}
