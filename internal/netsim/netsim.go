// Package netsim is the experiment harness: it assembles deployments,
// radio, and the GS³ protocol into runnable scenarios, injects the
// paper's perturbations, and measures convergence times and the
// geographic footprint of healing.
//
// # Concurrency
//
// A Sim is single-threaded by construction: it wraps one sim.Engine,
// one core.Network, and one rng.Source, none of which lock. Build each
// trial its own Sim and drive it from one goroutine only. Sims built
// from independent Options (even identical ones) share no state, so
// any number of trials may run concurrently on separate goroutines —
// that is exactly what internal/runner does. Identical Options with
// identical seeds produce identical results on any schedule.
package netsim

import (
	"fmt"
	"math"
	"slices"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/radio"
	"gs3/internal/rng"
)

// Options describes a scenario. Options is plain data: copy it freely
// and hand each trial its own copy (with its own Seed) — Build takes
// its own copy of everything it keeps, so a built Sim shares nothing
// with the Options it came from.
type Options struct {
	Config core.Config
	Radio  radio.Params
	Seed   uint64

	// Deployment: exactly one of Grid or Poisson semantics applies.
	RegionRadius float64
	// Lambda > 0 selects a Poisson deployment with this density (the
	// paper's convention: mean nodes per unit-radius disk).
	Lambda float64
	// GridSpacing > 0 selects a deterministic triangular grid.
	GridSpacing float64
	// GridJitter perturbs grid nodes by this fraction of the spacing.
	GridJitter float64
	// Gaps clears circular areas of the deployment.
	Gaps []field.Gap
	// Obstacles are polygonal regions that clear deployed nodes AND
	// occlude radio: no node is deployed inside one, and links whose
	// line of sight crosses one are dead, so the structure must heal
	// around non-convex coverage holes. An empty list is free space —
	// builds are byte-identical to pre-obstacle builds.
	Obstacles []field.Obstacle

	// Faults configures the deterministic fault injector (message loss,
	// duplication, delay jitter, transient blackouts). The zero plan
	// runs the reliable radio byte-identically to a build without the
	// fault layer.
	Faults fault.Plan

	// SweepWorkers sets the sharded maintenance executor's worker
	// budget (core.Network.SetSweepWorkers). Zero or one keeps every
	// sweep batch on the serial path; any value produces byte-identical
	// results, so it only changes wall clock.
	SweepWorkers int
}

// DefaultOptions returns a dense grid scenario with cell radius r and a
// deployment disk of regionRadius.
func DefaultOptions(r, regionRadius float64) Options {
	cfg := core.DefaultConfig(r)
	return Options{
		Config: cfg,
		Radio: radio.Params{
			MaxRange:           cfg.SearchRadius() + cfg.Rt,
			DiffusionSpeed:     cfg.SearchRadius(),
			PerMessageOverhead: 0.001,
		},
		Seed:         1,
		RegionRadius: regionRadius,
		GridSpacing:  cfg.Rt * 0.9,
		GridJitter:   0.15,
	}
}

// Sim wraps a network with its deployment and measurement helpers.
//
// A Sim is not safe for concurrent use: exactly one goroutine may
// drive it (configure, perturb, measure) at a time, the same ownership
// rule as the sim.Engine it contains. Distinct Sims are fully
// independent and may run in parallel.
type Sim struct {
	Net *core.Network
	Dep field.Deployment
	Opt Options
	Src *rng.Source

	// disasterLog records executed scheduled disasters in firing order.
	disasterLog []DisasterRecord
}

// Build creates the network (unconfigured) from the options. Every
// call allocates a fresh engine, medium, and RNG, so concurrent Build
// calls (and the Sims they return) never contend.
func Build(opt Options) (*Sim, error) {
	if err := opt.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	// Defensive copy: the caller may mutate its Gaps or Obstacles
	// slices after Build (the medium additionally deep-copies the
	// polygons it keeps).
	opt.Gaps = slices.Clone(opt.Gaps)
	opt.Obstacles = slices.Clone(opt.Obstacles)
	src := rng.New(opt.Seed)
	var dep field.Deployment
	var err error
	switch {
	case opt.GridSpacing > 0:
		dep, err = field.Grid(opt.RegionRadius, opt.GridSpacing, opt.GridJitter, src.Fork())
	case opt.Lambda > 0:
		dep, err = field.Poisson(field.Config{
			Radius: opt.RegionRadius,
			Lambda: opt.Lambda,
		}, src.Fork())
	default:
		return nil, fmt.Errorf("netsim: options select no deployment")
	}
	if err != nil {
		return nil, fmt.Errorf("netsim: deployment: %w", err)
	}
	if len(opt.Gaps) > 0 {
		dep = field.WithGaps(dep, opt.Gaps)
	}
	if len(opt.Obstacles) > 0 {
		dep = field.WithObstacles(dep, opt.Obstacles)
	}
	nw, err := core.NewNetwork(opt.Config, opt.Radio, src.Fork())
	if err != nil {
		return nil, err
	}
	// Installing obstacles consumes no randomness, so obstacle-free
	// builds draw exactly the pre-obstacle RNG sequence.
	if len(opt.Obstacles) > 0 {
		nw.Medium().SetObstacles(opt.Obstacles)
	}
	// The injector gets its own forked stream — and the fork happens
	// only for an active plan, so zero-fault builds draw exactly the
	// same RNG sequence as builds that predate the fault layer.
	if opt.Faults.Active() {
		inj, err := fault.NewInjector(opt.Faults, src.Fork())
		if err != nil {
			return nil, fmt.Errorf("netsim: %w", err)
		}
		nw.SetFaults(inj)
	}
	nw.SetSweepWorkers(opt.SweepWorkers)
	nw.Reserve(len(dep.Positions))
	for i, p := range dep.Positions {
		if _, err := nw.AddNode(p, i == 0); err != nil {
			return nil, err
		}
	}
	return &Sim{Net: nw, Dep: dep, Opt: opt, Src: src}, nil
}

// Configure runs the GS³-S diffusing computation to completion and
// returns the virtual time it took.
func (s *Sim) Configure() (float64, error) {
	start := s.Net.Engine().Now()
	if err := s.Net.StartConfiguration(); err != nil {
		return 0, err
	}
	s.Net.Engine().Run(0)
	return s.Net.Engine().Now() - start, nil
}

// ConfigureSharded runs the GS³-S configuration with the wave-parallel
// executor (core.Network.ConfigureSharded) on up to workers goroutines
// and returns the virtual time it took. The result is byte-identical
// to Configure for every workers value; scenarios the executor cannot
// shard (active faults, a lossy radio, installed tracers) run the
// serial path transparently.
func (s *Sim) ConfigureSharded(workers int) (float64, error) {
	start := s.Net.Engine().Now()
	if err := s.Net.ConfigureSharded(workers); err != nil {
		return 0, err
	}
	return s.Net.Engine().Now() - start, nil
}

// RunSweeps advances virtual time by n heartbeat intervals.
func (s *Sim) RunSweeps(n int) {
	e := s.Net.Engine()
	e.RunUntil(e.Now() + float64(n)*s.Opt.Config.HeartbeatInterval)
}

// ErrNoConvergence is returned when a fixpoint is not reached in time.
// It is a sentinel for errors.Is; never mutated after init.
var ErrNoConvergence = fmt.Errorf("netsim: no convergence within the deadline")

// RunToFixpoint runs maintenance sweeps until the (mode) fixpoint holds
// or maxSweeps elapse. It returns the virtual time spent. The fixpoint
// is evaluated once per heartbeat interval.
func (s *Sim) RunToFixpoint(mode check.Mode, maxSweeps int) (float64, error) {
	start := s.Net.Engine().Now()
	for i := 0; i < maxSweeps; i++ {
		if check.Fixpoint(s.Net.Snapshot(), mode).OK() {
			return s.Net.Engine().Now() - start, nil
		}
		s.RunSweeps(1)
	}
	if check.Fixpoint(s.Net.Snapshot(), mode).OK() {
		return s.Net.Engine().Now() - start, nil
	}
	return s.Net.Engine().Now() - start, ErrNoConvergence
}

// RunUntilStable runs sweeps until the structure is stable by a cheap
// predicate — no bootup stragglers among connected nodes and all heads
// sane — or maxSweeps elapse.
func (s *Sim) RunUntilStable(maxSweeps int) (float64, error) {
	start := s.Net.Engine().Now()
	for i := 0; i < maxSweeps; i++ {
		if s.StableQuick() {
			return s.Net.Engine().Now() - start, nil
		}
		s.RunSweeps(1)
	}
	if s.StableQuick() {
		return s.Net.Engine().Now() - start, nil
	}
	return s.Net.Engine().Now() - start, ErrNoConvergence
}

// StableQuick is the cheap stability predicate used by RunUntilStable:
// every alive node is covered (no bootup), and every head is within Rt
// of its IL.
func (s *Sim) StableQuick() bool {
	snap := s.Net.Snapshot()
	for _, v := range snap.Nodes {
		if v.Status == core.StatusBootup {
			return false
		}
		if v.IsHead() && v.Pos.Dist(v.IL) > s.Opt.Config.Rt+1e-9 {
			return false
		}
	}
	return true
}

// ---- Perturbations ----

// KillDisk kills every node (big node excluded) within radius of c and
// returns how many died. The disk is geometric — WithinDisk, not a
// radio query — because a blast reaches nodes an obstacle would hide
// from a transmission. The radius boundary is inclusive: a node at
// exactly radius from c dies.
func (s *Sim) KillDisk(c geom.Point, radius float64) int {
	killed := 0
	for _, id := range s.Net.Medium().WithinDisk(c, radius, radio.None) {
		if id == s.Net.BigID() {
			continue
		}
		s.Net.Kill(id)
		killed++
	}
	return killed
}

// Disaster describes a correlated failure: at virtual time At, every
// node (big node excluded) within Radius of Center dies at once. It is
// KillDisk promoted to a first-class scheduled event, so a disaster
// can strike mid-traffic and mid-maintenance.
type Disaster struct {
	At     float64
	Center geom.Point
	Radius float64
}

// DisasterRecord is one executed disaster plus its measured kill count.
type DisasterRecord struct {
	Disaster
	Killed int
}

// ScheduleDisaster queues d on the engine. Scheduling consumes no
// randomness and a zero-disaster run is byte-identical to one that
// never called this. An At in the past is an error.
func (s *Sim) ScheduleDisaster(d Disaster) error {
	_, err := s.Net.Engine().At(d.At, "disaster", func() {
		killed := s.KillDisk(d.Center, d.Radius)
		s.disasterLog = append(s.disasterLog, DisasterRecord{Disaster: d, Killed: killed})
	})
	if err != nil {
		return fmt.Errorf("netsim: disaster: %w", err)
	}
	return nil
}

// Disasters returns the executed disasters in firing order (read-only).
func (s *Sim) Disasters() []DisasterRecord {
	return s.disasterLog
}

// RepopulateDisk adds fresh bootup nodes on a triangular grid of the
// given spacing inside the disk, returning their IDs.
func (s *Sim) RepopulateDisk(c geom.Point, radius, spacing float64) []radio.NodeID {
	var out []radio.NodeID
	rowH := spacing * math.Sqrt(3) / 2
	for row := -int(radius/rowH) - 1; float64(row)*rowH <= radius; row++ {
		offset := 0.0
		if row%2 != 0 {
			offset = spacing / 2
		}
		for col := -int(radius/spacing) - 1; float64(col)*spacing <= radius; col++ {
			p := c.Add(geom.Vec{X: float64(col)*spacing + offset, Y: float64(row) * rowH})
			if p.Dist(c) <= radius {
				out = append(out, s.Net.Join(p))
			}
		}
	}
	return out
}

// CorruptDisk corrupts the state of every head within radius of c.
func (s *Sim) CorruptDisk(c geom.Point, radius float64, kind core.CorruptionKind, delta float64) int {
	// One snapshot for the whole pass: Corrupt mutates live node state,
	// and a per-head re-snapshot would cost O(n) each.
	snap := s.Net.Snapshot()
	n := 0
	for _, h := range snap.Heads() {
		if h.IsBig {
			continue
		}
		if h.Pos.Dist(c) <= radius {
			s.Net.Corrupt(h.ID, kind, delta)
			n++
		}
	}
	return n
}

// ---- Measurement ----

// TrafficFootprint measures, while fn runs, how far from center any
// transmission originated. It returns the maximum distance (0 when no
// traffic flowed).
func (s *Sim) TrafficFootprint(center geom.Point, fn func()) float64 {
	maxDist := 0.0
	s.Net.Medium().TraceTraffic(func(from geom.Point) {
		if d := from.Dist(center); d > maxDist {
			maxDist = d
		}
	})
	defer s.Net.Medium().TraceTraffic(nil)
	fn()
	return maxDist
}

// HeadSet returns the set of current head IDs.
func (s *Sim) HeadSet() map[radio.NodeID]bool {
	snap := s.Net.Snapshot()
	out := make(map[radio.NodeID]bool, len(snap.Nodes))
	for _, h := range snap.Heads() {
		out[h.ID] = true
	}
	return out
}

// StructureDiff compares the current head set and parent assignments
// against a snapshot taken earlier and returns the IDs of heads whose
// role or parent changed (appeared, disappeared, or re-parented).
// It only reads its arguments; snapshots are immutable, so the
// function is safe to call from any goroutine.
func StructureDiff(before, after core.Snapshot) []radio.NodeID {
	type headInfo struct {
		parent radio.NodeID
		il     geom.Point
	}
	b := map[radio.NodeID]headInfo{}
	for _, h := range before.Heads() {
		b[h.ID] = headInfo{h.Parent, h.IL}
	}
	var changed []radio.NodeID
	seen := map[radio.NodeID]bool{}
	for _, h := range after.Heads() {
		seen[h.ID] = true
		old, was := b[h.ID]
		if !was || old.parent != h.Parent || old.il.Dist(h.IL) > 1e-9 {
			changed = append(changed, h.ID)
		}
	}
	for id := range b {
		if !seen[id] {
			changed = append(changed, id)
		}
	}
	return changed
}

// MeanCellSize returns the average number of associates per head.
func (s *Sim) MeanCellSize() float64 {
	snap := s.Net.Snapshot()
	heads := snap.Heads()
	if len(heads) == 0 {
		return 0
	}
	assoc := 0
	for _, v := range snap.Nodes {
		if v.Status == core.StatusAssociate {
			assoc++
		}
	}
	return float64(assoc) / float64(len(heads))
}
