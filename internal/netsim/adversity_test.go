package netsim

import (
	"testing"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/radio"
)

// ---- KillDisk edge cases ----

// edgeSim builds a small network for exact disk-boundary checks.
func edgeSim(t *testing.T) *Sim {
	t.Helper()
	opt := DefaultOptions(100, 150)
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKillDiskBoundaryInclusive(t *testing.T) {
	s := edgeSim(t)
	// Pick any small node and kill a disk whose radius is exactly its
	// distance from the center: the boundary node must die.
	var target radio.NodeID = radio.None
	for _, id := range s.Net.Medium().IDs() {
		if id != s.Net.BigID() {
			target = id
			break
		}
	}
	if target == radio.None {
		t.Fatal("no small nodes deployed")
	}
	p, _ := s.Net.Medium().Position(target)
	c := geom.Point{X: 10, Y: 10}
	killed := s.KillDisk(c, p.Dist(c))
	if killed == 0 {
		t.Error("exact-radius kill disk killed nothing")
	}
	if s.Net.Alive(target) {
		t.Error("node at exactly the disk radius survived (boundary must be inclusive)")
	}
}

func TestKillDiskExcludesBigNode(t *testing.T) {
	s := edgeSim(t)
	before := s.Net.Medium().Count()
	killed := s.KillDisk(geom.Point{}, 30)
	if killed == 0 {
		t.Fatal("nothing killed around the origin")
	}
	if !s.Net.Alive(s.Net.BigID()) {
		t.Fatal("big node died in a kill disk")
	}
	if got := s.Net.Medium().Count(); got != before-killed {
		t.Errorf("medium count %d, want %d", got, before-killed)
	}
}

func TestKillDiskEmpty(t *testing.T) {
	s := edgeSim(t)
	before := s.Net.Medium().Count()
	if killed := s.KillDisk(geom.Point{X: 1e6, Y: 1e6}, 10); killed != 0 {
		t.Errorf("empty disk killed %d", killed)
	}
	if got := s.Net.Medium().Count(); got != before {
		t.Errorf("medium count changed: %d → %d", before, got)
	}
}

func TestKillDiskReachesBehindObstacles(t *testing.T) {
	opt := DefaultOptions(100, 300)
	// A wall just left of x=150; the disk at (200, 0) must still kill
	// nodes on the far side of the wall from... any radio perspective.
	opt.Obstacles = []field.Obstacle{{
		{X: 140, Y: -80}, {X: 145, Y: -80}, {X: 145, Y: 80}, {X: 140, Y: 80},
	}}
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes on both sides of the wall within 100 of (145, 0):
	c := geom.Point{X: 145, Y: 0}
	killed := s.KillDisk(c, 100)
	for _, id := range s.Net.Medium().IDs() {
		if id == s.Net.BigID() {
			continue
		}
		p, _ := s.Net.Medium().Position(id)
		if p.Dist(c) <= 100 {
			t.Errorf("node %d at %v inside blast survived", id, p)
		}
	}
	if killed == 0 {
		t.Error("blast killed nothing")
	}
}

// ---- Scheduled disasters ----

func TestScheduledDisasterFiresMidMaintenance(t *testing.T) {
	s := buildConfigured(t, 400)
	s.Net.StartMaintenance(core.VariantD)
	c := geom.Point{X: 170, Y: 100}
	at := s.Net.Engine().Now() + 3*s.Opt.Config.HeartbeatInterval
	if err := s.ScheduleDisaster(Disaster{At: at, Center: c, Radius: 60}); err != nil {
		t.Fatal(err)
	}
	if len(s.Disasters()) != 0 {
		t.Fatal("disaster logged before firing")
	}
	s.RunSweeps(2)
	if len(s.Disasters()) != 0 {
		t.Fatal("disaster fired early")
	}
	s.RunSweeps(2)
	recs := s.Disasters()
	if len(recs) != 1 {
		t.Fatalf("disaster log has %d records, want 1", len(recs))
	}
	if recs[0].Killed == 0 {
		t.Fatal("disaster killed nothing")
	}
	if recs[0].Center != c || recs[0].Radius != 60 || recs[0].At != at {
		t.Errorf("record %+v does not match the schedule", recs[0])
	}
	if _, err := s.RunUntilStable(40); err != nil {
		t.Fatalf("did not heal after scheduled disaster: %v", err)
	}
}

func TestScheduleDisasterInPast(t *testing.T) {
	s := buildConfigured(t, 300)
	if err := s.ScheduleDisaster(Disaster{At: s.Net.Engine().Now() - 1, Radius: 10}); err == nil {
		t.Error("past disaster accepted")
	}
}

// ---- Obstacles end to end ----

func TestConfigureAroundObstacle(t *testing.T) {
	opt := DefaultOptions(100, 350)
	// An L-shaped wall east of the big node.
	opt.Obstacles = []field.Obstacle{{
		{X: 120, Y: -140}, {X: 150, Y: -140}, {X: 150, Y: 30},
		{X: 290, Y: 30}, {X: 290, Y: 60}, {X: 120, Y: 60},
	}}
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	// No node deployed inside the obstacle.
	for _, id := range s.Net.Medium().IDs() {
		p, _ := s.Net.Medium().Position(id)
		if id != s.Net.BigID() && opt.Obstacles[0].Contains(p) {
			t.Fatalf("node %d deployed inside obstacle", id)
		}
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	if res := check.Fixpoint(s.Net.Snapshot(), check.Static).OK(); !res {
		t.Error("static fixpoint does not hold around the obstacle")
	}
	// The structure must actually avoid occluded links: no head-graph
	// edge crosses the wall.
	snap := s.Net.Snapshot()
	for _, h := range snap.Heads() {
		if h.Parent == radio.None {
			continue
		}
		if pv, ok := snap.View(h.Parent); ok {
			if opt.Obstacles[0].Occludes(h.Pos, pv.Pos) {
				t.Errorf("head %d's parent link crosses the obstacle", h.ID)
			}
		}
	}
}

func TestObstacleHealingUnderMaintenance(t *testing.T) {
	opt := DefaultOptions(100, 300)
	opt.Obstacles = []field.Obstacle{{
		{X: 100, Y: -60}, {X: 130, Y: -60}, {X: 130, Y: 60}, {X: 100, Y: 60},
	}}
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(2)
	killed := s.KillDisk(geom.Point{X: 200, Y: 0}, 60)
	if killed == 0 {
		t.Fatal("nothing killed behind the wall")
	}
	if _, err := s.RunUntilStable(50); err != nil {
		t.Fatalf("did not re-stabilize around the obstacle: %v", err)
	}
}

// Zero obstacles must leave builds byte-identical: same deployment,
// same configured structure, same stats as an Options that never
// mentioned obstacles.
func TestZeroObstaclesIdentity(t *testing.T) {
	a, err := Build(DefaultOptions(100, 300))
	if err != nil {
		t.Fatal(err)
	}
	optB := DefaultOptions(100, 300)
	optB.Obstacles = []field.Obstacle{}
	b, err := Build(optB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Configure(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Configure(); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Net.Snapshot(), b.Net.Snapshot()
	if len(sa.Nodes) != len(sb.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(sa.Nodes), len(sb.Nodes))
	}
	for i := range sa.Nodes {
		va, vb := sa.Nodes[i], sb.Nodes[i]
		if va.ID != vb.ID || va.Status != vb.Status || va.Head != vb.Head ||
			va.Parent != vb.Parent || va.IL != vb.IL {
			t.Fatalf("node %d differs between zero-obstacle builds", va.ID)
		}
	}
	if a.Net.Medium().Stats() != b.Net.Medium().Stats() {
		t.Fatalf("stats differ: %+v vs %+v", a.Net.Medium().Stats(), b.Net.Medium().Stats())
	}
}

// ---- RunChaos message accounting ----

func TestRunChaosHealMessages(t *testing.T) {
	s := buildConfigured(t, 300)
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(1)
	// Quiet network: chaos over an already-held fixpoint spends nothing.
	rep := s.RunChaos(check.Dynamic, 2, 10)
	if !rep.Converged {
		t.Fatalf("quiet run did not converge: %+v", rep)
	}
	if rep.HealMessages != 0 {
		t.Errorf("quiet run charged %d heal messages", rep.HealMessages)
	}

	// Faulty networks: blackouts keep the fixpoint broken across sweeps,
	// so healing spans periodic boundary rescans and must cost messages.
	// Every converged trial must satisfy the accounting identity
	// (HealTime == 0 ⇒ HealMessages == 0), and at least one trial must
	// exhibit a real, paid-for heal.
	plan := fault.Plan{Loss: 0.2, BlackoutRate: 0.02, BlackoutSweeps: 3}
	paid := false
	for seed := uint64(1); seed <= 8; seed++ {
		rep := chaosTrial(t, seed, plan, 80)
		if !rep.Converged {
			continue
		}
		if rep.HealTime == 0 && rep.HealMessages != 0 {
			t.Errorf("seed %d: instant convergence charged %d messages", seed, rep.HealMessages)
		}
		if rep.HealTime > 0 && rep.HealMessages > 0 {
			paid = true
		}
	}
	if !paid {
		t.Error("no faulty trial exhibited a message-bearing heal")
	}
}
