package netsim

import (
	"errors"
	"testing"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/radio"
)

func buildConfigured(t *testing.T, regionRadius float64) *Sim {
	t.Helper()
	s, err := Build(DefaultOptions(100, regionRadius))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildGrid(t *testing.T) {
	s, err := Build(DefaultOptions(100, 300))
	if err != nil {
		t.Fatal(err)
	}
	if s.Net.Medium().Count() < 100 {
		t.Errorf("only %d nodes", s.Net.Medium().Count())
	}
	if s.Net.BigID() != 0 {
		t.Errorf("big node id = %d", s.Net.BigID())
	}
}

func TestBuildPoisson(t *testing.T) {
	opt := DefaultOptions(100, 300)
	opt.GridSpacing = 0
	opt.Lambda = 0.01
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if s.Net.Medium().Count() < 2 {
		t.Error("empty Poisson deployment")
	}
}

func TestBuildNoDeployment(t *testing.T) {
	opt := DefaultOptions(100, 300)
	opt.GridSpacing = 0
	opt.Lambda = 0
	if _, err := Build(opt); err == nil {
		t.Error("no-deployment options accepted")
	}
}

func TestBuildWithGaps(t *testing.T) {
	opt := DefaultOptions(100, 300)
	opt.Gaps = []field.Gap{{Center: geom.Point{X: 150, Y: 0}, Radius: 40}}
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range s.Net.Medium().IDs() {
		if id == s.Net.BigID() {
			continue
		}
		p, _ := s.Net.Medium().Position(id)
		if p.Dist(geom.Point{X: 150, Y: 0}) < 40 {
			t.Errorf("node %d inside gap", id)
		}
	}
}

// Build must take its own copy of Gaps: mutating the caller's slice
// afterwards may not leak into the built Sim.
func TestBuildCopiesGaps(t *testing.T) {
	gaps := []field.Gap{{Center: geom.Point{X: 150, Y: 0}, Radius: 40}}
	opt := DefaultOptions(100, 300)
	opt.Gaps = gaps
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	gaps[0] = field.Gap{Center: geom.Point{}, Radius: 1e9}
	if s.Opt.Gaps[0].Radius != 40 {
		t.Fatalf("Sim sees caller's mutation: gap radius %v, want 40", s.Opt.Gaps[0].Radius)
	}
}

func TestConfigureReachesFixpoint(t *testing.T) {
	s := buildConfigured(t, 350)
	if !check.Fixpoint(s.Net.Snapshot(), check.Static).OK() {
		t.Error("configuration did not reach the static fixpoint")
	}
}

func TestConfigureTimePositive(t *testing.T) {
	s, err := Build(DefaultOptions(100, 350))
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := s.Configure()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Errorf("elapsed = %v", elapsed)
	}
}

func TestRunToFixpointImmediate(t *testing.T) {
	s := buildConfigured(t, 350)
	s.Net.StartMaintenance(core.VariantD)
	elapsed, err := s.RunToFixpoint(check.Static, 30)
	if err != nil {
		t.Fatalf("no convergence: %v", err)
	}
	if elapsed < 0 {
		t.Errorf("elapsed = %v", elapsed)
	}
}

func TestKillDiskAndHealToStable(t *testing.T) {
	s := buildConfigured(t, 400)
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(2)

	c := geom.Point{X: 170, Y: 100}
	killed := s.KillDisk(c, 60)
	if killed == 0 {
		t.Fatal("nothing killed")
	}
	if _, err := s.RunUntilStable(40); err != nil {
		t.Fatalf("did not re-stabilize: %v", err)
	}
}

// A kill centered near the origin shifts the big node's cell IL away,
// driving the big node into BIG_SLIDE. The head that took over its
// cell must then root the head graph (distance 0): without that root
// ParentSeek has no distance-0 anchor and counts to infinity, so head
// hops inflate every sweep and I1.2 never holds again.
func TestBigSlideKeepsRootedTree(t *testing.T) {
	opt := DefaultOptions(100, 300)
	opt.Seed = 9
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	s.KillDisk(geom.Point{X: 30, Y: -20}, 60)
	s.RunSweeps(1)
	big, _ := s.Net.Snapshot().View(s.Net.BigID())
	if big.Status != core.StatusBigSlide {
		t.Fatalf("scenario no longer triggers BIG_SLIDE (big status %v)", big.Status)
	}
	// With a rooted tree, hops settle at the graph radius (a handful);
	// a rootless tree inflates them by ~1 per sweep.
	s.RunSweeps(12)
	snap := s.Net.Snapshot()
	bound := len(snap.Heads())
	for _, h := range snap.Heads() {
		if h.Hops > bound {
			t.Errorf("head %d hops %d > %d: tree is rootless during the slide", h.ID, h.Hops, bound)
		}
	}
	if _, err := s.RunUntilStable(40); err != nil {
		t.Fatalf("did not re-stabilize: %v", err)
	}
}

func TestRepopulateDisk(t *testing.T) {
	s := buildConfigured(t, 400)
	s.Net.StartMaintenance(core.VariantD)
	c := geom.Point{X: 150, Y: -80}
	s.KillDisk(c, 70)
	ids := s.RepopulateDisk(c, 70, s.Opt.Config.Rt*0.9)
	if len(ids) < 10 {
		t.Fatalf("only %d repopulated", len(ids))
	}
	if _, err := s.RunUntilStable(60); err != nil {
		t.Fatalf("repopulated region did not stabilize: %v", err)
	}
	// All the new nodes are covered now.
	for _, id := range ids {
		st := s.Net.Node(id).Status
		if st == core.StatusBootup {
			t.Errorf("repopulated node %d still bootup", id)
		}
	}
}

func TestCorruptDiskHeals(t *testing.T) {
	s := buildConfigured(t, 400)
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(2)
	// Center the corruption on an actual head so the disk is never
	// empty regardless of where the lattice landed.
	var at geom.Point
	for _, h := range s.Net.Snapshot().Heads() {
		if !h.IsBig {
			at = h.Pos
			break
		}
	}
	n := s.CorruptDisk(at, 100, core.CorruptIL, 3*s.Opt.Config.Rt)
	if n == 0 {
		t.Fatal("nothing corrupted")
	}
	if _, err := s.RunUntilStable(25 * s.Opt.Config.SanityCheckEvery); err != nil {
		t.Fatalf("corruption did not heal: %v", err)
	}
}

func TestHealingLocality(t *testing.T) {
	// Healing a single head death changes the structure only near the
	// dead cell — the locality claim of §4.3.5.2.
	s := buildConfigured(t, 500)
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(2)

	var victim core.NodeView
	for _, h := range s.Net.Snapshot().Heads() {
		if !h.IsBig && h.Pos.Dist(geom.Point{}) < 250 {
			victim = h
			break
		}
	}
	before := s.Net.Snapshot()
	s.Net.Kill(victim.ID)
	if _, err := s.RunUntilStable(20); err != nil {
		t.Fatalf("no stabilization: %v", err)
	}
	limit := s.Opt.Config.SearchRadius() + s.Opt.Config.HeadSpacing()
	for _, id := range StructureDiff(before, s.Net.Snapshot()) {
		if id == victim.ID {
			continue
		}
		v, ok := s.Net.Snapshot().View(id)
		if !ok {
			continue
		}
		if d := v.Pos.Dist(victim.Pos); d > limit {
			t.Errorf("head %d at distance %.0f from the perturbation changed (limit %.0f)", id, d, limit)
		}
	}
}

func TestTrafficFootprint(t *testing.T) {
	s := buildConfigured(t, 300)
	c := geom.Point{X: 50, Y: 50}
	got := s.TrafficFootprint(c, func() {
		// One broadcast from the big node at the origin.
		s.Net.Medium().Broadcast(s.Net.BigID(), 10)
	})
	want := c.Dist(geom.Point{})
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("footprint = %v, want %v", got, want)
	}
	// Tracing must be off afterwards.
	got2 := s.TrafficFootprint(c, func() {})
	if got2 != 0 {
		t.Errorf("footprint with no traffic = %v", got2)
	}
}

func TestStableQuickDetectsBootup(t *testing.T) {
	s := buildConfigured(t, 300)
	if !s.StableQuick() {
		t.Fatal("configured network not stable")
	}
	s.Net.Join(geom.Point{X: 300 + 3*s.Opt.Config.SearchRadius(), Y: 0})
	if s.StableQuick() {
		t.Error("bootup straggler not detected")
	}
}

func TestRunToFixpointTimeout(t *testing.T) {
	s := buildConfigured(t, 300)
	// A node stranded out of range never converges to F4... but F4 only
	// covers connected nodes, so strand one *connected* bootup instead:
	// park a node just inside range of the boundary with maintenance
	// off, so nobody re-chooses for it.
	s.Net.Join(geom.Point{X: 300 + 0.9*s.Opt.Config.SearchRadius(), Y: 0})
	_, err := s.RunToFixpoint(check.Static, 0)
	if err == nil {
		t.Skip("straggler converged immediately")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v", err)
	}
}

func TestStructureDiff(t *testing.T) {
	s := buildConfigured(t, 350)
	before := s.Net.Snapshot()
	if d := StructureDiff(before, s.Net.Snapshot()); len(d) != 0 {
		t.Errorf("diff of identical snapshots = %v", d)
	}
	// Kill a head and heal: the diff must mention the changed cells.
	s.Net.StartMaintenance(core.VariantD)
	var victim radio.NodeID
	for _, h := range before.Heads() {
		if !h.IsBig {
			victim = h.ID
			break
		}
	}
	s.Net.Kill(victim)
	s.RunSweeps(6)
	d := StructureDiff(before, s.Net.Snapshot())
	if len(d) == 0 {
		t.Error("healing produced an empty diff")
	}
}

func TestMeanCellSize(t *testing.T) {
	s := buildConfigured(t, 350)
	if m := s.MeanCellSize(); m < 1 {
		t.Errorf("mean cell size = %v", m)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() int {
		s, err := Build(DefaultOptions(100, 300))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Configure(); err != nil {
			t.Fatal(err)
		}
		return len(s.Net.Snapshot().Heads())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay differs: %d vs %d heads", a, b)
	}
}
