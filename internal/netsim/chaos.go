package netsim

import (
	"gs3/internal/check"
)

// ChaosReport summarizes one chaos run: whether the invariants settled,
// how long they took, and how hard the protocol had to work.
type ChaosReport struct {
	// Converged reports whether the fixpoint held for the required
	// streak of consecutive sweep boundaries within the budget.
	Converged bool
	// HealTime is the virtual time from the start of the run to the
	// first sweep boundary of the winning streak (0 when the invariants
	// already held at the start). Meaningless when !Converged.
	HealTime float64
	// Sweeps is how many sweeps actually ran.
	Sweeps int
	// Violations counts the sweep boundaries at which the fixpoint did
	// NOT hold.
	Violations int
	// Retries is the number of HEAD_ORG re-issues the radio counted
	// (radio.Stats.Retries at the end of the run).
	Retries uint64
	// HealMessages is the message overhead spent healing: broadcasts
	// plus unicasts sent between the start of the run and the first
	// sweep boundary of the winning streak — the traffic companion of
	// HealTime (0 when the invariants already held at the start).
	// Meaningless when !Converged.
	HealMessages uint64
}

// RunChaos is the convergence watchdog for faulty runs: it drives
// maintenance sweeps, evaluating the (mode) fixpoint at every sweep
// boundary, until the invariants hold at streak consecutive boundaries
// or budget sweeps elapse. Under an active fault plan the invariants
// can flicker — a blackout opens a hole, healing closes it — so a
// single OK evaluation (what RunToFixpoint accepts) is not evidence of
// convergence; a streak is.
//
// The run is deterministic: identical (Options, fault plan, prior
// history) replays the identical sweep/fault schedule and returns the
// identical report.
func (s *Sim) RunChaos(mode check.Mode, streak, budget int) ChaosReport {
	if streak < 1 {
		streak = 1
	}
	var rep ChaosReport
	start := s.Net.Engine().Now()
	sent := func() uint64 {
		st := s.Net.Medium().Stats()
		return st.Broadcasts + st.Unicasts
	}
	startMsgs := sent()
	run := 0                // current consecutive-OK streak
	streakStart := 0.0      // virtual time at which the current streak began
	streakMsgs := startMsgs // messages sent when the current streak began
	for i := 0; i <= budget; i++ {
		if check.Fixpoint(s.Net.Snapshot(), mode).OK() {
			if run == 0 {
				streakStart = s.Net.Engine().Now()
				streakMsgs = sent()
			}
			run++
			if run >= streak {
				rep.Converged = true
				rep.HealTime = streakStart - start
				rep.HealMessages = streakMsgs - startMsgs
				rep.Retries = s.Net.Medium().Stats().Retries
				return rep
			}
		} else {
			run = 0
			rep.Violations++
		}
		if i < budget {
			s.RunSweeps(1)
			rep.Sweeps++
		}
	}
	rep.Retries = s.Net.Medium().Stats().Retries
	return rep
}
