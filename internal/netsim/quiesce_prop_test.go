package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/geom"
	"gs3/internal/rng"
)

// The quiescence cache is an optimization, never a semantics change:
// a cached run must be observably identical — snapshot, metrics, radio
// stats, virtual clock — to a brute-force run that recomputes every
// sweep, at every sweep boundary, under any perturbation schedule. The
// property tests here pit the two builds against each other on
// randomized topologies and scripts.

// propStep is one scripted perturbation, applied identically to both
// builds right before the given sweep boundary. The closure may only
// consult state that is provably identical across the builds up to the
// point it runs (which the equality check at every boundary enforces).
type propStep struct {
	sweep int
	name  string
	apply func(s *Sim)
}

// randomScript draws a deterministic perturbation schedule: disk kills,
// grid repopulations, node moves, and head-state corruptions, all
// parameterized by data drawn up front so both builds see the same
// script.
func randomScript(opt Options, seed uint64, sweeps int) []propStep {
	src := rng.New(seed)
	randPoint := func(maxR float64) geom.Point {
		x, y := src.InDisk(maxR)
		return geom.Point{X: x, Y: y}
	}
	var script []propStep
	n := 3 + src.Intn(3)
	for i := 0; i < n; i++ {
		at := 2 + src.Intn(sweeps-4)
		switch src.Intn(4) {
		case 0:
			c := randPoint(opt.RegionRadius * 0.7)
			r := opt.Config.Rt * (0.5 + src.Float64())
			script = append(script, propStep{at, "kill", func(s *Sim) { s.KillDisk(c, r) }})
		case 1:
			c := randPoint(opt.RegionRadius * 0.7)
			r := opt.Config.Rt * (0.5 + src.Float64())
			sp := opt.Config.Rt * 0.8
			script = append(script, propStep{at, "join", func(s *Sim) { s.RepopulateDisk(c, r, sp) }})
		case 2:
			// Move the k-th alive small node to a drawn position. Both
			// builds have identical SortedIDs at the same boundary, so
			// index-based selection picks the same node in each.
			k := src.Intn(40)
			p := randPoint(opt.RegionRadius * 0.8)
			script = append(script, propStep{at, "move", func(s *Sim) {
				ids := s.Net.SortedIDs()
				for off := 0; off < len(ids); off++ {
					id := ids[(k+off)%len(ids)]
					if id != s.Net.BigID() && s.Net.Alive(id) {
						s.Net.Move(id, p)
						return
					}
				}
			}})
		default:
			c := randPoint(opt.RegionRadius * 0.7)
			r := opt.Config.Rt * (1 + src.Float64())
			kind := core.CorruptionKind(1 + src.Intn(3))
			delta := 1 + src.Float64()*5
			script = append(script, propStep{at, "corrupt", func(s *Sim) {
				s.CorruptDisk(c, r, kind, delta)
			}})
		}
	}
	return script
}

// runCacheEquivalence drives a cached and an uncached build of opt in
// lock-step through the script and fails on the first boundary where
// any observable diverges.
func runCacheEquivalence(t *testing.T, opt Options, variant core.Variant, script []propStep, sweeps int) {
	t.Helper()
	build := func(cache bool) *Sim {
		s, err := Build(opt)
		if err != nil {
			t.Fatal(err)
		}
		s.Net.SetSweepCache(cache)
		if _, err := s.Configure(); err != nil {
			t.Fatal(err)
		}
		s.Net.StartMaintenance(variant)
		return s
	}
	cached := build(true)
	brute := build(false)

	for i := 0; i < sweeps; i++ {
		for _, st := range script {
			if st.sweep == i {
				st.apply(cached)
				st.apply(brute)
			}
		}
		cached.RunSweeps(1)
		brute.RunSweeps(1)

		if a, b := cached.Net.Engine().Now(), brute.Net.Engine().Now(); a != b {
			t.Fatalf("sweep %d: clock diverged: cached %v, brute %v", i, a, b)
		}
		if a, b := cached.Net.Metrics(), brute.Net.Metrics(); a != b {
			t.Fatalf("sweep %d: metrics diverged:\ncached %+v\nbrute  %+v", i, a, b)
		}
		if a, b := cached.Net.Medium().Stats(), brute.Net.Medium().Stats(); a != b {
			t.Fatalf("sweep %d: radio stats diverged:\ncached %+v\nbrute  %+v", i, a, b)
		}
		sa, sb := cached.Net.Snapshot(), brute.Net.Snapshot()
		if !reflect.DeepEqual(sa, sb) {
			for j := range sa.Nodes {
				if j >= len(sb.Nodes) || !reflect.DeepEqual(sa.Nodes[j], sb.Nodes[j]) {
					t.Fatalf("sweep %d: snapshot diverged at node index %d:\ncached %+v\nbrute  %+v",
						i, j, sa.Nodes[j], sb.Nodes[j])
				}
			}
			t.Fatalf("sweep %d: snapshot diverged (node count %d vs %d)",
				i, len(sa.Nodes), len(sb.Nodes))
		}
	}
}

// TestCachedSweepMatchesBruteForce is the main property: across
// randomized grid topologies and perturbation schedules, the cached
// build is boundary-for-boundary identical to the no-cache build.
func TestCachedSweepMatchesBruteForce(t *testing.T) {
	const sweeps = 30
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			opt := DefaultOptions(100, 280)
			opt.Seed = seed
			opt.GridJitter = 0.1 + 0.05*float64(seed%3)
			script := randomScript(opt, seed*13+5, sweeps)
			runCacheEquivalence(t, opt, core.VariantD, script, sweeps)
		})
	}
}

// TestCachedSweepMatchesBruteForceMobile exercises Variant M: the big
// node relocates mid-run (BIG_SLIDE / BIG_MOVE paths) on top of a
// perturbation script.
func TestCachedSweepMatchesBruteForceMobile(t *testing.T) {
	const sweeps = 30
	opt := DefaultOptions(100, 280)
	opt.Seed = 3
	script := randomScript(opt, 99, sweeps)
	script = append(script,
		propStep{5, "big-slide", func(s *Sim) {
			p := s.Net.Position(s.Net.BigID())
			s.Net.Move(s.Net.BigID(), p.Add(geom.Vec{X: opt.Config.Rt * 0.8}))
		}},
		propStep{14, "big-move", func(s *Sim) {
			s.Net.Move(s.Net.BigID(), geom.Point{X: -120, Y: 90})
		}},
	)
	runCacheEquivalence(t, opt, core.VariantM, script, sweeps)
}

// TestCachedSweepMatchesBruteForceFaults proves the cache gate: with an
// active fault plan the cache must disable itself, so both builds stay
// identical even though replaying recorded deltas would be unsound
// under loss and blackouts.
func TestCachedSweepMatchesBruteForceFaults(t *testing.T) {
	const sweeps = 25
	opt := DefaultOptions(100, 260)
	opt.Seed = 11
	opt.Faults = fault.Plan{
		Loss:           0.05,
		BlackoutRate:   0.01,
		BlackoutSweeps: 2,
	}
	script := randomScript(opt, 77, sweeps)
	runCacheEquivalence(t, opt, core.VariantD, script, sweeps)
}
