package netsim

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/field"
	"gs3/internal/geom"
)

// shardScenarios mirrors the golden corpus's deployment shapes: dense
// grids at two scales, a gapped field (Rt-gap boundary cells), a
// Poisson deployment, and an obstacle field (occluded radio — legal
// since occlusion only shrinks interference neighborhoods, so the
// conflict-distance bound still holds; see shardable()). All are
// fault-free — the shardable cases.
func shardScenarios() map[string]Options {
	gapped := DefaultOptions(100, 400)
	gapped.Gaps = []field.Gap{
		{Center: geom.Point{X: 150, Y: 80}, Radius: 120},
		{Center: geom.Point{X: -180, Y: -120}, Radius: 90},
	}
	poisson := DefaultOptions(100, 350)
	poisson.GridSpacing = 0
	poisson.Lambda = 0.012
	poisson.Seed = 11
	obstacle := DefaultOptions(100, 380)
	obstacle.Obstacles = []field.Obstacle{
		// An L-shaped wall off-center: non-convex occlusion with nodes
		// on every side of it.
		{{X: 40, Y: -160}, {X: 110, Y: -160}, {X: 110, Y: 60}, {X: -120, Y: 60},
			{X: -120, Y: 130}, {X: 40, Y: 130}},
	}
	return map[string]Options{
		"grid_small": DefaultOptions(100, 300),
		"grid_dense": DefaultOptions(60, 420),
		"gapped":     gapped,
		"poisson":    poisson,
		"obstacle":   obstacle,
	}
}

// configureState captures everything the sharded executor promises to
// reproduce byte-for-byte: the encoded snapshot, the virtual time, the
// medium's traffic counters, the protocol metrics, and the invariant
// checker's verdict on the result.
type configureState struct {
	snapshot []byte
	elapsed  float64
	stats    string
	metrics  string
	checked  string
}

func captureConfigure(t *testing.T, opt Options, workers int) configureState {
	t.Helper()
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed float64
	if workers == 0 {
		elapsed, err = s.Configure()
	} else {
		elapsed, err = s.ConfigureSharded(workers)
	}
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Net.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return configureState{
		snapshot: raw,
		elapsed:  elapsed,
		stats:    fmt.Sprintf("%+v", s.Net.Medium().Stats()),
		metrics:  fmt.Sprintf("%+v", s.Net.Metrics()),
		checked:  fmt.Sprintf("%v", check.Invariant(snap, check.Static).Violations),
	}
}

func diffStates(t *testing.T, name string, serial, sharded configureState) {
	t.Helper()
	if string(serial.snapshot) != string(sharded.snapshot) {
		t.Errorf("%s: snapshot bytes differ (serial %d bytes, sharded %d bytes)",
			name, len(serial.snapshot), len(sharded.snapshot))
	}
	if serial.elapsed != sharded.elapsed {
		t.Errorf("%s: elapsed %v != %v", name, sharded.elapsed, serial.elapsed)
	}
	if serial.stats != sharded.stats {
		t.Errorf("%s: stats\nserial  %s\nsharded %s", name, serial.stats, sharded.stats)
	}
	if serial.metrics != sharded.metrics {
		t.Errorf("%s: metrics\nserial  %s\nsharded %s", name, serial.metrics, sharded.metrics)
	}
	if serial.checked != sharded.checked {
		t.Errorf("%s: invariant output\nserial  %s\nsharded %s", name, serial.checked, sharded.checked)
	}
}

// TestConfigureShardedMatchesSerial is the sharded-configure
// determinism contract: for every scenario and every worker count, the
// wave-parallel executor produces byte-identical snapshots, identical
// stats/metrics/virtual time, and the identical invariant verdict to
// the serial diffusing computation.
func TestConfigureShardedMatchesSerial(t *testing.T) {
	for name, opt := range shardScenarios() {
		serial := captureConfigure(t, opt, 0)
		for _, workers := range []int{1, 2, 8} {
			sharded := captureConfigure(t, opt, workers)
			diffStates(t, fmt.Sprintf("%s/workers=%d", name, workers), serial, sharded)
		}
	}
}

// TestConfigureShardedEpochParity pins the subtler half of the
// contract: the sharded merge replays topology touches in serial event
// order, so the medium's epoch counter — which downstream quiescent
// sweeps key their caches on — ends at exactly the serial value.
func TestConfigureShardedEpochParity(t *testing.T) {
	opt := DefaultOptions(100, 300)
	ser, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ser.Configure(); err != nil {
		t.Fatal(err)
	}
	shr, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shr.ConfigureSharded(8); err != nil {
		t.Fatal(err)
	}
	if a, b := ser.Net.Medium().Epoch(), shr.Net.Medium().Epoch(); a != b {
		t.Errorf("epoch counter: serial %d, sharded %d", a, b)
	}
}

// TestConfigureShardedFaultyFallsBack verifies the gate: with an
// active fault plan the executor must take the serial path (the wave
// model cannot reproduce per-delivery randomness), so the result still
// matches Configure exactly — including the consumed RNG stream.
func TestConfigureShardedFaultyFallsBack(t *testing.T) {
	opt := DefaultOptions(100, 300)
	opt.Faults = fault.Plan{Loss: 0.15, Dup: 0.05, Jitter: 0.2}
	serial := captureConfigure(t, opt, 0)
	sharded := captureConfigure(t, opt, 8)
	diffStates(t, "faulty-fallback", serial, sharded)
}

// TestConfigureShardedThenMaintain drives maintenance sweeps after a
// sharded configure and checks the static fixpoint is reached — the
// sharded result is a drop-in starting state for everything downstream.
func TestConfigureShardedThenMaintain(t *testing.T) {
	opt := DefaultOptions(100, 300)
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ConfigureSharded(4); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	if _, err := s.RunToFixpoint(check.Static, 30); err != nil {
		t.Fatalf("no fixpoint after sharded configure: %v", err)
	}
}

// TestConfigureSmoke50k is the large-scale race-condition smoke test
// behind `make configure-smoke`: a ~50k-node field configured with the
// sharded executor under the race detector. Gated behind an env var so
// the regular test run stays fast.
func TestConfigureSmoke50k(t *testing.T) {
	if os.Getenv("GS3_CONFIGURE_SMOKE") == "" {
		t.Skip("set GS3_CONFIGURE_SMOKE=1 to run the 50k-node sharded configure smoke")
	}
	opt := DefaultOptions(100, 2800)
	s, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Net.Medium().Count()
	if n < 50000 {
		t.Fatalf("deployment too small for the smoke: %d nodes", n)
	}
	if _, err := s.ConfigureSharded(8); err != nil {
		t.Fatal(err)
	}
	snap := s.Net.Snapshot()
	heads, bootup := 0, 0
	for _, v := range snap.Nodes {
		switch {
		case v.IsHead():
			heads++
		case v.Status == core.StatusBootup:
			bootup++
		}
	}
	t.Logf("%d nodes, %d heads, %d bootup", n, heads, bootup)
	if heads == 0 || bootup > n/10 {
		t.Errorf("structure did not form: %d heads, %d bootup of %d", heads, bootup, n)
	}
}
