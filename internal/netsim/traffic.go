package netsim

import (
	"gs3/internal/geom"
	"gs3/internal/radio"
	"gs3/internal/rng"
	"gs3/internal/traffic"
)

// ServeTraffic builds a data plane over the sim's network, feeding the
// load generator from a stream forked off the trial RNG. The fork
// happens here, after deployment/network/fault forks, so enabling
// traffic never changes the draw order of anything built before it.
// Call Run (or Start and drive the engine yourself) on the returned
// plane; the usual pattern is Configure → StartMaintenance →
// ServeTraffic(...).Run(), optionally with StartChurn for healing
// under load.
func (s *Sim) ServeTraffic(cfg traffic.Config) (*traffic.Plane, error) {
	return traffic.New(s.Net, cfg, s.Src.Fork())
}

// churn drives random membership turnover while traffic flows.
type churn struct {
	s      *Sim
	src    *rng.Source
	period float64
	left   int
}

// StartChurn schedules events random membership events, one every
// period of virtual time: each event kills one uniformly random alive
// small node and joins one fresh node at a uniform position in the
// deployment disk, keeping the population roughly constant. The events
// draw from their own forked stream, so churn composes with traffic
// and faults without perturbing either. Returns immediately; the
// events run on the engine.
func (s *Sim) StartChurn(period float64, events int) {
	if events <= 0 || period <= 0 {
		return
	}
	c := &churn{s: s, src: s.Src.Fork(), period: period, left: events}
	s.Net.Engine().After(period, "churn", c.fire)
}

// fire executes one kill+join event and reschedules itself until the
// event budget is spent.
func (c *churn) fire() {
	if c.left <= 0 {
		return
	}
	c.left--
	if id := c.pickVictim(); id != radio.None {
		c.s.Net.Kill(id)
	}
	x, y := c.src.InDisk(c.s.Opt.RegionRadius)
	c.s.Net.Join(geom.Point{X: x, Y: y})
	if c.left > 0 {
		c.s.Net.Engine().After(c.period, "churn", c.fire)
	}
}

// pickVictim draws a uniformly random alive small node, or radio.None
// if the bounded rejection sampling finds none.
func (c *churn) pickVictim() radio.NodeID {
	ids := c.s.Net.SortedIDs()
	if len(ids) == 0 {
		return radio.None
	}
	for tries := 0; tries < 64; tries++ {
		id := ids[c.src.Intn(len(ids))]
		if id != c.s.Net.BigID() && c.s.Net.Alive(id) {
			return id
		}
	}
	return radio.None
}
