// Package field generates node deployments for GS³ experiments.
//
// The paper's node-distribution model (§2.1, §4.3.4) is a planar Poisson
// process: nodes are uniformly distributed with density λ, defined as
// the average number of nodes within any circular area of radius 1
// (note: the paper folds the π factor into λ, and so does this package —
// the count in a disk of radius r is Poisson with mean λ·r²).
package field

import (
	"fmt"
	"math"

	"gs3/internal/geom"
	"gs3/internal/rng"
)

// Deployment is a set of node positions plus the designated big-node
// position. Index 0 of Positions is always the big node.
type Deployment struct {
	Positions []geom.Point
	// Region radius used to generate the deployment (0 for rectangles).
	Radius float64
}

// Big returns the big node's position.
func (d Deployment) Big() geom.Point {
	return d.Positions[0]
}

// N returns the number of nodes, including the big node.
func (d Deployment) N() int {
	return len(d.Positions)
}

// Config describes a deployment to generate.
type Config struct {
	// Radius of the circular deployment region, centered on the big node.
	Radius float64
	// Lambda is the density: average node count in a unit-radius disk
	// (paper convention: count in radius-r disk ~ Poisson(λ·r²)).
	Lambda float64
	// Gaps lists circular areas to clear of nodes after generation,
	// modeling R_t-gaps and other coverage holes.
	Gaps []Gap
	// MinNodes, if > 0, re-rejects deployments smaller than this by
	// topping up with uniform nodes. Useful to keep tests meaningful at
	// low densities.
	MinNodes int
}

// Gap is a circular hole in the deployment.
type Gap struct {
	Center geom.Point
	Radius float64
}

// Obstacle is a polygonal region that both clears deployed nodes and
// occludes radio: no node sits inside it, and links whose line of sight
// crosses it are dead (radio.Medium consults the same polygons). Unlike
// a Gap, an obstacle can be non-convex, so healing must route around
// arbitrary hole shapes rather than circular ones.
type Obstacle = geom.Polygon

// Poisson generates a Poisson deployment in a disk of cfg.Radius around
// the origin, with the big node at the exact center. It returns an error
// for non-positive radius or density.
func Poisson(cfg Config, src *rng.Source) (Deployment, error) {
	if cfg.Radius <= 0 {
		return Deployment{}, fmt.Errorf("field: non-positive radius %v", cfg.Radius)
	}
	if cfg.Lambda <= 0 {
		return Deployment{}, fmt.Errorf("field: non-positive density %v", cfg.Lambda)
	}
	// Mean count in a radius-r disk is λ·r² under the paper's convention.
	mean := cfg.Lambda * cfg.Radius * cfg.Radius
	n := src.Poisson(mean)
	if n < cfg.MinNodes {
		n = cfg.MinNodes
	}
	pts := make([]geom.Point, 0, n+1)
	pts = append(pts, geom.Point{}) // big node at the center
	for i := 0; i < n; i++ {
		x, y := src.InDisk(cfg.Radius)
		p := geom.Point{X: x, Y: y}
		if inGap(p, cfg.Gaps) {
			continue
		}
		pts = append(pts, p)
	}
	return Deployment{Positions: pts, Radius: cfg.Radius}, nil
}

func inGap(p geom.Point, gaps []Gap) bool {
	for _, g := range gaps {
		if p.Dist(g.Center) < g.Radius {
			return true
		}
	}
	return false
}

// Grid generates a deterministic deployment with nodes on a triangular
// grid of the given spacing covering a disk of the given radius, plus
// the big node at the center. Jitter (a fraction of spacing, 0 to
// disable) perturbs each node deterministically from src. Triangular
// grids are the densest regular packing and give every R_t-disk a node
// when spacing ≤ R_t, which makes them ideal for exact-structure tests.
func Grid(radius, spacing, jitter float64, src *rng.Source) (Deployment, error) {
	if radius <= 0 || spacing <= 0 {
		return Deployment{}, fmt.Errorf("field: invalid grid radius=%v spacing=%v", radius, spacing)
	}
	pts := []geom.Point{{}}
	rowH := spacing * math.Sqrt(3) / 2
	maxRow := int(radius/rowH) + 1
	maxCol := int(radius/spacing) + 1
	for row := -maxRow; row <= maxRow; row++ {
		offset := 0.0
		if row%2 != 0 {
			offset = spacing / 2
		}
		for col := -maxCol; col <= maxCol; col++ {
			p := geom.Point{X: float64(col)*spacing + offset, Y: float64(row) * rowH}
			if p.X == 0 && p.Y == 0 {
				continue // big node already occupies the center
			}
			if jitter > 0 && src != nil {
				p.X += src.Range(-jitter, jitter) * spacing
				p.Y += src.Range(-jitter, jitter) * spacing
			}
			if p.Dist(geom.Point{}) <= radius {
				pts = append(pts, p)
			}
		}
	}
	return Deployment{Positions: pts, Radius: radius}, nil
}

// WithGaps returns a copy of d with nodes inside any gap removed. The
// big node (index 0) is never removed.
func WithGaps(d Deployment, gaps []Gap) Deployment {
	out := Deployment{Positions: make([]geom.Point, 0, len(d.Positions)), Radius: d.Radius}
	out.Positions = append(out.Positions, d.Positions[0])
	for _, p := range d.Positions[1:] {
		if !inGap(p, gaps) {
			out.Positions = append(out.Positions, p)
		}
	}
	return out
}

// WithObstacles returns a copy of d with nodes inside any obstacle
// polygon removed. The big node (index 0) is never removed, mirroring
// WithGaps: the big node anchors the structure and experiments place
// obstacles away from it.
func WithObstacles(d Deployment, obs []Obstacle) Deployment {
	out := Deployment{Positions: make([]geom.Point, 0, len(d.Positions)), Radius: d.Radius}
	out.Positions = append(out.Positions, d.Positions[0])
	for _, p := range d.Positions[1:] {
		if !inObstacle(p, obs) {
			out.Positions = append(out.Positions, p)
		}
	}
	return out
}

func inObstacle(p geom.Point, obs []Obstacle) bool {
	for _, o := range obs {
		if o.Contains(p) {
			return true
		}
	}
	return false
}

// HasRtGap reports whether some disk of radius rt centered at one of the
// probe points contains no node. It is the empirical R_t-gap detector
// used by the Figure 7/8 experiments: probes are typically the ideal
// cell centers.
func HasRtGap(d Deployment, probe geom.Point, rt float64) bool {
	for _, p := range d.Positions {
		if p.Dist(probe) <= rt {
			return false
		}
	}
	return true
}
