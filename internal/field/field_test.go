package field

import (
	"math"
	"testing"

	"gs3/internal/geom"
	"gs3/internal/rng"
)

func TestPoissonCountMatchesDensity(t *testing.T) {
	src := rng.New(1)
	const radius, lambda = 50.0, 0.01
	mean := lambda * radius * radius // 25
	var total int
	const trials = 200
	for i := 0; i < trials; i++ {
		d, err := Poisson(Config{Radius: radius, Lambda: lambda}, src)
		if err != nil {
			t.Fatal(err)
		}
		total += d.N() - 1 // exclude big node
	}
	avg := float64(total) / trials
	if math.Abs(avg-mean) > 1.5 {
		t.Errorf("average count = %v, want ≈%v", avg, mean)
	}
}

func TestPoissonBigNodeAtCenter(t *testing.T) {
	d, err := Poisson(Config{Radius: 10, Lambda: 1}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Big() != (geom.Point{}) {
		t.Errorf("big node at %v", d.Big())
	}
}

func TestPoissonAllInsideRegion(t *testing.T) {
	d, err := Poisson(Config{Radius: 20, Lambda: 0.5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Positions {
		if p.Dist(geom.Point{}) > 20 {
			t.Errorf("node outside region: %v", p)
		}
	}
}

func TestPoissonErrors(t *testing.T) {
	if _, err := Poisson(Config{Radius: 0, Lambda: 1}, rng.New(1)); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := Poisson(Config{Radius: 1, Lambda: 0}, rng.New(1)); err == nil {
		t.Error("zero density accepted")
	}
}

func TestPoissonMinNodes(t *testing.T) {
	d, err := Poisson(Config{Radius: 1, Lambda: 0.001, MinNodes: 50}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() < 51 {
		t.Errorf("N = %d, want ≥ 51", d.N())
	}
}

func TestPoissonGapsRespected(t *testing.T) {
	gap := Gap{Center: geom.Point{X: 5, Y: 5}, Radius: 3}
	d, err := Poisson(Config{Radius: 20, Lambda: 2, Gaps: []Gap{gap}}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Positions[1:] {
		if p.Dist(gap.Center) < gap.Radius {
			t.Errorf("node %v inside gap", p)
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, _ := Poisson(Config{Radius: 10, Lambda: 1}, rng.New(42))
	b, _ := Poisson(Config{Radius: 10, Lambda: 1}, rng.New(42))
	if a.N() != b.N() {
		t.Fatalf("counts differ: %d vs %d", a.N(), b.N())
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

func TestGridDense(t *testing.T) {
	d, err := Grid(30, 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() < 500 {
		t.Errorf("grid too sparse: %d nodes", d.N())
	}
	// Every disk of radius 2 centered inside the region (margin for the
	// boundary) must contain a node.
	for _, probe := range []geom.Point{{X: 10, Y: 10}, {X: -15, Y: 3}, {X: 0, Y: -20}} {
		if HasRtGap(d, probe, 2) {
			t.Errorf("unexpected gap at %v", probe)
		}
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := Grid(0, 1, 0, nil); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := Grid(1, 0, 0, nil); err == nil {
		t.Error("zero spacing accepted")
	}
}

func TestGridJitterDeterministic(t *testing.T) {
	a, _ := Grid(10, 2, 0.2, rng.New(7))
	b, _ := Grid(10, 2, 0.2, rng.New(7))
	if a.N() != b.N() {
		t.Fatal("jittered grids differ in size")
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatal("jittered grids differ")
		}
	}
}

func TestWithGaps(t *testing.T) {
	d, _ := Grid(10, 1, 0, nil)
	gap := Gap{Center: geom.Point{X: 0, Y: 0}, Radius: 3}
	g := WithGaps(d, []Gap{gap})
	// Big node survives even inside the gap.
	if g.Big() != (geom.Point{}) {
		t.Error("big node removed by gap")
	}
	for _, p := range g.Positions[1:] {
		if p.Dist(gap.Center) < gap.Radius {
			t.Errorf("node %v inside gap", p)
		}
	}
	if g.N() >= d.N() {
		t.Error("gap removed nothing")
	}
}

func TestWithObstacles(t *testing.T) {
	d, _ := Grid(10, 1, 0, nil)
	// An L-shaped obstacle covering the center, where the big node sits.
	obs := Obstacle{
		{X: -3, Y: -3}, {X: 3, Y: -3}, {X: 3, Y: 0},
		{X: 0, Y: 0}, {X: 0, Y: 3}, {X: -3, Y: 3},
	}
	o := WithObstacles(d, []Obstacle{obs})
	// Big node survives even inside the obstacle.
	if o.Big() != (geom.Point{}) {
		t.Error("big node removed by obstacle")
	}
	for _, p := range o.Positions[1:] {
		if obs.Contains(p) {
			t.Errorf("node %v inside obstacle", p)
		}
	}
	if o.N() >= d.N() {
		t.Error("obstacle removed nothing")
	}
	// The notch quadrant (x,y ∈ (0,3)) is outside the L: its nodes stay.
	kept := false
	for _, p := range o.Positions[1:] {
		if p.X > 0 && p.X < 3 && p.Y > 0 && p.Y < 3 {
			kept = true
			break
		}
	}
	if !kept {
		t.Error("non-convex notch was cleared; Contains is too coarse")
	}
	// Empty obstacle list is the identity (big node included).
	id := WithObstacles(d, nil)
	if id.N() != d.N() {
		t.Errorf("nil obstacles changed size: %d vs %d", id.N(), d.N())
	}
}

func TestHasRtGap(t *testing.T) {
	d := Deployment{Positions: []geom.Point{{}, {X: 10, Y: 0}}}
	if HasRtGap(d, geom.Point{X: 10, Y: 0}, 1) {
		t.Error("gap reported at an occupied probe")
	}
	if !HasRtGap(d, geom.Point{X: 5, Y: 5}, 1) {
		t.Error("no gap reported at an empty probe")
	}
}
