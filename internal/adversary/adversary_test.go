package adversary

import (
	"testing"

	"gs3/internal/netsim"
)

// smallScenario is the cheapest structure worth attacking: a 250-radius
// grid with R=100 (a few dozen cells), warmup 2, one-cell blasts.
func smallScenario() Scenario {
	return Scenario{
		Name:   "grid-250",
		Opt:    netsim.DefaultOptions(100, 250),
		Warmup: 2,
	}
}

func TestCandidatesDeterministic(t *testing.T) {
	a, err := Candidates(smallScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Candidates(smallScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no candidates")
	}
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Both strike phases must appear, and every heuristic label that
	// appears must be one of the documented four.
	labels := map[string]bool{}
	delays := map[int]bool{}
	for _, c := range a {
		labels[c.Label] = true
		delays[c.Delay] = true
	}
	for l := range labels {
		switch l {
		case "root-adjacent", "max-children", "articulation", "farthest":
		default:
			t.Errorf("unknown heuristic label %q", l)
		}
	}
	if len(delays) < 2 {
		t.Errorf("only one strike phase generated: %v", delays)
	}
}

func TestReplayDeterministic(t *testing.T) {
	sc := smallScenario()
	cands, err := Candidates(sc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Replay(sc, cands[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(sc, cands[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("replay diverged:\n  a=%+v\n  b=%+v", a, b)
	}
	if a.Killed == 0 {
		t.Error("strike on a head killed nothing")
	}
	if a.Quality < 0 || a.Quality > 1 {
		t.Errorf("quality %v outside [0, 1]", a.Quality)
	}
}

func TestGreedyAtLeastRandom(t *testing.T) {
	sc := smallScenario()
	bestOut, all, err := Greedy(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("greedy evaluated nothing")
	}
	best := bestOut.Score(sc)
	// The winner really is the argmax of the evaluated set.
	for i, o := range all {
		if o.Score(sc) > best {
			t.Fatalf("outcome %d scores %v > committed %v", i, o.Score(sc), best)
		}
	}
	// And therefore beats (or ties) any random draw from the same set.
	for seed := uint64(1); seed <= 5; seed++ {
		r, err := Random(sc, seed)
		if err != nil {
			t.Fatal(err)
		}
		if r.Score(sc) > best {
			t.Fatalf("random seed %d scores %v > greedy %v", seed, r.Score(sc), best)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	sc := smallScenario()
	a, _, err := Greedy(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Greedy(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("greedy diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

func TestScoreRanksNonConvergenceWorst(t *testing.T) {
	sc := smallScenario().normalized()
	healed := Outcome{Report: netsim.ChaosReport{Converged: true, HealTime: 10}}
	stuck := Outcome{Report: netsim.ChaosReport{Converged: false}}
	if stuck.Score(sc) <= healed.Score(sc) {
		t.Errorf("non-converged %v must outrank healed %v",
			stuck.Score(sc), healed.Score(sc))
	}
}
