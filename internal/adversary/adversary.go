// Package adversary implements a worst-case perturbation daemon for
// the GS³ maintenance protocol: a deterministic greedy search over
// candidate disasters (where to strike, and when relative to the sweep
// schedule) that commits the perturbation maximizing the protocol's
// healing effort. Comparing the greedy daemon against a random daemon
// drawn from the SAME candidate set turns "self-healing works on
// random failures" into the stronger claim "self-healing works on the
// worst failure this daemon can find".
//
// The daemon never touches a live simulation: every candidate is
// evaluated by replaying a fresh, fully forked simulation of the
// scenario (build → configure → warmup sweeps → strike → chaos
// watchdog), so evaluation is embarrassingly parallel-safe and
// byte-reproducible. Greedy runs one round of argmax over the
// candidate set; because Random samples uniformly from that same set,
// the greedy healing effort is ≥ the random daemon's on every scenario
// by construction.
package adversary

import (
	"fmt"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/radio"
	"gs3/internal/rng"
)

// Scenario fixes everything about a run except the perturbation: the
// deployment and protocol options, the maintenance variant, how long
// the structure runs quietly before the strike window opens, the blast
// radius every candidate strike uses, and the chaos-watchdog streak
// and sweep budget that define "healed".
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Opt is the full netsim build recipe (deployment, radio, faults).
	Opt netsim.Options
	// Variant is the maintenance variant under attack (default GS³-D).
	Variant core.Variant
	// Warmup is how many quiet sweeps run before the strike window.
	Warmup int
	// Radius is the blast radius of every candidate strike; when zero
	// it defaults to the cell radius R (one cell's worth of damage).
	Radius float64
	// Streak and Budget parameterize the chaos watchdog: the fixpoint
	// must hold Streak consecutive sweep boundaries within Budget
	// sweeps. Zero values default to 3 and 60.
	Streak, Budget int
}

// normalized fills in the scenario's documented defaults.
func (sc Scenario) normalized() Scenario {
	if sc.Variant == 0 {
		sc.Variant = core.VariantD
	}
	if sc.Radius <= 0 {
		sc.Radius = sc.Opt.Config.R
	}
	if sc.Streak < 1 {
		sc.Streak = 3
	}
	if sc.Budget <= 0 {
		sc.Budget = 60
	}
	return sc
}

// Action is one candidate perturbation: a disaster disk dropped at
// Center (with the scenario's blast radius) after Delay extra sweeps
// beyond the warmup. Delay is the timing dimension of the search — it
// shifts the strike's phase relative to the periodic boundary-rescan
// batches, so the daemon can hit just after the structure finished
// rescanning (the slowest moment to notice damage).
type Action struct {
	// Label names the heuristic that proposed the strike.
	Label string
	// Center is where the disaster disk lands.
	Center geom.Point
	// Delay is extra sweeps past the warmup before the strike.
	Delay int
}

// Outcome is the replayed consequence of one Action on one Scenario.
type Outcome struct {
	// Action is the perturbation that was applied.
	Action Action
	// Killed is how many nodes the strike destroyed.
	Killed int
	// Report is the chaos watchdog's verdict on the healing run.
	Report netsim.ChaosReport
	// Quality is the fraction of surviving small nodes holding a
	// consistent role at the end of the run (head role, or associate
	// attached to a live head-role node): a structure-quality score in
	// [0, 1] that stays meaningful even when the run never converges.
	Quality float64
}

// Score ranks outcomes by how badly the perturbation hurt: converged
// runs score their healing time, non-converged runs score the full
// sweep budget (they exhausted it without healing), so a perturbation
// that prevents convergence always outranks one that merely slows it.
func (o Outcome) Score(sc Scenario) float64 {
	sc = sc.normalized()
	if !o.Report.Converged {
		return float64(sc.Budget) * sc.Opt.Config.HeartbeatInterval
	}
	return o.Report.HealTime
}

// Candidates proposes the deterministic strike set for a scenario: it
// builds and configures one probe simulation, inspects the resulting
// structure, and targets the heads a worst-case adversary would pick —
// the root-adjacent head (closest to the big node's tree), the head
// with the most children (widest subtree severed), an articulation
// head whose removal disconnects the head graph, and the farthest head
// (longest repair path) — each at two strike phases relative to the
// boundary-rescan period. Duplicate targets keep their first label, so
// the set stays lean while remaining identical across calls.
func Candidates(sc Scenario) ([]Action, error) {
	sc = sc.normalized()
	s, err := netsim.Build(sc.Opt)
	if err != nil {
		return nil, fmt.Errorf("adversary: probe build: %w", err)
	}
	if _, err := s.Configure(); err != nil {
		return nil, fmt.Errorf("adversary: probe configure: %w", err)
	}
	snap := s.Net.Snapshot()
	heads := snap.Heads()

	type pick struct {
		label string
		id    radio.NodeID
	}
	var picks []pick
	add := func(label string, id radio.NodeID) {
		if id == radio.None {
			return
		}
		picks = append(picks, pick{label, id})
	}
	add("root-adjacent", rootAdjacentHead(snap, heads))
	add("max-children", maxChildrenHead(heads))
	add("articulation", articulationHead(snap, heads))
	add("farthest", farthestHead(heads))

	// Strike phases: immediately, and just after a boundary-rescan
	// batch has fired (the structure's slowest moment to re-notice).
	phases := []int{0, sc.Opt.Config.BoundaryRescanEvery - 1}
	if phases[1] <= 0 {
		phases = phases[:1]
	}

	var out []Action
	seen := make(map[radio.NodeID]bool)
	for _, p := range picks {
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		v, ok := snap.View(p.id)
		if !ok {
			continue
		}
		for _, d := range phases {
			out = append(out, Action{Label: p.label, Center: v.Pos, Delay: d})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("adversary: scenario %q configured no small heads to target", sc.Name)
	}
	return out, nil
}

// rootAdjacentHead returns the lowest-ID small head whose parent is
// the big node itself.
func rootAdjacentHead(snap core.Snapshot, heads []core.NodeView) radio.NodeID {
	for _, h := range heads {
		if !h.IsBig && h.Parent == snap.BigID {
			return h.ID
		}
	}
	return radio.None
}

// maxChildrenHead returns the small head with the most children
// (lowest ID on ties).
func maxChildrenHead(heads []core.NodeView) radio.NodeID {
	best, bestN := radio.None, -1
	for _, h := range heads {
		if h.IsBig {
			continue
		}
		if n := len(h.Children); n > bestN {
			best, bestN = h.ID, n
		}
	}
	return best
}

// farthestHead returns the small head with the most tree hops from the
// big node (lowest ID on ties).
func farthestHead(heads []core.NodeView) radio.NodeID {
	best, bestHops := radio.None, -1
	for _, h := range heads {
		if h.IsBig {
			continue
		}
		if h.Hops > bestHops {
			best, bestHops = h.ID, h.Hops
		}
	}
	return best
}

// articulationHead returns the lowest-ID small head whose removal
// disconnects the head graph (heads as vertices, mutual neighbor
// links as edges) from the big node, or None when the graph is
// 2-connected around every head.
func articulationHead(snap core.Snapshot, heads []core.NodeView) radio.NodeID {
	adj := make(map[radio.NodeID][]radio.NodeID, len(heads))
	isHead := make(map[radio.NodeID]bool, len(heads))
	for _, h := range heads {
		isHead[h.ID] = true
	}
	for _, h := range heads {
		for _, n := range h.Neighbors {
			if isHead[n] {
				adj[h.ID] = append(adj[h.ID], n)
			}
		}
	}
	reach := func(skip radio.NodeID) int {
		seen := map[radio.NodeID]bool{snap.BigID: true}
		queue := []radio.NodeID{snap.BigID}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, n := range adj[v] {
				if n == skip || seen[n] {
					continue
				}
				seen[n] = true
				queue = append(queue, n)
			}
		}
		return len(seen)
	}
	full := reach(radio.None)
	for _, h := range heads {
		if h.IsBig {
			continue
		}
		// Removing h must strand some OTHER head, not merely h itself.
		if reach(h.ID) < full-1 {
			return h.ID
		}
	}
	return radio.None
}

// Replay evaluates one action on a fresh fork of the scenario: build,
// configure, start maintenance, run the warmup plus the action's delay,
// strike, then run the chaos watchdog. Identical (Scenario, Action)
// pairs return identical Outcomes.
func Replay(sc Scenario, a Action) (Outcome, error) {
	sc = sc.normalized()
	s, err := netsim.Build(sc.Opt)
	if err != nil {
		return Outcome{}, fmt.Errorf("adversary: replay build: %w", err)
	}
	if _, err := s.Configure(); err != nil {
		return Outcome{}, fmt.Errorf("adversary: replay configure: %w", err)
	}
	s.Net.StartMaintenance(sc.Variant)
	s.RunSweeps(sc.Warmup + a.Delay)
	killed := s.KillDisk(a.Center, sc.Radius)
	rep := s.RunChaos(check.Dynamic, sc.Streak, sc.Budget)
	return Outcome{
		Action:  a,
		Killed:  killed,
		Report:  rep,
		Quality: StructureQuality(s.Net.Snapshot()),
	}, nil
}

// StructureQuality scores a snapshot in [0, 1]: the fraction of live
// small nodes holding a consistent role — head role, or associate
// attached to a live head-role node. A perfect structure scores 1; a
// network of orphans scores 0. An empty network scores 1 (there is
// nothing left to be inconsistent).
func StructureQuality(snap core.Snapshot) float64 {
	role := make(map[radio.NodeID]bool, len(snap.Nodes))
	for _, v := range snap.Nodes {
		if v.IsHead() {
			role[v.ID] = true
		}
	}
	total, good := 0, 0
	for _, v := range snap.Nodes {
		if v.IsBig {
			continue
		}
		total++
		if v.IsHead() || (v.Head != radio.None && role[v.Head]) {
			good++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(good) / float64(total)
}

// Greedy runs the worst-case daemon: it replays every candidate and
// commits the argmax by Score (non-converged first, then longest
// healing time; earliest candidate wins ties, so the result is
// deterministic). It returns the winning outcome and every evaluated
// outcome in candidate order.
func Greedy(sc Scenario) (Outcome, []Outcome, error) {
	sc = sc.normalized()
	cands, err := Candidates(sc)
	if err != nil {
		return Outcome{}, nil, err
	}
	outcomes := make([]Outcome, len(cands))
	best := -1
	for i, a := range cands {
		o, err := Replay(sc, a)
		if err != nil {
			return Outcome{}, nil, err
		}
		outcomes[i] = o
		if best < 0 || o.Score(sc) > outcomes[best].Score(sc) {
			best = i
		}
	}
	return outcomes[best], outcomes, nil
}

// Random runs the baseline daemon: it draws one candidate uniformly
// from the SAME set Greedy searches (via a forked deterministic
// stream seeded with seed) and replays it. Because Greedy maximizes
// over this set, Greedy's score is ≥ Random's on every scenario.
func Random(sc Scenario, seed uint64) (Outcome, error) {
	sc = sc.normalized()
	cands, err := Candidates(sc)
	if err != nil {
		return Outcome{}, err
	}
	src := rng.New(seed)
	return Replay(sc, cands[src.Intn(len(cands))])
}
