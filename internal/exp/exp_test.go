package exp

import (
	"math"
	"strings"
	"testing"

	"gs3/internal/runner"
)

func TestTableFormat(t *testing.T) {
	tb := Table{
		ID:      "X1",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]float64{{1, 2}, {3, 4}},
		Notes:   []string{"note"},
	}
	s := tb.Format()
	for _, want := range []string{"[X1]", "demo", "a\tb", "1\t2", "# note"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
	col := tb.Column(1)
	if len(col) != 2 || col[0] != 2 || col[1] != 4 {
		t.Errorf("Column(1) = %v", col)
	}
}

func TestFigure7ShapeMatchesPaper(t *testing.T) {
	ratios := []float64{0.001, 0.005, 0.01, 0.02, 0.03}
	tb := Figure7(10, 100, ratios, 20000, 42)
	if len(tb.Rows) != len(ratios) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	prevA, prevE := 2.0, 2.0
	for _, row := range tb.Rows {
		q, a, e := row[0], row[1], row[2]
		// Both columns decrease in Rt/R.
		if a > prevA+1e-12 {
			t.Errorf("analytic not decreasing at %v", q)
		}
		if e > prevE+0.02 {
			t.Errorf("empirical not decreasing at %v", q)
		}
		prevA, prevE = a, e
		// Empirical tracks analytic.
		if math.Abs(a-e) > 0.02 {
			t.Errorf("at Rt/R=%v analytic %v vs empirical %v", q, a, e)
		}
	}
	// Paper claim: ≈0 at Rt/R ≥ 0.02.
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] > 1e-10 || last[2] > 1e-3 {
		t.Errorf("tail not ≈0: %v", last)
	}
}

func TestFigure8ShapeMatchesPaper(t *testing.T) {
	ratios := []float64{0.002, 0.005, 0.01, 0.02}
	tb := Figure8(10, 100, ratios, 30000, 43)
	for i, row := range tb.Rows {
		a, e := row[1], row[2]
		if a < 0 || e < 0 {
			t.Fatalf("negative diameter at row %d", i)
		}
		// Empirical tracks the analytic formula within sampling noise.
		tol := 0.15*a + 1.0
		if math.Abs(a-e) > tol {
			t.Errorf("Rt/R=%v: analytic %v vs empirical %v", row[0], a, e)
		}
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] > 1e-9 {
		t.Errorf("analytic tail = %v", last[1])
	}
}

func TestPerNodeStateConstant(t *testing.T) {
	tb, err := PerNodeState(runner.Parallel(2), 100, []float64{300, 500}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	small, large := tb.Rows[0], tb.Rows[1]
	if large[0] <= small[0] {
		t.Fatalf("network did not grow: %v vs %v", small[0], large[0])
	}
	// The per-node state bound is constant: parent + ≤5 children + ≤6
	// neighbors = 12 identities for small heads; the big node reaches
	// 13 (6 children + 6 neighbors + its self-parent).
	for _, row := range tb.Rows {
		if row[2] > 13 {
			t.Errorf("head stores %v identities (n=%v)", row[2], row[0])
		}
		if row[3] != 1 {
			t.Errorf("associate stores %v identities", row[3])
		}
	}
	// And it does not grow with n.
	if large[2] > small[2]+2 {
		t.Errorf("max IDs grew with n: %v -> %v", small[2], large[2])
	}
}

func TestStaticConvergenceLinear(t *testing.T) {
	tb, fit, err := StaticConvergence(runner.Parallel(2), 100, []float64{300, 450, 600}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if fit.Slope <= 0 {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %v: configure time not linear in Db", fit.R2)
	}
}

func TestMessageLocalityConstantPerNode(t *testing.T) {
	tb, err := MessageLocality(runner.Parallel(2), 100, []float64{300, 500}, 7)
	if err != nil {
		t.Fatal(err)
	}
	small, large := tb.Rows[0], tb.Rows[1]
	// Per-node traffic must not grow with network size (allow 50%
	// boundary-effect slack).
	if large[1] > small[1]*1.5+0.5 {
		t.Errorf("broadcasts per node grew: %v -> %v", small[1], large[1])
	}
	if large[2] > small[2]*1.5+1 {
		t.Errorf("replies per node grew: %v -> %v", small[2], large[2])
	}
}

func TestPerturbationConvergenceLinearish(t *testing.T) {
	if testing.Short() {
		t.Skip("slow scaling experiment")
	}
	tb, fit, err := PerturbationConvergence(runner.Parallel(2), 100, 700, []float64{170, 400, 600}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Healing time grows with Dp (positive slope); strict linearity is
	// noisy at three points, so just require monotone growth overall.
	if fit.Slope <= 0 {
		t.Errorf("healing time does not grow with Dp: slope %v", fit.Slope)
	}
	first, last := tb.Rows[0][1], tb.Rows[len(tb.Rows)-1][1]
	if last < first {
		t.Errorf("healing time decreased: %v -> %v", first, last)
	}
}

func TestArbitraryStateConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow scaling experiment")
	}
	tb, err := ArbitraryStateConvergence(runner.Parallel(2), 100, 500, []float64{150, 300}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[2] == 0 {
			t.Errorf("Dc=%v corrupted nothing", row[0])
		}
		if row[1] < 0 {
			t.Errorf("negative stabilize time")
		}
	}
}

func TestStructureLifetimeFactorGrowsWithNc(t *testing.T) {
	if testing.Short() {
		t.Skip("slow lifetime experiment")
	}
	tb, err := StructureLifetime(runner.Parallel(2), 100, 260, []float64{30, 18}, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	sparse, dense := tb.Rows[0], tb.Rows[1]
	if dense[0] <= sparse[0] {
		t.Fatalf("nc did not grow: %v vs %v", sparse[0], dense[0])
	}
	// Healing must beat the static baseline by a growing factor.
	if sparse[3] < 1.5 {
		t.Errorf("sparse factor = %v, want > 1.5", sparse[3])
	}
	if dense[3] <= sparse[3] {
		t.Errorf("factor did not grow with nc: %v -> %v", sparse[3], dense[3])
	}
}

func TestSlideConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("slow slide experiment")
	}
	tb, err := SlideConsistency(100, 300, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	before, after := tb.Rows[0], tb.Rows[1]
	if after[4] == 0 {
		t.Fatal("structure died entirely")
	}
	// After the slide the mean neighbor distance stays within the DI
	// band around √3R (same-shift cells stay at √3R exactly; mixed
	// shifts may deviate up to the relaxed bound).
	spacing := 100 * math.Sqrt(3)
	if math.Abs(after[1]-spacing) > spacing/2 {
		t.Errorf("mean neighbor distance after slide = %v, ideal %v", after[1], spacing)
	}
	_ = before
}

func TestHealingLocalityVsSize(t *testing.T) {
	if testing.Short() {
		t.Skip("slow locality experiment")
	}
	tb, err := HealingLocalityVsSize(runner.Parallel(2), 100, []float64{400, 600}, 7)
	if err != nil {
		t.Fatal(err)
	}
	small, large := tb.Rows[0], tb.Rows[1]
	if large[0] <= small[0] {
		t.Fatal("network did not grow")
	}
	// Impact radius must not grow with network size.
	if large[1] > small[1]*2+200 {
		t.Errorf("impact radius grew with n: %v -> %v", small[1], large[1])
	}
}

func TestBigMoveLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("slow mobility experiment")
	}
	tb, err := BigMoveLocality(runner.Parallel(2), 100, 500, []float64{1.5, 2.5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		d, bound, p50 := row[0], row[1], row[2]
		if math.Abs(bound-math.Sqrt(3)*d/2) > 1e-9 {
			t.Errorf("bound mis-computed for d=%v", d)
		}
		// Median containment within bound + one search-radius slack; the
		// tail of sector-boundary tie flips is reported, not asserted.
		slack := 100*math.Sqrt(3) + 50 + 25
		if p50 > bound+slack {
			t.Errorf("d=%v: p50 radius %v beyond bound %v + slack", d, p50, bound)
		}
	}
}

func TestVsLEACH(t *testing.T) {
	if testing.Short() {
		t.Skip("slow comparison")
	}
	tb, err := VsLEACH(runner.Parallel(2), 100, []float64{300, 450}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		gs3Max, leachMax := row[1], row[2]
		// GS³ keeps radii within the proved band; LEACH does not.
		bound := 100 + 2*25/math.Sqrt(3) + 1 // CellRadiusBound for R=100,Rt=25
		if gs3Max > 100*math.Sqrt(3)+50+1 {  // boundary cells may reach √3R+2Rt
			t.Errorf("GS3 max radius %v beyond boundary bound", gs3Max)
		}
		if leachMax <= bound {
			t.Logf("note: LEACH happened to stay tight on this run: %v", leachMax)
		}
	}
	// Healing cost: LEACH cost grows with n, GS³'s does not.
	small, large := tb.Rows[0], tb.Rows[1]
	if large[4] <= small[4] {
		t.Errorf("LEACH heal cost did not grow with n: %v -> %v", small[4], large[4])
	}
	if large[3] > small[3]*3+200 {
		t.Errorf("GS3 heal cost grew with n: %v -> %v", small[3], large[3])
	}
}

func TestVsHopCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("slow comparison")
	}
	tb, err := VsHopCluster(100, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	gs3, hop := tb.Rows[0], tb.Rows[1]
	// GS³ has (near-)zero overlap by fixpoint F₃; hop clustering has
	// real overlap.
	if gs3[4] > 0.01 {
		t.Errorf("GS3 overlap = %v", gs3[4])
	}
	if hop[4] <= gs3[4] {
		t.Errorf("hop clustering overlap %v not worse than GS3 %v", hop[4], gs3[4])
	}
}

func TestGapResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("slow gap experiment")
	}
	tb, err := GapResilience(100, 400, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	joined, covered := row[2], row[3]
	if joined == 0 {
		t.Fatal("nothing joined")
	}
	if covered < joined*0.75 {
		t.Errorf("only %v of %v gap joiners covered", covered, joined)
	}
}

func TestFrequencyReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("slow comparison")
	}
	tb, err := FrequencyReuse(100, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	gs3, leach, hop := tb.Rows[0], tb.Rows[1], tb.Rows[2]
	if gs3[2] != 3 {
		t.Errorf("GS3 channels = %v, want 3", gs3[2])
	}
	if gs3[3] != 0 {
		t.Errorf("GS3 reuse-3 has %v conflicts", gs3[3])
	}
	if leach[2] < gs3[2] && hop[2] < gs3[2] {
		t.Errorf("both baselines beat reuse-3: leach=%v hop=%v", leach[2], hop[2])
	}
}
