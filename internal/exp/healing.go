package exp

import (
	"fmt"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/runner"
	"gs3/internal/stats"
)

// PerturbationConvergence reproduces Appendix 1 row 3: convergence time
// under perturbations is O(D_p), the diameter of the contiguous
// perturbed area, independent of total network size. For each diameter
// it clears a disk of the configured network, repopulates it with fresh
// bootup nodes, and measures the virtual time until the structure is
// stable again. Diameters run as independent trials on the pool.
func PerturbationConvergence(p runner.Pool, r, regionRadius float64, diameters []float64, seed uint64) (Table, stats.Fit, error) {
	t := Table{
		ID:      "T3",
		Title:   "Healing time vs perturbed-area diameter (O(Dp))",
		Columns: []string{"Dp", "healTime", "killed"},
	}
	rows, err := runner.Map(p, len(diameters), func(i int) ([]float64, error) {
		dp := diameters[i]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(2)

		center := geom.Point{X: regionRadius / 3, Y: regionRadius / 5}
		// Record the ILs of the cells the perturbation destroys: the
		// structure has healed when each is re-headed (every cleared
		// cell re-established), not merely when survivors re-attach.
		var lostILs []geom.Point
		for _, h := range s.Net.Snapshot().Heads() {
			if !h.IsBig && h.Pos.Dist(center) <= dp/2 {
				lostILs = append(lostILs, h.IL)
			}
		}
		killed := s.KillDisk(center, dp/2)
		s.RepopulateDisk(center, dp/2, opt.GridSpacing)

		start := s.Net.Engine().Now()
		reestablished := func() bool {
			if !s.StableQuick() {
				return false
			}
			heads := s.Net.Snapshot().Heads()
			for _, il := range lostILs {
				ok := false
				for _, h := range heads {
					if h.IL.Dist(il) <= opt.Config.Rt {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			return true
		}
		elapsed := -1.0
		for i := 0; i < 400; i++ {
			if reestablished() {
				elapsed = s.Net.Engine().Now() - start
				break
			}
			s.RunSweeps(1)
		}
		if elapsed < 0 {
			return nil, fmt.Errorf("Dp=%v: %w", dp, netsim.ErrNoConvergence)
		}
		return []float64{dp, elapsed, float64(killed)}, nil
	})
	if err != nil {
		return Table{}, stats.Fit{}, err
	}
	t.Rows = rows
	fit, err := stats.LinearFit(t.Column(0), t.Column(1))
	if err != nil {
		return Table{}, stats.Fit{}, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("linear fit: time = %.4g*Dp %+.4g (R2=%.4f)", fit.Slope, fit.Intercept, fit.R2))
	return t, fit, nil
}

// ArbitraryStateConvergence reproduces Appendix 1 row 5 / Theorem 7:
// starting from a state-corrupted region of diameter D_c, the network
// re-reaches its invariant in O(D_c). Head ILs inside the disk are
// displaced; the time to stability is measured. Diameters run as
// independent trials on the pool.
func ArbitraryStateConvergence(p runner.Pool, r, regionRadius float64, diameters []float64, seed uint64) (Table, error) {
	t := Table{
		ID:      "T5",
		Title:   "Stabilization time vs corrupted-area diameter (O(Dc))",
		Columns: []string{"Dc", "stabilizeTime", "corruptedHeads"},
	}
	rows, err := runner.Map(p, len(diameters), func(i int) ([]float64, error) {
		dc := diameters[i]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(2)

		center := geom.Point{X: -regionRadius / 4, Y: regionRadius / 4}
		n := s.CorruptDisk(center, dc/2, core.CorruptIL, 3*opt.Config.Rt)
		elapsed, err := s.RunUntilStable(600)
		if err != nil {
			return nil, fmt.Errorf("Dc=%v: %w", dc, err)
		}
		return []float64{dc, elapsed, float64(n)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// StructureLifetime reproduces Appendix 1 row 2: intra-/inter-cell
// maintenance lengthens the lifetime of the head-level structure by
// Ω(n_c), the number of nodes per cell. For each deployment density it
// measures the virtual time until the live head count first drops below
// half of the initial count, with healing on, and compares it with the
// no-healing baseline E/(f·rate) where the first-generation heads
// simply die in place. Densities run as independent trials on the pool.
func StructureLifetime(p runner.Pool, r, regionRadius float64, spacings []float64, energy float64, seed uint64) (Table, error) {
	t := Table{
		ID:      "T2",
		Title:   "Structure lifetime: healing vs static heads (Omega(nc))",
		Columns: []string{"nc", "staticLifetime", "healedLifetime", "factor"},
		Notes: []string{
			"lifetime = time until live head count < 1/2 of initial",
			"static baseline: first-generation heads die at E/(f*rate) and nothing heals",
		},
	}
	rows, err := runner.Map(p, len(spacings), func(i int) ([]float64, error) {
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		opt.GridSpacing = spacings[i]
		// The paper's regime: serving as head dominates energy use
		// (most in-cell traffic terminates at the head), so rotating
		// the role spreads the cost over the whole cell.
		opt.Config.InitialEnergy = energy
		opt.Config.AssociateDissipation = energy / 400 // idle drain
		opt.Config.HeadEnergyFactor = 80               // head drain = energy/5 per sweep
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		nc := s.MeanCellSize()
		initialHeads := len(s.Net.Snapshot().Heads())
		staticLifetime := energy / (opt.Config.HeadEnergyFactor * opt.Config.AssociateDissipation)

		s.Net.StartMaintenance(core.VariantD)
		start := s.Net.Engine().Now()
		deadline := int(staticLifetime*(nc+20)) + 50
		var healed float64
		for i := 0; i < deadline; i++ {
			s.RunSweeps(1)
			if len(s.Net.Snapshot().Heads()) < initialHeads/2 {
				break
			}
			healed = s.Net.Engine().Now() - start
		}
		return []float64{nc, staticLifetime, healed, healed / staticLifetime}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// SlideConsistency reproduces §4.3.5.1 item 3: under uniform node
// death, independent cell shifts slide the head-level structure as a
// whole while keeping the relative locations of neighboring heads
// consistent. It drains energy until a large share of cells have
// shifted and reports the neighbor-head distance statistics before and
// after — Corollary 1's band should still hold (up to the DI
// relaxation). A single-scenario experiment: it runs one trial
// regardless of the pool.
func SlideConsistency(r, regionRadius, energy float64, seed uint64) (Table, error) {
	opt := netsim.DefaultOptions(r, regionRadius)
	opt.Seed = seed
	opt.Config.InitialEnergy = energy
	opt.Config.AssociateDissipation = 1
	opt.Config.HeadEnergyFactor = 5
	s, err := netsim.Build(opt)
	if err != nil {
		return Table{}, err
	}
	if _, err := s.Configure(); err != nil {
		return Table{}, err
	}
	before := neighborDistStats(s)
	s.Net.StartMaintenance(core.VariantD)

	// Run until a good share of cells have shifted at least once.
	for i := 0; i < 400 && s.Net.Metrics().CellShifts < uint64(len(s.Net.Snapshot().Heads())); i++ {
		s.RunSweeps(1)
	}
	after := neighborDistStats(s)
	t := Table{
		ID:      "S1",
		Title:   "Neighbor-head distances before/after structure slide",
		Columns: []string{"phase", "mean", "p90", "max", "heads"},
		Notes: []string{
			fmt.Sprintf("cell shifts performed: %d; head shifts: %d", s.Net.Metrics().CellShifts, s.Net.Metrics().HeadShifts),
			"phase 0 = before slide, 1 = after; Corollary 1 band sqrt(3)R +/- 2Rt",
		},
	}
	t.Rows = append(t.Rows, []float64{0, before.Mean, before.P90, before.Max, float64(before.N)})
	t.Rows = append(t.Rows, []float64{1, after.Mean, after.P90, after.Max, float64(after.N)})
	return t, nil
}

func neighborDistStats(s *netsim.Sim) stats.Summary {
	snap := s.Net.Snapshot()
	heads := snap.Heads()
	var dists []float64
	for i, a := range heads {
		for _, b := range heads[i+1:] {
			if d := a.Pos.Dist(b.Pos); d <= s.Opt.Config.NeighborDistMax()+1e-9 {
				dists = append(dists, d)
			}
		}
	}
	return stats.Summarize(dists)
}

// HealingLocalityVsSize shows the locality half of the B1 comparison
// from the GS³ side: the structural impact radius of healing one head
// death does not grow with network size. Radii run as independent
// trials on the pool.
func HealingLocalityVsSize(p runner.Pool, r float64, regionRadii []float64, seed uint64) (Table, error) {
	t := Table{
		ID:      "T3b",
		Title:   "Healing impact radius vs network size (locality)",
		Columns: []string{"n", "impactRadius", "changedHeads"},
	}
	rows, err := runner.Map(p, len(regionRadii), func(i int) ([]float64, error) {
		radius := regionRadii[i]
		opt := netsim.DefaultOptions(r, radius)
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(2)

		var victim core.NodeView
		for _, h := range s.Net.Snapshot().Heads() {
			if !h.IsBig && h.Pos.Dist(geom.Point{}) < radius/2 {
				victim = h
				break
			}
		}
		before := s.Net.Snapshot()
		s.Net.Kill(victim.ID)
		if _, err := s.RunUntilStable(60); err != nil {
			return nil, err
		}
		after := s.Net.Snapshot()
		impact := 0.0
		changed := netsim.StructureDiff(before, after)
		for _, id := range changed {
			if id == victim.ID {
				continue
			}
			if v, ok := after.View(id); ok {
				if d := v.Pos.Dist(victim.Pos); d > impact {
					impact = d
				}
			}
		}
		return []float64{float64(s.Net.Medium().Count()), impact, float64(len(changed))}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}
