package exp

import (
	"fmt"

	"gs3/internal/adversary"
	"gs3/internal/fault"
	"gs3/internal/field"
	"gs3/internal/netsim"
	"gs3/internal/runner"
)

// AdversaryScenarios returns the standard scenario matrix for the ADV
// experiment: a free-field grid, the same grid threaded through a
// polygonal obstacle, and a lossy-radio grid. All share cell radius r
// and deployment radius regionRadius so the daemons, not the field,
// are what varies.
func AdversaryScenarios(r, regionRadius float64) []adversary.Scenario {
	free := netsim.DefaultOptions(r, regionRadius)

	walled := netsim.DefaultOptions(r, regionRadius)
	walled.Obstacles = []field.Obstacle{{
		{X: r * 1.2, Y: -regionRadius / 2}, {X: r * 1.5, Y: -regionRadius / 2},
		{X: r * 1.5, Y: regionRadius / 3}, {X: r * 1.2, Y: regionRadius / 3},
	}}

	lossy := netsim.DefaultOptions(r, regionRadius)
	lossy.Faults = fault.Plan{Loss: 0.1}

	return []adversary.Scenario{
		{Name: "free-field", Opt: free, Warmup: 2},
		{Name: "obstacle", Opt: walled, Warmup: 2},
		{Name: "lossy-0.1", Opt: lossy, Warmup: 2},
	}
}

// AdversaryMatrix is the worst-case-vs-random experiment (ADV): for
// each scenario it runs the greedy adversarial daemon (argmax over the
// candidate strike set by replay) and the random daemon (uniform draws
// from the SAME candidate set, averaged over randomDraws seeds derived
// from seed), and reports healing effort side by side. Because the
// greedy daemon maximizes over the set the random daemon samples, its
// healing time is ≥ the random mean on every scenario — the table
// certifies the self-healing bound against the strongest perturbation
// the daemon can find, not just typical damage.
//
// Scenarios run as independent pool trials; rows are emitted in
// scenario order (random row, then greedy row), so the Table is
// byte-identical whatever the worker count.
func AdversaryMatrix(p runner.Pool, scenarios []adversary.Scenario, randomDraws int, seed uint64) (Table, error) {
	t := Table{
		ID:      "ADV",
		Title:   "Worst-case adversarial daemon vs random daemon",
		Columns: []string{"scenario", "daemon", "converged", "healTime", "healMsgs", "killed", "quality"},
		Notes: []string{
			"daemon: 0 = random (mean over draws), 1 = greedy adversarial (worst candidate)",
			"non-converged runs report healTime = full sweep budget",
		},
	}
	if randomDraws < 1 {
		randomDraws = 1
	}
	for i, sc := range scenarios {
		t.Notes = append(t.Notes, fmt.Sprintf("scenario %d: %s", i, sc.Name))
	}
	type result struct {
		random, greedy []float64
	}
	results, err := runner.Map(p, len(scenarios), func(i int) (result, error) {
		sc := scenarios[i]
		var convSum, timeSum, msgSum, killSum, qualSum float64
		for d := 0; d < randomDraws; d++ {
			o, err := adversary.Random(sc, runner.TrialSeed(seed, i*randomDraws+d))
			if err != nil {
				return result{}, err
			}
			if o.Report.Converged {
				convSum++
			}
			timeSum += o.Score(sc)
			msgSum += float64(o.Report.HealMessages)
			killSum += float64(o.Killed)
			qualSum += o.Quality
		}
		n := float64(randomDraws)
		random := []float64{float64(i), 0, convSum / n, timeSum / n, msgSum / n, killSum / n, qualSum / n}

		worst, _, err := adversary.Greedy(sc)
		if err != nil {
			return result{}, err
		}
		conv := 0.0
		if worst.Report.Converged {
			conv = 1
		}
		greedy := []float64{
			float64(i), 1, conv, worst.Score(sc),
			float64(worst.Report.HealMessages), float64(worst.Killed), worst.Quality,
		}
		return result{random, greedy}, nil
	})
	if err != nil {
		return Table{}, err
	}
	for _, res := range results {
		t.Rows = append(t.Rows, res.random, res.greedy)
	}
	return t, nil
}
