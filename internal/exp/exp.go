// Package exp regenerates every figure and table of the paper's
// evaluation on top of the simulator: Figures 7 and 8, the Appendix 1
// complexity/convergence table (one experiment per row), the Theorem 11
// containment bound, the structure-slide stability claim, and the
// Related-Work comparisons against LEACH and hop-bounded clustering.
//
// Each experiment returns a Table whose rows mirror what the paper
// reports, so `cmd/gs3bench` and the benchmarks print directly
// comparable series. EXPERIMENTS.md records paper-vs-measured for each.
//
// # Concurrency
//
// Every multi-row experiment takes a runner.Pool and executes its
// sweep points as independent trials — each trial builds its own
// engine, network, and RNG, and nothing is shared between trials.
// Rows are collected in sweep order, so the resulting Table (and its
// Format output) is byte-identical whatever the worker count; the pool
// changes only wall-clock time. Sweep trials deliberately reuse the
// caller's seed unchanged: a sweep is a controlled experiment in which
// the swept parameter must be the only thing that varies. Replicated
// trials of the *same* parameters (gs3sim -trials) instead derive
// per-trial seeds with runner.TrialSeed.
package exp

import (
	"fmt"
	"strings"
)

// Table is one reproduced figure or table.
type Table struct {
	ID      string // experiment id from DESIGN.md (e.g. "F7", "T3")
	Title   string
	Columns []string
	Rows    [][]float64
	Notes   []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# [%s] %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	fmt.Fprintf(&b, "%s\n", strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprintf("%.6g", v)
		}
		fmt.Fprintf(&b, "%s\n", strings.Join(cells, "\t"))
	}
	return b.String()
}

// Column returns column i of the table as a slice.
func (t Table) Column(i int) []float64 {
	out := make([]float64, len(t.Rows))
	for r, row := range t.Rows {
		out[r] = row[i]
	}
	return out
}
