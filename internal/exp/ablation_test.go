package exp

import (
	"testing"

	"gs3/internal/runner"
)

func TestRtSweepTightness(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	tb, err := RtSweep(runner.Parallel(2), 100, 350, []float64{0.15, 0.25, 0.4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		q, maxDev, spread := row[0], row[2], row[4]
		rt := q * 100
		// Corollary 2: head IL deviation bounded by Rt.
		if maxDev > rt+1e-9 {
			t.Errorf("Rt/R=%v: IL deviation %v > Rt %v", q, maxDev, rt)
		}
		// Corollary 1: neighbor-distance spread bounded by 4Rt.
		if spread > 4*rt+1e-9 {
			t.Errorf("Rt/R=%v: spread %v > 4Rt %v", q, spread, 4*rt)
		}
	}
	// Tighter tolerance ⇒ tighter structure.
	if tb.Rows[0][2] > tb.Rows[2][2] {
		t.Errorf("IL deviation did not grow with Rt: %v vs %v", tb.Rows[0][2], tb.Rows[2][2])
	}
}

func TestRescanPeriodAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	tb, err := RescanPeriodAblation(runner.Parallel(2), 100, 500, []int{2, 8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := tb.Rows[0], tb.Rows[1]
	// A slower rescan period must not heal faster, and its steady-state
	// org rate must be lower.
	if slow[1] < fast[1] {
		t.Errorf("slower rescans healed faster: %v vs %v", slow[1], fast[1])
	}
	if slow[2] > fast[2] {
		t.Errorf("slower rescans ran more orgs/sweep: %v vs %v", slow[2], fast[2])
	}
}

func TestHeartbeatAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	tb, err := HeartbeatAblation(runner.Parallel(2), 100, 350, []float64{0.5, 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := tb.Rows[0], tb.Rows[1]
	if fast[1] < 0 || slow[1] < 0 {
		t.Fatal("masking never happened")
	}
	// Failure-detection latency scales with the heartbeat interval.
	if slow[1] < fast[1] {
		t.Errorf("slower heartbeat masked faster: %v vs %v", slow[1], fast[1])
	}
}
