package exp

import (
	"testing"

	"gs3/internal/runner"
)

// TestDataPlaneDeterminism extends the parallel-serial contract to the
// data plane: D1 runs millions of scheduled packet deliveries through
// the fault layer and churn generator, and its table must still format
// to the same bytes under Seq and a multi-worker pool.
func TestDataPlaneDeterminism(t *testing.T) {
	rates := []float64{0, 0.2}
	serial, err := DataPlane(runner.Seq, 10, 45, rates, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DataPlane(runner.Parallel(4), 10, 45, rates, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Format() != parallel.Format() {
		t.Errorf("D1 tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.Format(), parallel.Format())
	}
	if len(serial.Rows) != len(rates)*2 {
		t.Fatalf("D1 rows = %d, want %d", len(serial.Rows), len(rates)*2)
	}
	for _, row := range serial.Rows {
		if row[2] != 2000 {
			t.Errorf("combo loss=%v churn=%v generated %v packets, want 2000", row[0], row[1], row[2])
		}
		if row[4] < 0 || row[4] > 1 {
			t.Errorf("combo loss=%v churn=%v delivery ratio %v out of [0,1]", row[0], row[1], row[4])
		}
	}
	// Zero-loss zero-churn is the best-case combo; it must beat or match
	// the lossy churning ones.
	best := serial.Rows[0][4]
	for _, row := range serial.Rows[1:] {
		if row[4] > best+1e-9 {
			t.Errorf("combo loss=%v churn=%v ratio %v beats the zero-fault combo's %v", row[0], row[1], row[4], best)
		}
	}
}

// TestDataGatherVsLEACH sanity-checks the D1b comparison: both schemes
// deliver everything at zero loss, and GS³'s retried hop-by-hop relay
// must not fall below LEACH's unretried two-leg round under loss.
func TestDataGatherVsLEACH(t *testing.T) {
	tab, err := DataGatherVsLEACH(runner.Seq, 10, 45, []float64{0, 0.2}, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	zero := tab.Rows[0]
	if zero[1] != 1 || zero[2] != 1 {
		t.Errorf("zero-loss ratios gs3=%v leach=%v, want 1 and 1", zero[1], zero[2])
	}
	lossy := tab.Rows[1]
	if lossy[1] < lossy[2] {
		t.Errorf("at 20%% loss GS3 ratio %v fell below LEACH's %v despite per-hop retries", lossy[1], lossy[2])
	}
}
