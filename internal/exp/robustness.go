package exp

import (
	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/netsim"
	"gs3/internal/runner"
)

// Robustness measures self-configuration and self-healing under an
// unreliable radio: for each message-loss rate it runs trials seeded
// with runner.TrialSeed (the SAME trial seeds across rates, so the loss
// rate is the only thing that varies), configures the network through
// lossy broadcasts, then runs maintenance with the chaos watchdog until
// the GS³-D fixpoint holds for three consecutive sweeps or the budget
// runs out. It reports, per loss rate, the probability of convergence,
// healing-time statistics, the message overhead spent healing, and the
// HEAD_ORG retry work the protocol spent compensating for the losses.
//
// All (rate, trial) pairs run as one flat batch on the pool; rows are
// aggregated in rate order, so the Table is byte-identical whatever the
// worker count.
func Robustness(p runner.Pool, r, regionRadius float64, lossRates []float64, trials, budget int, seed uint64) (Table, error) {
	t := Table{
		ID:      "R1",
		Title:   "Convergence under message loss (chaos harness)",
		Columns: []string{"loss", "trials", "convergeProb", "meanHeal", "maxHeal", "meanHealMsgs", "meanRetries"},
		Notes: []string{
			"convergence = GS3-D fixpoint holds 3 consecutive sweeps",
			"same trial seeds across rates: loss is the only varied factor",
		},
	}
	type result struct {
		converged bool
		healTime  float64
		healMsgs  uint64
		retries   uint64
	}
	n := len(lossRates) * trials
	results, err := runner.Map(p, n, func(i int) (result, error) {
		rate := lossRates[i/trials]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = runner.TrialSeed(seed, i%trials)
		opt.Faults = fault.Plan{Loss: rate}
		s, err := netsim.Build(opt)
		if err != nil {
			return result{}, err
		}
		if _, err := s.Configure(); err != nil {
			return result{}, err
		}
		s.Net.StartMaintenance(core.VariantD)
		rep := s.RunChaos(check.Dynamic, 3, budget)
		return result{rep.Converged, rep.HealTime, rep.HealMessages, rep.Retries}, nil
	})
	if err != nil {
		return Table{}, err
	}
	for ri, rate := range lossRates {
		batch := results[ri*trials : (ri+1)*trials]
		conv := 0
		sumHeal, maxHeal := 0.0, 0.0
		var sumMsgs, sumRetries uint64
		for _, res := range batch {
			if res.converged {
				conv++
				sumHeal += res.healTime
				sumMsgs += res.healMsgs
				if res.healTime > maxHeal {
					maxHeal = res.healTime
				}
			}
			sumRetries += res.retries
		}
		meanHeal, meanMsgs := 0.0, 0.0
		if conv > 0 {
			meanHeal = sumHeal / float64(conv)
			meanMsgs = float64(sumMsgs) / float64(conv)
		}
		t.Rows = append(t.Rows, []float64{
			rate,
			float64(trials),
			float64(conv) / float64(trials),
			meanHeal,
			maxHeal,
			meanMsgs,
			float64(sumRetries) / float64(trials),
		})
	}
	return t, nil
}
