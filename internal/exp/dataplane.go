package exp

import (
	"gs3/internal/baseline"
	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/netsim"
	"gs3/internal/rng"
	"gs3/internal/runner"
	"gs3/internal/traffic"
)

// DataPlane is the D1 experiment: packet delivery, latency, and head
// energy burn on the data plane (internal/traffic) across loss rate ×
// churn. Each combo configures a network, settles it under GS³-D
// maintenance, then serves a mixed convergecast/point-to-point packet
// load; churn combos additionally run random membership turnover and
// transient blackouts while packets are in flight, so the table
// measures exactly how much traffic the structure loses while repair
// is in flight. Combos run as independent trials on the pool; every
// combo reuses the caller's seed unchanged (sweep convention: the
// loss/churn axes are the only things that vary).
func DataPlane(p runner.Pool, r, regionRadius float64, lossRates []float64, packets int, seed uint64) (Table, error) {
	t := Table{
		ID:    "D1",
		Title: "Data plane: delivery, latency, and head energy vs loss x churn",
		Columns: []string{
			"loss", "churn", "generated", "delivered", "ratio",
			"p50", "p99", "p999", "fwdPerHead", "maxHeadE",
		},
		Notes: []string{
			"churn=1: one kill+join every 2 heartbeats plus 1% blackouts, concurrent with traffic",
			"30% of packets point-to-point geographic, rest convergecast; latencies in virtual s",
			"same seed across combos: loss and churn are the only varied factors",
		},
	}
	type combo struct {
		loss  float64
		churn bool
	}
	var combos []combo
	for _, rate := range lossRates {
		combos = append(combos, combo{rate, false}, combo{rate, true})
	}
	rows, err := runner.Map(p, len(combos), func(i int) ([]float64, error) {
		c := combos[i]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		opt.Faults = fault.Plan{Loss: c.loss}
		if c.churn {
			opt.Faults.BlackoutRate = 0.01
			opt.Faults.BlackoutSweeps = 3
		}
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		s.Net.StartMaintenance(core.VariantD)
		// Fixed settle window (not a stability poll): identical virtual
		// schedules across combos keep the sweep controlled.
		s.RunSweeps(20)
		hb := opt.Config.HeartbeatInterval
		if c.churn {
			s.StartChurn(2*hb, packets/500+1)
		}
		plane, err := s.ServeTraffic(traffic.Config{
			Packets:     packets,
			Rate:        500 / hb,
			P2PFraction: 0.3,
		})
		if err != nil {
			return nil, err
		}
		rep := plane.Run()
		churnF := 0.0
		if c.churn {
			churnF = 1
		}
		return []float64{
			c.loss, churnF,
			float64(rep.Generated), float64(rep.Delivered), rep.DeliveryRatio,
			rep.LatencyP50, rep.LatencyP99, rep.LatencyP999,
			rep.MeanHeadForwards, rep.MaxHeadEnergy,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// DataGatherVsLEACH is the D1b experiment: data-gathering delivery
// ratio and head transmission load, GS³ convergecast (hop-by-hop
// relay up the parent tree, per-hop loss with bounded retries) vs a
// LEACH steady-state round (one member→head leg plus one long-range
// head→sink leg, per-leg loss, no retries) on the same deployment.
// The comparison is asymmetric by design — GS³ pays more, shorter
// hops and can retry each; LEACH pays fewer, longer legs and a global
// re-cluster whenever structure breaks — which is exactly the
// trade-off the table quantifies.
func DataGatherVsLEACH(p runner.Pool, r, regionRadius float64, lossRates []float64, packets int, seed uint64) (Table, error) {
	t := Table{
		ID:    "D1b",
		Title: "Data gathering under loss: GS3 convergecast vs LEACH rounds",
		Columns: []string{
			"loss", "gs3Ratio", "leachRatio", "gs3FwdPerHead", "leachTxPerHead",
		},
		Notes: []string{
			"GS3: per-packet hop-by-hop relay with per-hop retries; LEACH: two lossy legs, no retries",
			"same deployment per row; same seed across rows",
		},
	}
	rows, err := runner.Map(p, len(lossRates), func(i int) ([]float64, error) {
		loss := lossRates[i]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		opt.Faults = fault.Plan{Loss: loss}
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(20)
		plane, err := s.ServeTraffic(traffic.Config{Packets: packets, Rate: 500 / opt.Config.HeartbeatInterval})
		if err != nil {
			return nil, err
		}
		rep := plane.Run()

		// LEACH data rounds on the same deployment until it has offered
		// at least as many readings as GS³ generated packets.
		prob := leachHeadProbability(s)
		lsrc := rng.New(seed + 1)
		lc, err := baseline.LEACH(s.Dep, prob, 4*regionRadius, lsrc)
		if err != nil {
			return nil, err
		}
		var lGen, lDel, lTx int
		for lGen < packets {
			lr, err := baseline.DataRound(lc, loss, lsrc)
			if err != nil {
				return nil, err
			}
			lGen += lr.Generated
			lDel += lr.Delivered
			lTx += lr.HeadTx
		}
		leachRatio := 0.0
		if lGen > 0 {
			leachRatio = float64(lDel) / float64(lGen)
		}
		leachTxPerHead := 0.0
		if len(lc.Heads) > 0 {
			leachTxPerHead = float64(lTx) / float64(len(lc.Heads))
		}
		return []float64{loss, rep.DeliveryRatio, leachRatio, rep.MeanHeadForwards, leachTxPerHead}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}
