package exp

import (
	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/runner"
)

// DisasterSweep is the correlated-failure experiment (R2): for each
// blast radius it drops a disaster disk on a live, maintained
// structure — centered on the head nearest a fixed probe point, so the
// blast always severs structure rather than grazing empty boundary —
// and measures how long the GS³-D fixpoint takes to return and how
// many messages the healing cost. Trials are seeded with
// runner.TrialSeed, and the SAME trial seeds are reused across radii,
// so the blast radius is the only thing that varies between rows.
//
// All (radius, trial) pairs run as one flat batch on the pool; rows
// are aggregated in radius order, so the Table is byte-identical
// whatever the worker count.
func DisasterSweep(p runner.Pool, r, regionRadius float64, radii []float64, trials, budget int, seed uint64) (Table, error) {
	t := Table{
		ID:      "R2",
		Title:   "Self-healing vs disaster radius (correlated failures)",
		Columns: []string{"radius", "trials", "convergeProb", "meanKilled", "meanHeal", "maxHeal", "meanHealMsgs", "meanJoined", "repopProb", "meanRepopHeal"},
		Notes: []string{
			"disaster disk centered on the head nearest the probe point (regionRadius/2, 0)",
			"same trial seeds across radii: blast radius is the only varied factor",
			"repop columns: after healing, the crater is repopulated on the deployment grid (RepopulateDisk) and the fixpoint must absorb the joiners",
		},
	}
	type result struct {
		converged bool
		killed    int
		healTime  float64
		healMsgs  uint64
		joined    int
		repopOK   bool
		repopHeal float64
	}
	probe := geom.Point{X: regionRadius / 2}
	n := len(radii) * trials
	results, err := runner.Map(p, n, func(i int) (result, error) {
		radius := radii[i/trials]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = runner.TrialSeed(seed, i%trials)
		s, err := netsim.Build(opt)
		if err != nil {
			return result{}, err
		}
		if _, err := s.Configure(); err != nil {
			return result{}, err
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(2)
		center := probe
		bestD := 0.0
		for _, h := range s.Net.Snapshot().Heads() {
			if h.IsBig {
				continue
			}
			if d := h.Pos.Dist(probe); center == probe || d < bestD {
				center, bestD = h.Pos, d
			}
		}
		killed := s.KillDisk(center, radius)
		rep := s.RunChaos(check.Dynamic, 3, budget)
		res := result{converged: rep.Converged, killed: killed,
			healTime: rep.HealTime, healMsgs: rep.HealMessages}
		// Repopulation-aware recovery: refill the crater on the same
		// grid pitch the field was deployed with and require the
		// dynamic fixpoint to absorb the joiners. Only measured when
		// the kill itself healed — repopulating an unconverged wreck
		// would fold two failure modes into one column.
		if rep.Converged {
			res.joined = len(s.RepopulateDisk(center, radius, opt.GridSpacing))
			rerep := s.RunChaos(check.Dynamic, 3, budget)
			res.repopOK = rerep.Converged
			res.repopHeal = rerep.HealTime
		}
		return res, nil
	})
	if err != nil {
		return Table{}, err
	}
	for ri, radius := range radii {
		batch := results[ri*trials : (ri+1)*trials]
		conv, killed := 0, 0
		sumHeal, maxHeal := 0.0, 0.0
		var sumMsgs uint64
		joined, repopOK := 0, 0
		sumRepopHeal := 0.0
		for _, res := range batch {
			killed += res.killed
			if res.converged {
				conv++
				sumHeal += res.healTime
				sumMsgs += res.healMsgs
				if res.healTime > maxHeal {
					maxHeal = res.healTime
				}
				joined += res.joined
				if res.repopOK {
					repopOK++
					sumRepopHeal += res.repopHeal
				}
			}
		}
		meanHeal, meanMsgs, meanJoined, repopProb, meanRepopHeal := 0.0, 0.0, 0.0, 0.0, 0.0
		if conv > 0 {
			meanHeal = sumHeal / float64(conv)
			meanMsgs = float64(sumMsgs) / float64(conv)
			meanJoined = float64(joined) / float64(conv)
			repopProb = float64(repopOK) / float64(conv)
		}
		if repopOK > 0 {
			meanRepopHeal = sumRepopHeal / float64(repopOK)
		}
		t.Rows = append(t.Rows, []float64{
			radius,
			float64(trials),
			float64(conv) / float64(trials),
			float64(killed) / float64(trials),
			meanHeal,
			maxHeal,
			meanMsgs,
			meanJoined,
			repopProb,
			meanRepopHeal,
		})
	}
	return t, nil
}
