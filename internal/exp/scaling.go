package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/radio"
	"gs3/internal/runner"
	"gs3/internal/stats"
)

// PerNodeState reproduces Appendix 1 row 1: the information maintained
// at each node is a constant number of node identities (θ(log n) bits),
// irrespective of network size. For each region radius it configures a
// network and reports n, the mean and maximum number of identities a
// node stores, split by role. Each radius is one independent trial on
// the pool; rows come back in radius order.
func PerNodeState(p runner.Pool, r float64, regionRadii []float64, seed uint64) (Table, error) {
	t := Table{
		ID:      "T1",
		Title:   "Per-node state vs network size",
		Columns: []string{"n", "headMeanIDs", "headMaxIDs", "assocIDs"},
		Notes: []string{
			"identities stored: head = parent + children + neighbor heads; associate = its head",
			"paper: constant per node, so theta(log n) bits",
		},
	}
	rows, err := runner.Map(p, len(regionRadii), func(i int) ([]float64, error) {
		opt := netsim.DefaultOptions(r, regionRadii[i])
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		snap := s.Net.Snapshot()
		var headIDs []float64
		maxIDs := 0.0
		for _, v := range snap.Nodes {
			if !v.IsHead() {
				continue
			}
			ids := 1 + len(v.Children) + len(v.Neighbors) // parent + rest
			headIDs = append(headIDs, float64(ids))
			if float64(ids) > maxIDs {
				maxIDs = float64(ids)
			}
		}
		return []float64{
			float64(len(snap.Nodes)), stats.Mean(headIDs), maxIDs, 1,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// StaticConvergence reproduces Appendix 1 row 4 / Theorem 4: the
// GS³-S self-configuration completes in θ(D_b) where D_b is the
// distance from the big node to the farthest small node. It reports
// the virtual configuration time per region radius and the linear fit.
// Radii run as independent trials on the pool.
func StaticConvergence(p runner.Pool, r float64, regionRadii []float64, seed uint64) (Table, stats.Fit, error) {
	t := Table{
		ID:      "T4",
		Title:   "Static self-configuration time vs network radius (theta(Db))",
		Columns: []string{"Db", "time", "n"},
	}
	rows, err := runner.Map(p, len(regionRadii), func(i int) ([]float64, error) {
		radius := regionRadii[i]
		opt := netsim.DefaultOptions(r, radius)
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		elapsed, err := s.Configure()
		if err != nil {
			return nil, err
		}
		return []float64{radius, elapsed, float64(s.Net.Medium().Count())}, nil
	})
	if err != nil {
		return Table{}, stats.Fit{}, err
	}
	t.Rows = rows
	// Fit inputs are read back from the collected rows rather than
	// accumulated in closure-shared slices, so the builder has no
	// cross-trial aliasing whatever the worker count.
	fit, err := stats.LinearFit(t.Column(0), t.Column(1))
	if err != nil {
		return Table{}, stats.Fit{}, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("linear fit: time = %.4g*Db %+.4g (R2=%.4f)", fit.Slope, fit.Intercept, fit.R2))
	return t, fit, nil
}

// RegionRadiusFor returns the deployment disk radius that yields
// approximately target nodes on the default triangular grid with the
// given spacing (each grid node covers an area of spacing²·√3/2).
func RegionRadiusFor(target int, spacing float64) float64 {
	area := float64(target) * spacing * spacing * math.Sqrt(3) / 2
	return math.Sqrt(area / math.Pi)
}

// ConfigureScaling is experiment N1: configuration cost versus network
// size on node-count targets rather than radii, run through the
// wave-parallel sharded executor (byte-identical to the serial
// diffusing computation, so every reported value is deterministic; only
// the wall clock depends on workers). For each target it reports the
// actual node count, the deployment radius Db, the virtual configure
// time, the head count, and the configuration broadcasts per node —
// the paper's locality claim (O(1) messages per node) checked at scales
// the serial executor would take minutes to reach. Targets run
// sequentially: each trial is large, and the parallelism lives inside
// the sharded executor.
func ConfigureScaling(r float64, targets []int, workers int, seed uint64) (Table, error) {
	t := Table{
		ID:      "N1",
		Title:   "Sharded configuration vs node count",
		Columns: []string{"n", "Db", "time", "heads", "bootup", "broadcastsPerNode"},
		Notes: []string{
			fmt.Sprintf("sharded executor, %d workers; output identical for any worker count", workers),
		},
	}
	for _, target := range targets {
		opt := netsim.DefaultOptions(r, RegionRadiusFor(target, netsim.DefaultOptions(r, 1).GridSpacing))
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return Table{}, err
		}
		elapsed, err := s.ConfigureSharded(workers)
		if err != nil {
			return Table{}, err
		}
		snap := s.Net.Snapshot()
		heads, bootup := 0, 0
		for _, v := range snap.Nodes {
			switch {
			case v.IsHead():
				heads++
			case v.Status == core.StatusBootup:
				bootup++
			}
		}
		n := float64(s.Net.Medium().Count())
		t.Rows = append(t.Rows, []float64{
			n,
			opt.RegionRadius,
			elapsed,
			float64(heads),
			float64(bootup),
			float64(s.Net.Medium().Stats().Broadcasts) / n,
		})
	}
	return t, nil
}

// SweepScaling is experiment N2: steady-state maintenance and healing
// cost versus network size, run through the sharded sweep executor
// (byte-identical to the serial engine, so every protocol observable
// is deterministic; only wall clock depends on workers). For each
// node-count target it configures sharded, settles the structure, then
// reports the wall-clock cost of one settled maintenance round, the
// live heap, and the cost of healing a two-search-radius disaster:
// virtual rounds and wall seconds until the structure re-stabilizes,
// and the radio messages the healing took. Wall-clock columns vary
// with the host; the protocol columns (n, healRounds, healMsgs) do
// not. Targets run sequentially — each trial is large, and the
// parallelism lives inside the executor.
func SweepScaling(r float64, targets []int, workers, budget int, seed uint64) (Table, error) {
	t := Table{
		ID:      "N2",
		Title:   "Sharded maintenance and healing vs node count",
		Columns: []string{"n", "settleRounds", "roundMs", "heapMB", "killed", "healRounds", "healMs", "healMsgsPerKilled"},
		Notes: []string{
			fmt.Sprintf("sharded sweep executor, %d workers; protocol observables identical for any worker count", workers),
			"disaster: KillDisk of radius 2*SR at (regionRadius/2, 0) on the settled structure",
			"healMsgsPerKilled is the excess over the field's measured per-round background traffic",
			"roundMs/healMs are wall clock (host-dependent); crater repair is message-local (excess ~0 at every scale)",
			"healRounds counts to the full dynamic fixpoint, which includes min-hop re-convergence across the crater's routing shadow — that grows with field radius, not crater size",
		},
	}
	for _, target := range targets {
		opt := netsim.DefaultOptions(r, RegionRadiusFor(target, netsim.DefaultOptions(r, 1).GridSpacing))
		opt.Seed = seed
		opt.SweepWorkers = workers
		s, err := netsim.Build(opt)
		if err != nil {
			return Table{}, err
		}
		if _, err := s.ConfigureSharded(workers); err != nil {
			return Table{}, err
		}
		s.Net.StartMaintenance(core.VariantD)
		// Settle to the full dynamic fixpoint — not the cheap stability
		// predicate — then a few more rounds so every sweep cache is
		// recorded. Anything less and the healing window below would
		// also absorb the tail of the field's own global convergence,
		// inflating healRounds with n.
		settleStart := s.Net.Engine().Now()
		if _, err := s.RunToFixpoint(check.Dynamic, budget); err != nil {
			return Table{}, err
		}
		s.RunSweeps(3)
		settleRounds := (s.Net.Engine().Now() - settleStart) / opt.Config.HeartbeatInterval

		const timedRounds = 3
		timedStats := s.Net.Medium().Stats()
		wallStart := time.Now()
		s.RunSweeps(timedRounds)
		roundMs := float64(time.Since(wallStart).Milliseconds()) / timedRounds
		// Background radio traffic of one settled round (boundary
		// rescans etc.), measured so the healing column can report the
		// *excess* messages the repair cost rather than the whole
		// field's steady-state chatter over the healing window.
		timedDelta := s.Net.Medium().Stats().Sub(timedStats)
		baseline := float64(timedDelta.Broadcasts+timedDelta.Unicasts) / timedRounds

		runtime.GC()
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		heapMB := float64(mem.HeapAlloc) / (1 << 20)

		c := geom.Point{X: opt.RegionRadius / 2}
		preStats := s.Net.Medium().Stats()
		preNow := s.Net.Engine().Now()
		healStart := time.Now()
		killed := s.KillDisk(c, 2*opt.Config.SearchRadius())
		// Healing must be judged by the full dynamic fixpoint, not the
		// cheap stability predicate: orphaned associates keep their role
		// bits until a sweep notices the dead head, so the quick check
		// would report an instant (vacuous) recovery.
		if _, err := s.RunToFixpoint(check.Dynamic, budget); err != nil {
			return Table{}, err
		}
		healMs := float64(time.Since(healStart).Milliseconds())
		healRounds := (s.Net.Engine().Now() - preNow) / opt.Config.HeartbeatInterval
		post := s.Net.Medium().Stats().Sub(preStats)
		healMsgs := float64(post.Broadcasts+post.Unicasts) - baseline*healRounds
		if healMsgs < 0 {
			healMsgs = 0
		}

		n := float64(s.Net.Medium().Count())
		perKilled := 0.0
		if killed > 0 {
			perKilled = healMsgs / float64(killed)
		}
		t.Rows = append(t.Rows, []float64{
			n + float64(killed), // deployed size (Count excludes the dead)
			settleRounds,
			roundMs,
			heapMB,
			float64(killed),
			healRounds,
			healMs,
			perKilled,
		})
	}
	return t, nil
}

// MessageLocality reports, for the same configured networks, the radio
// traffic per node during configuration — evidence that configuration
// costs O(1) messages per node regardless of scale (the local
// coordination claim of §3.3.4). Radii run as independent trials on
// the pool.
func MessageLocality(p runner.Pool, r float64, regionRadii []float64, seed uint64) (Table, error) {
	t := Table{
		ID:      "T1b",
		Title:   "Configuration traffic per node vs network size",
		Columns: []string{"n", "broadcastsPerNode", "repliesPerNode"},
	}
	rows, err := runner.Map(p, len(regionRadii), func(i int) ([]float64, error) {
		opt := netsim.DefaultOptions(r, regionRadii[i])
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		n := float64(s.Net.Medium().Count())
		var st radio.Stats = s.Net.Medium().Stats()
		return []float64{
			n,
			float64(st.Broadcasts) / n,
			float64(s.Net.Metrics().ReplyMessages) / n,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}
