package exp

import (
	"testing"

	"gs3/internal/runner"
)

func TestDisasterSweepDeterminism(t *testing.T) {
	radii := []float64{60, 120}
	serial, err := DisasterSweep(runner.Seq, 100, 250, radii, 3, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DisasterSweep(runner.Parallel(4), 100, 250, radii, 3, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Format() != parallel.Format() {
		t.Errorf("R2 tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.Format(), parallel.Format())
	}
	if len(serial.Rows) != len(radii) {
		t.Fatalf("R2 has %d rows, want %d", len(serial.Rows), len(radii))
	}
	// A bigger blast kills more nodes (column 3 = meanKilled).
	if serial.Rows[1][3] <= serial.Rows[0][3] {
		t.Errorf("meanKilled not increasing with radius: %v vs %v",
			serial.Rows[0][3], serial.Rows[1][3])
	}
}

func TestAdversaryMatrixGreedyAtLeastRandom(t *testing.T) {
	scenarios := AdversaryScenarios(100, 250)
	serial, err := AdversaryMatrix(runner.Seq, scenarios, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := AdversaryMatrix(runner.Parallel(4), scenarios, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Format() != parallel.Format() {
		t.Errorf("ADV tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.Format(), parallel.Format())
	}
	if len(serial.Rows) != 2*len(scenarios) {
		t.Fatalf("ADV has %d rows, want %d", len(serial.Rows), 2*len(scenarios))
	}
	// Rows come in (random, greedy) pairs; the greedy daemon's healing
	// time (column 3, budget-valued when non-converged) must be >= the
	// random mean on EVERY scenario — the package-level guarantee.
	for i := 0; i < len(serial.Rows); i += 2 {
		random, greedy := serial.Rows[i], serial.Rows[i+1]
		if random[1] != 0 || greedy[1] != 1 {
			t.Fatalf("row pair %d mislabeled: daemon cols %v, %v", i/2, random[1], greedy[1])
		}
		if greedy[3] < random[3] {
			t.Errorf("scenario %v: greedy healTime %v < random mean %v",
				random[0], greedy[3], random[3])
		}
	}
}
