package exp

import (
	"fmt"

	"gs3/internal/baseline"
	"gs3/internal/channel"
	"gs3/internal/core"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/radio"
	"gs3/internal/rng"
	"gs3/internal/runner"
	"gs3/internal/stats"
)

// VsLEACH reproduces the Related-Work comparison against LEACH [10]:
// (a) cluster-radius control — GS³ keeps every cell within its proved
// band while LEACH's radii are unbounded; (b) healing cost — GS³ heals
// a head death with messages confined to the perturbed cell's
// neighborhood, while LEACH re-clusters globally, costing O(n)
// messages. Rows are one per region radius (network size); radii run
// as independent trials on the pool.
func VsLEACH(p runner.Pool, r float64, regionRadii []float64, seed uint64) (Table, error) {
	t := Table{
		ID:    "B1",
		Title: "GS3 vs LEACH: radius control and healing cost",
		Columns: []string{
			"n", "gs3MaxRadius", "leachMaxRadius", "gs3HealTouched", "leachHealTouched",
		},
		Notes: []string{
			"healTouched: nodes whose protocol state changes to recover one head death",
			"GS3 touches one cell's neighborhood; LEACH re-clusters every node",
		},
	}
	rows, err := runner.Map(p, len(regionRadii), func(i int) ([]float64, error) {
		radius := regionRadii[i]
		opt := netsim.DefaultOptions(r, radius)
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		gs3Radii := snapshotRadii(s)

		// GS³ healing cost: the number of nodes whose protocol state
		// changes while one head death heals — the direct locality
		// measure.
		touched, err := gs3HealTouched(opt)
		if err != nil {
			return nil, err
		}

		// LEACH on the same deployment; its own healing procedure
		// re-clusters every node.
		prob := leachHeadProbability(s)
		lc, err := baseline.LEACH(s.Dep, prob, 4*radius, rng.New(seed+1))
		if err != nil {
			return nil, err
		}
		heal, err := baseline.LEACHHeal(s.Dep, prob, 4*radius, rng.New(seed+2))
		if err != nil {
			return nil, err
		}
		return []float64{
			float64(s.Net.Medium().Count()),
			stats.Summarize(gs3Radii).Max,
			lc.MaxRadius(),
			touched,
			float64(heal.Messages),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// snapshotRadii returns the associate-to-head distances of the
// configured GS³ structure.
func snapshotRadii(s *netsim.Sim) []float64 {
	snap := s.Net.Snapshot()
	pos := map[int]geom.Point{}
	for _, v := range snap.Nodes {
		pos[int(v.ID)] = v.Pos
	}
	var out []float64
	for _, v := range snap.Nodes {
		if v.Status != core.StatusAssociate {
			continue
		}
		if hp, ok := pos[int(v.Head)]; ok {
			out = append(out, v.Pos.Dist(hp))
		}
	}
	return out
}

// leachHeadProbability picks p so LEACH elects about as many heads as
// GS³ configured cells — an apples-to-apples cluster count.
func leachHeadProbability(s *netsim.Sim) float64 {
	heads := len(s.Net.Snapshot().Heads())
	n := s.Net.Medium().Count()
	p := float64(heads) / float64(n)
	if p <= 0 {
		p = 0.01
	}
	if p >= 1 {
		p = 0.5
	}
	return p
}

// gs3HealTouched counts the nodes whose protocol state (role, head, or
// parent) changes while one head death heals — O(one cell) by the
// locality property, independent of network size. Steady-state churn
// is zero (verified by tests), so no twin subtraction is needed.
func gs3HealTouched(opt netsim.Options) (float64, error) {
	s, err := netsim.Build(opt)
	if err != nil {
		return 0, err
	}
	if _, err := s.Configure(); err != nil {
		return 0, err
	}
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(2)
	var victim core.NodeView
	for _, h := range s.Net.Snapshot().Heads() {
		if !h.IsBig {
			victim = h
			break
		}
	}
	before := s.Net.Snapshot()
	s.Net.Kill(victim.ID)
	s.RunSweeps(6)
	after := s.Net.Snapshot()

	bv := map[radio.NodeID]core.NodeView{}
	for _, v := range before.Nodes {
		bv[v.ID] = v
	}
	touched := 0
	for _, v := range after.Nodes {
		old, ok := bv[v.ID]
		if !ok {
			touched++ // newly visible (should not happen here)
			continue
		}
		if old.Status != v.Status || old.Head != v.Head || old.Parent != v.Parent {
			touched++
		}
	}
	return float64(touched), nil
}

// VsHopCluster reproduces the Related-Work comparison against
// geography-unaware hop-bounded clustering [3]: hop bounds do not bound
// geographic radius tightly, and BFS growth produces large geographic
// overlap between clusters, both of which GS³ avoids by construction.
func VsHopCluster(r, regionRadius float64, seed uint64) (Table, error) {
	opt := netsim.DefaultOptions(r, regionRadius)
	opt.Seed = seed
	s, err := netsim.Build(opt)
	if err != nil {
		return Table{}, err
	}
	if _, err := s.Configure(); err != nil {
		return Table{}, err
	}
	gs3 := stats.Summarize(snapshotRadii(s))
	gs3Overlap := overlapFractionGS3(s)

	// Hop clustering with a hop bound chosen so clusters could, in the
	// best case, match GS³'s geographic radius (hops ≈ R / txRange).
	txRange := opt.Config.SearchRadius() / 3
	maxHops := int(r/txRange) + 1
	hc, err := baseline.HopCluster(s.Dep, maxHops, txRange)
	if err != nil {
		return Table{}, err
	}
	hcStats := stats.Summarize(hc.Radii())

	t := Table{
		ID:      "B2",
		Title:   "GS3 vs hop-bounded clustering: geographic radius and overlap",
		Columns: []string{"scheme", "meanRadius", "p90Radius", "maxRadius", "overlapFrac"},
		Notes: []string{
			"scheme 0 = GS3, 1 = hop-bounded BFS",
			fmt.Sprintf("hop bound %d at txRange %.3g targets the same nominal radius R=%.3g", maxHops, txRange, r),
		},
	}
	t.Rows = append(t.Rows, []float64{0, gs3.Mean, gs3.P90, gs3.Max, gs3Overlap})
	t.Rows = append(t.Rows, []float64{1, hcStats.Mean, hcStats.P90, hcStats.Max, hc.OverlapFraction()})
	return t, nil
}

// overlapFractionGS3 computes the same overlap metric for the GS³
// structure: fraction of associates strictly closer to a different
// head (zero at the fixpoint by F₃).
func overlapFractionGS3(s *netsim.Sim) float64 {
	snap := s.Net.Snapshot()
	heads := snap.Heads()
	total, misplaced := 0, 0
	for _, v := range snap.Nodes {
		if v.Status != core.StatusAssociate {
			continue
		}
		total++
		hv, ok := snap.View(v.Head)
		if !ok {
			continue
		}
		own := v.Pos.Dist(hv.Pos)
		for _, h := range heads {
			if h.ID != v.Head && v.Pos.Dist(h.Pos) < own-1e-9 {
				misplaced++
				break
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(misplaced) / float64(total)
}

// GapResilience exercises the R_t-gap handling of GS³-D end to end: a
// deployment with a deliberate gap configures around it, and after the
// gap is filled by joining nodes, the boundary rescan grows cells into
// it (the paper's §4.2 overview). The table reports coverage before
// and after.
func GapResilience(r, regionRadius, gapRadius float64, seed uint64) (Table, error) {
	opt := netsim.DefaultOptions(r, regionRadius)
	opt.Seed = seed
	gapCenter := geom.Point{X: regionRadius / 2, Y: 0}
	opt.Gaps = []field.Gap{{Center: gapCenter, Radius: gapRadius}}
	s, err := netsim.Build(opt)
	if err != nil {
		return Table{}, err
	}
	if _, err := s.Configure(); err != nil {
		return Table{}, err
	}
	headsBefore := len(s.Net.Snapshot().Heads())

	s.Net.StartMaintenance(core.VariantD)
	ids := s.RepopulateDisk(gapCenter, gapRadius, opt.GridSpacing)
	if _, err := s.RunUntilStable(40 * opt.Config.BoundaryRescanEvery); err != nil {
		return Table{}, err
	}
	covered := 0
	for _, id := range ids {
		st := s.Net.Node(id).Status
		if st == core.StatusAssociate || st.IsHeadRole() {
			covered++
		}
	}
	t := Table{
		ID:      "F7b",
		Title:   "Rt-gap handling: configuration around a gap, absorption after fill",
		Columns: []string{"headsBefore", "headsAfter", "joined", "covered"},
	}
	t.Rows = append(t.Rows, []float64{
		float64(headsBefore),
		float64(len(s.Net.Snapshot().Heads())),
		float64(len(ids)),
		float64(covered),
	})
	return t, nil
}

// FrequencyReuse reproduces the introduction's frequency-reuse claim as
// experiment C1: GS³'s exact hexagonal cells admit the optimal cellular
// reuse-3 channel assignment, while equally sized LEACH and hop-bounded
// clusterings need more channels under the same interference range
// (greedy coloring, the best unstructured clusterings can do locally).
func FrequencyReuse(r, regionRadius float64, seed uint64) (Table, error) {
	opt := netsim.DefaultOptions(r, regionRadius)
	opt.Seed = seed
	s, err := netsim.Build(opt)
	if err != nil {
		return Table{}, err
	}
	if _, err := s.Configure(); err != nil {
		return Table{}, err
	}
	snap := s.Net.Snapshot()
	interference := opt.Config.NeighborDistMax()

	gs3Assign, err := channel.Reuse3(snap)
	if err != nil {
		return Table{}, err
	}
	gs3Conflicts := channel.Conflicts(snap, gs3Assign, interference)

	p := leachHeadProbability(s)
	lc, err := baseline.LEACH(s.Dep, p, 4*regionRadius, rng.New(seed+1))
	if err != nil {
		return Table{}, err
	}
	var leachHeads []geom.Point
	for _, h := range lc.Heads {
		leachHeads = append(leachHeads, lc.Positions[h])
	}
	leachAssign := channel.Greedy(leachHeads, interference)

	hc, err := baseline.HopCluster(s.Dep, 2, opt.Config.SearchRadius()/3)
	if err != nil {
		return Table{}, err
	}
	var hopHeads []geom.Point
	for _, h := range hc.Heads {
		hopHeads = append(hopHeads, hc.Positions[h])
	}
	hopAssign := channel.Greedy(hopHeads, interference)

	t := Table{
		ID:      "C1",
		Title:   "Frequency reuse: channels needed per clustering scheme",
		Columns: []string{"scheme", "clusters", "channels", "conflicts"},
		Notes: []string{
			"scheme 0 = GS3 reuse-3 lattice pattern, 1 = LEACH greedy, 2 = hop-BFS greedy",
			fmt.Sprintf("interference range = neighbor distance bound %.3g", interference),
		},
	}
	t.Rows = append(t.Rows, []float64{0, float64(len(snap.Heads())), float64(gs3Assign.Count), float64(len(gs3Conflicts))})
	t.Rows = append(t.Rows, []float64{1, float64(len(lc.Heads)), float64(leachAssign.Count), 0})
	t.Rows = append(t.Rows, []float64{2, float64(len(hc.Heads)), float64(hopAssign.Count), 0})
	return t, nil
}
