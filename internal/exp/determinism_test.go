package exp

import (
	"runtime"
	"testing"
	"time"

	"gs3/internal/runner"
	"gs3/internal/stats"
)

// TestParallelSerialDeterminism is the core contract of the trial
// runner: for several base seeds, the same experiment executed under
// runner.Seq and under a multi-worker pool must format to the exact
// same bytes. Tables cover a configuration sweep (T1), a fit-bearing
// sweep (T4), and an ablation that reconfigures the protocol (A1).
func TestParallelSerialDeterminism(t *testing.T) {
	par := runner.Parallel(4)
	radii := []float64{250, 350}
	for _, seed := range []uint64{3, 7, 11} {
		serialT1, err := PerNodeState(runner.Seq, 100, radii, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		parallelT1, err := PerNodeState(par, 100, radii, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if serialT1.Format() != parallelT1.Format() {
			t.Errorf("seed %d: T1 tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
				seed, serialT1.Format(), parallelT1.Format())
		}

		serialT4, serialFit, err := StaticConvergence(runner.Seq, 100, radii, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		parallelT4, parallelFit, err := StaticConvergence(par, 100, radii, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if serialT4.Format() != parallelT4.Format() {
			t.Errorf("seed %d: T4 tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
				seed, serialT4.Format(), parallelT4.Format())
		}
		if (serialFit != stats.Fit{}) && serialFit != parallelFit {
			t.Errorf("seed %d: fits differ: %+v vs %+v", seed, serialFit, parallelFit)
		}

		serialA1, err := RtSweep(runner.Seq, 100, 250, []float64{0.2, 0.3}, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		parallelA1, err := RtSweep(par, 100, 250, []float64{0.2, 0.3}, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if serialA1.Format() != parallelA1.Format() {
			t.Errorf("seed %d: A1 tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
				seed, serialA1.Format(), parallelA1.Format())
		}
	}
}

// TestMaintenanceDeterminism pins the sweep-and-heal path (T3): unlike
// the configuration-only sweeps above, it drives maintenance rounds
// that exercise the spatial-query scratch buffers (cell membership,
// candidate election, head neighbor rebuilds) with failures injected
// mid-run. Serial and parallel pools must still format identically —
// the scratch buffers are per-Medium, so concurrent trials share no
// query state.
func TestMaintenanceDeterminism(t *testing.T) {
	par := runner.Parallel(4)
	diameters := []float64{120, 170}
	for _, seed := range []uint64{5, 9} {
		serial, _, err := PerturbationConvergence(runner.Seq, 100, 350, diameters, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		parallel, _, err := PerturbationConvergence(par, 100, 350, diameters, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if serial.Format() != parallel.Format() {
			t.Errorf("seed %d: T3 tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
				seed, serial.Format(), parallel.Format())
		}
	}
}

// TestSweepErrorPropagation checks that a failing trial inside an
// experiment surfaces as an ordinary error (wrapped with its trial
// index) rather than a partial table, for serial and parallel pools
// alike. An absurd region radius makes netsim.Build fail.
func TestSweepErrorPropagation(t *testing.T) {
	for _, p := range []runner.Pool{runner.Seq, runner.Parallel(4)} {
		tb, err := PerNodeState(p, 100, []float64{250, -1}, 7)
		if err == nil {
			t.Fatalf("workers=%d: bad sweep succeeded: %v", p.Workers, tb)
		}
		if len(tb.Rows) != 0 {
			t.Errorf("workers=%d: partial table returned alongside error", p.Workers)
		}
	}
}

// TestParallelSpeedup measures the wall-clock win of fanning a scaling
// sweep across cores. It requires the >1.5x speedup only where the
// hardware can deliver it (>= 4 CPUs); on smaller machines it still
// runs both modes and checks determinism, skipping the ratio assert.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive speedup measurement")
	}
	radii := []float64{300, 400, 500, 600}
	seed := uint64(7)

	serialStart := time.Now()
	serialT, _, err := StaticConvergence(runner.Seq, 100, radii, seed)
	if err != nil {
		t.Fatal(err)
	}
	serialWall := time.Since(serialStart)

	parallelStart := time.Now()
	parallelT, _, err := StaticConvergence(runner.Parallel(0), 100, radii, seed)
	if err != nil {
		t.Fatal(err)
	}
	parallelWall := time.Since(parallelStart)

	if serialT.Format() != parallelT.Format() {
		t.Fatalf("speedup run broke determinism:\n--- serial ---\n%s--- parallel ---\n%s",
			serialT.Format(), parallelT.Format())
	}
	speedup := float64(serialWall) / float64(parallelWall)
	t.Logf("scaling sweep: serial %v, parallel %v, speedup %.2fx on %d CPUs",
		serialWall.Round(time.Millisecond), parallelWall.Round(time.Millisecond),
		speedup, runtime.NumCPU())
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup ratio needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	if speedup <= 1.5 {
		t.Errorf("parallel speedup %.2fx on %d CPUs, want > 1.5x", speedup, runtime.NumCPU())
	}
}
