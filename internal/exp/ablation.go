package exp

import (
	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/runner"
	"gs3/internal/stats"
)

// RtSweep is ablation A1: how the radius tolerance Rt shapes the
// structure. The paper fixes Rt as the density guarantee ("with high
// probability every Rt-disk holds a node") and proves all bounds as
// functions of it; this sweep shows the bounds are live — looser Rt
// buys easier head selection at the price of wider cell-radius and
// neighbor-distance spreads. Ratios run as independent trials on the
// pool; every trial reuses the same seed so the swept parameter is the
// only thing that varies.
func RtSweep(p runner.Pool, r, regionRadius float64, ratios []float64, seed uint64) (Table, error) {
	t := Table{
		ID:      "A1",
		Title:   "Ablation: radius tolerance Rt vs structure tightness",
		Columns: []string{"Rt/R", "heads", "maxILDev", "cellRadiusP90", "neighborDistSpread"},
		Notes: []string{
			"maxILDev <= Rt (Corollary 2); neighborDistSpread = max-min over neighbor pairs <= 4Rt (Corollary 1)",
		},
	}
	rows, err := runner.Map(p, len(ratios), func(i int) ([]float64, error) {
		q := ratios[i]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		opt.Config.Rt = q * r
		opt.GridSpacing = opt.Config.Rt * 0.9
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		st := check.Stats(s.Net.Snapshot())
		radii := stats.Summarize(st.CellRadii)
		nd := stats.Summarize(st.NeighborDists)
		return []float64{
			q, float64(st.Heads), st.MaxILDeviation, radii.P90, nd.Max - nd.Min,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// RescanPeriodAblation is ablation A2: the boundary-rescan period is
// the detection-latency term of the O(D_p) healing bound. Sweeping it
// shows healing time scales with the period while the structure's
// steady state is unaffected. Periods run as independent trials on the
// pool.
func RescanPeriodAblation(p runner.Pool, r, regionRadius float64, periods []int, seed uint64) (Table, error) {
	t := Table{
		ID:      "A2",
		Title:   "Ablation: boundary-rescan period vs healing latency",
		Columns: []string{"rescanEvery", "healTime", "headOrgsPerSweep"},
		Notes: []string{
			"same Dp=300 clear+repopulate perturbation for every row",
		},
	}
	rows, err := runner.Map(p, len(periods), func(i int) ([]float64, error) {
		period := periods[i]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		opt.Config.BoundaryRescanEvery = period
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(2)

		center := geom.Point{X: regionRadius / 3, Y: regionRadius / 5}
		var lostILs []geom.Point
		for _, h := range s.Net.Snapshot().Heads() {
			if !h.IsBig && h.Pos.Dist(center) <= 150 {
				lostILs = append(lostILs, h.IL)
			}
		}
		s.KillDisk(center, 150)
		s.RepopulateDisk(center, 150, opt.GridSpacing)

		orgsBefore := s.Net.Metrics().HeadOrgs
		start := s.Net.Engine().Now()
		elapsed := -1.0
		sweeps := 0
		for i := 0; i < 40*period; i++ {
			done := s.StableQuick()
			if done {
				heads := s.Net.Snapshot().Heads()
				for _, il := range lostILs {
					ok := false
					for _, h := range heads {
						if h.IL.Dist(il) <= opt.Config.Rt {
							ok = true
							break
						}
					}
					if !ok {
						done = false
						break
					}
				}
			}
			if done {
				elapsed = s.Net.Engine().Now() - start
				break
			}
			s.RunSweeps(1)
			sweeps++
		}
		if elapsed < 0 {
			elapsed = s.Net.Engine().Now() - start
		}
		orgRate := 0.0
		if sweeps > 0 {
			orgRate = float64(s.Net.Metrics().HeadOrgs-orgsBefore) / float64(sweeps)
		}
		return []float64{float64(period), elapsed, orgRate}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// HeartbeatAblation is ablation A3: the heartbeat interval is the
// failure-detection latency of intra-cell maintenance. Sweeping it
// shows head-death masking time scales with the interval. Intervals
// run as independent trials on the pool.
func HeartbeatAblation(p runner.Pool, r, regionRadius float64, intervals []float64, seed uint64) (Table, error) {
	t := Table{
		ID:      "A3",
		Title:   "Ablation: heartbeat interval vs head-death masking latency",
		Columns: []string{"interval", "maskTime"},
	}
	rows, err := runner.Map(p, len(intervals), func(i int) ([]float64, error) {
		interval := intervals[i]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		opt.Config.HeartbeatInterval = interval
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(2)

		var victim core.NodeView
		for _, h := range s.Net.Snapshot().Heads() {
			if !h.IsBig {
				victim = h
				break
			}
		}
		s.Net.Kill(victim.ID)
		start := s.Net.Engine().Now()
		masked := func() bool {
			for _, h := range s.Net.Snapshot().Heads() {
				if h.ID != victim.ID && h.IL.Dist(victim.IL) <= opt.Config.Rt {
					return true
				}
			}
			return false
		}
		elapsed := -1.0
		for i := 0; i < 200; i++ {
			if masked() {
				elapsed = s.Net.Engine().Now() - start
				break
			}
			e := s.Net.Engine()
			e.RunUntil(e.Now() + interval/4) // fine-grained probe
		}
		if elapsed < 0 {
			elapsed = s.Net.Engine().Now() - start
		}
		return []float64{interval, elapsed}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}
