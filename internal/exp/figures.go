package exp

import (
	"gs3/internal/analysis"
	"gs3/internal/rng"
)

// Figure7 reproduces paper Figure 7: the expected ratio of non-ideal
// cells as a function of R_t/R, at density lambda (paper setting:
// λ = 10, R = 100). The analytic column is α = e^{−λ·R_t²}; the
// empirical column Monte-Carlo samples the same Poisson node-count
// model with trials disks per point.
func Figure7(lambda, r float64, ratios []float64, trials int, seed uint64) Table {
	src := rng.New(seed)
	t := Table{
		ID:      "F7",
		Title:   "Expected ratio of non-ideal cells vs Rt/R",
		Columns: []string{"Rt/R", "analytic", "empirical"},
		Notes: []string{
			"paper: lambda=10, R=100, system radius 1000; ratio ~ 0 for Rt/R >= 0.02",
		},
	}
	for _, q := range ratios {
		rt := q * r
		analytic := analysis.NonIdealCellRatio(lambda, rt)
		empty := 0
		for i := 0; i < trials; i++ {
			if src.Poisson(lambda*rt*rt) == 0 {
				empty++
			}
		}
		t.Rows = append(t.Rows, []float64{q, analytic, float64(empty) / float64(trials)})
	}
	return t
}

// Figure8 reproduces paper Figure 8: the expected diameter of an
// R_t-gap perturbed region as a function of R_t/R. The analytic column
// is the paper's 2R·α/(1−α)²; the empirical column measures mean
// contiguous-gap run extents over simulated cell rows where each cell
// is an R_t-gap independently with probability α.
//
// Note: the paper's series 2R·Σ k·α^k uses the unnormalized weights
// α^k; the matching empirical estimator is the expected length of the
// gap run adjacent to a random non-gap cell divided by (1−α), which we
// compute directly as mean(k)·2R/(1−α) with k the observed run length.
func Figure8(lambda, r float64, ratios []float64, trials int, seed uint64) Table {
	src := rng.New(seed)
	t := Table{
		ID:      "F8",
		Title:   "Expected diameter of an Rt-gap perturbed region vs Rt/R",
		Columns: []string{"Rt/R", "analytic", "empirical"},
		Notes: []string{
			"analytic = 2R*alpha/(1-alpha)^2 (paper 4.3.4); ~0 for Rt/R >= 0.02",
		},
	}
	for _, q := range ratios {
		rt := q * r
		alpha := analysis.Alpha(lambda, rt)
		analytic := analysis.GapRegionDiameter(lambda, rt, r)

		// Empirical: measure the run of consecutive gap cells starting
		// at a fresh cell; E[run] = alpha/(1-alpha), so the paper's
		// estimator is E[run]/(1-alpha) scaled by the 2R cell extent.
		totalRun := 0
		for i := 0; i < trials; i++ {
			run := 0
			for src.Float64() < alpha {
				run++
				if run > 1<<20 {
					break // alpha ≈ 1: avoid unbounded loops
				}
			}
			totalRun += run
		}
		meanRun := float64(totalRun) / float64(trials)
		empirical := 2 * r * meanRun / (1 - alpha)
		t.Rows = append(t.Rows, []float64{q, analytic, empirical})
	}
	return t
}
