package exp

import (
	"math"
	"sort"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/radio"
	"gs3/internal/runner"
	"gs3/internal/stats"
)

// BigMoveLocality reproduces Theorem 11: when the big node moves
// distance d, the impact on the head graph is contained in a circle of
// radius √3·d/2 around the segment midpoint. For each d (in multiples
// of the head spacing) it reports the theoretical bound and the
// measured containment radii (p90 and max over affected heads). Move
// distances run as independent trials on the pool.
func BigMoveLocality(p runner.Pool, r, regionRadius float64, moveCells []float64, seed uint64) (Table, error) {
	t := Table{
		ID:      "M1",
		Title:   "Big-node move impact containment (Theorem 11)",
		Columns: []string{"d", "bound", "p50Radius", "p90Radius", "maxRadius", "changed"},
		Notes: []string{
			"bound = sqrt(3)*d/2 from the AB midpoint; measured radii include",
			"the discrete slack of heads sitting up to Rt off their ILs;",
			"a small tail of equal-hop parent flips along lattice-sector",
			"boundaries escapes the idealized bound (see EXPERIMENTS.md)",
		},
	}
	rows, err := runner.Map(p, len(moveCells), func(i int) ([]float64, error) {
		cells := moveCells[i]
		opt := netsim.DefaultOptions(r, regionRadius)
		opt.Seed = seed
		s, err := netsim.Build(opt)
		if err != nil {
			return nil, err
		}
		if _, err := s.Configure(); err != nil {
			return nil, err
		}
		s.Net.StartMaintenance(core.VariantM)
		s.RunSweeps(6)

		before := map[radio.NodeID]radio.NodeID{}
		for _, h := range s.Net.Snapshot().Heads() {
			before[h.ID] = h.Parent
		}
		a := s.Net.Position(s.Net.BigID())
		d := cells * opt.Config.HeadSpacing()
		b := a.Add(geom.Vec{X: d, Y: 0})
		s.Net.Move(s.Net.BigID(), b)
		s.RunSweeps(14)

		mid := a.Midpoint(b)
		var radii []float64
		for _, h := range s.Net.Snapshot().Heads() {
			old, ok := before[h.ID]
			if !ok || h.IsBig || h.Parent == old {
				continue
			}
			radii = append(radii, h.Pos.Dist(mid))
		}
		sort.Float64s(radii)
		sum := stats.Summarize(radii)
		return []float64{
			d, math.Sqrt(3) * d / 2, sum.P50, sum.P90, sum.Max, float64(len(radii)),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}
