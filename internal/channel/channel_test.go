package channel

import (
	"testing"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/radio"
)

func configuredSnap(t *testing.T, region float64) core.Snapshot {
	t.Helper()
	s, err := netsim.Build(netsim.DefaultOptions(100, region))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	return s.Net.Snapshot()
}

func TestReuse3UsesThreeChannels(t *testing.T) {
	snap := configuredSnap(t, 450)
	a, err := Reuse3(snap)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != 3 {
		t.Errorf("channels used = %d, want 3", a.Count)
	}
	if len(a.Channels) != len(snap.Heads()) {
		t.Errorf("assigned %d of %d heads", len(a.Channels), len(snap.Heads()))
	}
	for _, ch := range a.Channels {
		if ch < 0 || ch > 2 {
			t.Fatalf("channel %d out of range", ch)
		}
	}
}

func TestReuse3NoNeighborConflicts(t *testing.T) {
	snap := configuredSnap(t, 450)
	a, err := Reuse3(snap)
	if err != nil {
		t.Fatal(err)
	}
	// No conflicts up to the neighbor distance…
	if c := Conflicts(snap, a, snap.Config.NeighborDistMax()); len(c) != 0 {
		t.Errorf("neighbor conflicts: %v", c)
	}
	// …and none even up to just below the reuse distance 3R − slack.
	if c := Conflicts(snap, a, 3*snap.Config.R-2*snap.Config.Rt-1); len(c) != 0 {
		t.Errorf("conflicts inside the reuse distance: %v", c)
	}
}

func TestReuse3SurvivesHealing(t *testing.T) {
	s, err := netsim.Build(netsim.DefaultOptions(100, 400))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	// Kill a head; the replacement inherits the cell's OIL, so channel
	// assignment stays stable.
	var victim core.NodeView
	for _, h := range s.Net.Snapshot().Heads() {
		if !h.IsBig {
			victim = h
			break
		}
	}
	before, err := Reuse3(s.Net.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	victimCh := before.Channels[victim.ID]
	s.Net.Kill(victim.ID)
	s.RunSweeps(6)

	after, err := Reuse3(s.Net.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range s.Net.Snapshot().Heads() {
		if h.IL.Dist(victim.IL) <= s.Opt.Config.Rt && h.ID != victim.ID {
			if after.Channels[h.ID] != victimCh {
				t.Errorf("replacement head got channel %d, cell had %d", after.Channels[h.ID], victimCh)
			}
		}
	}
	if c := Conflicts(s.Net.Snapshot(), after, s.Opt.Config.NeighborDistMax()); len(c) != 0 {
		t.Errorf("conflicts after healing: %v", c)
	}
}

func TestReuse3NoBigNode(t *testing.T) {
	snap := configuredSnap(t, 300)
	snap.BigID = 99999
	if _, err := Reuse3(snap); err == nil {
		t.Error("missing big node accepted")
	}
}

func TestGreedyNoConflicts(t *testing.T) {
	positions := []geom.Point{
		{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 100, Y: 0}, {X: 25, Y: 40}, {X: 75, Y: 40}, {X: 300, Y: 0},
	}
	a := Greedy(positions, 60)
	for i, p := range positions {
		for j := 0; j < i; j++ {
			if p.Dist(positions[j]) <= 60 &&
				a.Channels[radio.NodeID(i)] == a.Channels[radio.NodeID(j)] {
				t.Errorf("greedy conflict between %d and %d", i, j)
			}
		}
	}
	if a.Count < 2 {
		t.Errorf("count = %d", a.Count)
	}
	// The far node reuses channel 0.
	if a.Channels[radio.NodeID(5)] != 0 {
		t.Errorf("distant node channel = %d", a.Channels[radio.NodeID(5)])
	}
}

func TestGreedyEmpty(t *testing.T) {
	a := Greedy(nil, 50)
	if a.Count != 0 || len(a.Channels) != 0 {
		t.Errorf("empty greedy = %+v", a)
	}
}
