// Package channel assigns radio channels to the cells of a configured
// GS³ structure for spatial frequency reuse — the benefit the paper's
// introduction claims for bounded cell radii ("the smaller the cluster
// radius, the more the frequency reuse").
//
// Because GS³'s cells sit on an exact hexagonal lattice, the classic
// cellular reuse patterns apply directly: the reuse-3 sublattice
// coloring gives every cell a channel from a fixed set of 3 such that
// no two neighboring cells share one — the minimum possible, since the
// triangular adjacency graph contains triangles. Irregular clusterings
// (LEACH, hop-bounded) have no such structure and need a greedy
// coloring with more channels.
package channel

import (
	"fmt"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/hexlat"
	"gs3/internal/radio"
)

// Assignment maps cell heads to channel indices.
type Assignment struct {
	Channels map[radio.NodeID]int
	// Count is the number of distinct channels used.
	Count int
}

// Reuse3 assigns each cell one of 3 channels by the hexagonal reuse-3
// sublattice pattern: a cell with lattice coordinate (a, b) relative to
// the big node's cell gets channel (a − b) mod 3. Adjacent lattice
// cells always differ, so no two neighboring cells share a channel.
// Cells are located by their OIL (the unshifted lattice point), which
// stays exact through structure slides.
func Reuse3(snap core.Snapshot) (Assignment, error) {
	bigView, ok := snap.View(snap.BigID)
	if !ok {
		return Assignment{}, fmt.Errorf("channel: snapshot has no big node")
	}
	origin := bigView.OIL
	lat := hexlat.New(origin, snap.Config.HeadSpacing(), snap.Config.GR)
	out := Assignment{Channels: map[radio.NodeID]int{}}
	used := map[int]bool{}
	for _, h := range snap.Heads() {
		c := lat.Nearest(h.OIL)
		// Guard against off-lattice OILs (corrupt state): refuse rather
		// than hand out a colliding channel.
		if lat.Center(c).Dist(h.OIL) > snap.Config.Rt {
			return Assignment{}, fmt.Errorf("channel: head %d has off-lattice OIL", h.ID)
		}
		ch := ((c.A-c.B)%3 + 3) % 3
		out.Channels[h.ID] = ch
		used[ch] = true
	}
	out.Count = len(used)
	return out, nil
}

// Conflicts returns the pairs of heads within interferenceRange of each
// other that share a channel. A correct assignment returns none for
// any range up to the reuse distance (3R for reuse-3: the next
// same-channel cell center is √3·√3R = 3R away).
func Conflicts(snap core.Snapshot, a Assignment, interferenceRange float64) [][2]radio.NodeID {
	heads := snap.Heads()
	var out [][2]radio.NodeID
	for i, h := range heads {
		for _, o := range heads[i+1:] {
			if h.Pos.Dist(o.Pos) > interferenceRange {
				continue
			}
			if a.Channels[h.ID] == a.Channels[o.ID] {
				out = append(out, [2]radio.NodeID{h.ID, o.ID})
			}
		}
	}
	return out
}

// Greedy colors arbitrary cluster-head positions so no two heads within
// interferenceRange share a channel, using first-fit in index order —
// the best an unstructured clustering can do without global
// coordination. It returns the assignment and the channel count.
func Greedy(positions []geom.Point, interferenceRange float64) Assignment {
	out := Assignment{Channels: map[radio.NodeID]int{}}
	maxCh := 0
	for i, p := range positions {
		usedHere := map[int]bool{}
		for j := 0; j < i; j++ {
			if p.Dist(positions[j]) <= interferenceRange {
				usedHere[out.Channels[radio.NodeID(j)]] = true
			}
		}
		ch := 0
		for usedHere[ch] {
			ch++
		}
		out.Channels[radio.NodeID(i)] = ch
		if ch+1 > maxCh {
			maxCh = ch + 1
		}
	}
	out.Count = maxCh
	return out
}
