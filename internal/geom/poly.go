package geom

// Polygon is a simple (non-self-intersecting) polygon given by its
// vertices in order; the closing edge from the last vertex back to the
// first is implicit. Polygons model radio obstacles: regions that
// block line-of-sight links and clear deployed nodes. A Polygon is
// plain data — copy the slice to copy the polygon — and all methods
// are pure reads, safe to call from any goroutine.
type Polygon []Point

// Valid reports whether the polygon has enough vertices to bound an
// area.
func (pg Polygon) Valid() bool {
	return len(pg) >= 3
}

// Contains reports whether p lies strictly inside the polygon, by
// even-odd ray casting. Points exactly on an edge may land on either
// side; obstacle geometry should not be degenerate at that precision.
func (pg Polygon) Contains(p Point) bool {
	if !pg.Valid() {
		return false
	}
	inside := false
	n := len(pg)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg[i], pg[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			// x-coordinate where the edge crosses the horizontal through p.
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// Crosses reports whether segment ab intersects any edge of the
// polygon.
func (pg Polygon) Crosses(a, b Point) bool {
	if !pg.Valid() {
		return false
	}
	n := len(pg)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		if SegmentsIntersect(a, b, pg[i], pg[j]) {
			return true
		}
	}
	return false
}

// Occludes reports whether the polygon blocks the line of sight from a
// to b: the segment crosses an edge, or lies entirely inside (both
// endpoints in the interior, so no edge is crossed). The test is
// symmetric in a and b by construction.
func (pg Polygon) Occludes(a, b Point) bool {
	return pg.Crosses(a, b) || pg.Contains(a.Midpoint(b))
}

// AnyOccludes reports whether any polygon in obs occludes the segment
// from a to b. An empty slice occludes nothing.
func AnyOccludes(obs []Polygon, a, b Point) bool {
	for _, pg := range obs {
		if pg.Occludes(a, b) {
			return true
		}
	}
	return false
}

// SegmentsIntersect reports whether closed segments ab and cd share at
// least one point, via orientation tests (collinear overlaps included).
func SegmentsIntersect(a, b, c, d Point) bool {
	o1 := orient(a, b, c)
	o2 := orient(a, b, d)
	o3 := orient(c, d, a)
	o4 := orient(c, d, b)
	if ((o1 > 0 && o2 < 0) || (o1 < 0 && o2 > 0)) &&
		((o3 > 0 && o4 < 0) || (o3 < 0 && o4 > 0)) {
		return true
	}
	// Collinear cases: an endpoint of one segment lies on the other.
	return (o1 == 0 && onSegment(a, b, c)) ||
		(o2 == 0 && onSegment(a, b, d)) ||
		(o3 == 0 && onSegment(c, d, a)) ||
		(o4 == 0 && onSegment(c, d, b))
}

// orient returns the sign of the signed area of triangle abc: positive
// when c lies counter-clockwise of ray ab, negative clockwise, zero
// collinear.
func orient(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// onSegment reports whether collinear point p lies within the bounding
// box of segment ab.
func onSegment(a, b, p Point) bool {
	return min(a.X, b.X) <= p.X && p.X <= max(a.X, b.X) &&
		min(a.Y, b.Y) <= p.Y && p.Y <= max(a.Y, b.Y)
}
