package geom

import (
	"math"
	"math/rand"
	"testing"
)

// unitSquare is the polygon (0,0)-(4,0)-(4,4)-(0,4).
var square = Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}}

// lShape is a non-convex polygon: a 4×4 square with the top-right 2×2
// quadrant removed.
var lShape = Polygon{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}

func TestPolygonContains(t *testing.T) {
	cases := []struct {
		pg   Polygon
		p    Point
		want bool
	}{
		{square, Point{2, 2}, true},
		{square, Point{5, 2}, false},
		{square, Point{-1, -1}, false},
		{square, Point{3.9, 0.1}, true},
		{lShape, Point{1, 1}, true},
		{lShape, Point{3, 3}, false}, // removed quadrant
		{lShape, Point{1, 3}, true},
		{lShape, Point{3, 1}, true},
		{Polygon{{0, 0}, {1, 1}}, Point{0.5, 0.5}, false}, // degenerate
		{nil, Point{0, 0}, false},
	}
	for i, c := range cases {
		if got := c.pg.Contains(c.p); got != c.want {
			t.Errorf("case %d: Contains(%v) = %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		a, b, c, d Point
		want       bool
	}{
		// Proper crossing.
		{Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0}, true},
		// Disjoint parallel.
		{Point{0, 0}, Point{2, 0}, Point{0, 1}, Point{2, 1}, false},
		// Shared endpoint.
		{Point{0, 0}, Point{2, 0}, Point{2, 0}, Point{2, 2}, true},
		// T-junction: endpoint on interior of other segment.
		{Point{0, 0}, Point{4, 0}, Point{2, 0}, Point{2, 2}, true},
		// Collinear overlapping.
		{Point{0, 0}, Point{3, 0}, Point{1, 0}, Point{4, 0}, true},
		// Collinear disjoint.
		{Point{0, 0}, Point{1, 0}, Point{2, 0}, Point{3, 0}, false},
		// Near miss.
		{Point{0, 0}, Point{1, 1}, Point{1.1, 0}, Point{2, 1}, false},
	}
	for i, c := range cases {
		if got := SegmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("case %d: SegmentsIntersect = %v, want %v", i, got, c.want)
		}
		// Intersection is symmetric in both segment order and endpoint
		// order.
		if got := SegmentsIntersect(c.c, c.d, c.a, c.b); got != c.want {
			t.Errorf("case %d: swapped segments: got %v, want %v", i, got, c.want)
		}
		if got := SegmentsIntersect(c.b, c.a, c.d, c.c); got != c.want {
			t.Errorf("case %d: reversed endpoints: got %v, want %v", i, got, c.want)
		}
	}
}

func TestPolygonOccludes(t *testing.T) {
	cases := []struct {
		pg   Polygon
		a, b Point
		want bool
	}{
		// Through the square.
		{square, Point{-1, 2}, Point{5, 2}, true},
		// Entirely outside, passing beside it.
		{square, Point{-1, 5}, Point{5, 5}, false},
		// Entirely inside: no edge crossed, midpoint interior.
		{square, Point{1, 1}, Point{3, 3}, true},
		// One endpoint inside.
		{square, Point{2, 2}, Point{6, 2}, true},
		// Around the L-shape's notch: both endpoints in the removed
		// quadrant, segment stays out of the polygon.
		{lShape, Point{3, 3}, Point{3.5, 3.5}, false},
		// Across the notch, clipping the inner corner region.
		{lShape, Point{1, 3}, Point{3, 1}, true},
		// Degenerate polygon never occludes.
		{Polygon{{0, 0}, {1, 1}}, Point{0, 1}, Point{1, 0}, false},
	}
	for i, c := range cases {
		if got := c.pg.Occludes(c.a, c.b); got != c.want {
			t.Errorf("case %d: Occludes(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestOccludesSymmetry is the occlusion symmetry property test: for
// random segments against random convex-ish obstacles, A occluded from
// B implies B occluded from A.
func TestOccludesSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randPoly := func() Polygon {
		// Star-shaped polygon around a random center: always simple.
		cx, cy := rng.Float64()*10, rng.Float64()*10
		n := 3 + rng.Intn(5)
		pg := make(Polygon, n)
		for i := range pg {
			theta := 2 * math.Pi * float64(i) / float64(n)
			r := 0.5 + rng.Float64()*3
			pg[i] = Point{cx + r*math.Cos(theta), cy + r*math.Sin(theta)}
		}
		return pg
	}
	for trial := 0; trial < 2000; trial++ {
		pg := randPoly()
		a := Point{rng.Float64() * 10, rng.Float64() * 10}
		b := Point{rng.Float64() * 10, rng.Float64() * 10}
		if pg.Occludes(a, b) != pg.Occludes(b, a) {
			t.Fatalf("trial %d: asymmetric occlusion: poly=%v a=%v b=%v", trial, pg, a, b)
		}
	}
}

func TestAnyOccludes(t *testing.T) {
	obs := []Polygon{square, {{10, 10}, {12, 10}, {12, 12}, {10, 12}}}
	if !AnyOccludes(obs, Point{-1, 2}, Point{5, 2}) {
		t.Error("segment through first obstacle should be occluded")
	}
	if !AnyOccludes(obs, Point{9, 11}, Point{13, 11}) {
		t.Error("segment through second obstacle should be occluded")
	}
	if AnyOccludes(obs, Point{-1, 6}, Point{5, 6}) {
		t.Error("clear segment should not be occluded")
	}
	if AnyOccludes(nil, Point{0, 0}, Point{100, 100}) {
		t.Error("empty obstacle set must occlude nothing")
	}
}
