// Package geom provides the 2-D planar geometry used throughout GS³:
// points, vectors, signed angles, sectors, and distance predicates.
//
// All angles are in radians. Signed angles follow the paper's convention
// for the ranking tuple ⟨d, |A|, A⟩: the angle A between a reference
// direction and a target direction is negative when the target lies
// clockwise of the reference and positive when counter-clockwise, with
// A ∈ (−π, π].
package geom

import "math"

// Point is a location on the 2-D plane.
type Point struct {
	X, Y float64
}

// Vec is a displacement on the 2-D plane.
type Vec struct {
	X, Y float64
}

// Sub returns the vector from q to p (p − q).
func (p Point) Sub(q Point) Vec {
	return Vec{p.X - q.X, p.Y - q.Y}
}

// Add returns the point p translated by v.
func (p Point) Add(v Vec) Point {
	return Point{p.X + v.X, p.Y + v.Y}
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q.
// It avoids the square root for comparison-only uses.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Midpoint returns the midpoint of segment pq.
func (p Point) Midpoint(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec {
	return Vec{v.X * k, v.Y * k}
}

// Add returns the vector sum v + w.
func (v Vec) Add(w Vec) Vec {
	return Vec{v.X + w.X, v.Y + w.Y}
}

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 {
	return math.Hypot(v.X, v.Y)
}

// Angle returns the direction of v in radians, in (−π, π].
// The zero vector has angle 0.
func (v Vec) Angle() float64 {
	if v.X == 0 && v.Y == 0 {
		return 0
	}
	return math.Atan2(v.Y, v.X)
}

// Unit returns the unit vector in the direction of v.
// The zero vector is returned unchanged.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l == 0 {
		return v
	}
	return Vec{v.X / l, v.Y / l}
}

// Rotate returns v rotated counter-clockwise by theta radians.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 {
	return v.X*w.X + v.Y*w.Y
}

// Cross returns the z-component of the 3-D cross product v×w.
// It is positive when w lies counter-clockwise of v.
func (v Vec) Cross(w Vec) float64 {
	return v.X*w.Y - v.Y*w.X
}

// UnitAt returns the unit vector pointing in direction theta.
func UnitAt(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{c, s}
}

// NormalizeAngle maps theta into (−π, π].
func NormalizeAngle(theta float64) float64 {
	t := math.Mod(theta, 2*math.Pi)
	if t <= -math.Pi {
		t += 2 * math.Pi
	} else if t > math.Pi {
		t -= 2 * math.Pi
	}
	return t
}

// SignedAngle returns the signed angle A from direction ref to direction
// dir, in (−π, π]. A is positive when dir lies counter-clockwise of ref
// (the paper's convention for the ranking tuple).
func SignedAngle(ref, dir Vec) float64 {
	return NormalizeAngle(dir.Angle() - ref.Angle())
}

// Sector is an angular region around an apex, measured relative to a
// reference direction: all directions whose signed angle from Ref lies
// in [Lo, Hi]. Lo and Hi are in radians; Lo ≤ Hi. A full circle is
// Lo = −π, Hi = π (or any span ≥ 2π).
type Sector struct {
	Apex   Point
	Ref    Vec
	Lo, Hi float64
	Radius float64
}

// Contains reports whether p lies inside the sector (within Radius of
// the apex and within the angular span).
func (s Sector) Contains(p Point) bool {
	v := p.Sub(s.Apex)
	if v.Len() > s.Radius {
		return false
	}
	if s.Hi-s.Lo >= 2*math.Pi {
		return true
	}
	if v.X == 0 && v.Y == 0 {
		return true
	}
	a := SignedAngle(s.Ref, v)
	// The span may straddle the ±π wrap once normalized; test both the
	// direct value and its 2π translates.
	return (a >= s.Lo && a <= s.Hi) ||
		(a+2*math.Pi >= s.Lo && a+2*math.Pi <= s.Hi) ||
		(a-2*math.Pi >= s.Lo && a-2*math.Pi <= s.Hi)
}

// Degrees converts d degrees to radians.
func Degrees(d float64) float64 {
	return d * math.Pi / 180
}

// ToDegrees converts r radians to degrees.
func ToDegrees(r float64) float64 {
	return r * 180 / math.Pi
}
