package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// clamp maps arbitrary quick-generated floats into a finite range where
// float64 arithmetic is exact enough for the property under test.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEq(got, tt.want) {
				t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); !almostEq(got, tt.want*tt.want) {
				t.Errorf("Dist2 = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{clamp(ax), clamp(ay)}, Point{clamp(bx), clamp(by)}
		return almostEq(p.Dist(q), q.Dist(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubAddRoundTrip(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{clamp(ax), clamp(ay)}, Point{clamp(bx), clamp(by)}
		r := q.Add(p.Sub(q))
		return almostEq(r.X, p.X) && almostEq(r.Y, p.Y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidpoint(t *testing.T) {
	m := Point{0, 0}.Midpoint(Point{4, 6})
	if m != (Point{2, 3}) {
		t.Errorf("Midpoint = %v, want {2 3}", m)
	}
}

func TestVecAngle(t *testing.T) {
	tests := []struct {
		v    Vec
		want float64
	}{
		{Vec{1, 0}, 0},
		{Vec{0, 1}, math.Pi / 2},
		{Vec{-1, 0}, math.Pi},
		{Vec{0, -1}, -math.Pi / 2},
		{Vec{1, 1}, math.Pi / 4},
		{Vec{0, 0}, 0},
	}
	for _, tt := range tests {
		if got := tt.v.Angle(); !almostEq(got, tt.want) {
			t.Errorf("Angle(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestRotate(t *testing.T) {
	v := Vec{1, 0}.Rotate(math.Pi / 2)
	if !almostEq(v.X, 0) || !almostEq(v.Y, 1) {
		t.Errorf("Rotate 90° = %v, want {0 1}", v)
	}
	// Rotation preserves length.
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		// Clamp to reasonable magnitudes to avoid float overflow noise.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		w := Vec{x, y}
		r := w.Rotate(theta)
		return math.Abs(w.Len()-r.Len()) < 1e-6*(1+w.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnit(t *testing.T) {
	u := Vec{3, 4}.Unit()
	if !almostEq(u.Len(), 1) {
		t.Errorf("Unit length = %v, want 1", u.Len())
	}
	z := Vec{0, 0}.Unit()
	if z != (Vec{0, 0}) {
		t.Errorf("Unit of zero = %v, want zero", z)
	}
}

func TestUnitAt(t *testing.T) {
	for _, theta := range []float64{0, 1, -1, math.Pi, -math.Pi / 3, 2.7} {
		v := UnitAt(theta)
		if !almostEq(v.Len(), 1) {
			t.Errorf("UnitAt(%v) length = %v", theta, v.Len())
		}
		if !almostEq(NormalizeAngle(v.Angle()-theta), 0) {
			t.Errorf("UnitAt(%v) angle = %v", theta, v.Angle())
		}
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi}, // −π maps to π: range is (−π, π]
		{2 * math.Pi, 0},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi / 2, math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); !almostEq(got, tt.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		theta = math.Mod(theta, 1e4)
		n := NormalizeAngle(theta)
		return n > -math.Pi-eps && n <= math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedAngle(t *testing.T) {
	tests := []struct {
		name     string
		ref, dir Vec
		want     float64
	}{
		{"same direction", Vec{1, 0}, Vec{2, 0}, 0},
		{"ccw quarter", Vec{1, 0}, Vec{0, 1}, math.Pi / 2},
		{"cw quarter", Vec{1, 0}, Vec{0, -1}, -math.Pi / 2},
		{"opposite", Vec{1, 0}, Vec{-1, 0}, math.Pi},
		{"ccw from diagonal", Vec{1, 1}, Vec{-1, 1}, math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SignedAngle(tt.ref, tt.dir); !almostEq(got, tt.want) {
				t.Errorf("SignedAngle = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCrossSignMatchesSignedAngle(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		v := Vec{float64(ax), float64(ay)}
		w := Vec{float64(bx), float64(by)}
		if v.Len() == 0 || w.Len() == 0 {
			return true
		}
		a := SignedAngle(v, w)
		c := v.Cross(w)
		if almostEq(a, math.Pi) || almostEq(a, 0) {
			return true // collinear: cross ≈ 0
		}
		return (a > 0) == (c > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSectorContains(t *testing.T) {
	// 120° forward sector looking along +x, radius 10.
	s := Sector{
		Apex:   Point{0, 0},
		Ref:    Vec{1, 0},
		Lo:     Degrees(-60),
		Hi:     Degrees(60),
		Radius: 10,
	}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"straight ahead", Point{5, 0}, true},
		{"edge of radius", Point{10, 0}, true},
		{"beyond radius", Point{10.01, 0}, false},
		{"upper edge inside", Point{1, 1.7}, true},
		{"behind", Point{-5, 0}, false},
		{"above 60 degrees", Point{1, 2}, false},
		{"apex itself", Point{0, 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestSectorFullCircle(t *testing.T) {
	s := Sector{Apex: Point{0, 0}, Ref: Vec{1, 0}, Lo: -math.Pi, Hi: math.Pi, Radius: 5}
	for _, theta := range []float64{0, 1, 2, 3, -1, -2, -3, math.Pi} {
		p := Point{}.Add(UnitAt(theta).Scale(4))
		if !s.Contains(p) {
			t.Errorf("full-circle sector should contain %v", p)
		}
	}
}

func TestSectorWrapAround(t *testing.T) {
	// Sector looking along −x with span ±60°: directions near ±π.
	s := Sector{
		Apex:   Point{0, 0},
		Ref:    Vec{-1, 0},
		Lo:     Degrees(-60),
		Hi:     Degrees(60),
		Radius: 10,
	}
	if !s.Contains(Point{-5, 0}) {
		t.Error("should contain point straight behind the origin direction")
	}
	if !s.Contains(Point{-5, 2}) || !s.Contains(Point{-5, -2}) {
		t.Error("should contain points slightly off the −x axis")
	}
	if s.Contains(Point{5, 0}) {
		t.Error("should not contain point opposite the sector")
	}
}

func TestDegreesRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 30, 60, 90, 180, -45, 360} {
		if got := ToDegrees(Degrees(d)); !almostEq(got, d) {
			t.Errorf("round trip %v = %v", d, got)
		}
	}
}

func TestDotCross(t *testing.T) {
	v, w := Vec{1, 2}, Vec{3, 4}
	if got := v.Dot(w); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := v.Cross(w); got != -2 {
		t.Errorf("Cross = %v, want -2", got)
	}
}

func TestVecScaleAdd(t *testing.T) {
	v := Vec{1, -2}.Scale(3).Add(Vec{0.5, 0.5})
	if !almostEq(v.X, 3.5) || !almostEq(v.Y, -5.5) {
		t.Errorf("Scale/Add = %v", v)
	}
}
