package radio

import (
	"testing"

	"gs3/internal/geom"
)

// benchMedium builds a 40×40 grid of nodes with 25-unit spacing, so a
// 100-radius query sees ~50 nodes across a few buckets — the same
// density regime as the protocol's search-region queries.
func benchMedium(b *testing.B) *Medium {
	b.Helper()
	m, err := NewMedium(Params{MaxRange: 100, DiffusionSpeed: 100}, nil)
	if err != nil {
		b.Fatal(err)
	}
	id := NodeID(0)
	for x := 0; x < 40; x++ {
		for y := 0; y < 40; y++ {
			m.Place(id, geom.Point{X: float64(x) * 25, Y: float64(y) * 25})
			id++
		}
	}
	return m
}

// BenchmarkWithinRange measures the spatial query hot path. The
// "append" case is the steady-state protocol path and must report
// 0 allocs/op (TestWithinRangeAppendZeroAlloc enforces it); the
// "alloc" case is the compatibility wrapper.
func BenchmarkWithinRange(b *testing.B) {
	center := geom.Point{X: 500, Y: 500}
	b.Run("append", func(b *testing.B) {
		m := benchMedium(b)
		var buf []NodeID
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = m.WithinRangeAppend(buf[:0], center, 100, None)
			if len(buf) == 0 {
				b.Fatal("empty result")
			}
		}
	})
	b.Run("alloc", func(b *testing.B) {
		m := benchMedium(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ids := m.WithinRange(center, 100, None); len(ids) == 0 {
				b.Fatal("empty result")
			}
		}
	})
}

// BenchmarkBroadcast measures the zero-allocation broadcast path (the
// per-Medium receiver buffer).
func BenchmarkBroadcast(b *testing.B) {
	m := benchMedium(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ids, _ := m.Broadcast(820, 100); len(ids) == 0 {
			b.Fatal("no receivers")
		}
	}
}

// TestWithinRangeAppendZeroAlloc pins the acceptance bar of the append
// API: once the destination buffer has warmed up to the result size,
// queries allocate nothing.
func TestWithinRangeAppendZeroAlloc(t *testing.T) {
	m, err := NewMedium(Params{MaxRange: 100, DiffusionSpeed: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := NodeID(0)
	for x := 0; x < 20; x++ {
		for y := 0; y < 20; y++ {
			m.Place(id, geom.Point{X: float64(x) * 25, Y: float64(y) * 25})
			id++
		}
	}
	center := geom.Point{X: 250, Y: 250}
	var buf []NodeID
	buf = m.WithinRangeAppend(buf, center, 100, None) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		buf = m.WithinRangeAppend(buf[:0], center, 100, None)
	})
	if allocs != 0 {
		t.Errorf("WithinRangeAppend steady state: %v allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if ids, _ := m.Broadcast(0, 100); len(ids) == 0 {
			t.Fatal("no receivers")
		}
	})
	if allocs != 0 {
		t.Errorf("Broadcast steady state: %v allocs/op, want 0", allocs)
	}
}
