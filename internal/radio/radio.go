// Package radio models the wireless substrate GS³ runs on.
//
// The paper's system model (§2.1) grants nodes three capabilities, all
// of which this package provides:
//
//   - adjustable transmission range;
//   - relative-location detection (range-bounded neighborhood queries);
//   - reliable destination-aware transmission, with destination-unaware
//     broadcast allowed to be unreliable (a configurable drop rate).
//
// The medium also keeps the accounting the experiments need: message
// counts, and the geographic footprint of traffic (so healing locality
// can be measured as "how far from the perturbation did messages flow").
//
// Propagation delay is distance/DiffusionSpeed plus a fixed per-message
// overhead; convergence times in the paper are stated in units of
// one-way message diffusion time, which this realizes directly.
//
// # Storage layout
//
// Node IDs are dense small integers (the network allocates them
// sequentially from 0), so per-node medium state — position, presence,
// blackout, head-role flag — lives in plain ID-indexed slices rather
// than maps. The spatial index is a pair of grids: one over all
// on-medium nodes, and one over just the head-role nodes, so queries
// that only want heads (the protocol's most frequent query by far) run
// in output-sensitive time instead of scanning every node in range.
package radio

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"gs3/internal/fault"
	"gs3/internal/geom"
	"gs3/internal/rng"
)

// Unicast failure causes, exposed as sentinels so callers (the data
// plane's per-hop accounting in particular) can classify a failed send
// with errors.Is instead of parsing messages.
var (
	// ErrNotOnMedium: an endpoint is absent (dead or never placed).
	ErrNotOnMedium = errors.New("endpoint not on medium")
	// ErrBlackout: an endpoint is transiently crashed (fault layer).
	ErrBlackout = errors.New("endpoint blacked out")
	// ErrOutOfRange: the receiver is beyond the requested range.
	ErrOutOfRange = errors.New("receiver out of range")
	// ErrDeliveryLost: the fault injector dropped the delivery in flight.
	ErrDeliveryLost = errors.New("delivery lost")
	// ErrOccluded: an obstacle blocks the line of sight between the
	// endpoints (SetObstacles).
	ErrOccluded = errors.New("link occluded by obstacle")
)

// NodeID identifies a node on the medium. The big node is always ID 0.
// IDs are allocated densely from 0 by the network layer; the medium's
// per-node state is indexed by them directly.
type NodeID int32

// None is the absent-node sentinel.
const None NodeID = -1

// Params configures the medium.
type Params struct {
	// MaxRange is the maximum transmission range of small nodes.
	MaxRange float64
	// DiffusionSpeed is the paper's c₁: the distance a message diffuses
	// per unit of virtual time.
	DiffusionSpeed float64
	// PerMessageOverhead is the fixed latency added to every message.
	PerMessageOverhead float64
	// BroadcastLoss is the per-receiver drop probability for
	// destination-unaware transmissions. Destination-aware transmission
	// is always reliable (the model's assumption).
	BroadcastLoss float64
	// CellSize is the spatial-index bucket size; 0 picks MaxRange.
	CellSize float64
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.MaxRange <= 0 {
		return fmt.Errorf("radio: MaxRange must be positive, got %v", p.MaxRange)
	}
	if p.DiffusionSpeed <= 0 {
		return fmt.Errorf("radio: DiffusionSpeed must be positive, got %v", p.DiffusionSpeed)
	}
	if p.PerMessageOverhead < 0 {
		return fmt.Errorf("radio: negative PerMessageOverhead %v", p.PerMessageOverhead)
	}
	if p.BroadcastLoss < 0 || p.BroadcastLoss >= 1 {
		return fmt.Errorf("radio: BroadcastLoss must be in [0,1), got %v", p.BroadcastLoss)
	}
	return nil
}

// Stats is the medium's traffic accounting. The fault counters stay
// zero unless an injector is installed (SetFaults), so fault-free runs
// report exactly the pre-fault numbers.
type Stats struct {
	Broadcasts   uint64 // destination-unaware sends
	Unicasts     uint64 // destination-aware sends
	Deliveries   uint64 // per-receiver deliveries
	Dropped      uint64 // per-receiver broadcast losses (BroadcastLoss model)
	RangeQueries uint64

	FaultDrops    uint64 // deliveries lost to the fault injector
	FaultDups     uint64 // deliveries duplicated by the fault injector
	BlackoutDrops uint64 // deliveries lost to a blacked-out endpoint
	Blackouts     uint64 // blackout episodes started
	Retries       uint64 // protocol re-issues after a timeout (CountRetry)

	// OcclusionBlocks counts unicasts refused because an obstacle
	// blocked the line of sight. Broadcast receivers behind obstacles
	// are simply never in range, so they leave no counter trail here.
	OcclusionBlocks uint64
}

// Medium is the shared wireless medium.
//
// Medium is single-threaded for mutation, but its read-only accessors
// — Position, Alive, InBlackout, Epoch, RegionEpoch,
// RegionChangedSince, Occluded, Dist, and the *Uncounted range queries
// — may run on any number of goroutines concurrently as long as no
// writer (Place, Remove, SetHeadRole, SetBlackout, Touch, Broadcast,
// counted queries, …) executes at the same time. The sharded configure
// and sweep executors rely on exactly that window: their parallel
// phases only read, and every write is deferred to a serial merge.
type Medium struct {
	params Params
	src    *rng.Source

	// Per-node state, indexed by NodeID (struct-of-arrays): pos is the
	// position, on marks presence on the medium, headRole mirrors the
	// protocol's head-role flag (SetHeadRole), blackout the transient
	// crashes. The slices grow together (ensure) and never shrink.
	pos      []geom.Point
	on       []bool
	headRole []bool
	blackout []bool
	count    int // number of on-medium nodes
	nBlack   int // number of blacked-out nodes

	grid     map[gridKey][]gridEntry
	headGrid map[gridKey][]gridEntry
	cellSize float64

	// bcast is the reusable receiver buffer for Broadcast: steady-state
	// broadcasts allocate nothing. It is distinct from any caller-owned
	// WithinRangeAppend destination, so a Broadcast result stays valid
	// across interleaved range queries (but not across Broadcasts).
	bcast []NodeID
	// bcastOut is the surviving-receiver buffer used when a fault
	// injector is active: duplication can emit two IDs per receiver, so
	// the in-place ids[:0] aliasing of the fault-free path is unsafe.
	bcastOut []NodeID

	// inj injects message faults; nil means a perfectly reliable
	// medium (beyond BroadcastLoss).
	inj *fault.Injector

	// obstacles are opaque polygons: a link whose line of sight crosses
	// one is dead, and range queries (hence broadcasts) do not see
	// across them. Empty means free space — the pre-obstacle medium,
	// bit for bit.
	obstacles []geom.Polygon

	// sendHook, when set, observes every actual transmission (one call
	// per Broadcast or successful-send-attempt Unicast) with the sender
	// ID. The energy model drains batteries through it. Refused sends
	// (absent endpoint, out of range, occluded, blacked-out sender)
	// never fire it: nothing was transmitted.
	sendHook func(sender NodeID, broadcast bool)

	// epoch is the global topology-change counter and epochs the
	// per-bucket view of it: a bucket's entry is the epoch value at
	// its last change. Place, Remove, blackout toggles, and explicit
	// Touch calls all bump the affected buckets, so a reader that
	// stamped a region with RegionEpoch can later prove "nothing in
	// my query cone changed" with a handful of map reads.
	epoch  uint64
	epochs map[gridKey]uint64
	// epochFloor is the epoch of the last TouchAll: a change with
	// unbounded reach (e.g. big-node role state that every head's
	// root test reads) that no bucket ring could cover. RegionEpoch
	// never reports below it.
	epochFloor uint64

	stats Stats

	// footprint tracks the positions of senders for locality analysis,
	// gated by a collector set with TraceTraffic.
	trace func(from geom.Point)
}

type gridKey struct{ x, y int }

// gridEntry colocates a node's position with its ID inside the grid
// bucket, so range tests never touch the position slice on the hot
// path. Place and Remove keep it in sync with pos.
type gridEntry struct {
	id  NodeID
	pos geom.Point
}

// NewMedium returns an empty medium. src supplies broadcast-loss
// randomness; it may be nil when BroadcastLoss is 0.
func NewMedium(params Params, src *rng.Source) (*Medium, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.BroadcastLoss > 0 && src == nil {
		return nil, fmt.Errorf("radio: BroadcastLoss > 0 requires a random source")
	}
	cs := params.CellSize
	if cs <= 0 {
		cs = params.MaxRange
	}
	return &Medium{
		params:   params,
		src:      src,
		grid:     make(map[gridKey][]gridEntry),
		headGrid: make(map[gridKey][]gridEntry),
		epochs:   make(map[gridKey]uint64),
		cellSize: cs,
	}, nil
}

// Params returns the medium's configuration.
func (m *Medium) Params() Params {
	return m.params
}

// Reserve pre-sizes the per-node state slices for n nodes, so a bulk
// deployment's Place calls grow nothing. Purely an optimization.
func (m *Medium) Reserve(n int) {
	if n <= cap(m.pos) {
		return
	}
	m.pos = append(make([]geom.Point, 0, n), m.pos...)
	m.on = append(make([]bool, 0, n), m.on...)
	m.headRole = append(make([]bool, 0, n), m.headRole...)
	m.blackout = append(make([]bool, 0, n), m.blackout...)
}

// ensure grows the per-node slices to cover id.
func (m *Medium) ensure(id NodeID) {
	for int(id) >= len(m.pos) {
		m.pos = append(m.pos, geom.Point{})
		m.on = append(m.on, false)
		m.headRole = append(m.headRole, false)
		m.blackout = append(m.blackout, false)
	}
}

// known reports whether id indexes the per-node slices.
func (m *Medium) known(id NodeID) bool {
	return id >= 0 && int(id) < len(m.on)
}

// Stats returns a copy of the traffic counters.
func (m *Medium) Stats() Stats {
	return m.stats
}

// ResetStats zeroes the traffic counters.
func (m *Medium) ResetStats() {
	m.stats = Stats{}
}

// AddStats credits d onto the traffic counters. It exists for callers
// that elide provably redundant work (a sweep whose every query and
// broadcast would reproduce the previous result bit-for-bit) but must
// keep the externally observable accounting identical to having done
// it: they replay the recorded per-sweep counter delta instead.
func (m *Medium) AddStats(d Stats) {
	m.stats.Broadcasts += d.Broadcasts
	m.stats.Unicasts += d.Unicasts
	m.stats.Deliveries += d.Deliveries
	m.stats.Dropped += d.Dropped
	m.stats.RangeQueries += d.RangeQueries
	m.stats.FaultDrops += d.FaultDrops
	m.stats.FaultDups += d.FaultDups
	m.stats.BlackoutDrops += d.BlackoutDrops
	m.stats.Blackouts += d.Blackouts
	m.stats.Retries += d.Retries
	m.stats.OcclusionBlocks += d.OcclusionBlocks
}

// Sub returns the counter delta s−prev (field-wise). Meaningful when
// prev is an earlier reading of the same counters.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Broadcasts:    s.Broadcasts - prev.Broadcasts,
		Unicasts:      s.Unicasts - prev.Unicasts,
		Deliveries:    s.Deliveries - prev.Deliveries,
		Dropped:       s.Dropped - prev.Dropped,
		RangeQueries:  s.RangeQueries - prev.RangeQueries,
		FaultDrops:    s.FaultDrops - prev.FaultDrops,
		FaultDups:     s.FaultDups - prev.FaultDups,
		BlackoutDrops: s.BlackoutDrops - prev.BlackoutDrops,
		Blackouts:     s.Blackouts - prev.Blackouts,
		Retries:       s.Retries - prev.Retries,

		OcclusionBlocks: s.OcclusionBlocks - prev.OcclusionBlocks,
	}
}

// Add returns the field-wise sum s+d. The sharded sweep executor uses
// it to aggregate replay deltas per chunk before crediting them with
// AddStats; all fields are uint64, so chunked addition matches the
// serial running total bit for bit.
func (s Stats) Add(d Stats) Stats {
	return Stats{
		Broadcasts:    s.Broadcasts + d.Broadcasts,
		Unicasts:      s.Unicasts + d.Unicasts,
		Deliveries:    s.Deliveries + d.Deliveries,
		Dropped:       s.Dropped + d.Dropped,
		RangeQueries:  s.RangeQueries + d.RangeQueries,
		FaultDrops:    s.FaultDrops + d.FaultDrops,
		FaultDups:     s.FaultDups + d.FaultDups,
		BlackoutDrops: s.BlackoutDrops + d.BlackoutDrops,
		Blackouts:     s.Blackouts + d.Blackouts,
		Retries:       s.Retries + d.Retries,

		OcclusionBlocks: s.OcclusionBlocks + d.OcclusionBlocks,
	}
}

// TraceSend replays the traffic-trace hook for an elided transmission
// from node id's current position, so footprint measurements see the
// same sender positions whether or not the transmission was elided.
func (m *Medium) TraceSend(id NodeID) {
	if m.trace != nil && m.known(id) && m.on[id] {
		m.trace(m.pos[id])
	}
}

// Tracing reports whether a traffic-trace collector is installed.
func (m *Medium) Tracing() bool {
	return m.trace != nil
}

// SetFaults installs (or, with nil, removes) a fault injector. The
// medium owns no randomness of the injector; it only asks it questions,
// in deterministic per-receiver order.
func (m *Medium) SetFaults(inj *fault.Injector) {
	m.inj = inj
}

// Faults returns the installed fault injector (nil when the medium is
// reliable).
func (m *Medium) Faults() *fault.Injector {
	return m.inj
}

// SetObstacles installs the opaque polygons that occlude the medium
// (nil or empty restores free space). The slice is copied; later caller
// mutations do not leak in. Installing obstacles is a topology change
// with unbounded reach, so it bumps the global epoch floor.
func (m *Medium) SetObstacles(obs []geom.Polygon) {
	if len(obs) == 0 {
		m.obstacles = nil
	} else {
		m.obstacles = make([]geom.Polygon, len(obs))
		for i, o := range obs {
			m.obstacles[i] = append(geom.Polygon(nil), o...)
		}
	}
	m.TouchAll()
}

// Obstacles returns the installed obstacle polygons (shared, read-only;
// nil in free space).
func (m *Medium) Obstacles() []geom.Polygon {
	return m.obstacles
}

// Occluded reports whether an obstacle blocks the line of sight between
// two on-medium nodes. Absent nodes are never occluded (they are not on
// the medium at all); with no obstacles installed it is constant false.
// Occlusion is symmetric: Occluded(a, b) == Occluded(b, a).
func (m *Medium) Occluded(a, b NodeID) bool {
	if len(m.obstacles) == 0 {
		return false
	}
	if !m.known(a) || !m.on[a] || !m.known(b) || !m.on[b] {
		return false
	}
	return geom.AnyOccludes(m.obstacles, m.pos[a], m.pos[b])
}

// OccludedPoints reports whether an obstacle blocks the line of sight
// between two positions, independent of any node being there. The
// invariant checker uses it to reason about links a snapshot implies.
func (m *Medium) OccludedPoints(a, b geom.Point) bool {
	return len(m.obstacles) != 0 && geom.AnyOccludes(m.obstacles, a, b)
}

// SetSendHook installs fn to observe every actual transmission (nil
// removes it). Broadcast fires it once per call; Unicast fires it once
// per attempt that actually transmits (the sender was live, in range
// and unoccluded — delivery may still fail at the receiver).
func (m *Medium) SetSendHook(fn func(sender NodeID, broadcast bool)) {
	m.sendHook = fn
}

// CountRetry records one protocol-level re-issue after a timeout. The
// counter lives in the medium's Stats so the radio report of a run
// shows how much extra traffic unreliability caused.
func (m *Medium) CountRetry() {
	m.stats.Retries++
}

// SetBlackout marks id as transiently crashed (true) or restores it
// (false). A blacked-out node neither sends nor receives, but it keeps
// its position and protocol state.
func (m *Medium) SetBlackout(id NodeID, down bool) {
	if down {
		m.ensure(id)
		if !m.blackout[id] {
			m.blackout[id] = true
			m.nBlack++
			m.stats.Blackouts++
			m.Touch(id)
		}
		return
	}
	if m.known(id) && m.blackout[id] {
		m.blackout[id] = false
		m.nBlack--
		m.Touch(id)
	}
}

// InBlackout reports whether id is currently blacked out.
func (m *Medium) InBlackout(id NodeID) bool {
	return m.nBlack > 0 && m.known(id) && m.blackout[id]
}

// TraceTraffic installs fn to be called with the sender position of
// every transmission. Pass nil to stop tracing.
func (m *Medium) TraceTraffic(fn func(from geom.Point)) {
	m.trace = fn
}

func (m *Medium) key(p geom.Point) gridKey {
	return gridKey{int(math.Floor(p.X / m.cellSize)), int(math.Floor(p.Y / m.cellSize))}
}

// bump records a topology change in the bucket holding p.
func (m *Medium) bump(p geom.Point) {
	m.epoch++
	m.epochs[m.key(p)] = m.epoch
}

// Epoch returns the global topology-epoch counter. It increases
// monotonically with every Place, Remove, blackout toggle, Touch, or
// TouchAll; an unchanged value proves the whole medium (and everything
// protocol code reported via Touch) is exactly as it was.
func (m *Medium) Epoch() uint64 {
	return m.epoch
}

// Touch bumps the topology epoch of the bucket holding node id, marking
// a change that spatial queries cannot see — protocol state attached to
// the node (role, links, cell state) rather than its position. Nodes
// not on the medium are ignored; their removal already bumped.
func (m *Medium) Touch(id NodeID) {
	if m.known(id) && m.on[id] {
		m.bump(m.pos[id])
	}
}

// TouchAll marks a change with unbounded reach: every RegionEpoch
// result from now on reflects it, whatever the region.
func (m *Medium) TouchAll() {
	m.epoch++
	m.epochFloor = m.epoch
}

// RegionEpoch returns the maximum topology epoch over every bucket a
// range query at (p, dist) could touch, and never less than the last
// TouchAll. A caller that stamps a computed result with this value can
// later prove the result is still current by comparing a fresh
// RegionEpoch against the stamp: any add/remove/move/blackout/Touch in
// the cone bumps a bucket the same ring scan covers.
// RegionEpoch mutates nothing, so it shares the pure-read concurrency
// contract of WithinRangeUncounted: any number of goroutines may call
// it concurrently as long as no writer runs at the same time.
func (m *Medium) RegionEpoch(p geom.Point, dist float64) uint64 {
	r := int(math.Ceil(dist / m.cellSize))
	base := m.key(p)
	max := m.epochFloor
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			if e := m.epochs[gridKey{base.x + dx, base.y + dy}]; e > max {
				max = e
			}
		}
	}
	return max
}

// RegionChangedSince reports whether any topology change after the
// given epoch reading could be visible to a range query at (p, dist):
// a bucket in the query's ring was bumped past epoch, or a TouchAll
// raised the floor past it. It is RegionEpoch(p, dist) > epoch with an
// early exit, sparing the full ring scan on the common unchanged case.
// The sharded sweep executor uses it to escalate exactly the nodes
// whose query cone overlaps a healing mutation, leaving the rest on
// the replay fast path. The same pure-read concurrency contract as
// RegionEpoch applies.
func (m *Medium) RegionChangedSince(p geom.Point, dist float64, epoch uint64) bool {
	if m.epoch == epoch {
		return false
	}
	if m.epochFloor > epoch {
		return true
	}
	r := int(math.Ceil(dist / m.cellSize))
	base := m.key(p)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			if m.epochs[gridKey{base.x + dx, base.y + dy}] > epoch {
				return true
			}
		}
	}
	return false
}

// Place adds or moves a node. A placed node is alive.
func (m *Medium) Place(id NodeID, p geom.Point) {
	if id < 0 {
		return
	}
	m.ensure(id)
	if m.on[id] {
		old := m.pos[id]
		removeFromGrid(m.grid, id, old, m.cellSize)
		if m.headRole[id] {
			removeFromGrid(m.headGrid, id, old, m.cellSize)
		}
		m.bump(old)
	} else {
		m.count++
	}
	m.pos[id] = p
	m.on[id] = true
	k := m.key(p)
	m.grid[k] = append(m.grid[k], gridEntry{id, p})
	if m.headRole[id] {
		m.headGrid[k] = append(m.headGrid[k], gridEntry{id, p})
	}
	m.bump(p)
}

// Remove takes a node off the medium (death or leave).
func (m *Medium) Remove(id NodeID) {
	if !m.known(id) || !m.on[id] {
		return
	}
	p := m.pos[id]
	removeFromGrid(m.grid, id, p, m.cellSize)
	if m.headRole[id] {
		removeFromGrid(m.headGrid, id, p, m.cellSize)
		m.headRole[id] = false
	}
	m.on[id] = false
	m.count--
	if m.blackout[id] {
		m.blackout[id] = false
		m.nBlack--
	}
	m.bump(p)
}

// SetHeadRole mirrors the protocol's head-role flag for id into the
// medium's head index, so head-only range queries (HeadsWithinRange*)
// answer in output-sensitive time. The protocol layer must call it on
// every transition into or out of a head role; Place keeps the index
// consistent across moves and Remove across deaths. Setting the flag
// does not bump topology epochs — the protocol layer's own Touch on a
// role change covers that.
func (m *Medium) SetHeadRole(id NodeID, head bool) {
	if id < 0 {
		return
	}
	m.ensure(id)
	if m.headRole[id] == head {
		return
	}
	m.headRole[id] = head
	if !m.on[id] {
		return
	}
	p := m.pos[id]
	if head {
		k := m.key(p)
		m.headGrid[k] = append(m.headGrid[k], gridEntry{id, p})
	} else {
		removeFromGrid(m.headGrid, id, p, m.cellSize)
	}
}

// HeadRole reports whether id is currently flagged as a head-role node.
func (m *Medium) HeadRole(id NodeID) bool {
	return m.known(id) && m.headRole[id]
}

func removeFromGrid(grid map[gridKey][]gridEntry, id NodeID, p geom.Point, cellSize float64) {
	k := gridKey{int(math.Floor(p.X / cellSize)), int(math.Floor(p.Y / cellSize))}
	bucket := grid[k]
	for i, e := range bucket {
		if e.id == id {
			bucket[i] = bucket[len(bucket)-1]
			grid[k] = bucket[:len(bucket)-1]
			return
		}
	}
}

// Alive reports whether id is on the medium.
func (m *Medium) Alive(id NodeID) bool {
	return m.known(id) && m.on[id]
}

// Position returns the node's position; ok is false if the node is not
// on the medium.
func (m *Medium) Position(id NodeID) (geom.Point, bool) {
	if !m.known(id) || !m.on[id] {
		return geom.Point{}, false
	}
	return m.pos[id], true
}

// Count returns the number of nodes currently on the medium.
func (m *Medium) Count() int {
	return m.count
}

// IDs returns all node IDs currently on the medium, in ascending order.
func (m *Medium) IDs() []NodeID {
	out := make([]NodeID, 0, m.count)
	for i, on := range m.on {
		if on {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// WithinRange returns the IDs of nodes within dist of point p,
// excluding exclude (pass None to exclude nobody). The result order is
// deterministic: ascending ID. The returned slice is freshly allocated;
// hot paths that can reuse a buffer should call WithinRangeAppend.
func (m *Medium) WithinRange(p geom.Point, dist float64, exclude NodeID) []NodeID {
	return m.WithinRangeAppend(nil, p, dist, exclude)
}

// WithinDisk returns the IDs of nodes geometrically within dist of p,
// ignoring obstacles: it answers "who is in this disk", not "who can
// hear a transmission from p". Disasters use it — an obstacle does not
// shield nodes from a blast the way it blocks radio. It counts as one
// range query, so swapping it for WithinRange in obstacle-free runs
// leaves the stats identical.
func (m *Medium) WithinDisk(p geom.Point, dist float64, exclude NodeID) []NodeID {
	m.stats.RangeQueries++
	return gridRange(m.grid, m.cellSize, nil, nil, p, dist, exclude)
}

// WithinRangeAppend appends the IDs of nodes within dist of point p —
// excluding exclude (pass None to exclude nobody) — to dst and returns
// the extended slice. The appended IDs are in ascending order, so with
// dst nil or empty the result obeys the same determinism contract as
// WithinRange. Passing a reused dst[:0] makes steady-state queries
// allocation-free.
func (m *Medium) WithinRangeAppend(dst []NodeID, p geom.Point, dist float64, exclude NodeID) []NodeID {
	m.stats.RangeQueries++
	return gridRange(m.grid, m.cellSize, m.obstacles, dst, p, dist, exclude)
}

// WithinRangeUncounted is WithinRangeAppend without the RangeQueries
// counter bump: a pure read of the spatial index. It exists for the
// sharded configure executor, whose per-event contexts account queries
// in their own deferred counters — and because it mutates nothing, any
// number of goroutines may call it concurrently as long as no writer
// (Place, Remove, SetHeadRole, …) runs at the same time.
func (m *Medium) WithinRangeUncounted(dst []NodeID, p geom.Point, dist float64, exclude NodeID) []NodeID {
	return gridRange(m.grid, m.cellSize, m.obstacles, dst, p, dist, exclude)
}

// HeadsWithinRangeAppend appends the IDs of head-role nodes (see
// SetHeadRole) within dist of p — excluding exclude — to dst, in
// ascending order. It scans only the head index, so the cost is
// proportional to the number of heads near p, not the number of nodes.
// It counts as one range query, exactly like the full-index query it
// replaces on the protocol's hot paths.
func (m *Medium) HeadsWithinRangeAppend(dst []NodeID, p geom.Point, dist float64, exclude NodeID) []NodeID {
	m.stats.RangeQueries++
	return gridRange(m.headGrid, m.cellSize, m.obstacles, dst, p, dist, exclude)
}

// HeadsWithinRangeUncounted is HeadsWithinRangeAppend without the
// counter bump; the same pure-read concurrency contract as
// WithinRangeUncounted applies.
func (m *Medium) HeadsWithinRangeUncounted(dst []NodeID, p geom.Point, dist float64, exclude NodeID) []NodeID {
	return gridRange(m.headGrid, m.cellSize, m.obstacles, dst, p, dist, exclude)
}

// gridRange is the shared ring-scan kernel behind the range queries.
// A non-empty obs filters out candidates whose line of sight from p an
// obstacle blocks; nil obs is the free-space (and WithinDisk) kernel.
func gridRange(grid map[gridKey][]gridEntry, cellSize float64, obs []geom.Polygon, dst []NodeID, p geom.Point, dist float64, exclude NodeID) []NodeID {
	// Bucket-ring bound: let c = ⌊p/cs⌋ be the query's cell on one axis.
	// Any node q with |q−p| ≤ dist has per-axis offset |q.x−p.x| ≤ dist,
	// and for reals a, b with b ≥ 0: ⌊a+b⌋ − ⌊a⌋ ≤ ⌈b⌉ and, symmetric-
	// ally, ⌊a⌋ − ⌊a−b⌋ ≤ ⌈b⌉. With b = dist/cs this bounds q's cell
	// index within c ± ⌈dist/cs⌉, so a ring of r = ⌈dist/cs⌉ suffices.
	r := int(math.Ceil(dist / cellSize))
	r2 := dist * dist
	start := len(dst)
	base := gridKey{int(math.Floor(p.X / cellSize)), int(math.Floor(p.Y / cellSize))}
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, e := range grid[gridKey{base.x + dx, base.y + dy}] {
				if e.id == exclude {
					continue
				}
				if e.pos.Dist2(p) <= r2 {
					if len(obs) != 0 && geom.AnyOccludes(obs, p, e.pos) {
						continue
					}
					dst = append(dst, e.id)
				}
			}
		}
	}
	slices.Sort(dst[start:])
	return dst
}

// Delay returns the propagation delay for a transmission covering dist.
func (m *Medium) Delay(dist float64) float64 {
	return m.params.PerMessageOverhead + dist/m.params.DiffusionSpeed
}

// Broadcast performs a destination-unaware transmission from sender to
// all nodes within radius. Each receiver independently drops the message
// with probability BroadcastLoss, and — when a fault injector is
// installed — with the injector's per-delivery loss; surviving
// deliveries may be duplicated (the receiver appears twice, adjacent).
// It returns the surviving receiver IDs (non-decreasing) and the
// worst-case delay (to the farthest receiver, jittered by the injector).
// A blacked-out sender transmits nothing; blacked-out receivers hear
// nothing.
//
// Loss randomness is consumed once per in-range receiver in ascending
// ID order — the determinism contract RNG-replay tests rely on. The
// injector's draws come from its own source, in the same per-receiver
// order, so they never perturb the BroadcastLoss stream.
//
// The returned slice is backed by a per-Medium buffer: it stays valid
// across range queries and unicasts, but the next Broadcast on this
// medium overwrites it. Callers that retain receivers across
// broadcasts must copy them out.
func (m *Medium) Broadcast(sender NodeID, radius float64) ([]NodeID, float64) {
	if !m.known(sender) || !m.on[sender] {
		return nil, 0
	}
	p := m.pos[sender]
	if m.InBlackout(sender) {
		return nil, 0
	}
	m.stats.Broadcasts++
	if m.trace != nil {
		m.trace(p)
	}
	if m.sendHook != nil {
		m.sendHook(sender, true)
	}
	m.bcast = m.WithinRangeAppend(m.bcast[:0], p, radius, sender)
	ids := m.bcast
	out := ids[:0]
	if m.inj.Active() {
		// Duplication can emit two IDs for one consumed receiver, so
		// building in place over ids would overwrite unread entries.
		out = m.bcastOut[:0]
	}
	var maxDist float64
	for _, id := range ids {
		if m.InBlackout(id) {
			m.stats.BlackoutDrops++
			continue
		}
		if m.params.BroadcastLoss > 0 && m.src.Float64() < m.params.BroadcastLoss {
			m.stats.Dropped++
			continue
		}
		if m.inj.DropDelivery() {
			m.stats.FaultDrops++
			continue
		}
		out = append(out, id)
		if m.inj.DupDelivery() {
			m.stats.FaultDups++
			out = append(out, id)
		}
		if d := m.pos[id].Dist(p); d > maxDist {
			maxDist = d
		}
	}
	m.stats.Deliveries += uint64(len(out))
	if m.inj.Active() {
		m.bcastOut = out
	}
	return out, m.inj.JitterDelay(m.Delay(maxDist))
}

// Unicast performs a destination-aware transmission. It returns the
// delay (jittered when a fault injector is installed), and an error if
// either endpoint is absent or out of range. The model's base
// assumption makes unicast reliable; an installed fault injector
// weakens it — a blacked-out endpoint or an injected loss turns the
// send into an error, which the caller must treat as a timeout.
func (m *Medium) Unicast(from, to NodeID, maxRange float64) (float64, error) {
	if !m.known(from) || !m.on[from] {
		return 0, fmt.Errorf("radio: sender %d: %w", from, ErrNotOnMedium)
	}
	pf := m.pos[from]
	if !m.known(to) || !m.on[to] {
		return 0, fmt.Errorf("radio: receiver %d: %w", to, ErrNotOnMedium)
	}
	pt := m.pos[to]
	if m.InBlackout(from) {
		m.stats.BlackoutDrops++
		return 0, fmt.Errorf("radio: sender %d: %w", from, ErrBlackout)
	}
	d := pf.Dist(pt)
	if d > maxRange {
		return 0, fmt.Errorf("radio: %d→%d distance %.3g exceeds range %.3g: %w", from, to, d, maxRange, ErrOutOfRange)
	}
	if len(m.obstacles) != 0 && geom.AnyOccludes(m.obstacles, pf, pt) {
		m.stats.OcclusionBlocks++
		return 0, fmt.Errorf("radio: %d→%d: %w", from, to, ErrOccluded)
	}
	m.stats.Unicasts++
	if m.trace != nil {
		m.trace(pf)
	}
	if m.sendHook != nil {
		m.sendHook(from, false)
	}
	if m.InBlackout(to) {
		m.stats.BlackoutDrops++
		return 0, fmt.Errorf("radio: receiver %d: %w", to, ErrBlackout)
	}
	if m.inj.DropDelivery() {
		m.stats.FaultDrops++
		return 0, fmt.Errorf("radio: %d→%d: %w", from, to, ErrDeliveryLost)
	}
	m.stats.Deliveries++
	return m.inj.JitterDelay(m.Delay(d)), nil
}

// Dist returns the distance between two on-medium nodes, or +Inf if
// either is absent or an obstacle occludes the pair. This is the
// "relative location detection" primitive of the system model: a node
// it cannot hear is a node whose relative location it cannot detect.
func (m *Medium) Dist(a, b NodeID) float64 {
	if !m.known(a) || !m.on[a] || !m.known(b) || !m.on[b] {
		return math.Inf(1)
	}
	if len(m.obstacles) != 0 && geom.AnyOccludes(m.obstacles, m.pos[a], m.pos[b]) {
		return math.Inf(1)
	}
	return m.pos[a].Dist(m.pos[b])
}
