package radio

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gs3/internal/geom"
)

// wallBetween returns a thin vertical wall polygon at x ∈ [4.9, 5.1]
// spanning y ∈ [-10, 10].
func wallBetween() geom.Polygon {
	return geom.Polygon{
		{X: 4.9, Y: -10}, {X: 5.1, Y: -10},
		{X: 5.1, Y: 10}, {X: 4.9, Y: 10},
	}
}

func occlusionMedium(t *testing.T) *Medium {
	t.Helper()
	m, err := NewMedium(Params{MaxRange: 20, DiffusionSpeed: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Place(0, geom.Point{X: 0, Y: 0})
	m.Place(1, geom.Point{X: 10, Y: 0}) // across the wall from 0
	m.Place(2, geom.Point{X: 0, Y: 5})  // same side as 0
	return m
}

func TestOccludedPairs(t *testing.T) {
	m := occlusionMedium(t)
	if m.Occluded(0, 1) {
		t.Error("free space reports occlusion")
	}
	m.SetObstacles([]geom.Polygon{wallBetween()})
	if !m.Occluded(0, 1) {
		t.Error("wall does not occlude the pair straddling it")
	}
	if m.Occluded(0, 2) {
		t.Error("wall occludes a same-side pair")
	}
	if m.Occluded(0, 99) {
		t.Error("absent node reported occluded")
	}
	if !math.IsInf(m.Dist(0, 1), 1) {
		t.Error("Dist across the wall should be +Inf")
	}
	if d := m.Dist(0, 2); d != 5 {
		t.Errorf("same-side Dist = %v, want 5", d)
	}
	m.SetObstacles(nil)
	if m.Occluded(0, 1) {
		t.Error("occlusion persists after obstacles removed")
	}
}

func TestOcclusionFiltersRangeQueries(t *testing.T) {
	m := occlusionMedium(t)
	m.SetObstacles([]geom.Polygon{wallBetween()})
	got := m.WithinRange(geom.Point{X: 0, Y: 0}, 20, 0)
	want := []NodeID{2}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("WithinRange across wall = %v, want %v", got, want)
	}
	// WithinDisk ignores obstacles: disasters reach across walls.
	disk := m.WithinDisk(geom.Point{X: 0, Y: 0}, 20, 0)
	if len(disk) != 2 {
		t.Errorf("WithinDisk = %v, want both nodes", disk)
	}
	// Broadcast inherits the filter.
	rcv, _ := m.Broadcast(0, 20)
	if len(rcv) != 1 || rcv[0] != 2 {
		t.Errorf("Broadcast receivers = %v, want [2]", rcv)
	}
}

func TestOcclusionBlocksUnicast(t *testing.T) {
	m := occlusionMedium(t)
	m.SetObstacles([]geom.Polygon{wallBetween()})
	if _, err := m.Unicast(0, 1, 20); !errors.Is(err, ErrOccluded) {
		t.Errorf("Unicast across wall: err = %v, want ErrOccluded", err)
	}
	if m.Stats().OcclusionBlocks != 1 {
		t.Errorf("OcclusionBlocks = %d, want 1", m.Stats().OcclusionBlocks)
	}
	if m.Stats().Unicasts != 0 {
		t.Errorf("blocked send counted as unicast")
	}
	if _, err := m.Unicast(0, 2, 20); err != nil {
		t.Errorf("same-side unicast failed: %v", err)
	}
}

// TestOcclusionSymmetryOnMedium is the medium-level half of the
// symmetry property: for random node pairs and a random star-shaped
// obstacle, Occluded(a,b) == Occluded(b,a) and the visibility each way
// through range queries agrees.
func TestOcclusionSymmetryOnMedium(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m, err := NewMedium(Params{MaxRange: 40, DiffusionSpeed: 100}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pa := geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		pb := geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		m.Place(0, pa)
		m.Place(1, pb)
		n := 3 + rng.Intn(4)
		pg := make(geom.Polygon, n)
		cx, cy := rng.Float64()*20, rng.Float64()*20
		for i := range pg {
			theta := 2 * math.Pi * float64(i) / float64(n)
			r := 1 + rng.Float64()*4
			pg[i] = geom.Point{X: cx + r*math.Cos(theta), Y: cy + r*math.Sin(theta)}
		}
		m.SetObstacles([]geom.Polygon{pg})
		if m.Occluded(0, 1) != m.Occluded(1, 0) {
			t.Fatalf("trial %d: Occluded asymmetric", trial)
		}
		aSeesB := len(m.WithinRange(pa, 40, 0)) == 1
		bSeesA := len(m.WithinRange(pb, 40, 1)) == 1
		if aSeesB != bSeesA {
			t.Fatalf("trial %d: asymmetric visibility: a sees b=%v, b sees a=%v", trial, aSeesB, bSeesA)
		}
		if aSeesB == m.Occluded(0, 1) {
			t.Fatalf("trial %d: visibility disagrees with Occluded", trial)
		}
	}
}

func TestSendHookFires(t *testing.T) {
	m := occlusionMedium(t)
	var sends []NodeID
	var kinds []bool
	m.SetSendHook(func(id NodeID, broadcast bool) {
		sends = append(sends, id)
		kinds = append(kinds, broadcast)
	})
	m.Broadcast(0, 20)
	if _, err := m.Unicast(1, 2, 20); err != nil {
		t.Fatal(err)
	}
	// A refused unicast (out of range) must not fire the hook.
	if _, err := m.Unicast(1, 2, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("expected out-of-range, got %v", err)
	}
	if len(sends) != 2 || sends[0] != 0 || sends[1] != 1 {
		t.Errorf("sends = %v, want [0 1]", sends)
	}
	if !kinds[0] || kinds[1] {
		t.Errorf("kinds = %v, want [true false]", kinds)
	}
	m.SetSendHook(nil)
	m.Broadcast(0, 20)
	if len(sends) != 2 {
		t.Error("hook fired after removal")
	}
}
