package radio

import (
	"math"
	"testing"

	"gs3/internal/geom"
	"gs3/internal/rng"
)

func newTestMedium(t *testing.T, p Params) *Medium {
	t.Helper()
	m, err := NewMedium(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func defaultParams() Params {
	return Params{MaxRange: 100, DiffusionSpeed: 100, PerMessageOverhead: 0.01}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"valid", defaultParams(), true},
		{"zero range", Params{MaxRange: 0, DiffusionSpeed: 1}, false},
		{"zero speed", Params{MaxRange: 1, DiffusionSpeed: 0}, false},
		{"negative overhead", Params{MaxRange: 1, DiffusionSpeed: 1, PerMessageOverhead: -1}, false},
		{"loss 1.0", Params{MaxRange: 1, DiffusionSpeed: 1, BroadcastLoss: 1}, false},
		{"loss 0.5", Params{MaxRange: 1, DiffusionSpeed: 1, BroadcastLoss: 0.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() err = %v, ok = %v", err, tt.ok)
			}
		})
	}
}

func TestLossRequiresSource(t *testing.T) {
	p := defaultParams()
	p.BroadcastLoss = 0.1
	if _, err := NewMedium(p, nil); err == nil {
		t.Error("nil source accepted with loss > 0")
	}
}

func TestPlaceAndPosition(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{X: 3, Y: 4})
	p, ok := m.Position(1)
	if !ok || p != (geom.Point{X: 3, Y: 4}) {
		t.Errorf("position = %v ok=%v", p, ok)
	}
	if !m.Alive(1) || m.Alive(2) {
		t.Error("alive flags wrong")
	}
	if m.Count() != 1 {
		t.Errorf("count = %d", m.Count())
	}
}

func TestMoveUpdatesGrid(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{X: 0, Y: 0})
	m.Place(1, geom.Point{X: 500, Y: 500})
	near := m.WithinRange(geom.Point{}, 50, None)
	if len(near) != 0 {
		t.Errorf("stale grid entry: %v", near)
	}
	far := m.WithinRange(geom.Point{X: 500, Y: 500}, 50, None)
	if len(far) != 1 || far[0] != 1 {
		t.Errorf("moved node not found: %v", far)
	}
}

func TestRemove(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{})
	m.Remove(1)
	if m.Alive(1) || m.Count() != 0 {
		t.Error("node survived Remove")
	}
	if got := m.WithinRange(geom.Point{}, 10, None); len(got) != 0 {
		t.Errorf("removed node still in grid: %v", got)
	}
	m.Remove(99) // absent: no-op, no panic
}

func TestWithinRange(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{X: 10, Y: 0})
	m.Place(2, geom.Point{X: 0, Y: 20})
	m.Place(3, geom.Point{X: 100, Y: 100})
	got := m.WithinRange(geom.Point{}, 25, None)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("WithinRange = %v", got)
	}
}

func TestWithinRangeExclude(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{})
	m.Place(2, geom.Point{X: 1, Y: 1})
	got := m.WithinRange(geom.Point{}, 10, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("WithinRange with exclude = %v", got)
	}
}

func TestWithinRangeBoundaryInclusive(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{X: 25, Y: 0})
	if got := m.WithinRange(geom.Point{}, 25, None); len(got) != 1 {
		t.Errorf("boundary node excluded: %v", got)
	}
}

func TestWithinRangeSortedDeterministic(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	for id := NodeID(20); id >= 1; id-- {
		m.Place(id, geom.Point{X: float64(id), Y: 0})
	}
	got := m.WithinRange(geom.Point{}, 100, None)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestWithinRangeLargerThanCell(t *testing.T) {
	p := defaultParams()
	p.CellSize = 5 // queries span many buckets
	m := newTestMedium(t, p)
	m.Place(1, geom.Point{X: 80, Y: -60})
	if got := m.WithinRange(geom.Point{}, 100, None); len(got) != 1 {
		t.Errorf("cross-bucket query missed node: %v", got)
	}
}

func TestDelayModel(t *testing.T) {
	m := newTestMedium(t, defaultParams()) // speed 100, overhead 0.01
	if got := m.Delay(100); math.Abs(got-1.01) > 1e-12 {
		t.Errorf("Delay(100) = %v", got)
	}
	if got := m.Delay(0); got != 0.01 {
		t.Errorf("Delay(0) = %v", got)
	}
}

func TestBroadcastReliable(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(0, geom.Point{})
	m.Place(1, geom.Point{X: 30, Y: 0})
	m.Place(2, geom.Point{X: 0, Y: 60})
	m.Place(3, geom.Point{X: 500, Y: 0})
	got, delay := m.Broadcast(0, 100)
	if len(got) != 2 {
		t.Fatalf("receivers = %v", got)
	}
	want := m.Delay(60)
	if math.Abs(delay-want) > 1e-12 {
		t.Errorf("delay = %v, want %v", delay, want)
	}
	st := m.Stats()
	if st.Broadcasts != 1 || st.Deliveries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBroadcastFromAbsentSender(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	got, delay := m.Broadcast(9, 100)
	if got != nil || delay != 0 {
		t.Errorf("absent sender broadcast = %v, %v", got, delay)
	}
}

func TestBroadcastLossStatistics(t *testing.T) {
	p := defaultParams()
	p.BroadcastLoss = 0.3
	m := newTestMedium(t, p)
	m.Place(0, geom.Point{})
	for id := NodeID(1); id <= 50; id++ {
		m.Place(id, geom.Point{X: float64(id), Y: 0})
	}
	delivered := 0
	const rounds = 200
	for i := 0; i < rounds; i++ {
		got, _ := m.Broadcast(0, 100)
		delivered += len(got)
	}
	frac := float64(delivered) / float64(rounds*50)
	if math.Abs(frac-0.7) > 0.03 {
		t.Errorf("delivery fraction = %v, want ≈0.7", frac)
	}
	if m.Stats().Dropped == 0 {
		t.Error("no drops recorded")
	}
}

func TestUnicast(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{})
	m.Place(2, geom.Point{X: 50, Y: 0})
	delay, err := m.Unicast(1, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delay-m.Delay(50)) > 1e-12 {
		t.Errorf("delay = %v", delay)
	}
	if _, err := m.Unicast(1, 2, 10); err == nil {
		t.Error("out-of-range unicast accepted")
	}
	if _, err := m.Unicast(1, 9, 100); err == nil {
		t.Error("absent receiver accepted")
	}
	if _, err := m.Unicast(9, 1, 100); err == nil {
		t.Error("absent sender accepted")
	}
}

func TestDist(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{})
	m.Place(2, geom.Point{X: 3, Y: 4})
	if got := m.Dist(1, 2); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := m.Dist(1, 9); !math.IsInf(got, 1) {
		t.Errorf("Dist to absent = %v", got)
	}
}

func TestTraceTraffic(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{X: 7, Y: 7})
	m.Place(2, geom.Point{X: 8, Y: 7})
	var seen []geom.Point
	m.TraceTraffic(func(from geom.Point) { seen = append(seen, from) })
	m.Broadcast(1, 50)
	if _, err := m.Unicast(1, 2, 50); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("traced %d events, want 2", len(seen))
	}
	m.TraceTraffic(nil)
	m.Broadcast(1, 50)
	if len(seen) != 2 {
		t.Error("trace continued after nil")
	}
}

func TestResetStats(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{})
	m.Broadcast(1, 10)
	m.ResetStats()
	if st := m.Stats(); st.Broadcasts != 0 || st.RangeQueries != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
}

func TestIDs(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(3, geom.Point{})
	m.Place(7, geom.Point{X: 1})
	ids := m.IDs()
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	seen := map[NodeID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[3] || !seen[7] {
		t.Errorf("ids = %v", ids)
	}
}

func TestNegativeCoordinatesGrid(t *testing.T) {
	m := newTestMedium(t, defaultParams())
	m.Place(1, geom.Point{X: -250, Y: -310})
	got := m.WithinRange(geom.Point{X: -255, Y: -305}, 20, None)
	if len(got) != 1 {
		t.Errorf("negative-coordinate node missed: %v", got)
	}
}
