package radio

import (
	"slices"
	"testing"

	"gs3/internal/geom"
	"gs3/internal/rng"
)

// bruteWithinRange is the all-pairs reference for the grid query: same
// inclusion predicate (squared distance, boundary inclusive), ascending
// IDs, no spatial index. Any divergence from WithinRange is a bucketing
// bug (wrong ring bound, stale entry, missed boundary cell).
func bruteWithinRange(m *Medium, p geom.Point, dist float64, exclude NodeID) []NodeID {
	var out []NodeID
	r2 := dist * dist
	for i, on := range m.on {
		id := NodeID(i)
		if !on || id == exclude {
			continue
		}
		if m.pos[i].Dist2(p) <= r2 {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// TestWithinRangePropertyVsBruteForce drives random deployments through
// interleaved Place/Remove/Move churn and checks, after every step, that
// the optimized query path matches the brute-force reference for query
// points that deliberately straddle bucket boundaries.
func TestWithinRangePropertyVsBruteForce(t *testing.T) {
	for _, cellSize := range []float64{5, 30, 100} {
		src := rng.New(uint64(1000 + int(cellSize)))
		p := Params{MaxRange: 100, DiffusionSpeed: 100, CellSize: cellSize}
		m, err := NewMedium(p, nil)
		if err != nil {
			t.Fatal(err)
		}

		place := func(id NodeID) {
			// Half the nodes land exactly on bucket edges (multiples of
			// the cell size), the rest anywhere in the region.
			if src.Intn(2) == 0 {
				m.Place(id, geom.Point{
					X: float64(src.Intn(9)-4) * cellSize,
					Y: float64(src.Intn(9)-4) * cellSize,
				})
				return
			}
			x, y := src.InRect(-200, -200, 200, 200)
			m.Place(id, geom.Point{X: x, Y: y})
		}

		const n = 60
		for id := NodeID(0); id < n; id++ {
			place(id)
		}

		check := func(step int) {
			t.Helper()
			// Query apexes on bucket corners, bucket centers, and a
			// random point; radii below, equal to, and above cellSize.
			apexes := []geom.Point{
				{X: 0, Y: 0},
				{X: cellSize, Y: -2 * cellSize},
				{X: cellSize / 2, Y: cellSize / 2},
			}
			rx, ry := src.InRect(-150, -150, 150, 150)
			apexes = append(apexes, geom.Point{X: rx, Y: ry})
			for _, apex := range apexes {
				for _, dist := range []float64{cellSize / 3, cellSize, 2.5 * cellSize} {
					exclude := NodeID(src.Intn(n))
					want := bruteWithinRange(m, apex, dist, exclude)
					got := m.WithinRange(apex, dist, exclude)
					if !slices.Equal(got, want) {
						t.Fatalf("cell %v step %d: WithinRange(%v, %v, %d) = %v, want %v",
							cellSize, step, apex, dist, exclude, got, want)
					}
					appended := m.WithinRangeAppend([]NodeID{None}, apex, dist, exclude)
					if appended[0] != None || !slices.Equal(appended[1:], want) {
						t.Fatalf("cell %v step %d: WithinRangeAppend = %v, want prefix-preserving %v",
							cellSize, step, appended, want)
					}
				}
			}
		}

		check(-1)
		for step := 0; step < 40; step++ {
			id := NodeID(src.Intn(n))
			switch src.Intn(3) {
			case 0: // move (Place on an existing or removed node)
				place(id)
			case 1:
				m.Remove(id)
			case 2: // re-add
				place(id)
			}
			check(step)
		}
	}
}

// bruteHeadsWithinRange is the all-pairs reference for the head-only
// query: filter on the headRole flag, same predicate and order.
func bruteHeadsWithinRange(m *Medium, p geom.Point, dist float64, exclude NodeID) []NodeID {
	var out []NodeID
	r2 := dist * dist
	for i, on := range m.on {
		id := NodeID(i)
		if !on || !m.headRole[i] || id == exclude {
			continue
		}
		if m.pos[i].Dist2(p) <= r2 {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// TestHeadsWithinRangePropertyVsBruteForce churns placements, removals,
// and head-role flips, and checks after every step that the head index
// matches a brute-force filter over the role flags. Any divergence is a
// dual-grid maintenance bug (Place/Remove/SetHeadRole out of sync).
func TestHeadsWithinRangePropertyVsBruteForce(t *testing.T) {
	src := rng.New(99)
	p := Params{MaxRange: 100, DiffusionSpeed: 100, CellSize: 30}
	m, err := NewMedium(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	place := func(id NodeID) {
		x, y := src.InRect(-150, -150, 150, 150)
		m.Place(id, geom.Point{X: x, Y: y})
	}
	for id := NodeID(0); id < n; id++ {
		place(id)
		if src.Intn(3) == 0 {
			m.SetHeadRole(id, true)
		}
	}
	for step := 0; step < 200; step++ {
		id := NodeID(src.Intn(n))
		switch src.Intn(4) {
		case 0:
			place(id) // move keeps the head entry relocated
		case 1:
			m.Remove(id) // removal must clear the head entry and flag
		case 2:
			m.SetHeadRole(id, true)
		case 3:
			m.SetHeadRole(id, false)
		}
		apex := geom.Point{X: float64(src.Intn(7)-3) * 30, Y: float64(src.Intn(7)-3) * 30}
		for _, dist := range []float64{20, 30, 80} {
			want := bruteHeadsWithinRange(m, apex, dist, None)
			got := m.HeadsWithinRangeAppend(nil, apex, dist, None)
			if !slices.Equal(got, want) {
				t.Fatalf("step %d: HeadsWithinRange(%v, %v) = %v, want %v", step, apex, dist, got, want)
			}
			if un := m.HeadsWithinRangeUncounted(nil, apex, dist, None); !slices.Equal(un, want) {
				t.Fatalf("step %d: HeadsWithinRangeUncounted = %v, want %v", step, un, want)
			}
		}
		if m.HeadRole(id) != (m.known(id) && m.headRole[id]) {
			t.Fatalf("step %d: HeadRole(%d) inconsistent", step, id)
		}
	}
}

// TestBroadcastReceiverSetRegression pins the RNG consumption contract
// of Broadcast for a fixed seed: one Float64 per in-range receiver, in
// ascending ID order. A replayed source over the brute-force receiver
// list must predict the surviving set exactly; any change to query
// ordering or randomness consumption breaks experiment reproducibility.
func TestBroadcastReceiverSetRegression(t *testing.T) {
	const seed = 42
	p := Params{MaxRange: 100, DiffusionSpeed: 100, BroadcastLoss: 0.3, CellSize: 40}
	m, err := NewMedium(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	deploy := rng.New(7)
	for id := NodeID(0); id < 80; id++ {
		x, y := deploy.InRect(-150, -150, 150, 150)
		m.Place(id, geom.Point{X: x, Y: y})
	}

	replay := rng.New(seed)
	for round := 0; round < 20; round++ {
		sender := NodeID(round % 80)
		pos, _ := m.Position(sender)
		inRange := bruteWithinRange(m, pos, 100, sender)
		var want []NodeID
		for _, id := range inRange {
			if replay.Float64() < p.BroadcastLoss {
				continue
			}
			want = append(want, id)
		}
		got, _ := m.Broadcast(sender, 100)
		if !slices.Equal(got, want) {
			t.Fatalf("round %d: Broadcast(%d) = %v, want %v", round, sender, got, want)
		}
	}
}
