package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 0} {
		out, err := Map(Pool{Workers: workers}, 20, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 20 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	fn := func(i int) (string, error) {
		return fmt.Sprintf("trial-%03d", i), nil
	}
	serial, err := Map(Seq, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(Pool{Workers: 8}, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d: serial %q vs parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	out, err := Map(Pool{}, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
	if _, err := Map(Pool{}, -1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative trial count accepted")
	}
}

// TestMapErrorPropagation is the determinism contract for failures: the
// error reported is the lowest-indexed failing trial's, whatever the
// worker count, and it unwraps to the underlying cause.
func TestMapErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	fn := func(i int) (int, error) {
		if i == 7 || i == 13 {
			return 0, fmt.Errorf("trial body %d: %w", i, sentinel)
		}
		return i, nil
	}
	for _, workers := range []int{1, 3, 8} {
		out, err := Map(Pool{Workers: workers}, 20, fn)
		if out != nil {
			t.Errorf("workers=%d: results returned alongside error", workers)
		}
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: error %v is not a TrialError", workers, err)
		}
		if te.Trial != 7 {
			t.Errorf("workers=%d: failed trial = %d, want 7 (lowest index)", workers, te.Trial)
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: error does not unwrap to the cause", workers)
		}
	}
}

// TestMapStopsClaimingAfterError checks the early-exit behavior: once a
// trial fails, unstarted trials are skipped (but the batch still
// reports the lowest-indexed failure).
func TestMapStopsClaimingAfterError(t *testing.T) {
	var started atomic.Int64
	_, err := Map(Pool{Workers: 2}, 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("immediate failure")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := started.Load(); n > 100 {
		t.Errorf("%d trials started after an immediate failure", n)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
					return
				}
				if workers > 1 && !strings.Contains(fmt.Sprint(r), "trial 3") {
					t.Errorf("workers=%d: panic lost trial attribution: %v", workers, r)
				}
			}()
			Map(Pool{Workers: workers}, 8, func(i int) (int, error) {
				if i == 3 {
					panic("kaboom")
				}
				return i, nil
			})
		}()
	}
}

func TestMapTimedStats(t *testing.T) {
	out, stats, err := MapTimed(Pool{Workers: 2}, 6, func(i int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 || len(stats.Trials) != 6 {
		t.Fatalf("out=%d timings=%d", len(out), len(stats.Trials))
	}
	if stats.Workers != 2 {
		t.Errorf("workers = %d", stats.Workers)
	}
	if stats.Wall <= 0 {
		t.Error("no wall time recorded")
	}
	for i, tt := range stats.Trials {
		if tt.Trial != i {
			t.Errorf("timing %d labeled trial %d", i, tt.Trial)
		}
		if tt.Elapsed <= 0 {
			t.Errorf("trial %d has no duration", i)
		}
	}
	if stats.Serial() < stats.Wall/4 {
		t.Errorf("serial sum %v implausibly below wall %v", stats.Serial(), stats.Wall)
	}
	if stats.Speedup() <= 0 {
		t.Errorf("speedup = %v", stats.Speedup())
	}
}

func TestPoolSizeClamps(t *testing.T) {
	if got := (Pool{Workers: 8}).size(3); got != 3 {
		t.Errorf("size clamped to %d, want 3 (batch size)", got)
	}
	if got := (Pool{Workers: -5}).size(100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("size = %d, want GOMAXPROCS", got)
	}
	if got := Seq.size(100); got != 1 {
		t.Errorf("Seq size = %d", got)
	}
}

func TestTrialSeed(t *testing.T) {
	if TrialSeed(42, 0) != 42 {
		t.Error("trial 0 must keep the base seed")
	}
	// Pure: same inputs, same output.
	if TrialSeed(42, 5) != TrialSeed(42, 5) {
		t.Error("TrialSeed is not deterministic")
	}
	// Decorrelated: distinct trials and bases give distinct seeds.
	seen := map[uint64]string{}
	for _, base := range []uint64{1, 7, 42, 1 << 40} {
		for trial := 0; trial < 64; trial++ {
			s := TrialSeed(base, trial)
			key := fmt.Sprintf("base=%d trial=%d", base, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s -> %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
