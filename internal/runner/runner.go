// Package runner executes batches of independent simulation trials,
// optionally fanning them across a pool of goroutines, while keeping
// every observable output identical to a serial run.
//
// # Concurrency model
//
// The simulation engine (internal/sim) and everything layered on it
// (internal/core, internal/netsim) are strictly single-threaded: one
// trial owns one engine, one network, and one RNG, and nothing else may
// touch them while the trial runs. The runner exploits the resulting
// independence — trials share no mutable state, so they may execute
// concurrently without locks — and re-serializes at the edges:
//
//   - Each trial receives only its index. Anything trial-specific
//     (parameters, seeds) must be derived from that index, typically
//     with TrialSeed, so no draw order is shared between trials.
//   - Results land in a slice indexed by trial, so collection order is
//     the trial order regardless of completion order.
//   - On failure the error reported is the one from the lowest-indexed
//     failing trial — exactly the error a serial run would have
//     returned first.
//
// Consequently Map(Seq, ...) and Map(Pool{Workers: n}, ...) produce
// byte-identical results (and identical errors) for the same inputs;
// parallelism changes only the wall-clock time.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Pool configures how a batch of trials executes. The zero value runs
// one trial per available CPU (GOMAXPROCS workers).
//
// Pool is an immutable value: it holds no state, may be copied freely,
// and the same Pool may drive any number of Map calls from any number
// of goroutines concurrently.
type Pool struct {
	// Workers is the number of goroutines executing trials.
	// Workers <= 0 selects runtime.GOMAXPROCS(0). Workers == 1 runs
	// the batch inline on the calling goroutine with no concurrency
	// at all — the serial reference execution.
	Workers int
}

// Seq is the serial pool: trials run one at a time, in order, on the
// calling goroutine. Every parallel run is defined to be observably
// equivalent to running under Seq.
var Seq = Pool{Workers: 1}

// Parallel returns a pool with n workers; n <= 0 means GOMAXPROCS.
func Parallel(n int) Pool { return Pool{Workers: n} }

// size returns the effective worker count for a batch of n trials.
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TrialTiming records the wall-clock duration of one trial.
type TrialTiming struct {
	Trial   int
	Elapsed time.Duration
}

// Stats reports how a batch executed: the worker count actually used,
// the wall-clock time of the whole batch, and per-trial wall-clock
// durations in trial order. Stats is plain data; the caller owns it.
type Stats struct {
	Workers int
	Wall    time.Duration
	Trials  []TrialTiming
}

// Serial returns the sum of the per-trial durations — the wall-clock
// time a serial execution of the same trials would have needed.
func (s Stats) Serial() time.Duration {
	var total time.Duration
	for _, t := range s.Trials {
		total += t.Elapsed
	}
	return total
}

// Speedup returns the ratio of serial time to batch wall time (1.0 when
// the wall time is zero).
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 1
	}
	return float64(s.Serial()) / float64(s.Wall)
}

// TrialError reports which trial of a batch failed. Map returns the
// TrialError with the lowest Trial among all failures, matching the
// first error a serial run would hit.
type TrialError struct {
	Trial int
	Err   error
}

// Error formats the failure with its trial index.
func (e *TrialError) Error() string { return fmt.Sprintf("trial %d: %v", e.Trial, e.Err) }

// Unwrap exposes the underlying trial failure to errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Err }

// trialPanic carries a panic value from a worker goroutine back to the
// caller so parallel panics surface on the calling goroutine, like
// serial ones.
type trialPanic struct {
	trial int
	value any
}

// Map runs n independent trials — fn(0) … fn(n-1) — on the pool and
// returns their results in trial order. fn must not share mutable state
// between invocations; each call may execute on a different goroutine,
// but no two calls target the same trial and fn is never called twice
// with the same index.
//
// If any trial returns an error, Map returns a *TrialError wrapping the
// failure of the lowest-indexed failing trial; the result slice is nil.
// Once a failure is observed, trials that have not yet started are
// skipped (trials already in flight run to completion).
//
// Map is safe to call from multiple goroutines with the same Pool.
func Map[T any](p Pool, n int, fn func(trial int) (T, error)) ([]T, error) {
	out, _, err := MapTimed(p, n, fn)
	return out, err
}

// MapTimed is Map plus execution statistics: the batch wall-clock time
// and the per-trial durations, which the CLIs surface as timing
// reports. The returned results and error are identical to Map's.
func MapTimed[T any](p Pool, n int, fn func(trial int) (T, error)) ([]T, Stats, error) {
	if n < 0 {
		return nil, Stats{}, fmt.Errorf("runner: negative trial count %d", n)
	}
	workers := p.size(n)
	stats := Stats{Workers: workers}
	if n == 0 {
		return []T{}, stats, nil
	}
	start := time.Now()
	results := make([]T, n)
	timings := make([]TrialTiming, n)
	errs := make([]error, n)

	if workers == 1 {
		// Serial reference path: inline, in order, stop at first error.
		for i := 0; i < n; i++ {
			t0 := time.Now()
			v, err := fn(i)
			timings[i] = TrialTiming{Trial: i, Elapsed: time.Since(t0)}
			if err != nil {
				stats.Wall = time.Since(start)
				stats.Trials = timings[:i+1]
				return nil, stats, &TrialError{Trial: i, Err: err}
			}
			results[i] = v
		}
		stats.Wall = time.Since(start)
		stats.Trials = timings
		return results, stats, nil
	}

	var (
		mu      sync.Mutex
		next    int  // next trial index to claim
		failed  bool // stop claiming new trials after any failure
		panicAt *trialPanic
		wg      sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || panicAt != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				t0 := time.Now()
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicAt == nil || i < panicAt.trial {
								panicAt = &trialPanic{trial: i, value: r}
							}
							mu.Unlock()
						}
					}()
					v, err := fn(i)
					timings[i] = TrialTiming{Trial: i, Elapsed: time.Since(t0)}
					if err != nil {
						mu.Lock()
						errs[i] = err
						failed = true
						mu.Unlock()
						return
					}
					results[i] = v
				}()
			}
		}()
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	stats.Trials = timings
	if panicAt != nil {
		panic(fmt.Sprintf("runner: trial %d panicked: %v", panicAt.trial, panicAt.value))
	}
	for i, err := range errs {
		if err != nil {
			return nil, stats, &TrialError{Trial: i, Err: err}
		}
	}
	return results, stats, nil
}

// TrialSeed derives the RNG seed for one trial of a replicated batch
// from a base seed. Trial 0 keeps the base seed unchanged, so a
// single-trial batch reproduces exactly the run that the base seed
// names; later trials get decorrelated seeds through a splitmix64-style
// finalizer. The derivation is pure — same (base, trial) in, same seed
// out — which is what keeps replicated parallel runs deterministic.
func TrialSeed(base uint64, trial int) uint64 {
	if trial == 0 {
		return base
	}
	z := base + uint64(trial)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
