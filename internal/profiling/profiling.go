// Package profiling wires the standard runtime/pprof collectors behind
// the -cpuprofile / -memprofile command flags shared by gs3sim and
// gs3bench. It deliberately stays trivial: plain pprof files that
// `go tool pprof` reads, no HTTP endpoint, no sampling knobs.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (if non-empty). The stop function must run exactly once,
// after the workload finishes — the heap profile snapshots live
// allocations at that point, after a forced GC so the dump reflects
// retained memory, not garbage awaiting collection.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
