// Package check machine-verifies the GS³ invariants and fixpoints on a
// network snapshot: SI = I₁ ∧ I₂ ∧ I₃ (Theorem 1), SF = F₁ ∧ F₂ ∧ F₃ ∧
// F₄ (Theorem 2), and their GS³-D relaxations DI/DF (Theorems 5 and 6).
//
// Every predicate returns a list of violations rather than a bare bool,
// so tests and the bench harness can report exactly which node broke
// which clause.
package check

import (
	"fmt"
	"math"
	"slices"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/radio"
)

// Violation is one broken invariant clause.
type Violation struct {
	Clause string       // e.g. "I2.1"
	Node   radio.NodeID // offending node (radio.None for global clauses)
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s@%d: %s", v.Clause, v.Node, v.Detail)
}

// Mode selects the static (SI/SF) or dynamic (DI/DF) variants of the
// clauses: the dynamic ones relax the hexagon bounds for cells whose
// ⟨ICC, ICP⟩ differs from a neighbor's and raise the children bound
// from 3 to 5.
type Mode int

// Checking modes.
const (
	Static Mode = iota + 1
	Dynamic
)

// Result aggregates the violations of one full check.
type Result struct {
	Violations []Violation
}

// OK reports whether no clause was violated.
func (r Result) OK() bool { return len(r.Violations) == 0 }

func (r *Result) addf(clause string, node radio.NodeID, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Clause: clause, Node: node, Detail: fmt.Sprintf(format, args...),
	})
}

// index provides O(1) lookups over a snapshot: per-node views, the
// head list, per-head member lists, and a head-position grid that
// answers "which heads are near p" in output-sensitive time, so the
// neighbor-band clauses cost O(heads) overall instead of O(heads²).
type index struct {
	snap    core.Snapshot
	views   map[radio.NodeID]core.NodeView
	heads   []core.NodeView
	members map[radio.NodeID][]radio.NodeID

	// headGrid buckets indices into heads by position; cell is the
	// bucket edge (the neighbor-band radius, so band queries scan a
	// 3×3 ring). nearBuf is the reusable result buffer of headsNear.
	headGrid map[gridKey][]int
	cell     float64
	nearBuf  []int
}

type gridKey struct{ x, y int }

func newIndex(s core.Snapshot) *index {
	ix := &index{
		snap:    s,
		views:   make(map[radio.NodeID]core.NodeView, len(s.Nodes)),
		members: make(map[radio.NodeID][]radio.NodeID),
		cell:    s.Config.NeighborDistMax(),
	}
	for _, v := range s.Nodes {
		ix.views[v.ID] = v
		if v.IsHead() {
			ix.heads = append(ix.heads, v)
		}
		if v.Status == core.StatusAssociate {
			ix.members[v.Head] = append(ix.members[v.Head], v.ID)
		}
	}
	ix.headGrid = make(map[gridKey][]int, len(ix.heads))
	for i, h := range ix.heads {
		k := ix.keyOf(h.Pos)
		ix.headGrid[k] = append(ix.headGrid[k], i)
	}
	return ix
}

func (ix *index) keyOf(p geom.Point) gridKey {
	return gridKey{int(math.Floor(p.X / ix.cell)), int(math.Floor(p.Y / ix.cell))}
}

// headsNear returns the indices (into ix.heads) of all heads within
// dist of p, in ascending index order — which is ascending ID order,
// because heads is built from the ID-sorted snapshot. The slice aliases
// the index's scratch buffer: it is valid until the next headsNear
// call. A head exactly at p (e.g. the query head itself) is included.
func (ix *index) headsNear(p geom.Point, dist float64) []int {
	ix.nearBuf = ix.nearBuf[:0]
	r := int(math.Ceil(dist / ix.cell))
	r2 := dist * dist
	base := ix.keyOf(p)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, i := range ix.headGrid[gridKey{base.x + dx, base.y + dy}] {
				if ix.heads[i].Pos.Dist2(p) <= r2 {
					ix.nearBuf = append(ix.nearBuf, i)
				}
			}
		}
	}
	slices.Sort(ix.nearBuf)
	return ix.nearBuf
}

// isBoundary reports whether head h is a boundary cell head: one with
// fewer than 6 heads in the neighbor distance band around it. The
// paper's boundary cells (geographic edge or next to an R_t-gap region)
// are exactly the cells missing lattice neighbors.
func (ix *index) isBoundary(h core.NodeView) bool {
	cfg := ix.snap.Config
	count := 0
	for _, oi := range ix.headsNear(h.Pos, cfg.NeighborDistMax()+1e-9) {
		if ix.heads[oi].ID != h.ID {
			count++
		}
	}
	return count < 6
}

// Invariant checks SI (mode Static) or DI (mode Dynamic) on the
// snapshot.
func Invariant(s core.Snapshot, mode Mode) Result {
	ix := newIndex(s)
	var r Result
	checkI1(ix, &r)
	checkI2(ix, mode, &r)
	checkI3(ix, mode, &r)
	return r
}

// checkI1 verifies connectivity: I₁.₁ (head-graph edges are physical
// edges) and I₁.₂ (the head graph is a tree rooted at the big node).
func checkI1(ix *index, r *Result) {
	cfg := ix.snap.Config
	bigID := ix.snap.BigID
	big, haveBig := ix.views[bigID]

	for _, h := range ix.heads {
		// I1.1: parent and children within local-coordination range,
		// hence physically connected (nodes can reach √3R+2Rt).
		if h.Parent != radio.None && h.Parent != h.ID {
			if p, ok := ix.views[h.Parent]; ok && p.IsHead() {
				if d := h.Pos.Dist(p.Pos); d > cfg.SearchRadius()+2*cfg.Rt+1e-9 {
					r.addf("I1.1", h.ID, "parent %d at distance %.3g beyond range", h.Parent, d)
				}
			}
		}
	}

	if !haveBig || !(big.IsHead() || big.Status == core.StatusBigSlide || big.Status == core.StatusBigMove) {
		if haveBig && !big.IsHead() {
			return // big node not heading: tree roots at the proxy; skip
		}
	}

	// I1.2: every head reaches a root by following parents, without
	// cycles. The root is the big node, its BIG_MOVE proxy, or — during
	// a BIG_SLIDE — the head of the cell the big node belongs to.
	root := bigID
	if haveBig && !big.IsHead() {
		switch {
		case big.Status == core.StatusBigSlide && big.Head != radio.None:
			root = big.Head
		case big.Proxy != radio.None:
			root = big.Proxy
		}
	}
	for _, h := range ix.heads {
		seen := map[radio.NodeID]bool{}
		cur := h
		for {
			if cur.ID == root {
				break
			}
			if cur.Blackout {
				// The walk runs through a transiently-down head: its
				// frozen parent pointer may be stale, and a down head
				// cannot repair it until it restores. Healing in
				// progress, not a violation.
				break
			}
			if seen[cur.ID] {
				r.addf("I1.2", h.ID, "cycle through %d", cur.ID)
				break
			}
			seen[cur.ID] = true
			if cur.Parent == radio.None || cur.Parent == cur.ID {
				r.addf("I1.2", h.ID, "walk stuck at %d (parent %d)", cur.ID, cur.Parent)
				break
			}
			next, ok := ix.views[cur.Parent]
			if !ok || !next.IsHead() {
				r.addf("I1.2", h.ID, "parent %d of %d is not a live head", cur.Parent, cur.ID)
				break
			}
			cur = next
		}
	}
}

// checkI2 verifies the hexagonal-structure clauses I₂.₁–I₂.₄.
func checkI2(ix *index, mode Mode, r *Result) {
	cfg := ix.snap.Config
	lo, hi := cfg.NeighborDistMin(), cfg.NeighborDistMax()

	for _, h := range ix.heads {
		boundary := ix.isBoundary(h)

		// Head within Rt of its IL (Corollary 2's bounded deviation).
		if d := h.Pos.Dist(h.IL); d > cfg.Rt+1e-9 {
			r.addf("I2.0", h.ID, "head %.3g from its IL (Rt=%.3g)", d, cfg.Rt)
		}

		// I2.1 / I2.2: neighbor-head distances. The grid returns the
		// in-band heads directly, ascending by ID like the full scan did.
		// Pairs involving a blacked-out head are skipped: a replacement
		// head legitimately coexists near its down predecessor until the
		// predecessor restores and yields.
		for _, oi := range ix.headsNear(h.Pos, hi+1e-9) {
			o := ix.heads[oi]
			if o.ID == h.ID || h.Blackout || o.Blackout {
				continue
			}
			d := h.Pos.Dist(o.Pos)
			if mode == Dynamic && o.Spiral != h.Spiral {
				// Relaxed DI bound: distance tracks the IL distance
				// within ±2Rt, and IL distance stays in (0, 2√3R).
				ild := h.IL.Dist(o.IL)
				if ild <= 0 || ild >= 2*cfg.HeadSpacing()+1e-9 {
					r.addf("I2.1d", h.ID, "IL distance %.3g to %d outside (0, 2√3R)", ild, o.ID)
				}
				if math.Abs(d-ild) > 2*cfg.Rt+1e-9 {
					r.addf("I2.1d", h.ID, "distance %.3g to %d deviates from IL distance %.3g by more than 2Rt", d, o.ID, ild)
				}
				continue
			}
			if d < lo-1e-9 {
				r.addf("I2.1", h.ID, "neighbor %d at %.4g < %.4g", o.ID, d, lo)
			}
		}

		// I2.3: children bound. The big node gets 6; a head standing in
		// for it — the moving big node's proxy, or the head that took
		// over the big node's cell during a BIG_SLIDE (it inherits the
		// big node's children) — gets the same bound.
		isProxy := false
		if big, ok := ix.views[ix.snap.BigID]; ok {
			if big.Proxy == h.ID ||
				(big.Status == core.StatusBigSlide && big.Head == h.ID) {
				isProxy = true
			}
		}
		limit := 3
		if mode == Dynamic && !h.IsBig {
			limit = 5
		}
		if h.IsBig || isProxy {
			limit = 6
		}
		if len(h.Children) > limit {
			r.addf("I2.3", h.ID, "%d children > limit %d", len(h.Children), limit)
		}

		// I2.4: cell radius. Inner cells: R + 2Rt/√3; dynamic mode with
		// differing ⟨ICC,ICP⟩ relaxes to 2R + Rt; boundary cells to
		// √3R + 2Rt (+ the gap-region diameter, which we cannot see
		// locally, so boundary cells get the base bound only when no
		// violation is certain).
		bound := cfg.CellRadiusBound()
		if mode == Dynamic {
			bound = 2*cfg.R + cfg.Rt
		}
		if boundary {
			bound = cfg.HeadSpacing() + 2*cfg.Rt
		}
		for _, m := range ix.members[h.ID] {
			mv := ix.views[m]
			if d := mv.Pos.Dist(h.Pos); d > bound+1e-9 && !boundary {
				r.addf("I2.4", m, "associate %.4g from head %d, bound %.4g", d, h.ID, bound)
			}
		}
	}
}

// checkI3 verifies inner-cell optimality: each associate of an inner
// cell belongs to one cell and has chosen the closest head. In dynamic
// mode only membership validity is required — a head shift moves the
// head role instantly, and the neighbors' optimal re-choice happens on
// their next sweep, so full optimality is a fixpoint property (F₃)
// rather than an invariant under intra-cell maintenance.
func checkI3(ix *index, mode Mode, r *Result) {
	for _, v := range ix.snap.Nodes {
		if v.Status != core.StatusAssociate {
			continue
		}
		hv, ok := ix.views[v.Head]
		if !ok || !hv.IsHead() {
			r.addf("I3", v.ID, "associate of %d which is not a live head", v.Head)
			continue
		}
		if mode == Dynamic {
			if d := v.Pos.Dist(hv.Pos); d > ix.snap.Config.SearchRadius()+1e-9 {
				r.addf("I3", v.ID, "associate %.4g from head %d, beyond coordination range", d, v.Head)
			}
			continue
		}
		if ix.isBoundary(hv) {
			continue
		}
		if v.Blackout || hv.Blackout {
			continue // down node or down head: re-choice pending restore
		}
		// Any head beating the chosen one lies within chosen of the
		// associate, so the grid query bounds the scan.
		chosen := v.Pos.Dist(hv.Pos)
		for _, oi := range ix.headsNear(v.Pos, chosen) {
			o := ix.heads[oi]
			if o.Blackout {
				continue // unhearable: cannot be chosen
			}
			if d := v.Pos.Dist(o.Pos); d < chosen-1e-9 {
				r.addf("I3", v.ID, "head %d at %.4g closer than chosen %d at %.4g", o.ID, d, v.Head, chosen)
				break
			}
		}
	}
}

// Fixpoint checks SF (mode Static) or DF (mode Dynamic): the invariant
// clauses plus cell optimality for every cell (F₃), coverage (F₄), and
// — in dynamic mode — the minimum-distance spanning tree property
// (F₁.₂ strengthened).
func Fixpoint(s core.Snapshot, mode Mode) Result {
	ix := newIndex(s)
	r := Invariant(s, mode)
	checkF3(ix, &r)
	checkF4(ix, &r)
	if mode == Dynamic {
		checkMinDistTree(ix, &r)
	}
	return r
}

// checkF3: every associate (boundary cells included) has the best head.
func checkF3(ix *index, r *Result) {
	for _, v := range ix.snap.Nodes {
		if v.Status != core.StatusAssociate {
			continue
		}
		hv, ok := ix.views[v.Head]
		if !ok || !hv.IsHead() {
			continue // reported by I3 already
		}
		if v.Blackout || hv.Blackout {
			continue // down node or down head: re-choice pending restore
		}
		chosen := v.Pos.Dist(hv.Pos)
		for _, oi := range ix.headsNear(v.Pos, chosen) {
			o := ix.heads[oi]
			if o.Blackout {
				continue // a live associate cannot hear a down head
			}
			if d := v.Pos.Dist(o.Pos); d < chosen-1e-9 {
				r.addf("F3", v.ID, "head %d at %.4g closer than chosen %.4g", o.ID, d, chosen)
				break
			}
		}
	}
}

// checkF4: every node connected to the big node is covered (is a head
// or an associate). Connectivity is decided on the physical graph with
// the maximum transmission range as edge length.
func checkF4(ix *index, r *Result) {
	cfg := ix.snap.Config
	reach := connectedTo(ix.snap, ix.snap.BigID, cfg.SearchRadius())
	for _, v := range ix.snap.Nodes {
		if !reach[v.ID] || v.Blackout {
			continue
		}
		switch v.Status {
		case core.StatusBootup:
			r.addf("F4", v.ID, "connected node left at bootup")
		case core.StatusAssociate:
			if _, ok := ix.views[v.Head]; !ok {
				r.addf("F4", v.ID, "associate of vanished head %d", v.Head)
			}
		}
	}
}

// connectedTo computes the set of nodes connected to start in the
// physical graph where nodes within txRange share an edge. Nodes are
// bucketed into a txRange-sized grid so each BFS hop scans only the
// 3×3 ring around the current node instead of every node.
func connectedTo(s core.Snapshot, start radio.NodeID, txRange float64) map[radio.NodeID]bool {
	key := func(p geom.Point) gridKey {
		return gridKey{int(math.Floor(p.X / txRange)), int(math.Floor(p.Y / txRange))}
	}
	pos := make(map[radio.NodeID]geom.Point, len(s.Nodes))
	grid := make(map[gridKey][]radio.NodeID, len(s.Nodes))
	for _, v := range s.Nodes {
		pos[v.ID] = v.Pos
		k := key(v.Pos)
		grid[k] = append(grid[k], v.ID)
	}
	reach := map[radio.NodeID]bool{}
	if _, ok := pos[start]; !ok {
		return reach
	}
	r2 := txRange * txRange
	queue := []radio.NodeID{start}
	reach[start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		cp := pos[cur]
		base := key(cp)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, id := range grid[gridKey{base.x + dx, base.y + dy}] {
					if !reach[id] && pos[id].Dist2(cp) <= r2 {
						reach[id] = true
						queue = append(queue, id)
					}
				}
			}
		}
	}
	return reach
}

// checkMinDistTree verifies the strengthened F₁.₂ of GS³-D: the head
// graph is a minimum-hop spanning tree of the head-neighbor graph
// rooted at the big node (or its proxy).
func checkMinDistTree(ix *index, r *Result) {
	cfg := ix.snap.Config
	root := ix.snap.BigID
	if big, ok := ix.views[root]; ok && !big.IsHead() {
		switch {
		case big.Status == core.StatusBigSlide && big.Head != radio.None:
			root = big.Head
		case big.Proxy != radio.None:
			root = big.Proxy
		}
	}
	if rv, ok := ix.views[root]; !ok || rv.Blackout {
		return
	}
	// BFS over the head-neighbor graph Ghn (heads within √3R+2Rt).
	// Transiently-down heads are excluded: ParentSeek only considers
	// reachable heads, so the protocol's hop counts are shortest paths
	// in the blackout-excluded graph.
	dist := map[radio.NodeID]int{root: 0}
	queue := []radio.NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		cv := ix.views[cur]
		// The band query is fully consumed before the next headsNear
		// call (next queue pop), so the scratch-backed slice is safe.
		for _, oi := range ix.headsNear(cv.Pos, cfg.NeighborDistMax()+1e-9) {
			o := ix.heads[oi]
			if o.ID == cur || o.Blackout {
				continue
			}
			if _, seen := dist[o.ID]; !seen {
				dist[o.ID] = dist[cur] + 1
				queue = append(queue, o.ID)
			}
		}
	}
	for _, h := range ix.heads {
		want, reachable := dist[h.ID]
		if !reachable || h.Blackout {
			continue
		}
		if h.Hops != want {
			r.addf("F1.2", h.ID, "hops %d, shortest path %d", h.Hops, want)
		}
	}
}

// StructureStats summarizes the configured structure for reporting.
type StructureStats struct {
	Heads          int
	Associates     int
	Bootup         int
	NeighborDists  []float64 // head-to-head distances within the band
	CellRadii      []float64 // associate-to-head distances
	MaxILDeviation float64   // max head distance from its IL
}

// Stats computes structure statistics of a snapshot.
func Stats(s core.Snapshot) StructureStats {
	ix := newIndex(s)
	cfg := s.Config
	var st StructureStats
	for _, v := range s.Nodes {
		switch {
		case v.IsHead():
			st.Heads++
			if d := v.Pos.Dist(v.IL); d > st.MaxILDeviation {
				st.MaxILDeviation = d
			}
		case v.Status == core.StatusAssociate:
			st.Associates++
			if hv, ok := ix.views[v.Head]; ok {
				st.CellRadii = append(st.CellRadii, v.Pos.Dist(hv.Pos))
			}
		case v.Status == core.StatusBootup:
			st.Bootup++
		}
	}
	for i, h := range ix.heads {
		// Grid-pruned upper-triangle scan: oi > i keeps each pair once,
		// in the same (i ascending, then j ascending) order as before.
		for _, oi := range ix.headsNear(h.Pos, cfg.NeighborDistMax()+1e-9) {
			if oi > i {
				st.NeighborDists = append(st.NeighborDists, h.Pos.Dist(ix.heads[oi].Pos))
			}
		}
	}
	return st
}
