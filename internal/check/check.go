// Package check machine-verifies the GS³ invariants and fixpoints on a
// network snapshot: SI = I₁ ∧ I₂ ∧ I₃ (Theorem 1), SF = F₁ ∧ F₂ ∧ F₃ ∧
// F₄ (Theorem 2), and their GS³-D relaxations DI/DF (Theorems 5 and 6).
//
// Every predicate returns a list of violations rather than a bare bool,
// so tests and the bench harness can report exactly which node broke
// which clause.
package check

import (
	"fmt"
	"math"
	"slices"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/radio"
)

// Violation is one broken invariant clause.
type Violation struct {
	Clause string       // e.g. "I2.1"
	Node   radio.NodeID // offending node (radio.None for global clauses)
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s@%d: %s", v.Clause, v.Node, v.Detail)
}

// Mode selects the static (SI/SF) or dynamic (DI/DF) variants of the
// clauses: the dynamic ones relax the hexagon bounds for cells whose
// ⟨ICC, ICP⟩ differs from a neighbor's and raise the children bound
// from 3 to 5.
type Mode int

// Checking modes.
const (
	Static Mode = iota + 1
	Dynamic
)

// Result aggregates the violations of one full check.
type Result struct {
	Violations []Violation
}

// OK reports whether no clause was violated.
func (r Result) OK() bool { return len(r.Violations) == 0 }

func (r *Result) addf(clause string, node radio.NodeID, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Clause: clause, Node: node, Detail: fmt.Sprintf(format, args...),
	})
}

// index provides O(1) lookups over a snapshot: ID→view resolution, the
// head list, per-head member lists, and a head-position grid that
// answers "which heads are near p" in output-sensitive time, so the
// neighbor-band clauses cost O(heads) overall instead of O(heads²).
//
// Node IDs are allocated densely from 0 (see radio.NodeID), so the
// ID→view table is a flat slice rather than a map, and the member lists
// are one counting-sorted backing array — building an index costs a
// fixed handful of allocations instead of a few per node, which keeps
// Invariant off the allocator on benchmark hot paths.
type index struct {
	snap core.Snapshot
	// byID maps a node ID to its position in snap.Nodes (-1 if absent).
	byID  []int32
	heads []core.NodeView
	// headNode[i] is the snap.Nodes index of heads[i]; headOrd[j] is the
	// head ordinal of snap.Nodes[j] (-1 for non-heads).
	headNode []int32
	headOrd  []int32

	// Associates grouped by head ordinal: membersOf(i) is
	// memberIDs[memberOff[i]:memberOff[i+1]], ascending by ID within
	// each group (snapshot order is ascending and the counting sort is
	// stable).
	memberOff []int32
	memberIDs []radio.NodeID

	// headGrid buckets head ordinals by position; cell is the bucket
	// edge (the neighbor-band radius, so band queries scan a 3×3 ring).
	// Bucket slices are carved from one backing array. nearBuf is the
	// reusable result buffer of headsNear.
	headGrid map[gridKey][]int32
	cell     float64
	nearBuf  []int

	// mark/markGen form an O(1)-reset visited set for the tree walks:
	// mark[j] == markGen means snap.Nodes[j] is visited in the current
	// walk.
	mark    []int32
	markGen int32
}

type gridKey struct{ x, y int }

func newIndex(s core.Snapshot) *index {
	maxID := radio.NodeID(-1)
	nHeads := 0
	for i := range s.Nodes {
		if s.Nodes[i].ID > maxID {
			maxID = s.Nodes[i].ID
		}
		if s.Nodes[i].IsHead() {
			nHeads++
		}
	}
	ix := &index{
		snap:     s,
		byID:     make([]int32, maxID+1),
		heads:    make([]core.NodeView, 0, nHeads),
		headNode: make([]int32, 0, nHeads),
		headOrd:  make([]int32, len(s.Nodes)),
		mark:     make([]int32, len(s.Nodes)),
		cell:     s.Config.NeighborDistMax(),
	}
	for i := range ix.byID {
		ix.byID[i] = -1
	}
	for j := range s.Nodes {
		v := &s.Nodes[j]
		ix.byID[v.ID] = int32(j)
		ix.headOrd[j] = -1
		if v.IsHead() {
			ix.headOrd[j] = int32(len(ix.heads))
			ix.heads = append(ix.heads, *v)
			ix.headNode = append(ix.headNode, int32(j))
		}
	}

	// Members: counting layout. Associates whose Head does not resolve
	// to a live head are dropped — member lists are only ever queried
	// for actual heads, and the membership clauses report those nodes
	// separately.
	ix.memberOff = make([]int32, nHeads+1)
	for j := range s.Nodes {
		if s.Nodes[j].Status == core.StatusAssociate {
			if ho := ix.headOrdOf(s.Nodes[j].Head); ho >= 0 {
				ix.memberOff[ho+1]++
			}
		}
	}
	for i := 1; i <= nHeads; i++ {
		ix.memberOff[i] += ix.memberOff[i-1]
	}
	ix.memberIDs = make([]radio.NodeID, ix.memberOff[nHeads])
	cursor := make([]int32, nHeads)
	copy(cursor, ix.memberOff[:nHeads])
	for j := range s.Nodes {
		if s.Nodes[j].Status == core.StatusAssociate {
			if ho := ix.headOrdOf(s.Nodes[j].Head); ho >= 0 {
				ix.memberIDs[cursor[ho]] = s.Nodes[j].ID
				cursor[ho]++
			}
		}
	}

	// Head grid: count per bucket first, then carve every bucket from
	// one backing array so the fill pass never reallocates.
	counts := make(map[gridKey]int32, nHeads)
	for i := range ix.heads {
		counts[ix.keyOf(ix.heads[i].Pos)]++
	}
	backing := make([]int32, nHeads)
	ix.headGrid = make(map[gridKey][]int32, len(counts))
	n := int32(0)
	for k, c := range counts {
		ix.headGrid[k] = backing[n:n : n+c]
		n += c
	}
	for i := range ix.heads {
		k := ix.keyOf(ix.heads[i].Pos)
		ix.headGrid[k] = append(ix.headGrid[k], int32(i))
	}
	return ix
}

// nodeIdx returns the snap.Nodes position of id, or -1.
func (ix *index) nodeIdx(id radio.NodeID) int32 {
	if id < 0 || int(id) >= len(ix.byID) {
		return -1
	}
	return ix.byID[id]
}

// headOrdOf returns the head ordinal of id, or -1 if id is absent or
// not a head.
func (ix *index) headOrdOf(id radio.NodeID) int32 {
	j := ix.nodeIdx(id)
	if j < 0 {
		return -1
	}
	return ix.headOrd[j]
}

// view resolves id to its snapshot view, the dense-slice equivalent of
// the old views-map lookup.
func (ix *index) view(id radio.NodeID) (core.NodeView, bool) {
	j := ix.nodeIdx(id)
	if j < 0 {
		return core.NodeView{}, false
	}
	return ix.snap.Nodes[j], true
}

// membersOf returns the associate IDs of the head with ordinal ho,
// ascending. The slice aliases the index's backing array: read-only.
func (ix *index) membersOf(ho int) []radio.NodeID {
	return ix.memberIDs[ix.memberOff[ho]:ix.memberOff[ho+1]]
}

func (ix *index) keyOf(p geom.Point) gridKey {
	return gridKey{int(math.Floor(p.X / ix.cell)), int(math.Floor(p.Y / ix.cell))}
}

// headsNear returns the indices (into ix.heads) of all heads within
// dist of p, in ascending index order — which is ascending ID order,
// because heads is built from the ID-sorted snapshot. The slice aliases
// the index's scratch buffer: it is valid until the next headsNear
// call. A head exactly at p (e.g. the query head itself) is included.
func (ix *index) headsNear(p geom.Point, dist float64) []int {
	ix.nearBuf = ix.nearBuf[:0]
	r := int(math.Ceil(dist / ix.cell))
	r2 := dist * dist
	base := ix.keyOf(p)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, i := range ix.headGrid[gridKey{base.x + dx, base.y + dy}] {
				if ix.heads[i].Pos.Dist2(p) <= r2 {
					ix.nearBuf = append(ix.nearBuf, int(i))
				}
			}
		}
	}
	slices.Sort(ix.nearBuf)
	return ix.nearBuf
}

// occluded reports whether an obstacle blocks the line of sight between
// two positions in this snapshot. With no obstacles it is constant
// false, so obstacle-free checks behave exactly as before.
func (ix *index) occluded(a, b geom.Point) bool {
	return len(ix.snap.Obstacles) != 0 && geom.AnyOccludes(ix.snap.Obstacles, a, b)
}

// isBoundary reports whether head h is a boundary cell head: one with
// fewer than 6 heads in the neighbor distance band around it. The
// paper's boundary cells (geographic edge or next to an R_t-gap region)
// are exactly the cells missing lattice neighbors. Heads behind an
// obstacle do not count: an unhearable lattice neighbor is a missing
// one, so cells lining an obstacle are boundary cells — exactly like
// cells lining an R_t-gap.
func (ix *index) isBoundary(h core.NodeView) bool {
	cfg := ix.snap.Config
	count := 0
	for _, oi := range ix.headsNear(h.Pos, cfg.NeighborDistMax()+1e-9) {
		if ix.heads[oi].ID != h.ID && !ix.occluded(h.Pos, ix.heads[oi].Pos) {
			count++
		}
	}
	return count < 6
}

// Invariant checks SI (mode Static) or DI (mode Dynamic) on the
// snapshot.
func Invariant(s core.Snapshot, mode Mode) Result {
	ix := newIndex(s)
	var r Result
	invariantOn(ix, mode, &r)
	return r
}

// invariantOn runs the invariant clauses against an existing index, so
// Fixpoint shares one index build with the fixpoint clauses.
func invariantOn(ix *index, mode Mode, r *Result) {
	checkI1(ix, r)
	checkI2(ix, mode, r)
	checkI3(ix, mode, r)
}

// checkI1 verifies connectivity: I₁.₁ (head-graph edges are physical
// edges) and I₁.₂ (the head graph is a tree rooted at the big node).
func checkI1(ix *index, r *Result) {
	cfg := ix.snap.Config
	bigID := ix.snap.BigID
	big, haveBig := ix.view(bigID)

	for _, h := range ix.heads {
		// I1.1: parent and children within local-coordination range,
		// hence physically connected (nodes can reach √3R+2Rt).
		if h.Parent != radio.None && h.Parent != h.ID {
			if p, ok := ix.view(h.Parent); ok && p.IsHead() {
				if d := h.Pos.Dist(p.Pos); d > cfg.SearchRadius()+2*cfg.Rt+1e-9 {
					r.addf("I1.1", h.ID, "parent %d at distance %.3g beyond range", h.Parent, d)
				}
			}
		}
	}

	if !haveBig || !(big.IsHead() || big.Status == core.StatusBigSlide || big.Status == core.StatusBigMove) {
		if haveBig && !big.IsHead() {
			return // big node not heading: tree roots at the proxy; skip
		}
	}

	// I1.2: every head reaches a root by following parents, without
	// cycles. The root is the big node, its BIG_MOVE proxy, or — during
	// a BIG_SLIDE — the head of the cell the big node belongs to.
	root := bigID
	if haveBig && !big.IsHead() {
		switch {
		case big.Status == core.StatusBigSlide && big.Head != radio.None:
			root = big.Head
		case big.Proxy != radio.None:
			root = big.Proxy
		}
	}
	for _, h := range ix.heads {
		ix.markGen++
		cur := h
		for {
			if cur.ID == root {
				break
			}
			if cur.Blackout {
				// The walk runs through a transiently-down head: its
				// frozen parent pointer may be stale, and a down head
				// cannot repair it until it restores. Healing in
				// progress, not a violation.
				break
			}
			if ci := ix.nodeIdx(cur.ID); ix.mark[ci] == ix.markGen {
				r.addf("I1.2", h.ID, "cycle through %d", cur.ID)
				break
			} else {
				ix.mark[ci] = ix.markGen
			}
			if cur.Parent == radio.None || cur.Parent == cur.ID {
				r.addf("I1.2", h.ID, "walk stuck at %d (parent %d)", cur.ID, cur.Parent)
				break
			}
			next, ok := ix.view(cur.Parent)
			if !ok || !next.IsHead() {
				r.addf("I1.2", h.ID, "parent %d of %d is not a live head", cur.Parent, cur.ID)
				break
			}
			cur = next
		}
	}
}

// checkI2 verifies the hexagonal-structure clauses I₂.₁–I₂.₄.
func checkI2(ix *index, mode Mode, r *Result) {
	cfg := ix.snap.Config
	lo, hi := cfg.NeighborDistMin(), cfg.NeighborDistMax()

	for ho := range ix.heads {
		h := ix.heads[ho]
		boundary := ix.isBoundary(h)

		// Head within Rt of its IL (Corollary 2's bounded deviation).
		if d := h.Pos.Dist(h.IL); d > cfg.Rt+1e-9 {
			r.addf("I2.0", h.ID, "head %.3g from its IL (Rt=%.3g)", d, cfg.Rt)
		}

		// I2.1 / I2.2: neighbor-head distances. The grid returns the
		// in-band heads directly, ascending by ID like the full scan did.
		// Pairs involving a blacked-out head are skipped: a replacement
		// head legitimately coexists near its down predecessor until the
		// predecessor restores and yields. Occluded pairs are skipped for
		// the same reason: heads that cannot hear each other are not
		// protocol neighbors, however close an obstacle lets them stand.
		for _, oi := range ix.headsNear(h.Pos, hi+1e-9) {
			o := ix.heads[oi]
			if o.ID == h.ID || h.Blackout || o.Blackout || ix.occluded(h.Pos, o.Pos) {
				continue
			}
			d := h.Pos.Dist(o.Pos)
			if mode == Dynamic && o.Spiral != h.Spiral {
				// Relaxed DI bound: distance tracks the IL distance
				// within ±2Rt, and IL distance stays in (0, 2√3R).
				ild := h.IL.Dist(o.IL)
				if ild <= 0 || ild >= 2*cfg.HeadSpacing()+1e-9 {
					r.addf("I2.1d", h.ID, "IL distance %.3g to %d outside (0, 2√3R)", ild, o.ID)
				}
				if math.Abs(d-ild) > 2*cfg.Rt+1e-9 {
					r.addf("I2.1d", h.ID, "distance %.3g to %d deviates from IL distance %.3g by more than 2Rt", d, o.ID, ild)
				}
				continue
			}
			if d < lo-1e-9 {
				r.addf("I2.1", h.ID, "neighbor %d at %.4g < %.4g", o.ID, d, lo)
			}
		}

		// I2.3: children bound. The big node gets 6; a head standing in
		// for it — the moving big node's proxy, or the head that took
		// over the big node's cell during a BIG_SLIDE (it inherits the
		// big node's children) — gets the same bound.
		isProxy := false
		if big, ok := ix.view(ix.snap.BigID); ok {
			if big.Proxy == h.ID ||
				(big.Status == core.StatusBigSlide && big.Head == h.ID) {
				isProxy = true
			}
		}
		limit := 3
		if mode == Dynamic && !h.IsBig {
			limit = 5
		}
		if h.IsBig || isProxy {
			limit = 6
		}
		if len(h.Children) > limit {
			r.addf("I2.3", h.ID, "%d children > limit %d", len(h.Children), limit)
		}

		// I2.4: cell radius. Inner cells: R + 2Rt/√3; dynamic mode with
		// differing ⟨ICC,ICP⟩ relaxes to 2R + Rt; boundary cells to
		// √3R + 2Rt (+ the gap-region diameter, which we cannot see
		// locally, so boundary cells get the base bound only when no
		// violation is certain).
		bound := cfg.CellRadiusBound()
		if mode == Dynamic {
			bound = 2*cfg.R + cfg.Rt
		}
		if boundary {
			bound = cfg.HeadSpacing() + 2*cfg.Rt
		}
		for _, m := range ix.membersOf(ho) {
			mv, _ := ix.view(m)
			if d := mv.Pos.Dist(h.Pos); d > bound+1e-9 && !boundary {
				r.addf("I2.4", m, "associate %.4g from head %d, bound %.4g", d, h.ID, bound)
			}
		}
	}
}

// checkI3 verifies inner-cell optimality: each associate of an inner
// cell belongs to one cell and has chosen the closest head. In dynamic
// mode only membership validity is required — a head shift moves the
// head role instantly, and the neighbors' optimal re-choice happens on
// their next sweep, so full optimality is a fixpoint property (F₃)
// rather than an invariant under intra-cell maintenance.
func checkI3(ix *index, mode Mode, r *Result) {
	for _, v := range ix.snap.Nodes {
		if v.Status != core.StatusAssociate {
			continue
		}
		hv, ok := ix.view(v.Head)
		if !ok || !hv.IsHead() {
			r.addf("I3", v.ID, "associate of %d which is not a live head", v.Head)
			continue
		}
		if mode == Dynamic {
			if d := v.Pos.Dist(hv.Pos); d > ix.snap.Config.SearchRadius()+1e-9 {
				r.addf("I3", v.ID, "associate %.4g from head %d, beyond coordination range", d, v.Head)
			}
			continue
		}
		if ix.isBoundary(hv) {
			continue
		}
		if v.Blackout || hv.Blackout {
			continue // down node or down head: re-choice pending restore
		}
		// Any head beating the chosen one lies within chosen of the
		// associate, so the grid query bounds the scan.
		chosen := v.Pos.Dist(hv.Pos)
		for _, oi := range ix.headsNear(v.Pos, chosen) {
			o := ix.heads[oi]
			if o.Blackout || ix.occluded(v.Pos, o.Pos) {
				continue // unhearable: cannot be chosen
			}
			if d := v.Pos.Dist(o.Pos); d < chosen-1e-9 {
				r.addf("I3", v.ID, "head %d at %.4g closer than chosen %d at %.4g", o.ID, d, v.Head, chosen)
				break
			}
		}
	}
}

// Fixpoint checks SF (mode Static) or DF (mode Dynamic): the invariant
// clauses plus cell optimality for every cell (F₃), coverage (F₄), and
// — in dynamic mode — the minimum-distance spanning tree property
// (F₁.₂ strengthened).
func Fixpoint(s core.Snapshot, mode Mode) Result {
	ix := newIndex(s)
	var r Result
	invariantOn(ix, mode, &r)
	checkF3(ix, &r)
	checkF4(ix, &r)
	if mode == Dynamic {
		checkMinDistTree(ix, &r)
	}
	return r
}

// checkF3: every associate (boundary cells included) has the best head.
func checkF3(ix *index, r *Result) {
	for _, v := range ix.snap.Nodes {
		if v.Status != core.StatusAssociate {
			continue
		}
		hv, ok := ix.view(v.Head)
		if !ok || !hv.IsHead() {
			continue // reported by I3 already
		}
		if v.Blackout || hv.Blackout {
			continue // down node or down head: re-choice pending restore
		}
		chosen := v.Pos.Dist(hv.Pos)
		for _, oi := range ix.headsNear(v.Pos, chosen) {
			o := ix.heads[oi]
			if o.Blackout || ix.occluded(v.Pos, o.Pos) {
				continue // a live associate cannot hear a down head
			}
			if d := v.Pos.Dist(o.Pos); d < chosen-1e-9 {
				r.addf("F3", v.ID, "head %d at %.4g closer than chosen %.4g", o.ID, d, chosen)
				break
			}
		}
	}
}

// checkF4: every node connected to the big node is covered (is a head
// or an associate). Connectivity is decided on the physical graph with
// the maximum transmission range as edge length; edges an obstacle
// occludes do not exist, so pockets of nodes an obstacle walls off from
// the big node owe no coverage — they legitimately stay at bootup.
func checkF4(ix *index, r *Result) {
	cfg := ix.snap.Config
	reach := ix.connected(ix.snap.BigID, cfg.SearchRadius())
	for i, v := range ix.snap.Nodes {
		if !reach[i] || v.Blackout {
			continue
		}
		switch v.Status {
		case core.StatusBootup:
			r.addf("F4", v.ID, "connected node left at bootup")
		case core.StatusAssociate:
			if _, ok := ix.view(v.Head); !ok {
				r.addf("F4", v.ID, "associate of vanished head %d", v.Head)
			}
		}
	}
}

// connected computes, for every snapshot node, whether it is connected
// to start in the physical graph where mutually visible nodes within
// txRange share an edge; the result is indexed by position in
// snap.Nodes. Nodes are
// bucketed into a txRange-sized grid — carved from one backing array,
// like the head grid — so each BFS hop scans only the 3×3 ring around
// the current node instead of every node.
func (ix *index) connected(start radio.NodeID, txRange float64) []bool {
	s := ix.snap
	key := func(p geom.Point) gridKey {
		return gridKey{int(math.Floor(p.X / txRange)), int(math.Floor(p.Y / txRange))}
	}
	counts := make(map[gridKey]int32, len(s.Nodes))
	for i := range s.Nodes {
		counts[key(s.Nodes[i].Pos)]++
	}
	backing := make([]int32, len(s.Nodes))
	grid := make(map[gridKey][]int32, len(counts))
	n := int32(0)
	for k, c := range counts {
		grid[k] = backing[n:n : n+c]
		n += c
	}
	for i := range s.Nodes {
		k := key(s.Nodes[i].Pos)
		grid[k] = append(grid[k], int32(i))
	}
	reach := make([]bool, len(s.Nodes))
	si := ix.nodeIdx(start)
	if si < 0 {
		return reach
	}
	r2 := txRange * txRange
	queue := make([]int32, 0, len(s.Nodes))
	queue = append(queue, si)
	reach[si] = true
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		cp := s.Nodes[cur].Pos
		base := key(cp)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[gridKey{base.x + dx, base.y + dy}] {
					if !reach[j] && s.Nodes[j].Pos.Dist2(cp) <= r2 &&
						!ix.occluded(cp, s.Nodes[j].Pos) {
						reach[j] = true
						queue = append(queue, j)
					}
				}
			}
		}
	}
	return reach
}

// checkMinDistTree verifies the strengthened F₁.₂ of GS³-D: the head
// graph is a minimum-hop spanning tree of the head-neighbor graph
// rooted at the big node (or its proxy).
func checkMinDistTree(ix *index, r *Result) {
	cfg := ix.snap.Config
	root := ix.snap.BigID
	if big, ok := ix.view(root); ok && !big.IsHead() {
		switch {
		case big.Status == core.StatusBigSlide && big.Head != radio.None:
			root = big.Head
		case big.Proxy != radio.None:
			root = big.Proxy
		}
	}
	if rv, ok := ix.view(root); !ok || rv.Blackout {
		return
	}
	// BFS over the head-neighbor graph Ghn (heads within √3R+2Rt).
	// Transiently-down heads are excluded: ParentSeek only considers
	// reachable heads, so the protocol's hop counts are shortest paths
	// in the blackout-excluded graph. dist is indexed by snap.Nodes
	// position; -1 marks unreached.
	dist := make([]int32, len(ix.snap.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	ri := ix.nodeIdx(root)
	dist[ri] = 0
	queue := make([]int32, 0, len(ix.heads)+1)
	queue = append(queue, ri)
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		cv := ix.snap.Nodes[cur]
		// The band query is fully consumed before the next headsNear
		// call (next queue pop), so the scratch-backed slice is safe.
		for _, oi := range ix.headsNear(cv.Pos, cfg.NeighborDistMax()+1e-9) {
			o := ix.heads[oi]
			if o.ID == cv.ID || o.Blackout || ix.occluded(cv.Pos, o.Pos) {
				continue
			}
			if oj := ix.headNode[oi]; dist[oj] < 0 {
				dist[oj] = dist[cur] + 1
				queue = append(queue, oj)
			}
		}
	}
	for hi, h := range ix.heads {
		want := dist[ix.headNode[hi]]
		if want < 0 || h.Blackout {
			continue
		}
		if h.Hops != int(want) {
			r.addf("F1.2", h.ID, "hops %d, shortest path %d", h.Hops, want)
		}
	}
}

// StructureStats summarizes the configured structure for reporting.
type StructureStats struct {
	Heads          int
	Associates     int
	Bootup         int
	NeighborDists  []float64 // head-to-head distances within the band
	CellRadii      []float64 // associate-to-head distances
	MaxILDeviation float64   // max head distance from its IL
}

// Stats computes structure statistics of a snapshot.
func Stats(s core.Snapshot) StructureStats {
	ix := newIndex(s)
	cfg := s.Config
	var st StructureStats
	for _, v := range s.Nodes {
		switch {
		case v.IsHead():
			st.Heads++
			if d := v.Pos.Dist(v.IL); d > st.MaxILDeviation {
				st.MaxILDeviation = d
			}
		case v.Status == core.StatusAssociate:
			st.Associates++
			if hv, ok := ix.view(v.Head); ok {
				st.CellRadii = append(st.CellRadii, v.Pos.Dist(hv.Pos))
			}
		case v.Status == core.StatusBootup:
			st.Bootup++
		}
	}
	for i, h := range ix.heads {
		// Grid-pruned upper-triangle scan: oi > i keeps each pair once,
		// in the same (i ascending, then j ascending) order as before.
		for _, oi := range ix.headsNear(h.Pos, cfg.NeighborDistMax()+1e-9) {
			if oi > i {
				st.NeighborDists = append(st.NeighborDists, h.Pos.Dist(ix.heads[oi].Pos))
			}
		}
	}
	return st
}
