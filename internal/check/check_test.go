package check

import (
	"strings"
	"testing"

	"gs3/internal/core"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/radio"
	"gs3/internal/rng"
)

// configured returns a freshly configured static network snapshot plus
// the network for mutation.
func configured(t *testing.T, regionRadius float64) (*core.Network, core.Config) {
	t.Helper()
	cfg := core.DefaultConfig(100)
	dep, err := field.Grid(regionRadius, cfg.Rt*0.9, 0.15, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	params := radio.Params{
		MaxRange:           cfg.SearchRadius() + cfg.Rt,
		DiffusionSpeed:     cfg.SearchRadius(),
		PerMessageOverhead: 0.001,
	}
	nw, err := core.NewNetwork(cfg, params, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range dep.Positions {
		if _, err := nw.AddNode(p, i == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.StartConfiguration(); err != nil {
		t.Fatal(err)
	}
	nw.Engine().Run(0)
	return nw, cfg
}

func TestInvariantHoldsAfterConfiguration(t *testing.T) {
	nw, _ := configured(t, 400)
	r := Invariant(nw.Snapshot(), Static)
	if !r.OK() {
		for _, v := range r.Violations[:min(10, len(r.Violations))] {
			t.Errorf("violation: %v", v)
		}
	}
}

func TestFixpointHoldsAfterConfiguration(t *testing.T) {
	nw, _ := configured(t, 400)
	r := Fixpoint(nw.Snapshot(), Static)
	if !r.OK() {
		for _, v := range r.Violations[:min(10, len(r.Violations))] {
			t.Errorf("violation: %v", v)
		}
	}
}

func TestDynamicFixpointAfterMaintenance(t *testing.T) {
	nw, cfg := configured(t, 400)
	nw.StartMaintenance(core.VariantD)
	nw.Engine().RunUntil(nw.Engine().Now() + 8*cfg.HeartbeatInterval)
	r := Fixpoint(nw.Snapshot(), Dynamic)
	if !r.OK() {
		for _, v := range r.Violations[:min(10, len(r.Violations))] {
			t.Errorf("violation: %v", v)
		}
	}
}

func TestDetectsCorruptedIL(t *testing.T) {
	nw, cfg := configured(t, 400)
	snap := nw.Snapshot()
	heads := snap.Heads()
	var victim radio.NodeID
	for _, h := range heads {
		if !h.IsBig {
			victim = h.ID
			break
		}
	}
	nw.Corrupt(victim, core.CorruptIL, 3*cfg.Rt)
	r := Invariant(nw.Snapshot(), Static)
	if r.OK() {
		t.Fatal("corrupted IL not detected")
	}
	found := false
	for _, v := range r.Violations {
		if v.Clause == "I2.0" && v.Node == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("expected I2.0 violation at %d, got %v", victim, r.Violations)
	}
}

func TestDetectsBrokenTree(t *testing.T) {
	nw, _ := configured(t, 400)
	// Fabricate a cycle: make some head its own grandparent by pointing
	// the big node's child back at a descendant. Corrupt via hops and a
	// self-parent hack through the exported Corrupt API is not enough;
	// instead kill the big node so every walk is rootless.
	nw.Kill(nw.BigID())
	r := Invariant(nw.Snapshot(), Static)
	if r.OK() {
		t.Fatal("rootless head graph not detected")
	}
	has := false
	for _, v := range r.Violations {
		if strings.HasPrefix(v.Clause, "I1") {
			has = true
		}
	}
	if !has {
		t.Errorf("expected I1 violations, got %v", r.Violations)
	}
}

func TestDetectsStolenAssociate(t *testing.T) {
	nw, _ := configured(t, 400)
	// Move an inner associate next to a different cell's head without
	// updating its membership: F3/I3 must flag it.
	snap := nw.Snapshot()
	var assoc core.NodeView
	for _, v := range snap.Nodes {
		if v.Status == core.StatusAssociate && v.Pos.Dist(geom.Point{}) < 150 {
			assoc = v
			break
		}
	}
	var farHead core.NodeView
	for _, h := range snap.Heads() {
		if h.ID != assoc.Head && !h.IsBig && h.Pos.Dist(assoc.Pos) > 200 && h.Pos.Dist(geom.Point{}) < 250 {
			farHead = h
			break
		}
	}
	if farHead.ID == 0 {
		t.Skip("no suitable far head")
	}
	nw.Move(assoc.ID, farHead.Pos.Add(geom.Vec{X: 1, Y: 1}))
	r := Fixpoint(nw.Snapshot(), Static)
	if r.OK() {
		t.Fatal("mis-assigned associate not detected")
	}
}

func TestDetectsBootupStraggler(t *testing.T) {
	nw, cfg := configured(t, 400)
	id := nw.Join(geom.Point{X: 0, Y: 100})
	// Force it back to bootup state by corrupting: simplest is joining
	// out of range then moving in without re-choosing.
	_ = id
	strangler := nw.Join(geom.Point{X: 400 + 3*cfg.SearchRadius(), Y: 0})
	nw.Move(strangler, geom.Point{X: 50, Y: 50})
	r := Fixpoint(nw.Snapshot(), Static)
	if r.OK() {
		t.Fatal("bootup straggler not detected by F4")
	}
	found := false
	for _, v := range r.Violations {
		if v.Clause == "F4" && v.Node == strangler {
			found = true
		}
	}
	if !found {
		t.Errorf("expected F4 violation at %d", strangler)
	}
}

func TestStats(t *testing.T) {
	nw, cfg := configured(t, 400)
	st := Stats(nw.Snapshot())
	if st.Heads < 7 {
		t.Errorf("heads = %d", st.Heads)
	}
	if st.Associates == 0 || st.Bootup != 0 {
		t.Errorf("associates=%d bootup=%d", st.Associates, st.Bootup)
	}
	if st.MaxILDeviation > cfg.Rt {
		t.Errorf("max IL deviation %v > Rt", st.MaxILDeviation)
	}
	if len(st.NeighborDists) == 0 || len(st.CellRadii) == 0 {
		t.Error("empty distance samples")
	}
	for _, d := range st.NeighborDists {
		if d < cfg.NeighborDistMin()-1e-9 || d > cfg.NeighborDistMax()+1e-9 {
			t.Errorf("neighbor distance %v outside Corollary 1 bounds", d)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Clause: "I2.1", Node: 5, Detail: "too far"}
	s := v.String()
	if !strings.Contains(s, "I2.1") || !strings.Contains(s, "5") {
		t.Errorf("String() = %q", s)
	}
}

func TestResultOK(t *testing.T) {
	var r Result
	if !r.OK() {
		t.Error("empty result should be OK")
	}
	r.addf("X", 1, "boom")
	if r.OK() {
		t.Error("non-empty result reported OK")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
