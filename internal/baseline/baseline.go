// Package baseline implements the two clustering schemes the paper
// compares GS³ against in its Related Work (§6):
//
//   - LEACH [10]: heads self-elect with a fixed probability each round;
//     every other node joins the nearest head. Neither placement nor
//     the number of clusters is guaranteed, and perturbations are
//     healed by globally repeating the clustering operation.
//   - Hop-bounded clustering [3]-style: geography-unaware BFS growth
//     bounded by a logical (hop) radius. Clusters have bounded hop
//     diameter but unbounded geographic spread and large overlap.
//
// Both operate on a plain deployment and report the metrics the
// comparison experiments need: geographic cluster radii, overlap, and
// re-clustering message cost.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/rng"
)

// Clustering is the result of one clustering pass: for each node, the
// index (into Heads) of its cluster, and the head set itself.
type Clustering struct {
	Positions []geom.Point
	Heads     []int // indices into Positions
	Cluster   []int // Cluster[i] = index into Heads, or -1 if unclustered
	// Messages is the number of protocol messages the pass cost, under
	// the same accounting GS³ uses (one per advertisement, join, or
	// relay).
	Messages int
}

// Radii returns the distance from every clustered node to its cluster
// head.
func (c Clustering) Radii() []float64 {
	var out []float64
	for i, cl := range c.Cluster {
		if cl < 0 {
			continue
		}
		h := c.Positions[c.Heads[cl]]
		out = append(out, c.Positions[i].Dist(h))
	}
	return out
}

// MaxRadius returns the maximum cluster radius (0 when empty).
func (c Clustering) MaxRadius() float64 {
	m := 0.0
	for _, r := range c.Radii() {
		if r > m {
			m = r
		}
	}
	return m
}

// OverlapFraction returns the fraction of clustered nodes that are
// strictly closer to some other cluster's head than to their own — the
// geographic-overlap metric of the comparison (GS³'s fixpoint F₃ makes
// it zero by construction).
func (c Clustering) OverlapFraction() float64 {
	if len(c.Heads) == 0 {
		return 0
	}
	total, misplaced := 0, 0
	for i, cl := range c.Cluster {
		if cl < 0 {
			continue
		}
		total++
		own := c.Positions[i].Dist(c.Positions[c.Heads[cl]])
		for hi, h := range c.Heads {
			if hi == cl {
				continue
			}
			if c.Positions[i].Dist(c.Positions[h]) < own-1e-9 {
				misplaced++
				break
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(misplaced) / float64(total)
}

// LEACH runs one round of LEACH-style clustering: every node becomes a
// head with probability p; every non-head joins the nearest head within
// txRange. Nodes with no head in range stay unclustered (LEACH would
// have them transmit directly at high power).
func LEACH(dep field.Deployment, p, txRange float64, src *rng.Source) (Clustering, error) {
	if p <= 0 || p >= 1 {
		return Clustering{}, fmt.Errorf("baseline: head probability must be in (0,1), got %v", p)
	}
	n := dep.N()
	c := Clustering{
		Positions: dep.Positions,
		Cluster:   make([]int, n),
	}
	headIndex := make(map[int]int)
	for i := 0; i < n; i++ {
		if src.Float64() < p {
			headIndex[i] = len(c.Heads)
			c.Heads = append(c.Heads, i)
			c.Messages++ // head advertisement broadcast
		}
	}
	for i := 0; i < n; i++ {
		if hi, isHead := headIndex[i]; isHead {
			c.Cluster[i] = hi
			continue
		}
		c.Cluster[i] = -1
		best, bestD := -1, txRange
		for hi, h := range c.Heads {
			if d := dep.Positions[i].Dist(dep.Positions[h]); d <= bestD {
				best, bestD = hi, d
			}
		}
		if best >= 0 {
			c.Cluster[i] = best
			c.Messages++ // join message
		}
	}
	return c, nil
}

// LEACHHeal models LEACH's response to a perturbation: the clustering
// operation is repeated globally. It returns the fresh clustering; the
// healing cost is the full Messages count of the new pass — O(n)
// regardless of how small the perturbation was.
func LEACHHeal(dep field.Deployment, p, txRange float64, src *rng.Source) (Clustering, error) {
	return LEACH(dep, p, txRange, src)
}

// DataRoundReport summarizes one LEACH data-gathering round (the
// "steady-state phase" of the LEACH round structure): every member
// transmits its reading to its cluster head, each head aggregates and
// transmits once directly to the sink. Per-leg message loss applies as
// an independent Bernoulli drop.
type DataRoundReport struct {
	// Generated counts readings offered (one per clustered node,
	// heads included — a head's own reading needs no member leg).
	Generated int
	// Delivered counts readings that survived every leg to the sink: a
	// member's reading needs its member→head leg AND its head's
	// head→sink leg; a head's own reading needs only the head→sink leg.
	// Unclustered nodes are counted generated but never delivered.
	Delivered int
	// HeadTx counts transmissions by heads (one per head per round).
	HeadTx int
	// DeliveryRatio is Delivered / Generated.
	DeliveryRatio float64
}

// DataRound plays one LEACH steady-state data round over an existing
// clustering: member readings travel member→head, then one aggregate
// per head travels head→sink directly (LEACH's single-hop long-range
// transmission). Each leg is dropped independently with probability
// loss, drawn from src, so reports are deterministic per (clustering,
// loss, seed). This is the apples-to-apples counterpart of the GS³
// convergecast data plane (internal/traffic) for delivery-ratio
// comparisons: LEACH pays one hop per member plus one long-range hop
// per head, while GS³ relays hop-by-hop up the parent tree.
func DataRound(c Clustering, loss float64, src *rng.Source) (DataRoundReport, error) {
	if loss < 0 || loss >= 1 {
		return DataRoundReport{}, fmt.Errorf("baseline: loss must be in [0,1), got %v", loss)
	}
	if src == nil {
		return DataRoundReport{}, fmt.Errorf("baseline: nil random source")
	}
	var rep DataRoundReport
	// Each head's aggregate→sink leg survives or not once per round;
	// draw in head order for determinism.
	headUp := make([]bool, len(c.Heads))
	for hi := range c.Heads {
		headUp[hi] = src.Float64() >= loss
		rep.HeadTx++
	}
	headIndex := make(map[int]int, len(c.Heads))
	for hi, h := range c.Heads {
		headIndex[h] = hi
	}
	for i, cl := range c.Cluster {
		rep.Generated++
		if cl < 0 {
			continue // unclustered: LEACH has no route for it here
		}
		if hi, isHead := headIndex[i]; isHead {
			if headUp[hi] {
				rep.Delivered++
			}
			continue
		}
		if src.Float64() >= loss && headUp[cl] {
			rep.Delivered++
		}
	}
	if rep.Generated > 0 {
		rep.DeliveryRatio = float64(rep.Delivered) / float64(rep.Generated)
	}
	return rep, nil
}

// HopCluster grows geography-unaware clusters by BFS on the
// connectivity graph: repeatedly pick the lowest-index unclustered node
// as a head and absorb everything within maxHops hops (among still
// unclustered nodes). txRange defines graph edges.
func HopCluster(dep field.Deployment, maxHops int, txRange float64) (Clustering, error) {
	if maxHops <= 0 {
		return Clustering{}, fmt.Errorf("baseline: maxHops must be positive, got %d", maxHops)
	}
	n := dep.N()
	c := Clustering{
		Positions: dep.Positions,
		Cluster:   make([]int, n),
	}
	for i := range c.Cluster {
		c.Cluster[i] = -1
	}
	adj := buildAdjacency(dep.Positions, txRange)
	for start := 0; start < n; start++ {
		if c.Cluster[start] >= 0 {
			continue
		}
		hi := len(c.Heads)
		c.Heads = append(c.Heads, start)
		c.Cluster[start] = hi
		c.Messages++ // head announcement
		// BFS bounded by maxHops over unclustered nodes.
		frontier := []int{start}
		for depth := 0; depth < maxHops && len(frontier) > 0; depth++ {
			var next []int
			for _, u := range frontier {
				for _, v := range adj[u] {
					if c.Cluster[v] < 0 {
						c.Cluster[v] = hi
						c.Messages += 2 // invite + join along the tree
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
	}
	return c, nil
}

// buildAdjacency builds the connectivity lists with a simple uniform
// grid, mirroring the radio medium's index.
func buildAdjacency(pos []geom.Point, txRange float64) [][]int {
	type key struct{ x, y int }
	cell := txRange
	grid := map[key][]int{}
	at := func(p geom.Point) key {
		return key{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
	}
	for i, p := range pos {
		grid[at(p)] = append(grid[at(p)], i)
	}
	adj := make([][]int, len(pos))
	for i, p := range pos {
		base := at(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[key{base.x + dx, base.y + dy}] {
					if j != i && pos[i].Dist(pos[j]) <= txRange {
						adj[i] = append(adj[i], j)
					}
				}
			}
		}
		sort.Ints(adj[i])
	}
	return adj
}
