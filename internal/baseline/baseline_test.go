package baseline

import (
	"math"
	"testing"

	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/rng"
)

func testDeployment(t *testing.T) field.Deployment {
	t.Helper()
	dep, err := field.Grid(300, 20, 0.2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestLEACHBasic(t *testing.T) {
	dep := testDeployment(t)
	c, err := LEACH(dep, 0.05, 600, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Heads) == 0 {
		t.Fatal("no heads elected")
	}
	// Expected number of heads ≈ p·n.
	want := 0.05 * float64(dep.N())
	if got := float64(len(c.Heads)); got < want/3 || got > want*3 {
		t.Errorf("heads = %v, expected ≈%v", got, want)
	}
	// Every node is clustered (txRange covers the whole region).
	for i, cl := range c.Cluster {
		if cl < 0 {
			t.Fatalf("node %d unclustered", i)
		}
	}
	if c.Messages == 0 {
		t.Error("no messages counted")
	}
}

func TestLEACHInvalidP(t *testing.T) {
	dep := testDeployment(t)
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := LEACH(dep, p, 100, rng.New(1)); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
}

func TestLEACHMembersJoinNearestHead(t *testing.T) {
	dep := testDeployment(t)
	c, err := LEACH(dep, 0.05, 600, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i, cl := range c.Cluster {
		if cl < 0 {
			continue
		}
		own := c.Positions[i].Dist(c.Positions[c.Heads[cl]])
		for _, h := range c.Heads {
			if d := c.Positions[i].Dist(c.Positions[h]); d < own-1e-9 {
				t.Fatalf("node %d not at nearest head", i)
			}
		}
	}
	// Overlap is zero when members pick the nearest head with unlimited
	// range — the interesting spread shows in the radius distribution.
	if f := c.OverlapFraction(); f != 0 {
		t.Errorf("overlap = %v", f)
	}
}

func TestLEACHOutOfRangeUnclustered(t *testing.T) {
	dep := testDeployment(t)
	c, err := LEACH(dep, 0.01, 30, rng.New(3)) // tiny range, few heads
	if err != nil {
		t.Fatal(err)
	}
	un := 0
	for _, cl := range c.Cluster {
		if cl < 0 {
			un++
		}
	}
	if un == 0 {
		t.Error("expected unclustered nodes at tiny range")
	}
}

func TestLEACHRadiusUnbounded(t *testing.T) {
	// The headline LEACH weakness: cluster radii vary wildly run to
	// run, with maxima far beyond any fixed R the operator wanted.
	dep := testDeployment(t)
	src := rng.New(11)
	maxima := make([]float64, 0, 20)
	for i := 0; i < 20; i++ {
		c, err := LEACH(dep, 0.02, 600, src)
		if err != nil {
			t.Fatal(err)
		}
		maxima = append(maxima, c.MaxRadius())
	}
	spread := 0.0
	for _, m := range maxima {
		spread = math.Max(spread, m)
	}
	if spread < 100 {
		t.Errorf("max LEACH radius %v suspiciously tight", spread)
	}
}

func TestLEACHHealCostsFullPass(t *testing.T) {
	dep := testDeployment(t)
	c, err := LEACHHeal(dep, 0.05, 600, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Healing re-clusters everyone: message count scales with n.
	if c.Messages < dep.N()/2 {
		t.Errorf("heal messages = %d for n = %d", c.Messages, dep.N())
	}
}

func TestHopClusterBasic(t *testing.T) {
	dep := testDeployment(t)
	c, err := HopCluster(dep, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Heads) == 0 {
		t.Fatal("no clusters")
	}
	for i, cl := range c.Cluster {
		if cl < 0 {
			t.Fatalf("node %d unclustered", i)
		}
	}
}

func TestHopClusterInvalidHops(t *testing.T) {
	dep := testDeployment(t)
	if _, err := HopCluster(dep, 0, 40); err == nil {
		t.Error("maxHops=0 accepted")
	}
}

func TestHopClusterHopBoundHolds(t *testing.T) {
	dep := testDeployment(t)
	maxHops := 2
	txRange := 45.0
	c, err := HopCluster(dep, maxHops, txRange)
	if err != nil {
		t.Fatal(err)
	}
	// Geographic distance to head can be at most maxHops·txRange.
	for _, r := range c.Radii() {
		if r > float64(maxHops)*txRange+1e-9 {
			t.Errorf("radius %v exceeds hop bound", r)
		}
	}
}

func TestHopClusterHasGeographicOverlap(t *testing.T) {
	// The paper's point about geography-unaware clustering: BFS growth
	// leaves many nodes closer to another cluster's head than their
	// own.
	dep := testDeployment(t)
	c, err := HopCluster(dep, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if f := c.OverlapFraction(); f <= 0 {
		t.Errorf("overlap fraction = %v, expected > 0", f)
	}
}

func TestRadiiAndMaxRadius(t *testing.T) {
	c := Clustering{
		Positions: []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 1, Y: 0}},
		Heads:     []int{0},
		Cluster:   []int{0, 0, -1},
	}
	radii := c.Radii()
	if len(radii) != 2 {
		t.Fatalf("radii = %v", radii)
	}
	if c.MaxRadius() != 5 {
		t.Errorf("max radius = %v", c.MaxRadius())
	}
}

func TestOverlapFractionEmpty(t *testing.T) {
	var c Clustering
	if c.OverlapFraction() != 0 {
		t.Error("empty clustering overlap != 0")
	}
}

func TestHopClusterDeterministic(t *testing.T) {
	dep := testDeployment(t)
	a, _ := HopCluster(dep, 3, 40)
	b, _ := HopCluster(dep, 3, 40)
	if len(a.Heads) != len(b.Heads) {
		t.Fatal("nondeterministic head count")
	}
	for i := range a.Cluster {
		if a.Cluster[i] != b.Cluster[i] {
			t.Fatal("nondeterministic clustering")
		}
	}
}

func TestDataRoundZeroLoss(t *testing.T) {
	dep := testDeployment(t)
	c, err := LEACH(dep, 0.05, 600, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DataRound(c, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generated != dep.N() {
		t.Errorf("generated %d readings, want %d", rep.Generated, dep.N())
	}
	if rep.DeliveryRatio != 1.0 {
		t.Errorf("zero-loss delivery ratio %v, want exactly 1.0", rep.DeliveryRatio)
	}
	if rep.HeadTx != len(c.Heads) {
		t.Errorf("HeadTx %d, want one per head (%d)", rep.HeadTx, len(c.Heads))
	}
}

func TestDataRoundLossy(t *testing.T) {
	dep := testDeployment(t)
	c, err := LEACH(dep, 0.05, 600, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	loss := 0.3
	rep, err := DataRound(c, loss, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// A member reading needs two independent survivals: expect roughly
	// (1-loss)^2, within a loose tolerance.
	want := (1 - loss) * (1 - loss)
	if math.Abs(rep.DeliveryRatio-want) > 0.1 {
		t.Errorf("lossy delivery ratio %v, expected ≈%v", rep.DeliveryRatio, want)
	}
	// Determinism: same clustering, same seed, same report.
	rep2, err := DataRound(c, loss, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep != rep2 {
		t.Errorf("same seed, different reports: %+v vs %+v", rep, rep2)
	}
	if _, err := DataRound(c, 1.0, rng.New(1)); err == nil {
		t.Error("loss=1.0 accepted")
	}
}
