package traffic_test

import (
	"testing"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/netsim"
	"gs3/internal/traffic"
)

// settled builds, configures, and stabilizes a zero-fault grid network
// with maintenance running, ready to carry traffic.
func settled(t *testing.T, r, region float64, seed uint64) *netsim.Sim {
	t.Helper()
	opt := netsim.DefaultOptions(r, region)
	opt.Seed = seed
	s, err := netsim.Build(opt)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatalf("configure: %v", err)
	}
	s.Net.StartMaintenance(core.VariantD)
	if _, err := s.RunUntilStable(60); err != nil {
		t.Fatalf("stabilize: %v", err)
	}
	// StableQuick only checks coverage; give the sweeps time to finish
	// filling neighbor-head tables, which geographic routing reads.
	s.RunSweeps(10)
	if res := check.Fixpoint(s.Net.Snapshot(), check.Dynamic); !res.OK() {
		t.Fatalf("not at fixpoint before traffic: %v", res)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	cases := []traffic.Config{
		{Packets: 0, Rate: 1},
		{Packets: 10, Rate: 0},
		{Packets: 10, Rate: 1, P2PFraction: 1.5},
		{Packets: 10, Rate: 1, TTL: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, c)
		}
	}
	if err := (traffic.Config{Packets: 10, Rate: 1, P2PFraction: 0.5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestConvergecastDeliversAll(t *testing.T) {
	s := settled(t, 10, 60, 1)
	plane, err := s.ServeTraffic(traffic.Config{Packets: 500, Rate: 200})
	if err != nil {
		t.Fatalf("ServeTraffic: %v", err)
	}
	rep := plane.Run()
	if rep.Generated != 500 {
		t.Fatalf("generated %d packets, want 500", rep.Generated)
	}
	if rep.Delivered != rep.Generated {
		t.Fatalf("zero-fault convergecast: delivered %d of %d (lost: noroute=%d hopfail=%d ttl=%d expired=%d)",
			rep.Delivered, rep.Generated, rep.LostNoRoute, rep.LostHopFail, rep.LostTTL, rep.Expired)
	}
	if rep.DeliveryRatio != 1.0 {
		t.Fatalf("delivery ratio %v, want exactly 1.0", rep.DeliveryRatio)
	}
	if rep.LatencyP50 <= 0 || rep.LatencyP99 < rep.LatencyP50 || rep.LatencyP999 < rep.LatencyP99 {
		t.Fatalf("latency percentiles not ordered: p50=%v p99=%v p999=%v",
			rep.LatencyP50, rep.LatencyP99, rep.LatencyP999)
	}
	if rep.Forwards == 0 || rep.HeadsUsed == 0 {
		t.Fatalf("no head forwards recorded: %+v", rep)
	}
	if rep.HeadEnergy != float64(rep.Forwards) {
		t.Fatalf("HeadEnergy %v != Forwards %d at unit ForwardCost", rep.HeadEnergy, rep.Forwards)
	}
}

func TestTrafficDeterministicReplay(t *testing.T) {
	run := func() traffic.Report {
		s := settled(t, 10, 60, 7)
		plane, err := s.ServeTraffic(traffic.Config{Packets: 300, Rate: 150, P2PFraction: 0.4})
		if err != nil {
			t.Fatalf("ServeTraffic: %v", err)
		}
		return plane.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different reports:\n  a=%+v\n  b=%+v", a, b)
	}
}

func TestTrafficUnderLoss(t *testing.T) {
	opt := netsim.DefaultOptions(10, 60)
	opt.Seed = 3
	opt.Faults.Loss = 0.3
	s, err := netsim.Build(opt)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatalf("configure: %v", err)
	}
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(20)
	plane, err := s.ServeTraffic(traffic.Config{Packets: 400, Rate: 200, P2PFraction: 0.3})
	if err != nil {
		t.Fatalf("ServeTraffic: %v", err)
	}
	rep := plane.Run()
	if rep.Generated != 400 {
		t.Fatalf("generated %d, want 400", rep.Generated)
	}
	if rep.Delivered+rep.Lost() != rep.Generated {
		t.Fatalf("accounting leak: delivered %d + lost %d != generated %d",
			rep.Delivered, rep.Lost(), rep.Generated)
	}
	if rep.Retries == 0 {
		t.Fatalf("30%% loss produced zero hop retries: %+v", rep)
	}
	if rep.DeliveryRatio <= 0.5 {
		t.Fatalf("delivery ratio %v under 30%% per-hop loss with retries; expected most packets through", rep.DeliveryRatio)
	}
}

func TestTrafficWithChurnCompletes(t *testing.T) {
	s := settled(t, 10, 50, 5)
	s.StartChurn(2*s.Opt.Config.HeartbeatInterval, 10)
	plane, err := s.ServeTraffic(traffic.Config{Packets: 300, Rate: 100, P2PFraction: 0.3})
	if err != nil {
		t.Fatalf("ServeTraffic: %v", err)
	}
	rep := plane.Run()
	if rep.Generated != 300 {
		t.Fatalf("generated %d, want 300", rep.Generated)
	}
	if rep.Delivered+rep.Lost() != rep.Generated {
		t.Fatalf("accounting leak under churn: %+v", rep)
	}
	if rep.DeliveryRatio < 0.8 {
		t.Fatalf("mild churn collapsed delivery to %v", rep.DeliveryRatio)
	}
}
