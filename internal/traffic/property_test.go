package traffic_test

import (
	"testing"

	"gs3/internal/traffic"
)

// The data-plane property from the issue: on a settled, gap-free
// structure with zero faults, (a) convergecast delivery ratio is
// exactly 1.0, and (b) geographic routing delivers every packet with
// every hop strictly decreasing cell distance — Report.Detours counts
// exactly the hops that violated strict decrease, so Detours == 0 is
// the no-loops/greedy-monotonicity property, and LostTTL == 0 confirms
// no packet ever cycled.

func TestPropertySettledConvergecastExact(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		s := settled(t, 10, 55, seed)
		plane, err := s.ServeTraffic(traffic.Config{Packets: 400, Rate: 200})
		if err != nil {
			t.Fatalf("seed %d: ServeTraffic: %v", seed, err)
		}
		rep := plane.Run()
		if rep.DeliveryRatio != 1.0 || rep.Delivered != rep.Generated {
			t.Errorf("seed %d: convergecast ratio %v (delivered %d/%d, noroute=%d hopfail=%d ttl=%d expired=%d)",
				seed, rep.DeliveryRatio, rep.Delivered, rep.Generated,
				rep.LostNoRoute, rep.LostHopFail, rep.LostTTL, rep.Expired)
		}
	}
}

func TestPropertySettledGeoRoutingGreedy(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		s := settled(t, 10, 55, seed)
		plane, err := s.ServeTraffic(traffic.Config{Packets: 400, Rate: 200, P2PFraction: 1})
		if err != nil {
			t.Fatalf("seed %d: ServeTraffic: %v", seed, err)
		}
		rep := plane.Run()
		if rep.DeliveryRatio != 1.0 {
			t.Errorf("seed %d: p2p delivery ratio %v (delivered %d/%d, noroute=%d hopfail=%d ttl=%d expired=%d)",
				seed, rep.DeliveryRatio, rep.Delivered, rep.Generated,
				rep.LostNoRoute, rep.LostHopFail, rep.LostTTL, rep.Expired)
		}
		if rep.Detours != 0 {
			t.Errorf("seed %d: %d detour hops on a settled gap-free structure; every hop must strictly decrease cell distance",
				seed, rep.Detours)
		}
		if rep.LostTTL != 0 {
			t.Errorf("seed %d: %d packets hit the TTL — routing loop on a settled structure", seed, rep.LostTTL)
		}
		if rep.MaxHops > float64(40) {
			t.Errorf("seed %d: max hops %v suspiciously large for region 55, cell radius 10", seed, rep.MaxHops)
		}
	}
}
