// Package traffic is the packet-level data plane of the simulator: it
// routes real packets over the structure GS³ builds, one scheduled
// radio delivery per hop, concurrently with whatever healing is in
// flight on the same event engine.
//
// Two workloads ride on the structure:
//
//   - Convergecast: a node's reading travels associate→head, then
//     head→parent up the head graph to the big node — the paper's
//     data-gathering pattern, now as individual packets rather than the
//     instantaneous aggregation round of internal/gather.
//   - Point-to-point: cell-coordinate geographic routing over the head
//     graph. Each head forwards to the neighbor head whose cell is
//     strictly closer (in hexagonal cell distance) to the destination,
//     with a local detour rule when a gapped or healing structure
//     offers no closer neighbor (see route.go).
//
// Every hop goes through radio.Medium.Unicast, so an installed fault
// injector applies per-packet loss, duplication-era jitter, and
// blackout drops; a failed hop retries a bounded number of times and
// the packet is then counted lost. Because hops are engine events,
// cell shifts, head shifts, and BIG_SLIDE happen *between* packet
// hops: the plane measures exactly how much traffic the structure
// loses while repair is in flight.
//
// # Determinism and thread safety
//
// A Plane is single-threaded like the engine that drives it: one trial
// owns one Plane, and all generation, routing, and reporting happen on
// the engine's goroutine. The open-loop load generator draws arrival
// times, sources, and destinations exclusively from its own forked
// rng.Source, in a fixed per-packet order, so a run with a given
// (seed, Config) replays bit-identically and enabling traffic never
// perturbs the protocol's or the fault layer's own draw sequences.
// Distinct Planes (on distinct networks) share nothing and may run on
// separate goroutines — that is how internal/runner fans out trials.
package traffic

import (
	"fmt"
	"slices"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/hexlat"
	"gs3/internal/radio"
	"gs3/internal/rng"
	"gs3/internal/stats"
)

// Config parameterizes one traffic run. Zero optional fields take the
// documented defaults at New; Packets and Rate are required.
type Config struct {
	// Packets is the total number of packets the open-loop generator
	// emits. Required.
	Packets int
	// Rate is the aggregate arrival rate in packets per virtual second
	// (interarrivals are exponential — an open-loop Poisson source).
	// Required.
	Rate float64
	// P2PFraction is the fraction of packets routed point-to-point via
	// geographic routing; the rest are convergecast to the big node.
	// 0 sends everything convergecast.
	P2PFraction float64
	// TTL bounds the hops a packet may take before it is dropped
	// (detour loops under heavy churn die here). Default 64.
	TTL int
	// HopRetries is the per-hop attempt budget: a packet whose send
	// fails (loss, blackout, missing route) waits RetryWait and tries
	// again, up to this many extra attempts. Default 3.
	HopRetries int
	// RetryWait is the virtual time between per-hop attempts. Default
	// half a heartbeat interval — healing has a chance to repair the
	// route between attempts.
	RetryWait float64
	// Drain is how long after the last generated packet the plane keeps
	// the run open for in-flight packets. Default 20 heartbeats;
	// packets still in flight when it expires count lost.
	Drain float64
	// ForwardCost is the energy charged to a head per successful
	// forward, the unit of the report's head energy columns. Default 1.
	ForwardCost float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Packets <= 0 {
		return fmt.Errorf("traffic: Packets must be positive, got %d", c.Packets)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("traffic: Rate must be positive, got %v", c.Rate)
	}
	if c.P2PFraction < 0 || c.P2PFraction > 1 {
		return fmt.Errorf("traffic: P2PFraction must be in [0,1], got %v", c.P2PFraction)
	}
	if c.TTL < 0 || c.HopRetries < 0 || c.RetryWait < 0 || c.Drain < 0 || c.ForwardCost < 0 {
		return fmt.Errorf("traffic: negative TTL/HopRetries/RetryWait/Drain/ForwardCost")
	}
	return nil
}

// packet is one in-flight datagram. Packets are pooled: finish/drop
// return them to the free list, so steady-state generation reuses a
// small working set instead of allocating per packet.
type packet struct {
	p2p      bool
	src, dst radio.NodeID // dst is the big node for convergecast
	born     float64
	hops     int
	attempts int          // failed attempts at the current hop
	holder   radio.NodeID // node currently carrying the packet
	prev     radio.NodeID // previous holder (damps detour ping-pong)
}

// Report is the outcome of one traffic run. All latency figures are in
// virtual seconds from generation to final delivery; head load figures
// count successful transmissions by nodes holding the head role.
type Report struct {
	// Generated is the number of packets the generator emitted.
	Generated uint64
	// Delivered is the number that reached their destination.
	Delivered uint64
	// LostNoRoute counts packets dropped because no next hop existed
	// (uncovered holder, dead destination, severed parent chain) after
	// the retry budget.
	LostNoRoute uint64
	// LostHopFail counts packets dropped after per-hop sends kept
	// failing (injected loss, blackouts, out-of-range links).
	LostHopFail uint64
	// LostTTL counts packets dropped by the hop budget (routing loops
	// under churn).
	LostTTL uint64
	// Expired counts packets still in flight when the drain window
	// closed; they are lost for ratio purposes.
	Expired uint64
	// Detours counts geographic-routing hops that could not strictly
	// decrease cell distance and fell back to the local detour rule
	// (always 0 on a settled gap-free structure).
	Detours uint64
	// Retries counts per-hop re-attempts after a failed send or a
	// missing route.
	Retries uint64
	// Forwards is the total number of successful transmissions by
	// head-role nodes, and HeadsUsed how many distinct heads forwarded.
	Forwards  uint64
	HeadsUsed int
	// MeanHeadForwards and MaxHeadForwards summarize per-head load.
	MeanHeadForwards float64
	MaxHeadForwards  float64
	// HeadEnergy is Forwards × ForwardCost; MaxHeadEnergy the largest
	// single head's burn.
	HeadEnergy    float64
	MaxHeadEnergy float64
	// DeliveryRatio is Delivered / Generated (0 when nothing was
	// generated).
	DeliveryRatio float64
	// Latency percentiles and extremes over delivered packets.
	LatencyMean float64
	LatencyP50  float64
	LatencyP99  float64
	LatencyP999 float64
	LatencyMax  float64
	// MeanHops and MaxHops summarize path lengths of delivered packets.
	MeanHops float64
	MaxHops  float64
}

// Lost returns the total packets lost for any reason.
func (r Report) Lost() uint64 {
	return r.LostNoRoute + r.LostHopFail + r.LostTTL + r.Expired
}

// Plane is one traffic run bound to a network. It is single-threaded:
// exactly the goroutine driving the network's engine may call its
// methods, and a Plane must not outlive its network. See the package
// comment for the full determinism contract.
type Plane struct {
	nw  *core.Network
	cfg Config
	src *rng.Source

	lat      hexlat.Lattice // origin re-anchored per cell-distance query
	maxRange float64
	hb       float64

	rep       Report
	latencies []float64
	hopsSum   uint64
	forwards  map[radio.NodeID]uint64

	inflight int
	stopped  bool
	free     []*packet
}

// New builds a plane over nw. src feeds the load generator and must be
// a dedicated source (fork it from the trial's stream); the plane owns
// it afterwards. Defaults are applied here; see Config.
func New(nw *core.Network, cfg Config, src *rng.Source) (*Plane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("traffic: nil random source")
	}
	hb := nw.Config().HeartbeatInterval
	if cfg.TTL == 0 {
		cfg.TTL = 64
	}
	if cfg.HopRetries == 0 {
		cfg.HopRetries = 3
	}
	if cfg.RetryWait == 0 {
		cfg.RetryWait = hb / 2
	}
	if cfg.Drain == 0 {
		cfg.Drain = 20 * hb
	}
	if cfg.ForwardCost == 0 {
		cfg.ForwardCost = 1
	}
	return &Plane{
		nw:        nw,
		cfg:       cfg,
		src:       src,
		lat:       hexlat.New(geom.Point{}, nw.Config().HeadSpacing(), nw.Config().GR),
		maxRange:  nw.Medium().Params().MaxRange,
		hb:        hb,
		latencies: make([]float64, 0, cfg.Packets),
		forwards:  make(map[radio.NodeID]uint64),
	}, nil
}

// Start schedules the first packet arrival on the engine. The caller
// then drives the engine itself; Run wraps Start plus the standard
// drive-and-drain loop.
func (p *Plane) Start() {
	p.scheduleArrival()
}

// GenerationDone reports whether the generator has emitted its full
// packet budget.
func (p *Plane) GenerationDone() bool {
	return p.rep.Generated >= uint64(p.cfg.Packets)
}

// InFlight returns the number of packets generated but not yet
// delivered or lost.
func (p *Plane) InFlight() int {
	return p.inflight
}

// Run drives the engine until every packet is generated, then keeps it
// running through the drain window until the last packet lands or the
// window closes, and returns the final report. Maintenance sweeps
// scheduled on the same engine execute interleaved with packet hops —
// healing under load is the default, not a special mode.
func (p *Plane) Run() Report {
	p.Start()
	eng := p.nw.Engine()
	for !p.GenerationDone() {
		eng.RunUntil(eng.Now() + p.hb)
	}
	deadline := eng.Now() + p.cfg.Drain
	for p.inflight > 0 && eng.Now() < deadline {
		eng.RunUntil(eng.Now() + p.hb)
	}
	p.stopped = true // expired packets' queued events become no-ops
	p.rep.Expired = uint64(p.inflight)
	p.inflight = 0
	return p.Report()
}

// Report finalizes and returns the run's metrics. It may be called
// repeatedly; each call recomputes the derived figures from the
// counters accumulated so far.
func (p *Plane) Report() Report {
	r := p.rep
	if r.Generated > 0 {
		r.DeliveryRatio = float64(r.Delivered) / float64(r.Generated)
	}
	if r.Delivered > 0 {
		r.MeanHops = float64(p.hopsSum) / float64(r.Delivered)
	}
	if len(p.latencies) > 0 {
		sorted := slices.Clone(p.latencies)
		slices.Sort(sorted)
		var sum float64
		for _, l := range sorted {
			sum += l
		}
		r.LatencyMean = sum / float64(len(sorted))
		r.LatencyP50 = stats.Percentile(sorted, 50)
		r.LatencyP99 = stats.Percentile(sorted, 99)
		r.LatencyP999 = stats.Percentile(sorted, 99.9)
		r.LatencyMax = sorted[len(sorted)-1]
	}
	r.HeadsUsed = len(p.forwards)
	var maxFwd uint64
	for _, f := range p.forwards {
		if f > maxFwd {
			maxFwd = f
		}
	}
	r.MaxHeadForwards = float64(maxFwd)
	if r.HeadsUsed > 0 {
		r.MeanHeadForwards = float64(r.Forwards) / float64(r.HeadsUsed)
	}
	r.HeadEnergy = float64(r.Forwards) * p.cfg.ForwardCost
	r.MaxHeadEnergy = float64(maxFwd) * p.cfg.ForwardCost
	return r
}

// scheduleArrival queues the next generator fire after an exponential
// interarrival gap.
func (p *Plane) scheduleArrival() {
	if p.GenerationDone() {
		return
	}
	p.nw.Engine().After(p.src.Exp(1/p.cfg.Rate), "traffic_gen", p.genFire)
}

// genFire emits one packet and reschedules itself.
func (p *Plane) genFire() {
	if p.stopped || p.GenerationDone() {
		return
	}
	p.emit()
	p.scheduleArrival()
}

// emit draws one packet from the generator stream and launches it. The
// draw order per packet is fixed: kind (only when P2PFraction > 0),
// then source, then (p2p only) destination — the determinism contract
// replay tests rely on.
func (p *Plane) emit() {
	p.rep.Generated++
	p2p := p.cfg.P2PFraction > 0 && p.src.Float64() < p.cfg.P2PFraction
	src := p.pickNode(radio.None)
	if src == radio.None {
		p.rep.LostNoRoute++
		return
	}
	dst := p.nw.BigID()
	if p2p {
		dst = p.pickNode(src)
		if dst == radio.None {
			p.rep.LostNoRoute++
			return
		}
	}
	pkt := p.newPacket()
	pkt.p2p = p2p
	pkt.src, pkt.dst = src, dst
	pkt.holder, pkt.prev = src, radio.None
	pkt.born = p.nw.Engine().Now()
	p.inflight++
	p.step(pkt)
}

// pickNode draws a uniformly random alive small node other than
// exclude, or radio.None if the bounded rejection sampling finds none.
func (p *Plane) pickNode(exclude radio.NodeID) radio.NodeID {
	ids := p.nw.SortedIDs()
	if len(ids) == 0 {
		return radio.None
	}
	for tries := 0; tries < 64; tries++ {
		id := ids[p.src.Intn(len(ids))]
		if id != exclude && id != p.nw.BigID() && p.nw.Alive(id) {
			return id
		}
	}
	return radio.None
}

// newPacket takes a packet from the pool (or allocates one).
func (p *Plane) newPacket() *packet {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free = p.free[:n-1]
		*pkt = packet{}
		return pkt
	}
	return &packet{}
}

// step advances pkt by one hop: delivered check, route lookup, and one
// radio send. It runs as an engine event at each hop arrival (and at
// each retry), so healing actions interleave between hops.
func (p *Plane) step(pkt *packet) {
	if p.stopped {
		return
	}
	if p.arrived(pkt) {
		p.deliver(pkt)
		return
	}
	if pkt.p2p && !p.nw.Alive(pkt.dst) {
		p.drop(pkt, &p.rep.LostNoRoute)
		return
	}
	if pkt.hops >= p.cfg.TTL {
		p.drop(pkt, &p.rep.LostTTL)
		return
	}
	if !p.nw.Alive(pkt.holder) {
		// The node carrying the packet died: the packet died with it.
		p.drop(pkt, &p.rep.LostHopFail)
		return
	}
	next, ok := p.nextHop(pkt)
	if !ok {
		p.stall(pkt, &p.rep.LostNoRoute)
		return
	}
	delay, err := p.nw.Medium().Unicast(pkt.holder, next, p.maxRange)
	if err != nil {
		p.stall(pkt, &p.rep.LostHopFail)
		return
	}
	if n := p.nw.Node(pkt.holder); n != nil && n.Status.IsHeadRole() {
		p.forwards[pkt.holder]++
		p.rep.Forwards++
	}
	pkt.prev = pkt.holder
	pkt.holder = next
	pkt.hops++
	pkt.attempts = 0
	p.nw.Engine().After(delay, "traffic_hop", func() { p.step(pkt) })
}

// arrived reports whether pkt sits at its destination. Convergecast
// packets arrive at the big node, or at the root head standing in for
// it during a big-node slide or move.
func (p *Plane) arrived(pkt *packet) bool {
	if pkt.p2p {
		return pkt.holder == pkt.dst
	}
	if pkt.holder == p.nw.BigID() {
		return true
	}
	root := p.nw.RootHead()
	return root != radio.None && root != p.nw.BigID() && pkt.holder == root
}

// stall retries the current hop after RetryWait, or drops the packet
// into lost once the attempt budget is spent.
func (p *Plane) stall(pkt *packet, lost *uint64) {
	pkt.attempts++
	if pkt.attempts > p.cfg.HopRetries {
		p.drop(pkt, lost)
		return
	}
	p.rep.Retries++
	p.nw.Engine().After(p.cfg.RetryWait, "traffic_retry", func() { p.step(pkt) })
}

// deliver finalizes a delivered packet.
func (p *Plane) deliver(pkt *packet) {
	p.rep.Delivered++
	p.latencies = append(p.latencies, p.nw.Engine().Now()-pkt.born)
	p.hopsSum += uint64(pkt.hops)
	if h := float64(pkt.hops); h > p.rep.MaxHops {
		p.rep.MaxHops = h
	}
	p.release(pkt)
}

// drop finalizes a lost packet against the given loss counter.
func (p *Plane) drop(pkt *packet, lost *uint64) {
	*lost++
	p.release(pkt)
}

// release returns a finished packet to the pool.
func (p *Plane) release(pkt *packet) {
	p.inflight--
	p.free = append(p.free, pkt)
}
