// Routing rules for the data plane: the convergecast parent-chain walk
// and cell-coordinate geographic greedy forwarding with a local detour.
package traffic

import (
	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/radio"
)

// nextHop picks the next node for pkt from its current holder, using
// only state the holder legitimately knows: its own head/parent links
// and its neighbor-head table. It returns (next, true), or (None,
// false) when no usable hop exists right now — the caller then retries
// after RetryWait, giving in-flight healing a chance to restore the
// route.
func (p *Plane) nextHop(pkt *packet) (radio.NodeID, bool) {
	n := p.nw.Node(pkt.holder)
	if n == nil {
		return radio.None, false
	}
	if !pkt.p2p {
		return p.convergeHop(pkt, n)
	}
	return p.geoHop(pkt, n)
}

// convergeHop walks the aggregation tree: associates hand their
// reading to their head; heads forward up the parent chain toward the
// big node. A missing or dead link stalls the packet rather than
// guessing — GS³-D/M repair is expected to refill it.
func (p *Plane) convergeHop(pkt *packet, n *core.Node) (radio.NodeID, bool) {
	if !n.Status.IsHeadRole() {
		if h := n.Head; h != radio.None && h != pkt.holder && p.nw.Alive(h) {
			return h, true
		}
		return radio.None, false
	}
	parent := n.Parent
	if parent == radio.None || parent == pkt.holder || !p.nw.Alive(parent) {
		return radio.None, false
	}
	return parent, true
}

// geoHop implements cell-coordinate greedy forwarding. An associate
// first climbs to its own head. A head computes the hexagonal cell
// distance from each candidate's cell center to the destination —
// measured on a lattice anchored at the holder's own IL, so the
// holder's cell is exactly a lattice point — and forwards to the
// neighbor head that strictly decreases it, tie-broken by Euclidean
// distance then ID for determinism. When the destination's own head is
// a neighbor (or the holder), the packet drops straight to the
// destination node.
//
// If no neighbor is strictly closer (a gapped or mid-heal structure),
// the detour rule forwards to the best neighbor anyway, excluding the
// hop we just came from to damp two-cell ping-pong; the TTL bounds any
// remaining loop. Detour hops are counted in Report.Detours, which is
// exactly the count of greedy violations — the property tests assert
// it stays 0 on settled gap-free structures.
func (p *Plane) geoHop(pkt *packet, n *core.Node) (radio.NodeID, bool) {
	if !n.Status.IsHeadRole() {
		if h := n.Head; h != radio.None && h != pkt.holder && p.nw.Alive(h) {
			return h, true
		}
		return radio.None, false
	}
	// Last-mile: the destination associates with this head.
	dn := p.nw.Node(pkt.dst)
	if dn != nil && dn.Head == pkt.holder {
		return pkt.dst, true
	}
	// Route toward the cell that covers the destination — its head's
	// IL — not the destination's geometric cell: edge nodes often
	// associate across a cell border, and the covering cell is the one
	// guaranteed to hold a head. Fall back to the destination's own
	// position when its head link is dead or stale mid-heal.
	target := p.nw.Position(pkt.dst)
	if dn != nil && dn.Head != radio.None && p.nw.Alive(dn.Head) {
		if hn := p.nw.Node(dn.Head); hn != nil && hn.Status.IsHeadRole() {
			target = hn.IL
		}
	}
	here := p.cellDist(n.IL, target)
	if here == 0 {
		// Holder's cell is the target cell but the destination is not
		// (or no longer) its associate: hand it straight over.
		return pkt.dst, true
	}

	best := radio.None
	bestDist := -1
	var bestEuclid float64
	detour := radio.None
	detourDist := -1
	var detourEuclid float64
	for _, nb := range n.Neighbors {
		if nb == pkt.holder || !p.nw.Alive(nb) {
			continue
		}
		nn := p.nw.Node(nb)
		if nn == nil || !nn.Status.IsHeadRole() {
			continue
		}
		d := p.cellDistFrom(n.IL, nn.IL, target)
		e := nn.IL.Dist(target)
		if d < here {
			if best == radio.None || d < bestDist || (d == bestDist && (e < bestEuclid || (e == bestEuclid && nb < best))) {
				best, bestDist, bestEuclid = nb, d, e
			}
		} else if nb != pkt.prev {
			if detour == radio.None || d < detourDist || (d == detourDist && (e < detourEuclid || (e == detourEuclid && nb < detour))) {
				detour, detourDist, detourEuclid = nb, d, e
			}
		}
	}
	if best != radio.None {
		return best, true
	}
	if detour != radio.None {
		p.rep.Detours++
		return detour, true
	}
	return radio.None, false
}

// cellDist returns the hexagonal cell distance (lattice ring count)
// from the cell anchored at `from` to the cell containing target.
func (p *Plane) cellDist(from, target geom.Point) int {
	p.lat.Origin = from
	return p.lat.Nearest(target).Ring()
}

// cellDistFrom measures the cell distance from a candidate cell center
// to the target on a lattice anchored at the current holder's IL, so
// all candidates of one decision share a single consistent rounding.
func (p *Plane) cellDistFrom(anchor, candidate, target geom.Point) int {
	p.lat.Origin = anchor
	return p.lat.Nearest(target).Add(p.lat.Nearest(candidate).Scale(-1)).Ring()
}
