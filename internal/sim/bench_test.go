package sim

import "testing"

// The engine benchmarks model the shapes the harness actually produces:
// a large standing population of timers at a small set of regular
// deltas (maintenance heartbeats, radio deliveries), churned by
// schedule/cancel/fire cycles. BenchmarkEngineSchedule and
// BenchmarkEngineSteadyChurn are archived in BENCH_PR10.json (pre-pr10
// = the container/heap engine, post-pr10 = the calendar queue) and
// gated by `make bench-diff`.

// BenchmarkEngineSchedule is the steady-state schedule+fire cycle: a
// warmed queue of pending events at the workload's regular deltas, each
// iteration scheduling one event and firing the earliest. This is the
// path every radio delivery and heartbeat pays.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	const pending = 8192
	for i := 0; i < pending; i++ {
		e.After(1+float64(i%64)/8, "fill", nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(8, "tick", nop)
		e.Step()
	}
}

// BenchmarkEngineSteadyChurn is the maintenance-era mix: every
// iteration queues a heartbeat and a retry, tears the retry down again
// (alternating Cancel — lazy — and Remove — eager), and fires one
// event, so the live population stays constant while canceled events
// stream through the queue.
func BenchmarkEngineSteadyChurn(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	const ring = 4096
	handles := make([]Handle, ring)
	for i := range handles {
		handles[i] = e.After(1+float64(i%17)/17, "hb", nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % ring
		retry := e.After(1+float64(j%17)/17, "retry", nop)
		handles[j] = e.After(1+float64(j%17)/17, "hb", nop)
		if j%2 == 0 {
			retry.Cancel()
		} else {
			e.Remove(retry)
		}
		e.Step()
	}
}

// BenchmarkEngineRunUntilCanceled drains a queue that is 90% canceled
// events through RunUntil — the StopMaintenance/retry-suppression
// shape. The old engine paid two queue scans per fired event (peek,
// then Step); the calendar queue pays one.
func BenchmarkEngineRunUntilCanceled(b *testing.B) {
	nop := func() {}
	handles := make([]Handle, 0, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine()
		handles = handles[:0]
		for k := 0; k < 10000; k++ {
			h, err := e.At(float64(k)/100, "ev", nop)
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, h)
		}
		for k, h := range handles {
			if k%10 != 0 {
				h.Cancel()
			}
		}
		b.StartTimer()
		if fired := e.RunUntil(100); fired != 1000 {
			b.Fatalf("fired %d events, want 1000", fired)
		}
	}
}
