// Package sim implements the discrete-event simulation engine that
// drives the GS³ network harness.
//
// Time is virtual, represented as a float64 number of abstract seconds.
// Events are ordered by time with a stable sequence-number tie-break so
// that runs are fully deterministic: two events scheduled for the same
// instant fire in scheduling order.
//
// # Queue structure
//
// The engine is a two-tier calendar queue tuned for this workload's
// shape: maintenance heartbeats and radio deliveries fire at a small
// set of regular deltas, so almost every event lands a short, bounded
// distance in the future. A near-future bucket wheel covers the window
// [wheelStart, wheelEnd) with fixed-width buckets; scheduling appends
// to the bucket its fire time falls in (O(1)), and a bucket is sorted
// by (At, seq) only when it becomes the current one being drained.
// Events beyond the wheel's horizon collect unsorted in an overflow
// tier; when the wheel runs dry the overflow is re-bucketed into a
// fresh wheel whose width adapts to the pending events' density (span
// × 1.25 / buckets), so the amortized cost per event stays O(1)
// regardless of how far ahead the workload schedules. If continuous
// scheduling grows the population past 8× the bucket count before the
// wheel drains, the wheel is evacuated and rebuilt at the new size
// (with a population-doubling guard between resizes), so buckets stay
// short under sustained load too.
//
// Fire order is exactly the total order (At, seq) — identical to the
// binary-heap engine this replaced, which `TestEngineMatchesHeapRef`
// pins operation-for-operation. Bucket boundaries cannot perturb it:
// the bucket index is monotone in At, buckets drain in index order, and
// each bucket is sorted by (At, seq) before it is drained, so the
// concatenation of drained buckets is the sorted order. Events
// scheduled into the current bucket mid-drain (e.g. zero-delay events)
// append and re-sort the bucket's remaining suffix, which is correct
// because At ≥ Now bounds them below by everything already fired.
//
// # Event pool
//
// Event records are pooled: firing, canceling-and-draining, or
// removing an event returns its slot to a free list, and steady-state
// schedule/fire churn allocates nothing. Handles are generation
// counted — a Handle carries the unique sequence number of the event
// it was issued for, and every Handle operation first checks that the
// slot still holds that sequence number. A slot recycled to a new
// event no longer matches, so Cancel/Canceled on a stale Handle are
// safe no-ops rather than actions on an unrelated event.
//
// # Concurrency
//
// The engine is deliberately single-threaded: an Engine, the events it
// fires, and every Handle it hands out must be owned by exactly one
// goroutine for the engine's whole lifetime. Nothing in this package
// locks, and nothing may be shared. Determinism depends on this — a
// second goroutine touching the queue would make the event order (and
// therefore every simulation result) scheduling-dependent. Parallelism
// lives one level up: run many engines, one per independent trial,
// each on its own goroutine (see internal/runner).
package sim

import (
	"errors"
	"math"
	"slices"
)

// Time is a virtual-time instant in abstract seconds. It is a plain
// value; copies are independent.
type Time = float64

// event is one pooled slot of the engine's event store. A slot's
// identity is its seq: freeing a slot overwrites seq with freedSeq and
// recycling it installs a fresh one, so any Handle or queue entry that
// recorded the old seq can detect that the slot moved on.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	name     string // for tracing; not used by the engine
	canceled bool
}

// freedSeq marks a pool slot that holds no event. Live events always
// have seq < freedSeq (nextSeq would need centuries to wrap).
const freedSeq = math.MaxUint64

// entry is a queue reference to a pooled event: the (at, seq) fire-
// order key inline (so buckets sort without chasing pool slots) plus
// the slot index to resolve at fire time.
type entry struct {
	at  Time
	seq uint64
	idx int32
}

// Handle allows a scheduled event to be canceled before it fires. A
// Handle is bound to its engine's goroutine: Cancel and Canceled must
// not be called concurrently with the engine running. Handles are
// generation-checked against the event pool (see the package comment),
// so holding one after its event fired is harmless.
type Handle struct {
	e   *Engine
	idx int32
	seq uint64
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.e == nil {
		return
	}
	ev := &h.e.pool[h.idx]
	if ev.seq != h.seq || ev.canceled {
		return
	}
	ev.canceled = true
	ev.fn = nil // release whatever the closure retains now, not at drain
	h.e.live--
}

// Canceled reports whether Cancel (or Engine.Remove) was called on this
// handle before its event fired.
func (h Handle) Canceled() bool {
	if h.e == nil {
		return false
	}
	ev := &h.e.pool[h.idx]
	return ev.seq == h.seq && ev.canceled
}

// Remove cancels the event and eagerly drops everything its closure
// retains, so that memory becomes garbage immediately instead of
// lingering until the queue drains past the event's fire time.
// Removing an already-fired, already-removed, or zero Handle is a
// no-op. Like Cancel, Remove must run on the engine's goroutine.
func (e *Engine) Remove(h Handle) {
	h.Cancel()
}

// ErrEventInPast is returned by Engine.At when an event is scheduled
// before the current virtual time.
var ErrEventInPast = errors.New("sim: event scheduled in the past")

// Wheel sizing bounds. The bucket count tracks the pending-event count
// (about one event per bucket) between these clamps; the cap bounds
// per-engine memory, trading O(1) buckets for short sorted runs when
// millions of events are pending at once.
const (
	minBuckets = 64
	maxBuckets = 1 << 16
)

// Engine is a deterministic discrete-event scheduler.
//
// An Engine is not safe for concurrent use: all scheduling, stepping,
// and querying must happen on the single goroutine that owns the
// engine. One simulation trial owns one engine; independent trials on
// separate goroutines (each with their own Engine) need no
// synchronization because engines share no state.
type Engine struct {
	now     Time
	nextSeq uint64
	fired   uint64
	live    int // scheduled, not yet fired, not canceled

	// Event pool: slots recycled through the free list.
	pool []event
	free []int32

	// Near-future tier: fixed-width buckets covering
	// [wheelStart, wheelEnd). Only buckets[:nb] are in use; cur is the
	// lowest possibly-nonempty bucket, and buckets[cur] is kept sorted
	// descending by (at, seq) — drained from the tail — whenever
	// curSorted holds. wheelCount counts entries across buckets[cur:].
	buckets    [][]entry
	nb         int
	width      Time
	wheelStart Time
	wheelEnd   Time
	cur        int
	curSorted  bool
	wheelCount int

	// Far-future tier: unsorted; re-bucketed by rebuild when the wheel
	// runs dry. scratch is the spare slice rebuild compacts into.
	overflow []entry
	scratch  []entry

	// lastRebuildN is the wheel population right after the last
	// rebuild: the doubling baseline for load-factor resizes (see
	// insert), which keeps a same-timestamp pileup — which no bucket
	// width can split — from re-triggering a rebuild on every insert.
	lastRebuildN int
}

// NewEngine returns an engine at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time {
	return e.now
}

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 {
	return e.fired
}

// Scheduled returns the number of events ever scheduled (the next
// sequence number). Two equal readings prove no event was scheduled in
// between — the primitive batching callers use to detect that another
// event's ordering position falls between two of their additions.
func (e *Engine) Scheduled() uint64 {
	return e.nextSeq
}

// Pending returns the number of live events still queued: scheduled,
// not yet fired, and not canceled. Canceled events awaiting lazy
// removal from the queue are not counted.
func (e *Engine) Pending() int {
	return e.live
}

// At schedules fn to run at absolute time at. It returns a Handle that
// can cancel the event, and ErrEventInPast if at precedes Now.
func (e *Engine) At(at Time, name string, fn func()) (Handle, error) {
	if at < e.now {
		return Handle{}, ErrEventInPast
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.pool = append(e.pool, event{})
		idx = int32(len(e.pool) - 1)
	}
	seq := e.nextSeq
	e.nextSeq++
	e.pool[idx] = event{at: at, seq: seq, fn: fn, name: name}
	e.live++
	e.insert(entry{at: at, seq: seq, idx: idx})
	return Handle{e: e, idx: idx, seq: seq}, nil
}

// After schedules fn to run delay seconds from now. Negative delays are
// clamped to zero.
func (e *Engine) After(delay float64, name string, fn func()) Handle {
	if delay < 0 {
		delay = 0
	}
	h, _ := e.At(e.now+delay, name, fn) // cannot be in the past
	return h
}

// insert files an entry into the tier its fire time selects: the
// bucket wheel when at < wheelEnd, the overflow otherwise. The bucket
// index is monotone in at (clamped floor of a positive-width division),
// which is all the fire order needs from it. An insert landing in the
// already-sorted current bucket splices into sorted position instead
// of forcing a re-sort; and when the wheel population outgrows the
// bucket count (load factor > 8 with room to grow, population doubled
// since the last rebuild) the wheel is evacuated and resized, so a
// long-lived wheel under continuous scheduling cannot accumulate
// pathologically large buckets.
func (e *Engine) insert(ent entry) {
	if e.nb == 0 || !(ent.at < e.wheelEnd) {
		e.overflow = append(e.overflow, ent)
		return
	}
	b := int((ent.at - e.wheelStart) / e.width)
	if b < 0 {
		b = 0
	}
	if b >= e.nb {
		b = e.nb - 1
	}
	switch {
	case b < e.cur:
		// Re-opening an already-drained (hence empty) earlier bucket.
		e.cur = b
		e.buckets[b] = append(e.buckets[b], ent)
		e.curSorted = len(e.buckets[b]) == 1
	case b == e.cur && e.curSorted:
		// Mid-drain insert into the current bucket: splice into sorted
		// position (descending, so lower (at, seq) sits nearer the
		// tail). Correct because at ≥ now bounds the entry below by
		// everything already fired.
		bk := e.buckets[b]
		lo, hi := 0, len(bk)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if entryAfter(bk[mid], ent) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bk = append(bk, entry{})
		copy(bk[lo+1:], bk[lo:])
		bk[lo] = ent
		e.buckets[b] = bk
	default:
		// A future bucket (sorted lazily when it becomes current), or
		// the current bucket while it is still awaiting its sort.
		e.buckets[b] = append(e.buckets[b], ent)
	}
	e.wheelCount++
	if e.wheelCount > 8*e.nb && e.nb < maxBuckets && e.wheelCount >= 2*e.lastRebuildN {
		e.evacuate()
	}
}

// evacuate dumps every wheel entry back into the overflow tier and
// rebuilds, resizing the wheel to the current population. Triggered by
// insert's load-factor check; O(pending), amortized O(1) per insert by
// the doubling guard.
func (e *Engine) evacuate() {
	for i := e.cur; i < e.nb; i++ {
		if len(e.buckets[i]) > 0 {
			e.overflow = append(e.overflow, e.buckets[i]...)
			e.buckets[i] = e.buckets[i][:0]
		}
	}
	e.wheelCount = 0
	e.rebuild()
}

// freeSlot returns a pool slot to the free list, dropping everything
// it retains.
func (e *Engine) freeSlot(idx int32) {
	e.pool[idx] = event{seq: freedSeq}
	e.free = append(e.free, idx)
}

// entryAfter sorts entries descending by (at, seq), so the next event
// to fire sits at a bucket's tail and popping it is O(1).
func entryAfter(a, b entry) int {
	switch {
	case a.at > b.at:
		return -1
	case a.at < b.at:
		return 1
	case a.seq > b.seq:
		return -1
	case a.seq < b.seq:
		return 1
	}
	return 0
}

// nextEntry readies and returns the earliest live entry without
// consuming it: it advances past drained buckets, rebuilds the wheel
// from the overflow when the wheel runs dry, sorts the current bucket
// if needed, and discards canceled events (freeing their slots) from
// the bucket tail. ok is false when no live events remain. After it
// returns ok, the entry sits at the tail of buckets[cur] and consume
// pops it in O(1) — the single-scan structure RunUntil and Step share.
func (e *Engine) nextEntry() (entry, bool) {
	for {
		for e.wheelCount > 0 && e.cur < e.nb && len(e.buckets[e.cur]) == 0 {
			e.cur++
			e.curSorted = false
		}
		if e.wheelCount == 0 {
			if len(e.overflow) == 0 {
				return entry{}, false
			}
			e.rebuild()
			continue
		}
		b := e.buckets[e.cur]
		if !e.curSorted {
			slices.SortFunc(b, entryAfter)
			e.curSorted = true
		}
		for len(b) > 0 {
			ent := b[len(b)-1]
			if !e.pool[ent.idx].canceled {
				e.buckets[e.cur] = b
				return ent, true
			}
			e.freeSlot(ent.idx)
			b = b[:len(b)-1]
			e.wheelCount--
		}
		e.buckets[e.cur] = b
	}
}

// consume pops the entry nextEntry returned, frees its slot, advances
// the clock, and returns the callback to run.
func (e *Engine) consume(ent entry) func() {
	n := len(e.buckets[e.cur]) - 1
	e.buckets[e.cur] = e.buckets[e.cur][:n]
	e.wheelCount--
	fn := e.pool[ent.idx].fn
	e.freeSlot(ent.idx)
	e.live--
	e.now = ent.at
	e.fired++
	return fn
}

// rebuild re-buckets the overflow tier into a fresh wheel anchored at
// the earliest pending fire time. The bucket count tracks the pending
// count (clamped to [minBuckets, maxBuckets]) and the width spreads
// 1.25× the pending span across it, so the new wheel holds everything
// in the common case; events still beyond the new horizon stay in the
// overflow for a later rebuild. Canceled events are dropped here
// rather than carried. The earliest event always enters the wheel, so
// every rebuild makes progress.
func (e *Engine) rebuild() {
	old := e.overflow
	minAt, maxAt := math.Inf(1), math.Inf(-1)
	n := 0
	for _, ent := range old {
		ev := &e.pool[ent.idx]
		if ev.seq != ent.seq {
			continue
		}
		if ev.canceled {
			e.freeSlot(ent.idx)
			continue
		}
		n++
		if ent.at < minAt {
			minAt = ent.at
		}
		if ent.at > maxAt {
			maxAt = ent.at
		}
	}
	if n == 0 {
		e.overflow = old[:0]
		return
	}
	nb := minBuckets
	for nb < n && nb < maxBuckets {
		nb *= 2
	}
	width := 1.25 * (maxAt - minAt) / float64(nb)
	if !(width > 0 && width < math.Inf(1)) {
		width = 1 // zero span (or degenerate times): one hot bucket
	}
	for len(e.buckets) < nb {
		e.buckets = append(e.buckets, nil)
	}
	e.nb = nb
	e.width = width
	e.wheelStart = minAt
	e.wheelEnd = minAt + width*float64(nb)
	e.cur = 0
	e.curSorted = false
	e.wheelCount = 0
	keep := e.scratch[:0]
	for _, ent := range old {
		if e.pool[ent.idx].seq != ent.seq {
			continue // canceled and freed above
		}
		if !(ent.at < e.wheelEnd) && ent.at > minAt {
			keep = append(keep, ent)
			continue
		}
		b := int((ent.at - e.wheelStart) / e.width)
		if b < 0 {
			b = 0
		}
		if b >= nb {
			b = nb - 1
		}
		e.buckets[b] = append(e.buckets[b], ent)
		e.wheelCount++
	}
	e.scratch = old[:0]
	e.overflow = keep
	e.lastRebuildN = e.wheelCount
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	ent, ok := e.nextEntry()
	if !ok {
		return false
	}
	fn := e.consume(ent)
	fn()
	return true
}

// Run fires events until the queue is empty or until maxEvents events
// have fired (0 means no limit). It returns the number of events fired
// by this call.
func (e *Engine) Run(maxEvents uint64) uint64 {
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil fires events with At ≤ deadline. Events scheduled beyond the
// deadline remain queued; the engine's clock is advanced to the deadline
// if it ran dry earlier. It returns the number of events fired.
//
// The loop is a single pop path: nextEntry leaves the upcoming event
// parked at the current bucket's tail, so checking it against the
// deadline and consuming it shares one scan — the binary-heap engine
// paid a second O(log n) pop (peek, then Step) per fired event here.
func (e *Engine) RunUntil(deadline Time) uint64 {
	var n uint64
	for {
		ent, ok := e.nextEntry()
		if !ok || ent.at > deadline {
			break
		}
		fn := e.consume(ent)
		fn()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunWhile fires events while cond() holds, checking after every event,
// with a hard cap on events to guard against livelock. It returns the
// number of events fired and whether cond became false (true) or the
// cap/empty queue stopped the run (false).
func (e *Engine) RunWhile(cond func() bool, maxEvents uint64) (uint64, bool) {
	var n uint64
	for cond() {
		if maxEvents > 0 && n >= maxEvents {
			return n, false
		}
		if !e.Step() {
			return n, false
		}
		n++
	}
	return n, true
}

// NextEventTime returns the time of the earliest pending event, or +Inf
// if the queue is empty.
func (e *Engine) NextEventTime() Time {
	if ent, ok := e.nextEntry(); ok {
		return ent.at
	}
	return math.Inf(1)
}
