// Package sim implements the discrete-event simulation engine that
// drives the GS³ network harness.
//
// Time is virtual, represented as a float64 number of abstract seconds.
// Events are ordered by time with a stable sequence-number tie-break so
// that runs are fully deterministic: two events scheduled for the same
// instant fire in scheduling order.
//
// # Concurrency
//
// The engine is deliberately single-threaded: an Engine, the events it
// fires, and every Handle it hands out must be owned by exactly one
// goroutine for the engine's whole lifetime. Nothing in this package
// locks, and nothing may be shared. Determinism depends on this — a
// second goroutine touching the queue would make the event order (and
// therefore every simulation result) scheduling-dependent. Parallelism
// lives one level up: run many engines, one per independent trial,
// each on its own goroutine (see internal/runner).
package sim

import (
	"container/heap"
	"errors"
	"math"
)

// Time is a virtual-time instant in abstract seconds. It is a plain
// value; copies are independent.
type Time = float64

// Event is a scheduled callback. Events belong to the engine that
// queued them and must only be touched from the engine's goroutine.
type Event struct {
	At   Time
	Name string // for tracing; not used by the engine
	Fn   func()

	seq      uint64
	index    int
	canceled bool
}

// Handle allows a scheduled event to be canceled before it fires. A
// Handle is bound to its engine's goroutine: Cancel and Canceled must
// not be called concurrently with the engine running.
type Handle struct {
	ev *Event
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.canceled = true
	}
}

// Canceled reports whether Cancel was called on this handle.
func (h Handle) Canceled() bool {
	return h.ev != nil && h.ev.canceled
}

// Remove cancels the event and eagerly deletes it from the queue, so
// the event (and everything its closure retains) becomes garbage
// immediately instead of lingering until its fire time. Removing an
// already-fired, already-removed, or zero Handle is a no-op. Like
// Cancel, Remove must run on the engine's goroutine.
func (e *Engine) Remove(h Handle) {
	if h.ev == nil {
		return
	}
	h.ev.canceled = true
	if h.ev.index >= 0 {
		heap.Remove(&e.queue, h.ev.index)
	}
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1 // no longer queued; Remove on this handle is a no-op
	*q = old[:n-1]
	return ev
}

// ErrEventInPast is returned by Engine.At when an event is scheduled
// before the current virtual time.
var ErrEventInPast = errors.New("sim: event scheduled in the past")

// Engine is a deterministic discrete-event scheduler.
//
// An Engine is not safe for concurrent use: all scheduling, stepping,
// and querying must happen on the single goroutine that owns the
// engine. One simulation trial owns one engine; independent trials on
// separate goroutines (each with their own Engine) need no
// synchronization because engines share no state.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	fired   uint64
}

// NewEngine returns an engine at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time {
	return e.now
}

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 {
	return e.fired
}

// Scheduled returns the number of events ever scheduled (the next
// sequence number). Two equal readings prove no event was scheduled in
// between — the primitive batching callers use to detect that another
// event's ordering position falls between two of their additions.
func (e *Engine) Scheduled() uint64 {
	return e.nextSeq
}

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (e *Engine) Pending() int {
	return len(e.queue)
}

// At schedules fn to run at absolute time at. It returns a Handle that
// can cancel the event, and ErrEventInPast if at precedes Now.
func (e *Engine) At(at Time, name string, fn func()) (Handle, error) {
	if at < e.now {
		return Handle{}, ErrEventInPast
	}
	ev := &Event{At: at, Name: name, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}, nil
}

// After schedules fn to run delay seconds from now. Negative delays are
// clamped to zero.
func (e *Engine) After(delay float64, name string, fn func()) Handle {
	if delay < 0 {
		delay = 0
	}
	h, _ := e.At(e.now+delay, name, fn) // cannot be in the past
	return h
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.At
		e.fired++
		ev.Fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or until maxEvents events
// have fired (0 means no limit). It returns the number of events fired
// by this call.
func (e *Engine) Run(maxEvents uint64) uint64 {
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil fires events with At ≤ deadline. Events scheduled beyond the
// deadline remain queued; the engine's clock is advanced to the deadline
// if it ran dry earlier. It returns the number of events fired.
func (e *Engine) RunUntil(deadline Time) uint64 {
	var n uint64
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.At > deadline {
			break
		}
		if e.Step() {
			n++
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunWhile fires events while cond() holds, checking after every event,
// with a hard cap on events to guard against livelock. It returns the
// number of events fired and whether cond became false (true) or the
// cap/empty queue stopped the run (false).
func (e *Engine) RunWhile(cond func() bool, maxEvents uint64) (uint64, bool) {
	var n uint64
	for cond() {
		if maxEvents > 0 && n >= maxEvents {
			return n, false
		}
		if !e.Step() {
			return n, false
		}
		n++
	}
	return n, true
}

// peek returns the earliest non-canceled event without firing it,
// discarding canceled events it encounters.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// NextEventTime returns the time of the earliest pending event, or +Inf
// if the queue is empty.
func (e *Engine) NextEventTime() Time {
	if ev := e.peek(); ev != nil {
		return ev.At
	}
	return math.Inf(1)
}
