package sim

// This file preserves the binary-heap engine that the calendar queue
// replaced, verbatim except for renames, as a test-only oracle. The
// lockstep property test (engine_property_test.go) drives it and the
// live Engine through identical operation sequences and asserts that
// every observable — fire order, Now, Fired, Pending — matches, which
// pins the calendar queue to the heap's exact (At, seq) total order.
//
// One deliberate divergence: the heap engine's Pending() counted
// canceled-but-undrained events (the over-count the live counter
// fixed), so the oracle exposes livePending() — an O(n) scan for
// non-canceled queued events — as the reference for the fixed
// semantics.

import (
	"container/heap"
	"math"
)

type heapEvent struct {
	At   Time
	Name string
	Fn   func()

	seq      uint64
	index    int
	canceled bool
}

type heapHandle struct {
	ev *heapEvent
}

func (h heapHandle) Cancel() {
	if h.ev != nil {
		h.ev.canceled = true
	}
}

func (h heapHandle) Canceled() bool {
	return h.ev != nil && h.ev.canceled
}

func (e *heapEngine) Remove(h heapHandle) {
	if h.ev == nil {
		return
	}
	h.ev.canceled = true
	if h.ev.index >= 0 {
		heap.Remove(&e.queue, h.ev.index)
	}
}

type heapEventQueue []*heapEvent

func (q heapEventQueue) Len() int { return len(q) }
func (q heapEventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q heapEventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *heapEventQueue) Push(x any) {
	ev := x.(*heapEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *heapEventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

type heapEngine struct {
	now     Time
	queue   heapEventQueue
	nextSeq uint64
	fired   uint64
}

func newHeapEngine() *heapEngine {
	return &heapEngine{}
}

func (e *heapEngine) Now() Time         { return e.now }
func (e *heapEngine) Fired() uint64     { return e.fired }
func (e *heapEngine) Scheduled() uint64 { return e.nextSeq }

// livePending counts queued, non-canceled events: the reference for the
// live Engine's fixed Pending semantics (the original heap Pending
// returned len(queue), canceled included).
func (e *heapEngine) livePending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

func (e *heapEngine) At(at Time, name string, fn func()) (heapHandle, error) {
	if at < e.now {
		return heapHandle{}, ErrEventInPast
	}
	ev := &heapEvent{At: at, Name: name, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return heapHandle{ev: ev}, nil
}

func (e *heapEngine) After(delay float64, name string, fn func()) heapHandle {
	if delay < 0 {
		delay = 0
	}
	h, _ := e.At(e.now+delay, name, fn)
	return h
}

func (e *heapEngine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*heapEvent)
		if ev.canceled {
			continue
		}
		e.now = ev.At
		e.fired++
		ev.Fn()
		return true
	}
	return false
}

func (e *heapEngine) Run(maxEvents uint64) uint64 {
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

func (e *heapEngine) RunUntil(deadline Time) uint64 {
	var n uint64
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.At > deadline {
			break
		}
		if e.Step() {
			n++
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

func (e *heapEngine) RunWhile(cond func() bool, maxEvents uint64) (uint64, bool) {
	var n uint64
	for cond() {
		if maxEvents > 0 && n >= maxEvents {
			return n, false
		}
		if !e.Step() {
			return n, false
		}
		n++
	}
	return n, true
}

func (e *heapEngine) peek() *heapEvent {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

func (e *heapEngine) NextEventTime() Time {
	if ev := e.peek(); ev != nil {
		return ev.At
	}
	return math.Inf(1)
}
