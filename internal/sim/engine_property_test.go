package sim

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
)

// TestEngineMatchesHeapRef drives the calendar-queue Engine and the
// retired binary-heap engine (heapref_test.go) through identical
// randomized At/After/Cancel/Remove/Step/Run/RunUntil/RunWhile
// sequences and asserts that every observable matches after every
// operation: the exact fire order (event ids in sequence), Now, Fired,
// Scheduled, Pending (vs the oracle's livePending), and NextEventTime.
// Fired callbacks occasionally schedule zero-delay and short-delay
// follow-ups, which exercises inserts into the bucket being drained.
// `make race` runs this under the race detector.
func TestEngineMatchesHeapRef(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			lockstep(t, seed, 2000)
		})
	}
}

// side is one engine's half of the lockstep state: its fire log and the
// counter chained callbacks draw follow-up ids from. Fire order is
// asserted identical after every operation, so the two sides' chain
// counters advance in lockstep and chained ids stay comparable.
type side struct {
	log     []int
	chainID int
}

type lockstepHandle struct {
	n        Handle
	r        heapHandle
	id       int
	canceled bool
}

func lockstep(t *testing.T, seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	eng := NewEngine()
	ref := newHeapEngine()
	var ns, rs side
	fired := make(map[int]bool) // ids whose events have fired (either side; order is pinned equal)
	var handles []*lockstepHandle
	nextID := 1000000 // chained ids count down from here; driver ids count up from 0
	ns.chainID, rs.chainID = nextID, nextID
	checked := 0 // logs compared up to this index

	// mkFn builds the callback for one scheduled id on one side: it
	// records the fire, and with the given chain depth schedules a
	// follow-up at zero or sub-bucket delay — the mid-drain insert path.
	var mkFn func(s *side, schedule func(float64, func()), id, chain int) func()
	mkFn = func(s *side, schedule func(float64, func()), id, chain int) func() {
		return func() {
			s.log = append(s.log, id)
			fired[id] = true
			if chain > 0 {
				cid := s.chainID
				s.chainID++
				delay := 0.0
				if chain%2 == 0 {
					delay = 0.25
				}
				schedule(delay, mkFn(s, schedule, cid, chain-1))
			}
		}
	}
	scheduleN := func(d float64, fn func()) { eng.After(d, "chain", fn) }
	scheduleR := func(d float64, fn func()) { ref.After(d, "chain", fn) }

	check := func(op string) {
		t.Helper()
		if len(ns.log) != len(rs.log) {
			t.Fatalf("%s: fired %d events, oracle fired %d", op, len(ns.log), len(rs.log))
		}
		for ; checked < len(ns.log); checked++ {
			if ns.log[checked] != rs.log[checked] {
				t.Fatalf("%s: fire order diverged at event %d: got id %d, oracle id %d",
					op, checked, ns.log[checked], rs.log[checked])
			}
		}
		if eng.Now() != ref.Now() {
			t.Fatalf("%s: Now=%v, oracle %v", op, eng.Now(), ref.Now())
		}
		if eng.Fired() != ref.Fired() {
			t.Fatalf("%s: Fired=%d, oracle %d", op, eng.Fired(), ref.Fired())
		}
		if eng.Scheduled() != ref.Scheduled() {
			t.Fatalf("%s: Scheduled=%d, oracle %d", op, eng.Scheduled(), ref.Scheduled())
		}
		if got, want := eng.Pending(), ref.livePending(); got != want {
			t.Fatalf("%s: Pending=%d, oracle live count %d", op, got, want)
		}
		gn, rn := eng.NextEventTime(), ref.NextEventTime()
		if gn != rn && !(math.IsInf(gn, 1) && math.IsInf(rn, 1)) {
			t.Fatalf("%s: NextEventTime=%v, oracle %v", op, gn, rn)
		}
	}

	// Quantized delays collide times often, exercising the seq
	// tie-break; the occasional huge delay exercises the overflow tier.
	delay := func() float64 {
		switch rng.Intn(10) {
		case 0:
			return 0
		case 1:
			return float64(rng.Intn(4000)) // far future: overflow tier
		default:
			return float64(rng.Intn(64)) / 8
		}
	}

	for op := 0; op < ops; op++ {
		id := op
		switch k := rng.Intn(100); {
		case k < 35: // After
			d := delay()
			chain := 0
			if rng.Intn(8) == 0 {
				chain = 1 + rng.Intn(2)
			}
			h := &lockstepHandle{id: id}
			h.n = eng.After(d, "ev", mkFn(&ns, scheduleN, id, chain))
			h.r = ref.After(d, "ev", mkFn(&rs, scheduleR, id, chain))
			handles = append(handles, h)
			check("After")
		case k < 45: // At, sometimes in the past
			at := eng.Now() + delay() - float64(rng.Intn(3))
			h := &lockstepHandle{id: id}
			var errN, errR error
			h.n, errN = eng.At(at, "ev", mkFn(&ns, scheduleN, id, 0))
			h.r, errR = ref.At(at, "ev", mkFn(&rs, scheduleR, id, 0))
			if (errN != nil) != (errR != nil) {
				t.Fatalf("At(%v): err=%v, oracle err=%v", at, errN, errR)
			}
			if errN == nil {
				handles = append(handles, h)
			}
			check("At")
		case k < 60 && len(handles) > 0: // Cancel
			h := handles[rng.Intn(len(handles))]
			h.n.Cancel()
			h.r.Cancel()
			if !fired[h.id] && !h.canceled {
				h.canceled = true
				if !h.n.Canceled() || !h.r.Canceled() {
					t.Fatalf("Cancel id %d: Canceled=%v, oracle %v", h.id, h.n.Canceled(), h.r.Canceled())
				}
			}
			check("Cancel")
		case k < 70 && len(handles) > 0: // Remove
			h := handles[rng.Intn(len(handles))]
			eng.Remove(h.n)
			ref.Remove(h.r)
			if !fired[h.id] && !h.canceled {
				h.canceled = true
				if !h.n.Canceled() {
					t.Fatalf("Remove id %d: Canceled=false", h.id)
				}
			}
			check("Remove")
		case k < 82: // Step
			if gotN, gotR := eng.Step(), ref.Step(); gotN != gotR {
				t.Fatalf("Step=%v, oracle %v", gotN, gotR)
			}
			check("Step")
		case k < 92: // RunUntil
			deadline := eng.Now() + rng.Float64()*10
			if n, r := eng.RunUntil(deadline), ref.RunUntil(deadline); n != r {
				t.Fatalf("RunUntil(%v) fired %d, oracle %d", deadline, n, r)
			}
			check("RunUntil")
		case k < 96: // Run with a small cap
			limit := uint64(rng.Intn(5))
			if n, r := eng.Run(limit), ref.Run(limit); n != r {
				t.Fatalf("Run(%d) fired %d, oracle %d", limit, n, r)
			}
			check("Run")
		default: // RunWhile toward a shared fired target
			target := eng.Fired() + uint64(rng.Intn(4))
			n, okN := eng.RunWhile(func() bool { return eng.Fired() < target }, 10)
			r, okR := ref.RunWhile(func() bool { return ref.Fired() < target }, 10)
			if n != r || okN != okR {
				t.Fatalf("RunWhile fired %d (ok=%v), oracle %d (ok=%v)", n, okN, r, okR)
			}
			check("RunWhile")
		}
	}
	// Drain both to the end: the full residual queues must agree too.
	if n, r := eng.Run(0), ref.Run(0); n != r {
		t.Fatalf("final drain fired %d, oracle %d", n, r)
	}
	check("drain")
	if eng.Pending() != 0 {
		t.Fatalf("drained engine reports Pending=%d", eng.Pending())
	}
}

// TestPendingExcludesCanceled is the regression test for the Pending
// over-count: canceled-but-undrained events used to inflate the count
// that shard.go's quiescence gate and the StopMaintenance tests read.
func TestPendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	a := e.After(1, "a", nop)
	b := e.After(2, "b", nop)
	e.After(3, "c", nop)
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending=%d, want 3", got)
	}
	a.Cancel()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after Cancel=%d, want 2 (canceled event must not count)", got)
	}
	a.Cancel() // double-cancel must not double-decrement
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after double Cancel=%d, want 2", got)
	}
	e.Remove(b)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after Remove=%d, want 1", got)
	}
	if !e.Step() {
		t.Fatal("Step fired nothing; want event c")
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after final fire=%d, want 0", got)
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired=%d, want 1 (a and b were canceled)", e.Fired())
	}
}

// TestEngineSteadyStateZeroAllocs pins the steady-state schedule+fire
// cycle — the path every radio delivery and heartbeat pays — at zero
// allocations: the event pool recycles slots and the wheel's buckets
// reach a steady capacity, after which After+Step allocate nothing.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	for i := 0; i < 8192; i++ {
		e.After(1+float64(i%64)/8, "fill", nop)
	}
	// Warm through several full wheel-rebuild cycles so every bucket
	// and the pool free list reach their steady capacities.
	for i := 0; i < 200000; i++ {
		e.After(8, "tick", nop)
		e.Step()
	}
	allocs := testing.AllocsPerRun(10000, func() {
		e.After(8, "tick", nop)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state After+Step allocates %v allocs/op, want 0", allocs)
	}
}

// TestEngineSmokeMillionEvents is the scale gate for the calendar
// queue, run by `make engine-smoke` under the race detector: a
// million-event schedule/cancel/remove/fire churn with a sliding
// ~100k-pending window, followed by a wide 300k-pending drain, all
// with exact fire-order and live-count accounting asserted.
func TestEngineSmokeMillionEvents(t *testing.T) {
	if os.Getenv("GS3_ENGINE_SMOKE") == "" {
		t.Skip("set GS3_ENGINE_SMOKE=1 to run the million-event engine smoke")
	}
	rng := rand.New(rand.NewSource(10))
	e := NewEngine()
	var fired, scheduled, canceled uint64
	lastAt, lastSeq := math.Inf(-1), uint64(0)
	fn := func(at Time, seq uint64) func() {
		return func() {
			if at < lastAt || (at == lastAt && seq <= lastSeq) {
				t.Fatalf("fire order violated: (%v, %d) after (%v, %d)", at, seq, lastAt, lastSeq)
			}
			lastAt, lastSeq = at, seq
			fired++
		}
	}
	schedule := func(d float64) Handle {
		seq := e.Scheduled()
		at := e.Now() + d
		h := e.After(d, "smoke", fn(at, seq))
		scheduled++
		return h
	}

	// Phase 1: sliding-window churn. Keep ~100k live events pending;
	// each round schedules a burst, cancels/removes a third of it, and
	// steps the engine forward.
	window := make([]Handle, 0, 120000)
	for scheduled < 700000 {
		for b := 0; b < 64; b++ {
			d := float64(rng.Intn(512)) / 16
			if rng.Intn(100) == 0 {
				d = float64(1000 + rng.Intn(2000)) // overflow tier
			}
			window = append(window, schedule(d))
		}
		for b := 0; b < 21; b++ {
			i := rng.Intn(len(window))
			h := window[i]
			if h.Canceled() {
				continue
			}
			was := e.Pending()
			if rng.Intn(2) == 0 {
				h.Cancel()
			} else {
				e.Remove(h)
			}
			switch e.Pending() {
			case was - 1: // live handle: cancel must drop the count by one
				canceled++
			case was: // already fired: stale handle, cancel is a no-op
			default:
				t.Fatalf("Pending %d -> %d on cancel, want -1 or unchanged", was, e.Pending())
			}
		}
		if len(window) > 110000 {
			window = window[len(window)-100000:]
		}
		for b := 0; b < 40; b++ {
			e.Step()
		}
		if uint64(e.Pending())+fired+canceled != scheduled {
			t.Fatalf("accounting: pending %d + fired %d + canceled %d != scheduled %d",
				e.Pending(), fired, canceled, scheduled)
		}
	}

	// Phase 2: wide drain. Pile 300k more events across a broad time
	// span onto the queue, then drain everything.
	for i := 0; i < 300000; i++ {
		schedule(float64(rng.Intn(1 << 20)) / 32)
	}
	e.Run(0)
	if e.Pending() != 0 {
		t.Fatalf("Pending=%d after full drain", e.Pending())
	}
	if fired+canceled != scheduled {
		t.Fatalf("final accounting: fired %d + canceled %d != scheduled %d", fired, canceled, scheduled)
	}
	if e.Fired() != fired {
		t.Fatalf("engine Fired=%d, callbacks counted %d", e.Fired(), fired)
	}
	t.Logf("smoke: scheduled %d, fired %d, canceled %d", scheduled, fired, canceled)
}
