package sim

import (
	"errors"
	"math"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3, "c", func() { order = append(order, 3) })
	e.After(1, "a", func() { order = append(order, 1) })
	e.After(2, "b", func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
}

func TestTieBreakIsSchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		e.After(5, name, func() { order = append(order, name) })
	}
	e.Run(0)
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Errorf("tie-break order = %v", order)
	}
}

func TestAtInPast(t *testing.T) {
	e := NewEngine()
	e.After(10, "advance", func() {})
	e.Run(0)
	if _, err := e.At(5, "late", func() {}); !errors.Is(err, ErrEventInPast) {
		t.Errorf("err = %v, want ErrEventInPast", err)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-3, "neg", func() { fired = true })
	e.Run(0)
	if !fired || e.Now() != 0 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.After(1, "c", func() { fired = true })
	h.Cancel()
	if !h.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	e.Run(0)
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelIdempotent(t *testing.T) {
	e := NewEngine()
	h := e.After(1, "c", func() {})
	h.Cancel()
	h.Cancel() // must not panic
	var zero Handle
	zero.Cancel() // zero handle must not panic
	if zero.Canceled() {
		t.Error("zero handle reports canceled")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(1, "first", func() {
		times = append(times, e.Now())
		e.After(2, "second", func() { times = append(times, e.Now()) })
	})
	e.Run(0)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestRunMaxEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(1, "tick", tick)
	}
	e.After(1, "tick", tick)
	n := e.Run(10)
	if n != 10 || count != 10 {
		t.Errorf("n=%d count=%d", n, count)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.After(at, "e", func() { fired = append(fired, at) })
	}
	n := e.RunUntil(3)
	if n != 3 {
		t.Errorf("fired %d events, want 3", n)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestRunUntilAdvancesClockWhenDry(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Errorf("Now = %v, want 42", e.Now())
	}
}

func TestRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 5; i++ {
		e.After(float64(i), "e", func() { count++ })
	}
	n, ok := e.RunWhile(func() bool { return count < 3 }, 0)
	if !ok || n != 3 {
		t.Errorf("n=%d ok=%v", n, ok)
	}
}

func TestRunWhileCap(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.After(1, "tick", tick) }
	e.After(1, "tick", tick)
	n, ok := e.RunWhile(func() bool { return true }, 100)
	if ok || n != 100 {
		t.Errorf("n=%d ok=%v, want cap hit", n, ok)
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if !math.IsInf(e.NextEventTime(), 1) {
		t.Error("empty queue should report +Inf")
	}
	h := e.After(7, "a", func() {})
	e.After(9, "b", func() {})
	if e.NextEventTime() != 7 {
		t.Errorf("NextEventTime = %v", e.NextEventTime())
	}
	h.Cancel()
	if e.NextEventTime() != 9 {
		t.Errorf("NextEventTime after cancel = %v", e.NextEventTime())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		e.After(1, "e", func() {})
	}
	e.Run(0)
	if e.Fired() != 4 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var log []Time
		var recur func(depth int) func()
		recur = func(depth int) func() {
			return func() {
				log = append(log, e.Now())
				if depth < 3 {
					e.After(0.5, "r", recur(depth+1))
					e.After(0.25, "r", recur(depth+1))
				}
			}
		}
		e.After(1, "root", recur(0))
		e.Run(0)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
