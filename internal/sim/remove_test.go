package sim

import "testing"

func TestRemoveDeletesEagerly(t *testing.T) {
	e := NewEngine()
	var fired []string
	mk := func(name string) func() { return func() { fired = append(fired, name) } }
	ha := e.After(1, "a", mk("a"))
	hb := e.After(1, "b", mk("b"))
	hc := e.After(1, "c", mk("c"))
	_ = ha

	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	e.Remove(hb)
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after Remove = %d, want 2 (eager deletion)", got)
	}
	if !hb.Canceled() {
		t.Fatal("removed handle not marked canceled")
	}

	e.Run(0)
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "c" {
		t.Fatalf("fired %v, want [a c]", fired)
	}

	// Removing a fired, an already-removed, or a zero handle is a no-op.
	e.Remove(hc)
	e.Remove(hb)
	e.Remove(Handle{})
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after no-op removes = %d, want 0", got)
	}
}

func TestRemoveKeepsHeapOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	log := func() { fired = append(fired, e.Now()) }
	var handles []Handle
	for _, at := range []Time{5, 1, 4, 2, 3, 6, 0.5} {
		h, err := e.At(at, "ev", log)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	e.Remove(handles[0]) // at=5
	e.Remove(handles[3]) // at=2
	e.Run(0)
	want := []Time{0.5, 1, 3, 4, 6}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}
