// Package stats provides the small statistics toolkit the experiment
// harness uses: summary statistics, histograms, and least-squares linear
// fits (for checking the paper's O(·)/θ(·) scaling claims empirically).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes summary statistics of xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0–100) of sorted, using linear
// interpolation between closest ranks. sorted must be in ascending
// order; an empty slice yields 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Fit is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits a least-squares line to (xs[i], ys[i]). It requires
// len(xs) == len(ys) ≥ 2 and non-constant xs; otherwise it returns an
// error. The R² value reports how well a straight line explains the
// data, which is how the scaling experiments check claims like
// "convergence time is θ(D_b)".
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, have %d", len(xs))
	}
	n := float64(len(xs))
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: constant x values")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // perfectly constant y is perfectly explained
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	_ = n
	return fit, nil
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Bins     []int
	Below    int // samples < Lo
	Above    int // samples ≥ Hi
	binWidth float64
}

// NewHistogram returns a histogram with n equal-width bins over
// [lo, hi). It panics if n ≤ 0 or hi ≤ lo, which are programmer errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n), binWidth: (hi - lo) / float64(n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Below++
	case x >= h.Hi:
		h.Above++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Bins) { // float edge case at the upper boundary
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range
// ones.
func (h *Histogram) Total() int {
	n := h.Below + h.Above
	for _, b := range h.Bins {
		n += b
	}
	return n
}

// String renders the summary as one compact line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Stddev, s.Min, s.P50, s.P90, s.P99, s.Max)
}
