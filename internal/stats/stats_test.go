package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if !approx(s.Stddev, math.Sqrt(2.5), 1e-12) {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %v", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.Stddev != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {-5, 10}, {105, 40},
		{50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); !approx(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean wrong")
	}
}

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 2, 1e-12) || !approx(fit.Intercept, 3, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !approx(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0.1, 0.9, 2.2, 2.8, 4.1, 5.0}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 0.8 || fit.Slope > 1.2 {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x accepted")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Below != 1 || h.Above != 2 {
		t.Errorf("below=%d above=%d", h.Below, h.Above)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Bins[0])
	}
	if h.Bins[1] != 1 || h.Bins[2] != 1 || h.Bins[4] != 1 {
		t.Errorf("bins = %v", h.Bins)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}
