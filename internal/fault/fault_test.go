package fault

import (
	"testing"

	"gs3/internal/rng"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"loss", Plan{Loss: 0.2}, true},
		{"full", Plan{Loss: 0.1, Dup: 0.05, Jitter: 0.3, BlackoutRate: 0.01, BlackoutSweeps: 4}, true},
		{"loss negative", Plan{Loss: -0.1}, false},
		{"loss one", Plan{Loss: 1}, false},
		{"dup one", Plan{Dup: 1}, false},
		{"jitter negative", Plan{Jitter: -1}, false},
		{"blackout rate one", Plan{BlackoutRate: 1, BlackoutSweeps: 2}, false},
		{"blackout without duration", Plan{BlackoutRate: 0.1}, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPlanActive(t *testing.T) {
	if (Plan{}).Active() {
		t.Error("zero plan reports active")
	}
	for _, p := range []Plan{{Loss: 0.1}, {Dup: 0.1}, {Jitter: 0.1}, {BlackoutRate: 0.1, BlackoutSweeps: 1}} {
		if !p.Active() {
			t.Errorf("plan %+v reports inactive", p)
		}
	}
}

// A nil injector and a zero-plan injector must answer every query with
// "no fault" and consume no randomness.
func TestNoFaultPathsConsumeNothing(t *testing.T) {
	var nilInj *Injector
	if nilInj.Active() || nilInj.DropDelivery() || nilInj.DupDelivery() {
		t.Error("nil injector produced a fault")
	}
	if d := nilInj.JitterDelay(1.5); d != 1.5 {
		t.Errorf("nil injector jittered delay to %v", d)
	}
	if _, ok := nilInj.BlackoutStart(); ok {
		t.Error("nil injector started a blackout")
	}

	src := rng.New(42)
	before := *src
	inj, err := NewInjector(Plan{}, src)
	if err != nil {
		t.Fatal(err)
	}
	inj.DropDelivery()
	inj.DupDelivery()
	inj.JitterDelay(3)
	inj.BlackoutStart()
	if *src != before {
		t.Error("zero-plan injector consumed randomness")
	}
}

func TestNewInjectorRejectsBadInput(t *testing.T) {
	if _, err := NewInjector(Plan{Loss: 2}, rng.New(1)); err == nil {
		t.Error("invalid plan accepted")
	}
	if _, err := NewInjector(Plan{Loss: 0.1}, nil); err == nil {
		t.Error("active plan without source accepted")
	}
	if _, err := NewInjector(Plan{}, nil); err != nil {
		t.Errorf("zero plan with nil source rejected: %v", err)
	}
}

// Identical (seed, plan) pairs must replay the exact fault sequence.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Loss: 0.3, Dup: 0.1, Jitter: 0.5, BlackoutRate: 0.05, BlackoutSweeps: 3}
	run := func() []float64 {
		inj, err := NewInjector(plan, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 200; i++ {
			if inj.DropDelivery() {
				out = append(out, 1)
			}
			if inj.DupDelivery() {
				out = append(out, 2)
			}
			out = append(out, inj.JitterDelay(1))
			if s, ok := inj.BlackoutStart(); ok {
				out = append(out, s)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Loss frequency must track the configured probability.
func TestDropDeliveryFrequency(t *testing.T) {
	inj, err := NewInjector(Plan{Loss: 0.2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	drops := 0
	for i := 0; i < n; i++ {
		if inj.DropDelivery() {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.18 || got > 0.22 {
		t.Errorf("drop frequency %v, want ~0.2", got)
	}
}

func TestJitterBounds(t *testing.T) {
	inj, err := NewInjector(Plan{Jitter: 0.5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		d := inj.JitterDelay(2)
		if d < 2 || d >= 3 {
			t.Fatalf("jittered delay %v outside [2, 3)", d)
		}
	}
}

func TestBlackoutDurationFloor(t *testing.T) {
	inj, err := NewInjector(Plan{BlackoutRate: 0.9, BlackoutSweeps: 0.1}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	starts := 0
	for i := 0; i < 1000; i++ {
		if s, ok := inj.BlackoutStart(); ok {
			starts++
			if s < 1 {
				t.Fatalf("blackout duration %v below one sweep", s)
			}
		}
	}
	if starts == 0 {
		t.Fatal("no blackout started at rate 0.9")
	}
}
