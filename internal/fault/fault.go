// Package fault is the deterministic fault-injection layer of the
// simulator: it models an unreliable radio (per-delivery message loss,
// duplication, and delay jitter) and transient node blackouts
// (crash/restart), all drawn from a dedicated rng.Source so that a run
// with a given (seed, Plan) replays bit-identically.
//
// # Determinism contract
//
// An Injector consumes randomness only through its own Source, never
// through the Sources that drive deployment or the protocol, so
// enabling faults cannot perturb where nodes land or which node a
// fault-free draw would have picked. Draws happen in the order the
// simulation asks the questions — per-receiver in ascending ID order
// inside a broadcast, per-node in engine event order for blackouts —
// which is itself deterministic, so identical (seed, Plan) pairs yield
// identical fault sequences on any goroutine schedule.
//
// A zero Plan consumes no randomness at all, and a nil *Injector
// answers every query with "no fault": the zero-fault configuration is
// byte-identical to a build without the fault layer.
package fault

import (
	"fmt"

	"gs3/internal/rng"
)

// Plan configures which faults an Injector produces. The zero value
// injects nothing. Plan is plain data: copy it freely.
type Plan struct {
	// Loss is the per-delivery drop probability applied independently
	// to every receiver of a broadcast and to every unicast.
	Loss float64
	// Dup is the per-delivery duplication probability: a surviving
	// delivery is handed to the receiver twice, exercising the
	// idempotence of the protocol actions.
	Dup float64
	// Jitter inflates every transmission delay by an independent
	// uniform factor in [1, 1+Jitter]; 0.3 means up to 30% extra
	// latency on each message and each scheduled protocol round.
	Jitter float64
	// BlackoutRate is the per-node, per-sweep probability that a small
	// node crashes transiently: it stops sweeping and hears nothing
	// until it restarts. The big node never blacks out.
	BlackoutRate float64
	// BlackoutSweeps is the mean blackout duration in heartbeat sweeps
	// (the actual duration of each episode is an exponential draw with
	// this mean, floored at one sweep). Zero with a positive
	// BlackoutRate is invalid.
	BlackoutSweeps float64
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.Loss > 0 || p.Dup > 0 || p.Jitter > 0 || p.BlackoutRate > 0
}

// Validate reports configuration errors.
func (p Plan) Validate() error {
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("fault: Loss must be in [0,1), got %v", p.Loss)
	}
	if p.Dup < 0 || p.Dup >= 1 {
		return fmt.Errorf("fault: Dup must be in [0,1), got %v", p.Dup)
	}
	if p.Jitter < 0 {
		return fmt.Errorf("fault: negative Jitter %v", p.Jitter)
	}
	if p.BlackoutRate < 0 || p.BlackoutRate >= 1 {
		return fmt.Errorf("fault: BlackoutRate must be in [0,1), got %v", p.BlackoutRate)
	}
	if p.BlackoutRate > 0 && p.BlackoutSweeps <= 0 {
		return fmt.Errorf("fault: BlackoutRate %v needs a positive BlackoutSweeps", p.BlackoutRate)
	}
	return nil
}

// Injector answers the simulation's fault questions from a Plan and a
// private random source. All methods are nil-receiver safe and answer
// "no fault" on a nil Injector, so call sites need no guards.
//
// An Injector is single-threaded like the engine that drives it: one
// trial owns one Injector, and distinct trials' Injectors share
// nothing.
type Injector struct {
	plan Plan
	src  *rng.Source
}

// NewInjector builds an injector for the plan. src must be non-nil when
// the plan is active; the injector owns it exclusively afterwards.
func NewInjector(p Plan, src *rng.Source) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Active() && src == nil {
		return nil, fmt.Errorf("fault: active plan requires a random source")
	}
	return &Injector{plan: p, src: src}, nil
}

// Plan returns the injector's configuration; the zero Plan on nil.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Active reports whether the injector produces any faults.
func (in *Injector) Active() bool {
	return in != nil && in.plan.Active()
}

// DropDelivery draws whether one delivery is lost. It consumes a draw
// only when Loss is positive.
func (in *Injector) DropDelivery() bool {
	if in == nil || in.plan.Loss <= 0 {
		return false
	}
	return in.src.Float64() < in.plan.Loss
}

// DupDelivery draws whether one surviving delivery is duplicated. It
// consumes a draw only when Dup is positive.
func (in *Injector) DupDelivery() bool {
	if in == nil || in.plan.Dup <= 0 {
		return false
	}
	return in.src.Float64() < in.plan.Dup
}

// JitterDelay returns d inflated by the plan's jitter: an independent
// uniform factor in [1, 1+Jitter]. It consumes a draw only when Jitter
// is positive.
func (in *Injector) JitterDelay(d float64) float64 {
	if in == nil || in.plan.Jitter <= 0 {
		return d
	}
	return d * (1 + in.plan.Jitter*in.src.Float64())
}

// BlackoutStart draws whether a node entering its sweep crashes now,
// and if so for how many sweeps (exponential with mean BlackoutSweeps,
// floored at 1). It consumes draws only when BlackoutRate is positive.
func (in *Injector) BlackoutStart() (sweeps float64, ok bool) {
	if in == nil || in.plan.BlackoutRate <= 0 {
		return 0, false
	}
	if in.src.Float64() >= in.plan.BlackoutRate {
		return 0, false
	}
	d := in.src.Exp(in.plan.BlackoutSweeps)
	if d < 1 {
		d = 1
	}
	return d, true
}
