package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestAlpha(t *testing.T) {
	tests := []struct {
		lambda, rt float64
		want       float64
	}{
		{10, 0, 1},
		{10, 1, math.Exp(-10)},
		{0, 5, 1},
		{10, 2, math.Exp(-40)},
	}
	for _, tt := range tests {
		if got := Alpha(tt.lambda, tt.rt); math.Abs(got-tt.want) > 1e-15 {
			t.Errorf("Alpha(%v,%v) = %v, want %v", tt.lambda, tt.rt, got, tt.want)
		}
	}
}

func TestAlphaMonotonicInRt(t *testing.T) {
	prev := 2.0
	for rt := 0.0; rt <= 3; rt += 0.1 {
		a := Alpha(10, rt)
		if a > prev {
			t.Fatalf("alpha increased at rt=%v", rt)
		}
		prev = a
	}
}

func TestPaperFigure7Claim(t *testing.T) {
	// Paper: with λ=10, R=100, both curves are ≈0 once R_t/R ≥ 0.02,
	// i.e. R_t ≥ 2.
	ratio := NonIdealCellRatio(10, 0.02*100)
	if ratio > 1e-15 {
		t.Errorf("non-ideal ratio at Rt/R=0.02 is %v, want ≈0", ratio)
	}
	// And clearly nonzero at very small R_t.
	if r := NonIdealCellRatio(10, 0.001*100); r < 0.9 {
		t.Errorf("ratio at Rt/R=0.001 = %v, want near 1", r)
	}
}

func TestPaperFigure8Claim(t *testing.T) {
	d := GapRegionDiameter(10, 0.02*100, 100)
	if d > 1e-10 {
		t.Errorf("gap region diameter at Rt/R=0.02 is %v, want ≈0", d)
	}
	// Diverges as R_t→0.
	if d := GapRegionDiameter(10, 0, 100); !math.IsInf(d, 1) {
		t.Errorf("diameter at rt=0 = %v, want +Inf", d)
	}
}

func TestGapRegionDiameterFormula(t *testing.T) {
	// Hand check: α = 0.5 ⇒ diameter = 2R·0.5/0.25 = 4R.
	lambda := math.Ln2 // e^{-λ·1²} = 0.5 at rt = 1
	got := GapRegionDiameter(lambda, 1, 100)
	if math.Abs(got-400) > 1e-9 {
		t.Errorf("diameter = %v, want 400", got)
	}
}

func TestExpectedNonIdealCells(t *testing.T) {
	got := ExpectedNonIdealCells(1000, math.Ln2, 1) // α = 0.5
	if math.Abs(got-500) > 1e-9 {
		t.Errorf("E[Ge] = %v, want 500", got)
	}
}

func TestPoissonPMF(t *testing.T) {
	// Sum over k should be ≈1.
	sum := 0.0
	for k := 0; k < 100; k++ {
		p := PoissonPMF(10, k)
		if p < 0 {
			t.Fatalf("negative pmf at k=%d", k)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %v", sum)
	}
	if PoissonPMF(0, 0) != 1 || PoissonPMF(0, 3) != 0 {
		t.Error("degenerate mean=0 pmf wrong")
	}
	if PoissonPMF(-1, 2) != 0 || PoissonPMF(5, -1) != 0 {
		t.Error("invalid inputs should yield 0")
	}
}

func TestPoissonPMFLargeMean(t *testing.T) {
	// Must not overflow/underflow for large means.
	p := PoissonPMF(1e4, 1e4)
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("pmf(1e4,1e4) = %v", p)
	}
}

func TestCellNodeCountMean(t *testing.T) {
	if got := CellNodeCountMean(10, 100); got != 1e5 {
		t.Errorf("mean = %v", got)
	}
}

func TestFigure7CurveDecreasing(t *testing.T) {
	pts := Figure7Curve(10, 100, DefaultRatios())
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value > pts[i-1].Value {
			t.Fatalf("Figure 7 curve not decreasing at %v", pts[i].RtOverR)
		}
	}
	if pts[len(pts)-1].Value > 1e-10 {
		t.Errorf("tail value = %v", pts[len(pts)-1].Value)
	}
}

func TestFigure8CurveDecreasing(t *testing.T) {
	pts := Figure8Curve(10, 100, DefaultRatios())
	for i := 1; i < len(pts); i++ {
		if pts[i].Value > pts[i-1].Value {
			t.Fatalf("Figure 8 curve not decreasing at %v", pts[i].RtOverR)
		}
	}
}

func TestDefaultRatiosRange(t *testing.T) {
	rs := DefaultRatios()
	if len(rs) < 30 {
		t.Fatalf("only %d ratios", len(rs))
	}
	if rs[0] > 0.0011 || rs[len(rs)-1] < 0.035 {
		t.Errorf("ratio range [%v, %v]", rs[0], rs[len(rs)-1])
	}
}

func TestFormatCurve(t *testing.T) {
	out := FormatCurve("fig7", []CurvePoint{{0.01, 0.5}})
	if !strings.Contains(out, "fig7") || !strings.Contains(out, "0.0100") {
		t.Errorf("format output: %q", out)
	}
}

func TestCandidateCountMean(t *testing.T) {
	if got := CandidateCountMean(10, 25); got != 6250 {
		t.Errorf("mean = %v", got)
	}
}

func TestCandidateSetEmptyProb(t *testing.T) {
	if CandidateSetEmptyProb(10, 2) != Alpha(10, 2) {
		t.Error("empty prob must equal alpha")
	}
}

func TestLifetimeFactor(t *testing.T) {
	// With zero idle cost, rotation gives the full nc factor.
	if got := LifetimeFactor(50, 0); got != 50 {
		t.Errorf("factor = %v", got)
	}
	// Idle cost caps the factor at f/idle = 1/idleRatio for large nc.
	big := LifetimeFactor(1e9, 0.0125)
	if math.Abs(big-80) > 1 {
		t.Errorf("asymptote = %v, want ≈80", big)
	}
	// Monotone in nc.
	if LifetimeFactor(20, 0.0125) >= LifetimeFactor(100, 0.0125) {
		t.Error("factor not monotone in nc")
	}
	if LifetimeFactor(0, 0.1) != 0 {
		t.Error("nc=0 should give 0")
	}
	// Spot-check the formula at the T2 experiment's regime (idleRatio =
	// 1/80). These are the ideal upper envelopes; the measured T2
	// factors (8.6/24.6/37.6) sit below them because the experiment's
	// lifetime threshold (half the heads gone) fires before the full
	// energy budget is spent.
	for _, tc := range []struct{ nc, want float64 }{{37.4, 25.5}, {71.4, 37.8}, {135.6, 50.3}} {
		got := LifetimeFactor(tc.nc, 0.0125)
		if math.Abs(got-tc.want) > 1 {
			t.Errorf("factor(%v) = %v, want ≈%v", tc.nc, got, tc.want)
		}
	}
}
