// Package analysis implements the closed-form results of the paper's
// §4.3.4 ("Statistically low deviation from ideal hexagonal structure"),
// which produce Figures 7 and 8.
//
// Under the paper's convention, node density λ is the mean node count in
// a disk of radius 1, and the count in a disk of radius r is Poisson
// with mean λ·r². From this:
//
//   - α(λ, R_t) = e^{−λ·R_t²} is the probability an R_t-disk is empty
//     (an R_t-gap).
//   - The expected ratio of non-ideal cells is α (Figure 7).
//   - The expected diameter of an R_t-gap perturbed region is
//     2R·α/(1−α)² (Figure 8).
package analysis

import (
	"fmt"
	"math"
)

// Alpha returns the probability that a disk of radius rt contains no
// node at density lambda: e^{−λ·rt²}.
func Alpha(lambda, rt float64) float64 {
	return math.Exp(-lambda * rt * rt)
}

// NonIdealCellRatio returns the expected fraction of cells in the ideal
// virtual structure whose IL falls in an R_t-gap (paper Figure 7). The
// paper shows E[G_e]/n = α by the binomial expectation.
func NonIdealCellRatio(lambda, rt float64) float64 {
	return Alpha(lambda, rt)
}

// ExpectedNonIdealCells returns E[G_e] = n·α, the expected number of
// non-ideal cells among n ideal cells.
func ExpectedNonIdealCells(n int, lambda, rt float64) float64 {
	return float64(n) * Alpha(lambda, rt)
}

// GapRegionDiameter returns the expected diameter of an R_t-gap
// perturbed region (paper Figure 8): 2R·Σ k·α^k = 2R·α/(1−α)².
// It returns +Inf when α = 1 (zero density or zero tolerance).
func GapRegionDiameter(lambda, rt, r float64) float64 {
	a := Alpha(lambda, rt)
	if a >= 1 {
		return math.Inf(1)
	}
	return 2 * r * a / ((1 - a) * (1 - a))
}

// PoissonPMF returns P[count = k] for a Poisson variable with the given
// mean, computed in log space to stay finite for large means.
func PoissonPMF(mean float64, k int) float64 {
	if mean < 0 || k < 0 {
		return 0
	}
	if mean == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(mean) - mean - lg)
}

// CellNodeCountMean returns the mean number of nodes in a disk of radius
// r at density lambda: λ·r².
func CellNodeCountMean(lambda, r float64) float64 {
	return lambda * r * r
}

// CurvePoint is one (R_t/R, value) sample of a Figure 7/8 series.
type CurvePoint struct {
	RtOverR float64
	Value   float64
}

// Figure7Curve returns the analytic series of Figure 7 — the expected
// ratio of non-ideal cells as a function of R_t/R — for the paper's
// setting (λ, cell radius R), sampled at the given R_t/R values.
func Figure7Curve(lambda, r float64, ratios []float64) []CurvePoint {
	out := make([]CurvePoint, len(ratios))
	for i, q := range ratios {
		out[i] = CurvePoint{RtOverR: q, Value: NonIdealCellRatio(lambda, q*r)}
	}
	return out
}

// Figure8Curve returns the analytic series of Figure 8 — the expected
// diameter of an R_t-gap perturbed region as a function of R_t/R.
func Figure8Curve(lambda, r float64, ratios []float64) []CurvePoint {
	out := make([]CurvePoint, len(ratios))
	for i, q := range ratios {
		out[i] = CurvePoint{RtOverR: q, Value: GapRegionDiameter(lambda, q*r, r)}
	}
	return out
}

// DefaultRatios returns the R_t/R sampling grid used in the paper's
// figures, which plot the range where the curves fall to ≈0 (both are
// ≈0 once R_t/R ≥ 0.02 at λ = 10, system radius 1000, R = 100).
func DefaultRatios() []float64 {
	out := make([]float64, 0, 40)
	for q := 0.001; q <= 0.0405; q += 0.001 {
		out = append(out, q)
	}
	return out
}

// FormatCurve renders a curve as aligned text rows (one per point).
func FormatCurve(name string, pts []CurvePoint) string {
	s := fmt.Sprintf("# %s\n# Rt/R\tvalue\n", name)
	for _, p := range pts {
		s += fmt.Sprintf("%.4f\t%.6g\n", p.RtOverR, p.Value)
	}
	return s
}

// CandidateCountMean returns the expected number of head candidates in
// a cell: the nodes within Rt of the current IL, λ·Rt² under the
// paper's density convention. Cell shift exists exactly because this
// pool is finite.
func CandidateCountMean(lambda, rt float64) float64 {
	return lambda * rt * rt
}

// CandidateSetEmptyProb returns the probability that a fresh candidate
// area is empty — the per-shift failure probability of cell shift,
// which equals the R_t-gap probability α.
func CandidateSetEmptyProb(lambda, rt float64) float64 {
	return Alpha(lambda, rt)
}

// LifetimeFactor returns the expected factor by which head/cell shift
// lengthens the structure's lifetime over a static head, in the
// paper's Ω(n_c) claim: with per-head energy cost dominating (factor f
// over the idle rate), a static cell dies after E/(f·rate) while a
// rotating cell spends the whole cell's energy budget:
//
//	factor = n_c·E / (E·(1 + (n_c−1)·idle/f·…)) ≈ n_c·f / (f + n_c·idleRatio·f)
//
// expressed here directly: lifetime_rotating/lifetime_static =
// n_c / (1 + n_c·idleRatio) where idleRatio = idle rate / head rate.
func LifetimeFactor(nc, idleRatio float64) float64 {
	if nc <= 0 {
		return 0
	}
	return nc / (1 + nc*idleRatio)
}
