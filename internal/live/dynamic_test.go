package live

import (
	"testing"

	"gs3/internal/geom"
	"gs3/internal/radio"
)

func TestRunDynamicNoPerturbation(t *testing.T) {
	cfg, dep := liveDeployment(t, 300)
	res, err := RunDynamic(cfg, dep, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet rounds change nothing: same heads, no elections.
	if res.Elections != 0 {
		t.Errorf("elections in a quiet run: %d", res.Elections)
	}
	confHeads := map[radio.NodeID]bool{}
	for _, id := range res.Configured.Heads() {
		confHeads[id] = true
	}
	finalHeads := 0
	for _, rep := range res.Final {
		if rep.IsHead {
			finalHeads++
			if !confHeads[rep.ID] {
				t.Errorf("new head %d appeared without perturbation", rep.ID)
			}
		}
	}
	if finalHeads != len(confHeads) {
		t.Errorf("head count changed: %d -> %d", len(confHeads), finalHeads)
	}
}

func TestRunDynamicRoundsValidation(t *testing.T) {
	cfg, dep := liveDeployment(t, 300)
	if _, err := RunDynamic(cfg, dep, nil, 0); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestRunDynamicHeadDeathElection(t *testing.T) {
	cfg, dep := liveDeployment(t, 300)
	// Find a head with candidates from a plain configuration first.
	conf, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}
	var victim radio.NodeID = radio.None
	candidates := map[radio.NodeID]int{}
	for _, rep := range conf.Reports {
		if rep.Candidate {
			candidates[rep.Head]++
		}
	}
	for _, id := range conf.Heads() {
		if id != 0 && candidates[id] > 0 {
			victim = id
			break
		}
	}
	if victim == radio.None {
		t.Fatal("no head with candidates")
	}

	res, err := RunDynamic(cfg, dep, KillSchedule{2: {victim}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elections == 0 {
		t.Fatal("no election happened after the head death")
	}
	// A new head serves the victim's cell IL. ILs are compared by
	// proximity: the same lattice point can carry different low-order
	// float bits depending on which head's HEAD_ORG computed it.
	var victimIL geom.Point
	for _, rep := range conf.Reports {
		if rep.ID == victim {
			victimIL = rep.IL
		}
	}
	served := false
	for _, rep := range res.Final {
		if rep.IsHead && rep.ID != victim && rep.IL.Dist(victimIL) < cfg.Rt/10 {
			served = true
		}
	}
	if !served {
		t.Error("no replacement head serves the dead head's cell")
	}
	// Nobody is still attached to the dead head.
	for _, rep := range res.Final {
		if !rep.IsHead && rep.Head == victim {
			t.Errorf("node %d still attached to dead head", rep.ID)
		}
	}
}

func TestRunDynamicMultipleSimultaneousDeaths(t *testing.T) {
	cfg, dep := liveDeployment(t, 300)
	conf, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}
	candidates := map[radio.NodeID]int{}
	for _, rep := range conf.Reports {
		if rep.Candidate {
			candidates[rep.Head]++
		}
	}
	var victims []radio.NodeID
	for _, id := range conf.Heads() {
		if id != 0 && candidates[id] > 0 && len(victims) < 3 {
			victims = append(victims, id)
		}
	}
	if len(victims) < 2 {
		t.Skip("not enough heads with candidates")
	}
	res, err := RunDynamic(cfg, dep, KillSchedule{2: victims}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elections < len(victims) {
		t.Errorf("elections = %d for %d simultaneous deaths", res.Elections, len(victims))
	}
}

func TestRunDynamicDeterministicOutcome(t *testing.T) {
	cfg, dep := liveDeployment(t, 300)
	conf, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}
	var victim radio.NodeID = radio.None
	for _, rep := range conf.Reports {
		if rep.Candidate {
			victim = rep.Head
			break
		}
	}
	if victim == radio.None || victim == 0 {
		t.Skip("no suitable victim")
	}
	winner := func() radio.NodeID {
		res, err := RunDynamic(cfg, dep, KillSchedule{2: {victim}}, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range res.Final {
			if rep.IsHead {
				if _, was := headSet(res.Configured)[rep.ID]; !was {
					return rep.ID
				}
			}
		}
		return radio.None
	}
	a, b := winner(), winner()
	if a != b {
		t.Errorf("election winner differs across runs: %d vs %d", a, b)
	}
}

func headSet(r Result) map[radio.NodeID]bool {
	out := map[radio.NodeID]bool{}
	for _, id := range r.Heads() {
		out[id] = true
	}
	return out
}
