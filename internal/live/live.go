// Package live executes the GS³-S diffusing computation at message
// granularity with one goroutine per node — the concurrent counterpart
// of the event-driven runtime in internal/core, used to demonstrate
// that the protocol, not the simulator, produces the structure.
//
// The router plays the wireless medium: broadcasts reach every node
// within range, and the paper's channel reservation ("two neighboring
// heads within √3R+2Rt cannot run HEAD_ORG in parallel") is realized as
// a region lock, which is exactly what carrier sensing plus the paper's
// reservation protocol provide.
//
// The final structure is cross-checked against the event-driven runtime
// in tests: same deployment, same parameters, same heads.
package live

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"gs3/internal/core"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/radio"
)

// msgKind discriminates protocol messages.
type msgKind int

const (
	msgOrg msgKind = iota + 1
	msgOrgReply
	msgHeadSet
	msgShutdown
)

// selection is one (node, IL) pair announced in a HeadSet.
type selection struct {
	ID radio.NodeID
	IL geom.Point
}

// message is what travels between node goroutines.
type message struct {
	Kind msgKind
	From radio.NodeID

	// org fields
	OrgID uint64 // correlates replies with the head's round

	// orgReply fields
	Pos    geom.Point
	IsHead bool
	IL     geom.Point

	// headSet fields
	Selected []selection
	HeadPos  geom.Point
	HeadIL   geom.Point
}

// router is the shared medium: positions, range-based delivery, and the
// channel-reservation lock.
type router struct {
	mu    sync.Mutex
	nodes map[radio.NodeID]*liveNode

	resMu       sync.Mutex
	reservation map[radio.NodeID][2]geom.Point // id -> {center, (radius,0)}
}

func newRouter() *router {
	return &router{
		nodes:       make(map[radio.NodeID]*liveNode),
		reservation: make(map[radio.NodeID][2]geom.Point),
	}
}

// broadcast delivers m to every node within radius of from's position
// (excluding the sender) and returns the recipient count.
func (r *router) broadcast(from radio.NodeID, radius float64, m message) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	src := r.nodes[from]
	count := 0
	for id, n := range r.nodes {
		if id == from {
			continue
		}
		if n.pos.Dist(src.pos) <= radius {
			n.inbox <- m
			count++
		}
	}
	return count
}

// unicast delivers m to a specific node.
func (r *router) unicast(to radio.NodeID, m message) {
	r.mu.Lock()
	n := r.nodes[to]
	r.mu.Unlock()
	if n != nil {
		n.inbox <- m
	}
}

// tryReserve registers a reservation for id if no overlapping one is
// active and reports whether it succeeded. A waiting head must keep
// serving its inbox between attempts (peers block on its org replies),
// so blocking here would deadlock — callers poll instead.
func (r *router) tryReserve(id radio.NodeID, center geom.Point, radius float64) bool {
	r.resMu.Lock()
	defer r.resMu.Unlock()
	for _, res := range r.reservation {
		c, rad := res[0], res[1].X
		if c.Dist(center) < rad+radius {
			return false
		}
	}
	r.reservation[id] = [2]geom.Point{center, {X: radius}}
	return true
}

// release drops id's reservation.
func (r *router) release(id radio.NodeID) {
	r.resMu.Lock()
	delete(r.reservation, id)
	r.resMu.Unlock()
}

// knownHead is a head a small node has heard about.
type knownHead struct {
	pos geom.Point
	il  geom.Point
}

// liveNode is one node goroutine's state.
type liveNode struct {
	id    radio.NodeID
	pos   geom.Point
	isBig bool

	inbox chan message

	// head state (set when selected)
	head     bool
	il       geom.Point
	parentIL geom.Point
	parent   radio.NodeID
	hops     int

	// associate state
	heads map[radio.NodeID]knownHead

	// replies buffered while waiting for something else
	pending []message
}

// Report is a node's final state after the computation terminates.
type Report struct {
	ID        radio.NodeID
	Pos       geom.Point
	IsHead    bool
	IL        geom.Point
	Parent    radio.NodeID
	Head      radio.NodeID
	Candidate bool
	Hops      int
}

// Result is the outcome of a live run.
type Result struct {
	Reports []Report // ascending ID
}

// Heads returns the IDs of nodes that ended as heads.
func (r Result) Heads() []radio.NodeID {
	var out []radio.NodeID
	for _, rep := range r.Reports {
		if rep.IsHead {
			out = append(out, rep.ID)
		}
	}
	return out
}

// Run executes the GS³-S diffusing computation over the deployment with
// one goroutine per node and returns the final structure. It blocks
// until the computation terminates (Corollary 4 guarantees it does).
func Run(cfg core.Config, dep field.Deployment) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if dep.N() == 0 {
		return Result{}, fmt.Errorf("live: empty deployment")
	}
	r := newRouter()
	nodes := make([]*liveNode, dep.N())
	for i, p := range dep.Positions {
		n := &liveNode{
			id:    radio.NodeID(i),
			pos:   p,
			isBig: i == 0,
			inbox: make(chan message, 4*dep.N()+64),
			heads: make(map[radio.NodeID]knownHead),
		}
		nodes[i] = n
		r.nodes[n.id] = n
	}

	// completions carries, per finished HEAD_ORG, the number of newly
	// selected heads, for the driver's diffusing-computation
	// termination detection.
	completions := make(chan int, dep.N())

	// Seed before launching any goroutine: the big node is the 0-band
	// head with IL at its own position, and its inbox holds the kickoff
	// HeadSet.
	big := nodes[0]
	big.head = true
	big.il = big.pos
	big.parentIL = big.pos
	big.parent = big.id
	big.hops = 0
	big.inbox <- message{Kind: msgHeadSet, From: big.id,
		Selected: []selection{{ID: big.id, IL: big.pos}},
		HeadPos:  big.pos, HeadIL: big.pos}

	var wg sync.WaitGroup
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.loop(cfg, r, completions)
		}()
	}

	// Termination: one HEAD_ORG pending (the big node's); each
	// completion retires one and adds the newly selected ones.
	pending := 1
	for pending > 0 {
		pending += <-completions - 1
	}

	// Shut everyone down and collect reports.
	reports := make(chan Report, dep.N())
	for _, n := range nodes {
		n.inbox <- message{Kind: msgShutdown}
	}
	wg.Wait()
	for _, n := range nodes {
		reports <- n.report(cfg)
	}
	close(reports)

	var res Result
	for rep := range reports {
		res.Reports = append(res.Reports, rep)
	}
	slices.SortFunc(res.Reports, func(a, b Report) int { return int(a.ID - b.ID) })
	return res, nil
}

// loop is the node goroutine body.
func (n *liveNode) loop(cfg core.Config, r *router, completions chan<- int) {
	for {
		m := n.next()
		switch m.Kind {
		case msgShutdown:
			return
		case msgOrg:
			// ASSOCIATE_ORG_RESP / HEAD_ORG_RESP: reply with our state.
			r.unicast(m.From, message{
				Kind: msgOrgReply, From: n.id, OrgID: m.OrgID,
				Pos: n.pos, IsHead: n.head, IL: n.il,
			})
		case msgHeadSet:
			n.noteHeadSet(m)
			if !n.head {
				if sel, ok := selectedIn(m, n.id); ok {
					n.head = true
					n.il = sel.IL
					n.parent = m.From
					n.parentIL = m.HeadIL
					n.headOrg(cfg, r, completions)
				}
			} else if n.isBig && m.From == n.id && n.hops == 0 && m.Selected[0].ID == n.id {
				// The seed message: run the root HEAD_ORG.
				n.headOrg(cfg, r, completions)
			}
		case msgOrgReply:
			// A stray reply outside a HEAD_ORG window: drop it.
		}
	}
}

// next pops a buffered message or blocks on the inbox.
func (n *liveNode) next() message {
	if len(n.pending) > 0 {
		m := n.pending[0]
		n.pending = n.pending[1:]
		return m
	}
	return <-n.inbox
}

// noteHeadSet records every head announced in a HeadSet for the final
// best-head choice.
func (n *liveNode) noteHeadSet(m message) {
	n.heads[m.From] = knownHead{pos: m.HeadPos, il: m.HeadIL}
	for _, sel := range m.Selected {
		if sel.ID != n.id {
			n.heads[sel.ID] = knownHead{il: sel.IL} // position learned later
		}
	}
}

func selectedIn(m message, id radio.NodeID) (selection, bool) {
	for _, s := range m.Selected {
		if s.ID == id {
			return s, true
		}
	}
	return selection{}, false
}

// headOrg runs the message-level HEAD_ORG at this node.
func (n *liveNode) headOrg(cfg core.Config, r *router, completions chan<- int) {
	radius := cfg.SearchRadius() + cfg.Rt
	// Acquire the channel reservation, serving org requests from peers
	// in the meantime (they hold reservations and wait on our reply).
	for !r.tryReserve(n.id, n.il, radius) {
		select {
		case m := <-n.inbox:
			if m.Kind == msgOrg {
				r.unicast(m.From, message{
					Kind: msgOrgReply, From: n.id, OrgID: m.OrgID,
					Pos: n.pos, IsHead: true, IL: n.il,
				})
			} else {
				n.pending = append(n.pending, m)
			}
		default:
			runtime.Gosched()
		}
	}
	defer r.release(n.id)

	orgID := uint64(n.id)<<32 | 1
	count := r.broadcast(n.id, radius, message{Kind: msgOrg, From: n.id, OrgID: orgID})

	// Collect exactly count replies; buffer everything else.
	type resp struct {
		id     radio.NodeID
		pos    geom.Point
		isHead bool
		il     geom.Point
	}
	replies := make([]resp, 0, count)
	for len(replies) < count {
		m := <-n.inbox
		if m.Kind == msgOrgReply && m.OrgID == orgID {
			replies = append(replies, resp{m.From, m.Pos, m.IsHead, m.IL})
			continue
		}
		if m.Kind == msgOrg {
			// Answer immediately: the peer head is waiting on us.
			r.unicast(m.From, message{
				Kind: msgOrgReply, From: n.id, OrgID: m.OrgID,
				Pos: n.pos, IsHead: true, IL: n.il,
			})
			continue
		}
		n.pending = append(n.pending, m)
	}

	// HEAD_SELECT over the replies, reusing the core geometry.
	isRoot := n.isBig && n.parent == n.id
	sector := core.SearchSector(cfg, n.il, n.parentIL, isRoot)
	posOf := make(map[radio.NodeID]geom.Point, len(replies))
	var smallInSector []radio.NodeID
	var headILs []geom.Point
	for _, rep := range replies {
		posOf[rep.id] = rep.pos
		if rep.isHead {
			headILs = append(headILs, rep.il)
			continue
		}
		if sector.Contains(rep.pos) {
			smallInSector = append(smallInSector, rep.id)
		}
	}
	slices.Sort(smallInSector)

	var selected []selection
	taken := map[radio.NodeID]bool{}
	for _, il := range core.NeighborILs(cfg, n.il, n.parentIL, isRoot) {
		if owned(il, headILs, cfg.Rt) {
			continue
		}
		var ca []radio.NodeID
		for _, id := range smallInSector {
			if !taken[id] && posOf[id].Dist(il) <= cfg.Rt {
				ca = append(ca, id)
			}
		}
		best, ok := core.BestCandidate(il, cfg.GR, ca, func(id radio.NodeID) geom.Point { return posOf[id] })
		if !ok {
			continue
		}
		taken[best] = true
		selected = append(selected, selection{ID: best, IL: il})
	}

	r.broadcast(n.id, radius, message{
		Kind: msgHeadSet, From: n.id,
		Selected: selected, HeadPos: n.pos, HeadIL: n.il,
	})
	completions <- len(selected)
}

func owned(il geom.Point, headILs []geom.Point, rt float64) bool {
	for _, h := range headILs {
		if h.Dist(il) <= rt {
			return true
		}
	}
	return false
}

// report computes the node's final view: heads report their cell,
// associates pick the best (closest, ⟨d,|A|,A⟩-ranked) head they heard.
func (n *liveNode) report(cfg core.Config) Report {
	rep := Report{ID: n.id, Pos: n.pos, IsHead: n.head, IL: n.il, Parent: n.parent, Head: radio.None}
	if n.head {
		return rep
	}
	ids := make([]radio.NodeID, 0, len(n.heads))
	for id, h := range n.heads {
		if h.pos == (geom.Point{}) && id != 0 {
			// A head we only know by selection announcement sits within
			// Rt of its IL; approximate its position by the IL.
			h.pos = h.il
			n.heads[id] = h
		}
		if n.pos.Dist(n.heads[id].pos) <= cfg.SearchRadius() {
			ids = append(ids, id)
		}
	}
	best, ok := core.BestCandidate(n.pos, cfg.GR, ids, func(id radio.NodeID) geom.Point { return n.heads[id].pos })
	if !ok {
		return rep
	}
	rep.Head = best
	rep.Candidate = n.pos.Dist(n.heads[best].il) <= cfg.Rt
	return rep
}
