package live

import (
	"testing"

	"gs3/internal/core"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/radio"
	"gs3/internal/rng"
)

func liveDeployment(t *testing.T, regionRadius float64) (core.Config, field.Deployment) {
	t.Helper()
	cfg := core.DefaultConfig(100)
	dep, err := field.Grid(regionRadius, cfg.Rt*0.9, 0.15, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return cfg, dep
}

func TestRunEmptyDeployment(t *testing.T) {
	cfg := core.DefaultConfig(100)
	if _, err := Run(cfg, field.Deployment{}); err == nil {
		t.Error("empty deployment accepted")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	cfg := core.DefaultConfig(100)
	cfg.Rt = 0
	if _, err := Run(cfg, field.Deployment{Positions: []geom.Point{{}}}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunTerminatesAndCovers(t *testing.T) {
	cfg, dep := liveDeployment(t, 350)
	res, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != dep.N() {
		t.Fatalf("reports = %d, want %d", len(res.Reports), dep.N())
	}
	heads := res.Heads()
	if len(heads) < 7 {
		t.Fatalf("only %d heads", len(heads))
	}
	uncovered := 0
	for _, rep := range res.Reports {
		if !rep.IsHead && rep.Head == radio.None {
			uncovered++
		}
	}
	if uncovered > 0 {
		t.Errorf("%d nodes uncovered", uncovered)
	}
}

func TestRunHeadsNearILs(t *testing.T) {
	cfg, dep := liveDeployment(t, 350)
	res, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Reports {
		if rep.IsHead && rep.Pos.Dist(rep.IL) > cfg.Rt+1e-9 {
			t.Errorf("head %d is %v from its IL", rep.ID, rep.Pos.Dist(rep.IL))
		}
	}
}

func TestRunNeighborHeadDistances(t *testing.T) {
	cfg, dep := liveDeployment(t, 350)
	res, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}
	var headReports []Report
	for _, rep := range res.Reports {
		if rep.IsHead {
			headReports = append(headReports, rep)
		}
	}
	for i, a := range headReports {
		for _, b := range headReports[i+1:] {
			d := a.Pos.Dist(b.Pos)
			if d <= cfg.NeighborDistMax()+1e-9 && d < cfg.NeighborDistMin()-1e-9 {
				t.Errorf("heads %d,%d at %v inside the forbidden band", a.ID, b.ID, d)
			}
		}
	}
}

func TestLiveMatchesEventDriven(t *testing.T) {
	// The same deployment configured by the goroutine runtime and by
	// the event-driven runtime must elect the same heads at the same
	// ILs, and associates must agree almost everywhere (the live
	// runtime approximates far heads it only knows by announcement).
	cfg, dep := liveDeployment(t, 350)
	res, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}

	opt := netsim.DefaultOptions(100, 350)
	s, err := netsim.Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Use the identical deployment: rebuild the network by hand.
	nw, err := core.NewNetwork(cfg, opt.Radio, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range dep.Positions {
		if _, err := nw.AddNode(p, i == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.StartConfiguration(); err != nil {
		t.Fatal(err)
	}
	nw.Engine().Run(0)
	_ = s

	evHeads := map[radio.NodeID]bool{}
	for _, h := range nw.Snapshot().Heads() {
		evHeads[h.ID] = true
	}
	liveHeads := map[radio.NodeID]bool{}
	for _, id := range res.Heads() {
		liveHeads[id] = true
	}
	if len(evHeads) != len(liveHeads) {
		t.Errorf("head counts differ: event %d vs live %d", len(evHeads), len(liveHeads))
	}
	for id := range liveHeads {
		if !evHeads[id] {
			t.Errorf("live head %d missing in event-driven run", id)
		}
	}

	// Associate agreement.
	snap := nw.Snapshot()
	agree, total := 0, 0
	for _, rep := range res.Reports {
		if rep.IsHead {
			continue
		}
		v, ok := snap.View(rep.ID)
		if !ok || v.Status != core.StatusAssociate {
			continue
		}
		total++
		if v.Head == rep.Head {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no associates compared")
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Errorf("associate agreement %.3f < 0.95 (%d/%d)", frac, agree, total)
	}
}

func TestRunRepeatedStable(t *testing.T) {
	// The head set is schedule-independent: reservations plus
	// deterministic ranking make repeated runs elect identical heads.
	cfg, dep := liveDeployment(t, 300)
	first, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := Run(cfg, dep)
		if err != nil {
			t.Fatal(err)
		}
		a, b := first.Heads(), res.Heads()
		if len(a) != len(b) {
			t.Fatalf("run %d: head count %d vs %d", i, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("run %d: head sets differ at %d: %d vs %d", i, j, b[j], a[j])
			}
		}
	}
}

func TestCandidatesWithinRt(t *testing.T) {
	cfg, dep := liveDeployment(t, 300)
	res, err := Run(cfg, dep)
	if err != nil {
		t.Fatal(err)
	}
	ilOf := map[radio.NodeID]geom.Point{}
	for _, rep := range res.Reports {
		if rep.IsHead {
			ilOf[rep.ID] = rep.IL
		}
	}
	for _, rep := range res.Reports {
		if rep.IsHead || !rep.Candidate {
			continue
		}
		il, ok := ilOf[rep.Head]
		if !ok {
			t.Errorf("candidate %d of unknown head %d", rep.ID, rep.Head)
			continue
		}
		if rep.Pos.Dist(il) > cfg.Rt+1e-9 {
			t.Errorf("candidate %d is %v from its cell IL", rep.ID, rep.Pos.Dist(il))
		}
	}
}
