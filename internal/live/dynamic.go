package live

import (
	"fmt"
	"slices"
	"sync"

	"gs3/internal/core"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/radio"
)

// The dynamic phase runs intra-cell maintenance at message granularity:
// synchronous heartbeat rounds (BSP style — all sends, barrier, all
// receives) over the same goroutine-per-node channel fabric as the
// configuration phase. Heads broadcast head_intra_alive; candidates
// that miss two heartbeats broadcast election claims; the best claim
// (the paper's ⟨d,|A|,A⟩ rank) wins the cell and heartbeats from the
// next round on; members re-attach when they hear the new head.
//
// The round structure mirrors a TDMA-slotted radio: everything a node
// sends in round r depends only on what it heard up to round r−1, so
// the outcome is schedule-independent even though delivery order is
// not.

// dynKind discriminates dynamic-phase messages.
type dynKind int

const (
	dynHeartbeat dynKind = iota + 1
	dynClaim
)

// dynMsg is a dynamic-phase message.
type dynMsg struct {
	Kind dynKind
	From radio.NodeID
	Pos  geom.Point
	IL   geom.Point // the cell the sender heads / claims
}

// dynNode is one node's dynamic-phase state.
type dynNode struct {
	id    radio.NodeID
	pos   geom.Point
	isBig bool
	dead  bool

	head      bool
	il        geom.Point // cell IL when head
	myHead    radio.NodeID
	candidate bool
	cellIL    geom.Point // candidates replicate their cell's IL

	lastHeard int // round the current head was last heard
	claiming  bool

	inbox chan dynMsg
	got   []dynMsg
}

// KillSchedule maps round numbers to the node IDs killed at the start
// of that round.
type KillSchedule map[int][]radio.NodeID

// DynamicResult is the outcome of RunDynamic.
type DynamicResult struct {
	Configured Result
	Final      []Report // state after the dynamic rounds, ascending ID
	Elections  int      // successful message-level head elections
}

// RunDynamic runs the GS³-S configuration (message level, goroutine per
// node) and then `rounds` synchronous heartbeat rounds of intra-cell
// maintenance, applying the scheduled kills. The heartbeat timeout is
// two rounds, matching the paper's failure-detection latency of one to
// two heartbeat periods.
func RunDynamic(cfg core.Config, dep field.Deployment, kills KillSchedule, rounds int) (DynamicResult, error) {
	configured, err := Run(cfg, dep)
	if err != nil {
		return DynamicResult{}, err
	}
	if rounds <= 0 {
		return DynamicResult{}, fmt.Errorf("live: rounds must be positive, got %d", rounds)
	}

	// Build the dynamic nodes from the configured structure.
	ilOf := map[radio.NodeID]geom.Point{}
	for _, rep := range configured.Reports {
		if rep.IsHead {
			ilOf[rep.ID] = rep.IL
		}
	}
	nodes := make([]*dynNode, len(configured.Reports))
	byID := map[radio.NodeID]*dynNode{}
	for i, rep := range configured.Reports {
		n := &dynNode{
			id: rep.ID, pos: rep.Pos, isBig: rep.ID == 0,
			head: rep.IsHead, il: rep.IL,
			myHead: rep.Head, candidate: rep.Candidate,
			inbox: make(chan dynMsg, len(configured.Reports)+64),
		}
		if rep.Candidate {
			n.cellIL = ilOf[rep.Head]
		}
		nodes[i] = n
		byID[rep.ID] = n
	}

	var mu sync.Mutex // guards positions map during concurrent sends
	alivePos := map[radio.NodeID]geom.Point{}
	for _, n := range nodes {
		alivePos[n.id] = n.pos
	}
	deliver := func(from geom.Point, radius float64, m dynMsg) {
		mu.Lock()
		defer mu.Unlock()
		for id, p := range alivePos {
			if id == m.From {
				continue
			}
			if p.Dist(from) <= radius {
				byID[id].inbox <- m
			}
		}
	}

	heartbeatRadius := cfg.CellRadiusBound() + 2*cfg.Rt
	elections := 0

	for round := 1; round <= rounds; round++ {
		// Apply scheduled kills.
		for _, id := range kills[round] {
			if n := byID[id]; n != nil && !n.dead {
				n.dead = true
				mu.Lock()
				delete(alivePos, id)
				mu.Unlock()
			}
		}

		// Send phase: every alive node sends concurrently.
		var wg sync.WaitGroup
		for _, n := range nodes {
			if n.dead {
				continue
			}
			n := n
			wg.Add(1)
			go func() {
				defer wg.Done()
				n.sendPhase(round, heartbeatRadius, deliver)
			}()
		}
		wg.Wait()

		// Receive phase: every alive node drains and decides.
		for _, n := range nodes {
			if n.dead {
				continue
			}
			n.drain()
		}
		for _, n := range nodes {
			if n.dead {
				continue
			}
			if n.recvPhase(cfg, round) {
				elections++
			}
		}
	}

	res := DynamicResult{Configured: configured, Elections: elections}
	for _, n := range nodes {
		if n.dead {
			continue
		}
		res.Final = append(res.Final, Report{
			ID: n.id, Pos: n.pos, IsHead: n.head, IL: n.il,
			Head: n.myHead, Candidate: n.candidate,
		})
	}
	slices.SortFunc(res.Final, func(a, b Report) int { return int(a.ID - b.ID) })
	return res, nil
}

// sendPhase emits what this node's round-(r−1) knowledge dictates.
func (n *dynNode) sendPhase(round int, radius float64, deliver func(geom.Point, float64, dynMsg)) {
	switch {
	case n.head:
		deliver(n.pos, radius, dynMsg{Kind: dynHeartbeat, From: n.id, Pos: n.pos, IL: n.il})
	case n.claiming:
		deliver(n.pos, radius, dynMsg{Kind: dynClaim, From: n.id, Pos: n.pos, IL: n.cellIL})
	}
}

// drain empties the inbox into the round buffer, sorted by sender for
// schedule independence.
func (n *dynNode) drain() {
	n.got = n.got[:0]
	for {
		select {
		case m := <-n.inbox:
			n.got = append(n.got, m)
		default:
			slices.SortFunc(n.got, func(a, b dynMsg) int { return int(a.From - b.From) })
			return
		}
	}
}

// recvPhase applies the round's messages. It returns true when this
// node won an election this round.
func (n *dynNode) recvPhase(cfg core.Config, round int) bool {
	if n.head {
		n.lastHeard = round
		return false
	}

	// Scan the round's heartbeats.
	var ownHB *dynMsg
	bestHead := radio.None
	bestD := cfg.SearchRadius()
	for i := range n.got {
		m := &n.got[i]
		if m.Kind != dynHeartbeat {
			continue
		}
		if m.From == n.myHead {
			ownHB = m
		}
		if d := n.pos.Dist(m.Pos); d < bestD {
			bestHead, bestD = m.From, d
		}
	}

	if ownHB != nil {
		// The cell is healthy. Switch only to a strictly closer head
		// (ASSOCIATE_ORG_RESP's "better head" rule), and refresh
		// candidacy against the current IL.
		n.lastHeard = round
		n.claiming = false
		if bestHead != radio.None && bestHead != n.myHead &&
			bestD < n.pos.Dist(ownHB.Pos)-1e-9 {
			n.attachTo(cfg, bestHead)
			return false
		}
		n.candidate = n.pos.Dist(ownHB.IL) <= cfg.Rt
		if n.candidate {
			n.cellIL = ownHB.IL
		}
		return false
	}

	// Our head was silent this round.
	if n.candidate || n.claiming {
		// Election resolution: if claims for our cell were heard
		// (possibly including our own), the best-ranked claimant wins.
		if winner, ok := bestClaim(cfg, n); ok {
			n.claiming = false
			if winner == n.id {
				n.head = true
				n.il = n.cellIL
				n.myHead = radio.None
				n.candidate = false
				return true
			}
			// Someone better claims the cell; their heartbeat next
			// round completes our re-attachment.
			n.myHead = winner
			n.lastHeard = round
			return false
		}
		// Failure detection: start claiming after two missed rounds.
		if !n.claiming && round-n.lastHeard >= 2 {
			n.claiming = true
		}
		return false
	}

	// Non-candidate member: after the timeout, re-join the closest
	// heartbeating head (the paper's bootup → re-choose path).
	if round-n.lastHeard >= 2 && bestHead != radio.None {
		n.attachTo(cfg, bestHead)
		n.lastHeard = round
	}
	return false
}

// attachTo joins head id based on its heartbeat heard this round.
func (n *dynNode) attachTo(cfg core.Config, id radio.NodeID) {
	n.myHead = id
	n.claiming = false
	n.candidate = false
	for _, m := range n.got {
		if m.Kind == dynHeartbeat && m.From == id {
			n.candidate = n.pos.Dist(m.IL) <= cfg.Rt
			if n.candidate {
				n.cellIL = m.IL
			}
		}
	}
}

// bestClaim ranks all claims for n's cell (including n's own pending
// claim) by the HEAD_SELECT order and returns the winner.
func bestClaim(cfg core.Config, n *dynNode) (radio.NodeID, bool) {
	type claimant struct {
		id  radio.NodeID
		pos geom.Point
	}
	var claims []claimant
	for _, m := range n.got {
		if m.Kind == dynClaim && m.IL.Dist(n.cellIL) <= cfg.Rt/2 {
			claims = append(claims, claimant{m.From, m.Pos})
		}
	}
	if n.claiming {
		claims = append(claims, claimant{n.id, n.pos})
	}
	if len(claims) == 0 {
		return radio.None, false
	}
	ids := make([]radio.NodeID, len(claims))
	pos := make(map[radio.NodeID]geom.Point, len(claims))
	for i, c := range claims {
		ids[i] = c.id
		pos[c.id] = c.pos
	}
	return core.BestCandidate(n.cellIL, cfg.GR, ids, func(id radio.NodeID) geom.Point { return pos[id] })
}
