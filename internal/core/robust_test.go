package core

import (
	"testing"

	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/radio"
	"gs3/internal/rng"
)

// buildLossy builds a network whose destination-unaware broadcasts drop
// each receiver independently with the given probability (the system
// model allows unreliable broadcast).
func buildLossy(t *testing.T, loss float64) (*Network, Config) {
	t.Helper()
	cfg := DefaultConfig(100)
	dep, err := field.Grid(350, cfg.Rt*0.9, 0.15, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	params := testRadioParams(cfg)
	params.BroadcastLoss = loss
	nw, err := NewNetwork(cfg, params, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range dep.Positions {
		if _, err := nw.AddNode(p, i == 0); err != nil {
			t.Fatal(err)
		}
	}
	return nw, cfg
}

func TestConfigureUnderBroadcastLoss(t *testing.T) {
	// With 10% broadcast loss the initial diffusing computation may
	// miss nodes and even whole cells, but GS³-D maintenance (boundary
	// rescans, bootup re-choice every sweep) must converge to full
	// coverage anyway — self-stabilization does not assume reliable
	// broadcast.
	nw, cfg := buildLossy(t, 0.10)
	if err := nw.StartConfiguration(); err != nil {
		t.Fatal(err)
	}
	nw.Engine().Run(0)
	nw.StartMaintenance(VariantD)
	deadline := 60 * cfg.BoundaryRescanEvery
	covered := func() bool {
		for _, v := range nw.Snapshot().Nodes {
			if v.Status == StatusBootup {
				return false
			}
		}
		return true
	}
	for i := 0; i < deadline && !covered(); i++ {
		runSweeps(nw, 1)
	}
	if !covered() {
		bootup := 0
		for _, v := range nw.Snapshot().Nodes {
			if v.Status == StatusBootup {
				bootup++
			}
		}
		t.Fatalf("%d nodes still uncovered under broadcast loss", bootup)
	}
	if nw.Medium().Stats().Dropped == 0 {
		t.Error("loss model never dropped anything")
	}
}

func TestChaosStorm(t *testing.T) {
	// Failure injection: a random storm of kills, joins, moves, and
	// corruptions, then quiet time. The structure must return to a
	// state with full coverage and no corrupt heads.
	if testing.Short() {
		t.Skip("chaos test")
	}
	nw, cfg := configureGridFresh(t, 100, 400)
	nw.StartMaintenance(VariantM)
	storm := rng.New(2026)

	ids := nw.SortedIDs()
	for round := 0; round < 30; round++ {
		runSweeps(nw, 1)
		switch storm.Intn(4) {
		case 0: // kill a random alive node
			id := ids[storm.Intn(len(ids))]
			nw.Kill(id)
		case 1: // join a node somewhere in the region
			x, y := storm.InDisk(380)
			nw.Join(geom.Point{X: x, Y: y})
		case 2: // teleport a random node
			id := ids[storm.Intn(len(ids))]
			x, y := storm.InDisk(380)
			nw.Move(id, geom.Point{X: x, Y: y})
		case 3: // corrupt a random head
			heads := nw.Snapshot().Heads()
			if len(heads) > 1 {
				h := heads[1+storm.Intn(len(heads)-1)]
				kinds := []CorruptionKind{CorruptIL, CorruptHops, CorruptStatus}
				nw.Corrupt(h.ID, kinds[storm.Intn(3)], 3*cfg.Rt)
			}
		}
	}

	// Quiet period: self-stabilization must clean everything up.
	runSweeps(nw, 20*cfg.SanityCheckEvery)

	snap := nw.Snapshot()
	for _, v := range snap.Nodes {
		if v.Status == StatusBootup {
			// A node may legitimately be uncovered if the storm
			// stranded it out of range of everything.
			if len(nw.headRoleAt(v.Pos, cfg.SearchRadius())) > 0 {
				t.Errorf("node %d uncovered despite heads in range", v.ID)
			}
		}
		if v.IsHead() && v.Pos.Dist(v.IL) > cfg.Rt+1e-9 {
			t.Errorf("head %d survives with corrupt IL (deviation %.1f)", v.ID, v.Pos.Dist(v.IL))
		}
	}
	// The head graph must still be a forest rooted at the big node (or
	// proxy): no cycles.
	views := map[radio.NodeID]NodeView{}
	for _, v := range snap.Nodes {
		views[v.ID] = v
	}
	for _, h := range snap.Heads() {
		seen := map[radio.NodeID]bool{}
		cur := h
		for !cur.IsBig && cur.Parent != cur.ID && cur.Parent != radio.None {
			if seen[cur.ID] {
				t.Fatalf("cycle in head graph at %d", cur.ID)
			}
			seen[cur.ID] = true
			next, ok := views[cur.Parent]
			if !ok || !next.IsHead() {
				break
			}
			cur = next
		}
	}
}

func TestMassiveSimultaneousHeadDeath(t *testing.T) {
	// Kill every single head (except the big node) at once — the
	// worst-case §4.3.5.2 "multiple simultaneous perturbations". Every
	// cell must recover by candidate promotion in parallel.
	nw, cfg := configureGridFresh(t, 100, 400)
	nw.StartMaintenance(VariantD)
	runSweeps(nw, 2)
	before := len(nw.Snapshot().Heads())
	for _, h := range nw.Snapshot().Heads() {
		if !h.IsBig {
			nw.Kill(h.ID)
		}
	}
	runSweeps(nw, 8)
	after := len(nw.Snapshot().Heads())
	if after < before-2 {
		t.Errorf("heads %d -> %d after mass head death", before, after)
	}
	if nw.Metrics().Promotions == 0 {
		t.Error("no candidate promotions")
	}
	bootup := 0
	for _, v := range nw.Snapshot().Nodes {
		if v.Status == StatusBootup {
			bootup++
		}
	}
	if bootup > 0 {
		t.Errorf("%d nodes uncovered after recovery", bootup)
	}
	_ = cfg
}

func TestRepeatedKillOfReplacements(t *testing.T) {
	// Keep killing whoever heads one particular cell, several times in
	// a row; the cell must keep recovering until its candidate area
	// runs dry, after which the members re-home.
	nw, cfg := configureDynamic(t, 400)
	target := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	oil := target.OIL
	for round := 0; round < 6; round++ {
		for _, h := range nw.Snapshot().Heads() {
			if h.OIL.Dist(oil) < cfg.Rt && !h.IsBig {
				nw.Kill(h.ID)
			}
		}
		runSweeps(nw, 4)
	}
	// Whatever happened, nobody is left stranded.
	for _, v := range nw.Snapshot().Nodes {
		if v.Status == StatusBootup {
			t.Errorf("node %d stranded after repeated kills", v.ID)
		}
	}
}
