package core

import (
	"encoding/json"
	"testing"
)

func TestSnapshotJSONRoundTrip(t *testing.T) {
	nw, _ := configureGrid(t, 100, 450)
	snap := nw.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	if back.BigID != snap.BigID || back.Time != snap.Time {
		t.Errorf("header differs: %v/%v vs %v/%v", back.BigID, back.Time, snap.BigID, snap.Time)
	}
	if back.Config.R != snap.Config.R || back.Config.Rt != snap.Config.Rt {
		t.Errorf("config differs")
	}
	if len(back.Nodes) != len(snap.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(back.Nodes), len(snap.Nodes))
	}
	for i, v := range snap.Nodes {
		b := back.Nodes[i]
		if b.ID != v.ID || b.Status != v.Status || b.Pos != v.Pos || b.IL != v.IL ||
			b.Parent != v.Parent || b.Head != v.Head || b.Hops != v.Hops ||
			b.Candidate != v.Candidate || b.Spiral != v.Spiral {
			t.Fatalf("node %d differs:\n got %+v\nwant %+v", v.ID, b, v)
		}
		if len(b.Children) != len(v.Children) || len(b.Neighbors) != len(v.Neighbors) {
			t.Fatalf("node %d link lists differ", v.ID)
		}
	}
}

func TestSnapshotJSONInvariantAfterRoundTrip(t *testing.T) {
	// A decoded snapshot must still satisfy the machine checks — the
	// encoding loses nothing the checker needs. (Checked indirectly via
	// identical structural fields above; here we re-run a structural
	// walk on the decoded form.)
	nw, _ := configureGrid(t, 100, 450)
	data, err := json.Marshal(nw.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	heads := back.Heads()
	if len(heads) < 7 {
		t.Fatalf("decoded snapshot lost heads: %d", len(heads))
	}
	for _, h := range heads {
		if h.Pos.Dist(h.IL) > back.Config.Rt+1e-9 {
			t.Errorf("decoded head %d off its IL", h.ID)
		}
	}
}

func TestSnapshotJSONRejectsGarbage(t *testing.T) {
	var s Snapshot
	if err := json.Unmarshal([]byte(`{"config":{"r":0}}`), &s); err == nil {
		t.Error("zero R accepted")
	}
	if err := json.Unmarshal([]byte(`{"config":{"r":100},"nodes":[{"status":"nope"}]}`), &s); err == nil {
		t.Error("unknown status accepted")
	}
	if err := json.Unmarshal([]byte(`{`), &s); err == nil {
		t.Error("malformed JSON accepted")
	}
}
