package core

import (
	"sync"

	"gs3/internal/radio"
)

// This file implements the sharded maintenance executor: one sweep
// batch (all nodes of one heartbeat phase, see scheduleSweep) executed
// with a parallel classification phase and a serial merge, byte-
// identical to draining the batch one node at a time for any worker
// count.
//
// Conflict leveling à la ConfigureSharded does not transfer to sweeps
// directly: a batch's members share an ID residue class (id mod 17),
// so they tile the whole field densely and conflict-distance coloring
// would degenerate to near-serial levels. What does transfer is the
// quiescence machinery of the sweep cache (maintain.go): in a settled
// network almost every sweep is a recorded replay whose entire effect
// is private per-node state (sweep counter, energy, cache stamp) plus
// commutative uint64 counter increments — replays cannot conflict with
// each other at all. The executor therefore splits a batch as:
//
//  1. Classify (parallel, read-only): every node's sweep outcome is
//     predicted against the pre-batch state — skip (dead), blackout
//     (reschedule only), replay (the quiescentSweep conditions hold,
//     in the plain or rescan flavor), or full (everything else,
//     including the big node, imminent energy death, and any node
//     whose cache cannot prove quiescence). Classification only reads,
//     so chunks of the batch classify concurrently.
//  2. Apply. If no node classified full — the settled steady state —
//     a second parallel pass performs the replays' private writes on
//     disjoint per-node state and aggregates their counter deltas per
//     chunk; the deltas (all uint64, so addition commutes exactly) are
//     credited chunk-by-chunk and every surviving node is rescheduled
//     in batch order, reproducing the serial engine schedule.
//  3. Merge (serial, only when healing is present): nodes run in batch
//     order. Full nodes execute the ordinary serial sweep — head
//     replacement, HEAD_ORG re-election, boundary rescans, all of it —
//     and every state change they make bumps a topology epoch bucket
//     (the invariant the sweep cache already depends on). A replay
//     node therefore stays on the fast path exactly when no bucket in
//     its query cone was bumped since the batch began
//     (Medium.RegionChangedSince); otherwise it escalates to the full
//     serial sweep, which re-derives the correct answer by
//     construction. Healing thus serializes only its own conflict
//     region — the cones that saw a mutation — never the whole batch.
//
// The gate (sweepShardable) mirrors cacheable(): active faults, lossy
// radio, per-send energy costs, tracers, and traffic traces all either
// consume per-event randomness or observe per-event detail, and force
// the serial path.

// sweepKind is one node's predicted sweep outcome.
type sweepKind uint8

const (
	sweepSkip         sweepKind = iota // dead or absent: no work, no reschedule
	sweepBlackout                      // radio down: reschedule only
	sweepReplayPlain                   // quiescent: replay the plain flavor
	sweepReplayRescan                  // quiescent: replay the rescan flavor
	sweepFull                          // must run the full serial sweep body
)

// minShardBatch is the smallest batch worth the executor's two-phase
// overhead, and minShardChunk the smallest per-goroutine chunk; below
// either, the batch drains serially.
const (
	minShardBatch = 32
	minShardChunk = 16
)

// SetSweepWorkers sets the worker budget of the sharded maintenance
// executor: sweep batches of at least minShardBatch nodes classify
// (and, when fully settled, apply) on up to workers goroutines. Any
// value ≤ 1 keeps every batch on the serial path. The run's outcome —
// node state, snapshot bytes, stats, metrics, topology epochs, engine
// schedule — is byte-identical for every workers value; only wall
// clock changes.
func (nw *Network) SetSweepWorkers(workers int) {
	nw.sweepWorkers = workers
}

// SweepWorkers returns the configured sharded-sweep worker budget.
func (nw *Network) SweepWorkers() int { return nw.sweepWorkers }

// sweepShardable reports whether sweep batches may take the sharded
// path at all. The conditions are cacheable()'s — the executor elides
// exactly the work the quiescence cache elides, so anything that
// consumes per-query randomness (faults, lossy radio) or couples
// side effects to elided sends (per-send energy) disqualifies — plus
// the absence of observers that record per-event detail the replay
// fast path would skip (protocol tracer, traffic trace). An inactive
// fault plan also guarantees jitter-free batching and no blackout-
// start dice, which classification relies on.
func (nw *Network) sweepShardable() bool {
	return nw.sweepWorkers > 1 &&
		nw.cacheable() &&
		nw.tracer == nil &&
		!nw.med.Tracing()
}

// classifySweep predicts node id's sweep outcome against the current
// network state without mutating anything: it mirrors sweepOnce's
// decision chain (blackout check, energy drain, quiescentSweep) using
// the post-drain energy and post-increment sweep counter the serial
// sweep would see. It is a pure read, safe to run concurrently for
// any set of nodes.
func (nw *Network) classifySweep(id radio.NodeID) sweepKind {
	n := nw.node(id)
	if n == nil || n.Status == StatusDead {
		return sweepSkip
	}
	if nw.med.InBlackout(id) {
		return sweepBlackout
	}
	// No blackout-start dice: sweepShardable() implies an inactive
	// fault plan, under which BlackoutStart is constant false and
	// consumes no randomness.
	if n.IsBig {
		return sweepFull
	}
	cd := &nw.cold[id]
	next := cd.sweep + 1
	isHead := n.Status.IsHeadRole()
	energy := cd.Energy
	if nw.cfg.InitialEnergy > 0 {
		rate := nw.cfg.AssociateDissipation
		if isHead {
			rate *= nw.cfg.HeadEnergyFactor
		}
		energy -= rate * nw.cfg.HeartbeatInterval
		if energy <= 0 {
			return sweepFull // dies this sweep; Kill bumps epochs
		}
	}
	c := &nw.caches[id]
	kind := sweepReplayPlain
	if isHead {
		if cd.pendingChildRepair {
			return sweepFull
		}
		if nw.cfg.InitialEnergy > 0 &&
			energy <= nw.cfg.AssociateDissipation*nw.cfg.HeadEnergyFactor*nw.cfg.HeartbeatInterval {
			return sweepFull // lowEnergy retreat is due
		}
		if !c.sane && next%uint32(nw.cfg.SanityCheckEvery) == 0 {
			return sweepFull
		}
		if next%uint32(nw.cfg.BoundaryRescanEvery) == 0 {
			kind = sweepReplayRescan
		}
	}
	d := &c.plain
	if kind == sweepReplayRescan {
		d = &c.rescan
	}
	if !d.valid {
		return sweepFull
	}
	if nw.med.Epoch() != c.worldStamp {
		if nw.med.RegionEpoch(nw.Position(id), nw.coneRadius(isHead)) != c.regionStamp {
			return sweepFull
		}
	}
	return kind
}

// applySweepReplay performs the private half of one replayed sweep —
// the sweep counter, the duty-cycle energy drain, and the world-stamp
// refresh — and returns the recorded delta to credit. Every write
// lands in state owned by node id, so replays for distinct ids may
// apply concurrently. The rescan flavor's remaining side effects (the
// HEAD_ORG trace event and two footprint sends) are no-ops under the
// sweepShardable gate, which excludes tracers and traffic traces.
func (nw *Network) applySweepReplay(id radio.NodeID, kind sweepKind, world uint64) *sweepDelta {
	cd := &nw.cold[id]
	cd.sweep++
	if nw.cfg.InitialEnergy > 0 {
		rate := nw.cfg.AssociateDissipation
		if nw.nodes[id].Status.IsHeadRole() {
			rate *= nw.cfg.HeadEnergyFactor
		}
		cd.Energy -= rate * nw.cfg.HeartbeatInterval
	}
	c := &nw.caches[id]
	c.worldStamp = world
	if kind == sweepReplayRescan {
		return &c.rescan
	}
	return &c.plain
}

// runSweepBatchSharded drains batch ids through the classify/apply/
// merge pipeline described at the top of the file. The caller has
// verified sweepShardable() and the minimum batch size.
func (nw *Network) runSweepBatchSharded(ids []radio.NodeID) {
	// cacheFor grows the cache slice lazily; grow it up front so the
	// parallel phases below never append to shared slices.
	nw.ensureCaches()

	chunks := nw.sweepWorkers
	if m := len(ids) / minShardChunk; chunks > m {
		chunks = m
	}

	kinds := nw.shardKinds
	if cap(kinds) < len(ids) {
		kinds = make([]sweepKind, len(ids))
	}
	kinds = kinds[:len(ids)]
	nw.shardKinds = kinds
	for cap(nw.shardFull) < chunks {
		nw.shardFull = append(nw.shardFull[:cap(nw.shardFull)], 0)
	}
	fulls := nw.shardFull[:chunks]

	// Phase 1: parallel read-only classification over contiguous chunks.
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo, hi := c*len(ids)/chunks, (c+1)*len(ids)/chunks
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			nFull := 0
			for i := lo; i < hi; i++ {
				k := nw.classifySweep(ids[i])
				kinds[i] = k
				if k == sweepFull {
					nFull++
				}
			}
			fulls[c] = nFull
		}(c, lo, hi)
	}
	wg.Wait()
	totalFull := 0
	for _, f := range fulls {
		totalFull += f
	}

	if totalFull > 0 {
		nw.mergeSweepBatch(ids, kinds)
		return
	}

	// Phase 2, settled steady state: every node replays (or is skipped /
	// blacked out). The private writes are disjoint per node, so chunks
	// apply concurrently; the counter deltas are all uint64, so the
	// chunk-ordered credit below sums to exactly the serial totals.
	world := nw.med.Epoch()
	for cap(nw.shardStats) < chunks {
		nw.shardStats = append(nw.shardStats[:cap(nw.shardStats)], radio.Stats{})
	}
	for cap(nw.shardMetrics) < chunks {
		nw.shardMetrics = append(nw.shardMetrics[:cap(nw.shardMetrics)], Metrics{})
	}
	stats := nw.shardStats[:chunks]
	metrics := nw.shardMetrics[:chunks]
	for c := 0; c < chunks; c++ {
		lo, hi := c*len(ids)/chunks, (c+1)*len(ids)/chunks
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			var st radio.Stats
			var mt Metrics
			for i := lo; i < hi; i++ {
				if kinds[i] != sweepReplayPlain && kinds[i] != sweepReplayRescan {
					continue
				}
				d := nw.applySweepReplay(ids[i], kinds[i], world)
				st = st.Add(d.statsDelta())
				mt = mt.add(d.metricsDelta())
			}
			stats[c] = st
			metrics[c] = mt
		}(c, lo, hi)
	}
	wg.Wait()
	for c := 0; c < chunks; c++ {
		nw.med.AddStats(stats[c])
		nw.addMetrics(metrics[c])
	}
	// Reschedule in batch order. No replay schedules any other event,
	// so the reschedules coalesce into batches exactly as the serial
	// per-node loop would have coalesced them.
	for i, id := range ids {
		if kinds[i] != sweepSkip {
			nw.scheduleSweep(id, nw.cfg.HeartbeatInterval)
		}
	}
}

// mergeSweepBatch is the serial merge for a batch with healing in it:
// nodes run in batch order; full nodes take the ordinary serial sweep
// (mutations, reschedules, follow-up events — everything exactly as
// serial), and replay-classified nodes stay on the fast path unless a
// mutation since the batch began touched their query cone, in which
// case they escalate to the serial sweep too. Escalation is sound in
// both directions: an untouched cone means the classification's inputs
// are bit-for-bit unchanged (every cross-node protocol write bumps an
// epoch bucket at the written node, inside any cone that could read
// it), and the serial sweep a touched node falls back to re-derives
// its outcome from live state by construction.
func (nw *Network) mergeSweepBatch(ids []radio.NodeID, kinds []sweepKind) {
	e0 := nw.med.Epoch()
	for i, id := range ids {
		switch kinds[i] {
		case sweepSkip:
		case sweepFull:
			nw.sweep(id)
		case sweepBlackout:
			// A blacked-out node does nothing regardless of what healing
			// rewrote around (or on) it, so it never needs to escalate.
			nw.scheduleSweep(id, nw.cfg.HeartbeatInterval)
		default:
			if nw.med.Epoch() != e0 {
				isHead := nw.nodes[id].Status.IsHeadRole()
				if nw.med.RegionChangedSince(nw.Position(id), nw.coneRadius(isHead), e0) {
					nw.sweep(id)
					continue
				}
			}
			d := nw.applySweepReplay(id, kinds[i], nw.med.Epoch())
			nw.med.AddStats(d.statsDelta())
			nw.addMetrics(d.metricsDelta())
			nw.scheduleSweep(id, nw.cfg.HeartbeatInterval)
		}
	}
}
