package core

import (
	"math"

	"gs3/internal/geom"
	"gs3/internal/hexlat"
	"gs3/internal/radio"
	"gs3/internal/sim"
	"gs3/internal/trace"
)

// Variant selects which algorithm layer the maintenance sweeps run.
type Variant int

// Algorithm variants (paper sections 3, 4, 5).
const (
	VariantS Variant = iota + 1 // static: no maintenance
	VariantD                    // dynamic: GS³-D healing
	VariantM                    // mobile dynamic: GS³-D + big-node mobility
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantS:
		return "GS3-S"
	case VariantD:
		return "GS3-D"
	case VariantM:
		return "GS3-M"
	}
	return "invalid"
}

// StartMaintenance schedules the recurring per-node maintenance sweeps
// that implement GS³-D (and, with VariantM, GS³-M). Each node sweeps
// every HeartbeatInterval with a deterministic per-node phase so sweeps
// interleave rather than firing simultaneously.
func (nw *Network) StartMaintenance(v Variant) {
	if v == VariantS {
		return
	}
	nw.variant = v
	if nw.maintaining {
		return
	}
	nw.maintaining = true
	// Per-send energy drain applies to maintenance-era traffic only:
	// configure is energy-free by design (batteries meter the network's
	// operating lifetime, not its setup), and installing the hook here
	// keeps the sharded configure executor's concurrency contract — the
	// hook mutates per-node energy, which parallel workers must not.
	if nw.sendCostsActive() {
		nw.med.SetSendHook(nw.drainSendEnergy)
	}
	interval := nw.cfg.HeartbeatInterval
	for _, id := range nw.SortedIDs() {
		phase := interval * float64(int(id)%17) / 17
		nw.scheduleSweep(id, phase)
	}
}

// StopMaintenance stops the sweep loop and eagerly drops every queued
// sweep batch and per-node sweep timer from the engine, so nothing
// keeps retaining the network through dead closures.
func (nw *Network) StopMaintenance() {
	nw.maintaining = false
	nw.med.SetSendHook(nil)
	for _, b := range nw.pending {
		nw.eng.Remove(b.handle)
		nw.recycleBatch(b)
	}
	nw.pending = nw.pending[:0]
	for at := range nw.batches {
		delete(nw.batches, at)
	}
	for i, h := range nw.sweepTimers {
		nw.eng.Remove(h)
		nw.sweepTimers[i] = sim.Handle{}
	}
}

// scheduleSweep queues node id's next maintenance sweep after delay.
//
// The common (jitter-free) path batches: consecutively scheduled sweeps
// due at the same instant share one engine event, and the batch
// executes them in append order. This reproduces per-event scheduling
// exactly, because a batch is sealed the moment any other event is
// scheduled (Engine.Scheduled moved past its mark): an event due at the
// same instant then fires between the sealed batch and the next one —
// precisely where its sequence number would have put it among per-node
// sweep events. With delay jitter active each node needs its own
// independently jittered fire time, so scheduling falls back to one
// event per node, tracked for eager removal on stop.
func (nw *Network) scheduleSweep(id radio.NodeID, delay float64) {
	if nw.faults.Plan().Jitter > 0 {
		h := nw.eng.After(nw.jittered(delay), "sweep", func() { nw.sweep(id) })
		for int(id) >= len(nw.sweepTimers) {
			nw.sweepTimers = append(nw.sweepTimers, sim.Handle{})
		}
		nw.sweepTimers[id] = h
		return
	}
	at := nw.eng.Now() + delay
	b := nw.batches[at]
	if b == nil || nw.eng.Scheduled()-b.seqMark != nw.batchEvents-b.evMark {
		b = nw.newBatch()
		nw.batches[at] = b // seals any previous batch for this time
		b.handle = nw.eng.After(delay, "sweep_batch", func() { nw.runSweepBatch(b, at) })
		nw.batchEvents++
		b.seqMark = nw.eng.Scheduled()
		b.evMark = nw.batchEvents
		b.idx = len(nw.pending)
		nw.pending = append(nw.pending, b)
	}
	b.ids = append(b.ids, id)
}

// runSweepBatch fires batch b's sweeps in scheduling order. Sweeps
// reschedule into strictly later batches (HeartbeatInterval is
// validated positive), so the slice never grows under the iteration.
// Large batches take the sharded executor (sweepshard.go) when a
// worker budget is set and the run qualifies; the outcome is byte-
// identical either way.
func (nw *Network) runSweepBatch(b *sweepBatch, at sim.Time) {
	if nw.batches[at] == b {
		delete(nw.batches, at)
	}
	nw.unpend(b)
	if nw.sweepWorkers > 1 && nw.maintaining && len(b.ids) >= minShardBatch && nw.sweepShardable() {
		nw.runSweepBatchSharded(b.ids)
	} else {
		for _, id := range b.ids {
			nw.sweep(id)
		}
	}
	nw.recycleBatch(b)
}

// unpend swap-removes b from the pending list.
func (nw *Network) unpend(b *sweepBatch) {
	last := len(nw.pending) - 1
	if b.idx < last {
		moved := nw.pending[last]
		nw.pending[b.idx] = moved
		moved.idx = b.idx
	}
	nw.pending[last] = nil
	nw.pending = nw.pending[:last]
}

func (nw *Network) newBatch() *sweepBatch {
	if n := len(nw.batchFree); n > 0 {
		b := nw.batchFree[n-1]
		nw.batchFree = nw.batchFree[:n-1]
		return b
	}
	return &sweepBatch{}
}

func (nw *Network) recycleBatch(b *sweepBatch) {
	b.ids = b.ids[:0]
	b.handle = sim.Handle{}
	b.seqMark = 0
	b.evMark = 0
	b.idx = -1
	nw.batchFree = append(nw.batchFree, b)
}

// sweep is one maintenance round at node id: heartbeat exchange,
// failure detection, healing, and energy dissipation.
func (nw *Network) sweep(id radio.NodeID) {
	if !nw.maintaining {
		return
	}
	if nw.sweepOnce(id) {
		nw.scheduleSweep(id, nw.cfg.HeartbeatInterval)
	}
}

// sweepOnce executes the body of one maintenance round at node id and
// reports whether the node should be rescheduled. It is the unit the
// quiescence cache elides: when the node's recorded sweep is provably
// still current, only the mandatory per-sweep work (counters, energy)
// happens and the recorded accounting is replayed.
func (nw *Network) sweepOnce(id radio.NodeID) bool {
	n := nw.node(id)
	if n == nil || n.Status == StatusDead {
		return false
	}
	// Transient blackout (fault layer): a blacked-out node keeps its
	// state but does nothing — its radio is off — until the restore event
	// brings it back. Small nodes roll the blackout-start dice once per
	// sweep; the big node is mains-powered and exempt.
	if nw.med.InBlackout(id) {
		return true
	}
	if !n.IsBig {
		if sweeps, ok := nw.faults.BlackoutStart(); ok {
			nw.beginBlackout(id, sweeps*nw.cfg.HeartbeatInterval)
			return true
		}
	}
	nw.coldOf(id).sweep++

	nw.drainEnergy(n)
	if n.Status == StatusDead {
		return false
	}

	if nw.quiescentSweep(n) {
		return true
	}

	// Record a fresh quiescent delta only when the full sweep proves
	// itself a no-op: the topology epoch not moving across the body
	// means no touch fired, i.e. every write was value-identical.
	cacheable := nw.cacheable() && !n.IsBig
	var epochBefore uint64
	var statsBefore radio.Stats
	var metricsBefore Metrics
	if cacheable {
		epochBefore = nw.med.Epoch()
		statsBefore = nw.med.Stats()
		metricsBefore = nw.metrics
	}

	switch {
	case n.IsBig:
		nw.sweepBig(n)
	case n.Status.IsHeadRole():
		nw.headIntraCell(n)
		if n.Status.IsHeadRole() { // may have retreated
			nw.headInterCell(n)
		}
		if n.Status.IsHeadRole() && nw.coldOf(id).sweep%uint32(nw.cfg.SanityCheckEvery) == 0 {
			nw.SanityCheck(id)
		}
	case n.Status == StatusAssociate:
		nw.associateIntraCell(n)
	case n.Status == StatusBootup:
		nw.ChooseHead(id)
	}

	if cacheable && nw.med.Epoch() == epochBefore {
		nw.recordSweep(n, statsBefore, metricsBefore)
	}
	return true
}

// quiescentSweep is the fast path: if the node's recorded sweep delta
// is still provably current — its flavor is valid and no topology epoch
// in its query cone moved since it was recorded — replay the recorded
// accounting (counters, and for rescan sweeps the head-org trace and
// footprint sends) and skip the scans entirely. Returns false when the
// full sweep must run.
func (nw *Network) quiescentSweep(n *Node) bool {
	if n.IsBig || !nw.cacheable() {
		return false
	}
	cd := nw.coldOf(n.ID)
	c := nw.cacheFor(n.ID)
	isHead := n.Status.IsHeadRole()
	var d *sweepDelta
	rescanDue := false
	if isHead {
		// A pending child repair or an imminent low-energy retreat is
		// precisely a non-quiescent sweep; and only a head recorded
		// sane may skip a SANITY_CHECK round (an insane one might have
		// to retreat this time).
		if cd.pendingChildRepair || nw.lowEnergy(n) {
			return false
		}
		if !c.sane && cd.sweep%uint32(nw.cfg.SanityCheckEvery) == 0 {
			return false
		}
		rescanDue = cd.sweep%uint32(nw.cfg.BoundaryRescanEvery) == 0
	}
	if rescanDue {
		d = &c.rescan
	} else {
		d = &c.plain
	}
	if !d.valid {
		return false
	}
	if world := nw.med.Epoch(); world != c.worldStamp {
		if nw.med.RegionEpoch(nw.Position(n.ID), nw.coneRadius(isHead)) != c.regionStamp {
			return false
		}
		c.worldStamp = world
	}
	nw.med.AddStats(d.statsDelta())
	nw.addMetrics(d.metricsDelta())
	if rescanDue {
		// The elided rescan's externally visible side: the HEAD_ORG
		// trace event and the two org broadcasts' footprint sends.
		nw.emit(trace.KindHeadOrg, n.ID, radio.None, n.IL)
		nw.med.TraceSend(n.ID)
		nw.med.TraceSend(n.ID)
	}
	return true
}

// recordSweep stores the accounting of a sweep that changed nothing,
// stamped with the current epoch of the node's query cone. A rescan
// sweep (it ran HEAD_ORG exactly once) lands in the rescan flavor,
// every other no-op sweep in the plain flavor. If the cone's epoch
// moved since the sibling flavor was recorded, that sibling describes a
// stale neighborhood and is dropped.
func (nw *Network) recordSweep(n *Node, statsBefore radio.Stats, metricsBefore Metrics) {
	c := nw.cacheFor(n.ID)
	isHead := n.Status.IsHeadRole()
	cone := nw.coneRadius(isHead)
	// A sweep that reads a live node beyond the cone (possible when
	// mobility carried a linked node away before the link healed) cannot
	// be stamped: changes at that node would not move the cone's epochs.
	if !nw.linksLocal(n, cone) {
		return
	}
	region := nw.med.RegionEpoch(nw.Position(n.ID), cone)
	if region != c.regionStamp {
		c.plain.valid = false
		c.rescan.valid = false
		c.regionStamp = region
	}
	d := &c.plain
	if nw.metrics.HeadOrgs > metricsBefore.HeadOrgs {
		d = &c.rescan
	}
	if !d.record(nw.med.Stats().Sub(statsBefore), nw.metrics.sub(metricsBefore)) {
		return // an increment overflowed uint16: this sweep stays uncached
	}
	c.worldStamp = nw.med.Epoch()
	if isHead {
		c.sane = nw.headStateValid(n)
	}
}

// linksLocal reports whether every live node n references sits inside
// cone of n's position. Dead links are fine — a removed node's state is
// frozen, so nothing it does can change a replayed sweep — but a live
// link beyond the cone could change state without moving any epoch the
// cache stamps cover, so such a sweep is never recorded. Links only get
// that far through mobility, and the mover's old-bucket epoch bump
// invalidates the cache that watched it leave.
func (nw *Network) linksLocal(n *Node, cone float64) bool {
	pos := nw.Position(n.ID)
	local := func(id radio.NodeID) bool {
		if id == radio.None || id == n.ID || !nw.med.Alive(id) {
			return true
		}
		p, _ := nw.med.Position(id)
		return pos.Dist(p) <= cone
	}
	if !local(n.Parent) || !local(n.Head) {
		return false
	}
	for _, id := range n.Children {
		if !local(id) {
			return false
		}
	}
	for _, id := range n.Neighbors {
		if !local(id) {
			return false
		}
	}
	return true
}

// beginBlackout takes node id's radio down for dur virtual time and
// schedules the restore. State is preserved across the outage — this is
// a crash/restart with stable storage, not a death.
func (nw *Network) beginBlackout(id radio.NodeID, dur float64) {
	nw.med.SetBlackout(id, true)
	nw.eng.After(dur, "blackout_restore", func() { nw.restoreFromBlackout(id) })
}

// restoreFromBlackout brings node id's radio back. A restored head whose
// cell was healed in its absence (a candidate was elected onto the same
// IL) yields instead of fighting the replacement: it hears the new
// head's heartbeat first thing after restart and re-joins as a small
// node, exactly as the paper's restarted-node rule prescribes.
func (nw *Network) restoreFromBlackout(id radio.NodeID) {
	nw.med.SetBlackout(id, false)
	n := nw.node(id)
	if n == nil || !nw.Alive(id) {
		return
	}
	if n.IsBig || !n.Status.IsHeadRole() {
		return
	}
	for _, hid := range nw.headRoleAt(n.IL, nw.cfg.SearchRadius()) {
		if hid != id && nw.node(hid).IL.Dist(n.IL) <= nw.cfg.Rt {
			nw.becomeBootup(n)
			nw.touch(id)
			nw.ChooseHead(id)
			return
		}
	}
}

// drainEnergy applies the energy model for one sweep interval. The big
// node is mains-powered in the paper's model and never dies.
func (nw *Network) drainEnergy(n *Node) {
	if nw.cfg.InitialEnergy == 0 || n.IsBig {
		return
	}
	rate := nw.cfg.AssociateDissipation
	if n.Status.IsHeadRole() {
		rate *= nw.cfg.HeadEnergyFactor
	}
	cd := nw.coldOf(n.ID)
	cd.Energy -= rate * nw.cfg.HeartbeatInterval
	if cd.Energy <= 0 {
		nw.Kill(n.ID)
	}
}

// drainSendEnergy is the medium's send hook while per-send costs are
// active: every actual transmission subtracts its cost from the
// sender's battery. Depletion does not kill synchronously — the sender
// is mid-action, often mid-broadcast, and yanking it off the medium
// there would corrupt in-flight protocol state. Instead a zero-delay
// energy_death event re-checks and kills after the current action
// completes, which is also when a real node's radio would brown out.
func (nw *Network) drainSendEnergy(sender radio.NodeID, broadcast bool) {
	n := nw.node(sender)
	if n == nil || n.IsBig || n.Status == StatusDead {
		return
	}
	cost := nw.cfg.UnicastCost
	if broadcast {
		cost = nw.cfg.BroadcastCost
	}
	if cost == 0 {
		return
	}
	cd := nw.coldOf(sender)
	was := cd.Energy
	cd.Energy -= cost
	if was > 0 && cd.Energy <= 0 {
		nw.eng.After(0, "energy_death", func() { nw.energyDeath(sender) })
	}
}

// energyDeath finalizes a depletion detected by drainSendEnergy. It
// re-checks both liveness and energy: the node may already be dead, or
// a scenario may have recharged it (SetEnergy) in the meantime.
func (nw *Network) energyDeath(id radio.NodeID) {
	n := nw.node(id)
	if n == nil || n.Status == StatusDead || nw.coldOf(id).Energy > 0 {
		return
	}
	nw.Kill(id)
}

// lowEnergy reports whether a head should proactively retreat: it could
// not survive another sweep as head but could as an associate.
func (nw *Network) lowEnergy(n *Node) bool {
	if nw.cfg.InitialEnergy == 0 || n.IsBig {
		return false
	}
	headCost := nw.cfg.AssociateDissipation * nw.cfg.HeadEnergyFactor * nw.cfg.HeartbeatInterval
	return nw.coldOf(n.ID).Energy <= headCost
}

// ---- Intra-cell maintenance (HEAD_INTRA_CELL & friends) ----

// headIntraCell executes the intra-cell maintenance of head h:
// heartbeats with associates, proactive retreat when resource-scarce
// (head shift), cell strengthening when the candidate set is empty
// (cell shift), and cell abandonment when the cell is heavily perturbed.
func (nw *Network) headIntraCell(h *Node) {
	candidates := nw.Candidates(h.ID)

	// Heartbeat: candidates refresh their copy of the cell state. A
	// replica that is already current is left untouched so a steady
	// state stays epoch-quiet.
	for _, cid := range candidates {
		c := nw.node(cid)
		if c.Candidate && c.CellIL == h.IL && c.CellOIL == h.OIL && c.CellSpiral == h.Spiral {
			continue
		}
		c.Candidate = true
		c.CellIL, c.CellOIL, c.CellSpiral = h.IL, h.OIL, h.Spiral
		nw.touch(cid)
	}

	if nw.lowEnergy(h) && len(candidates) > 0 {
		// head_retreat: the highest-ranked candidate takes over.
		if best, ok := BestCandidate(h.IL, nw.cfg.GR, candidates, nw.Position); ok {
			nw.transferHeadRole(h, nw.node(best))
			nw.metrics.HeadShifts++
			return
		}
	}

	if len(candidates) == 0 {
		nw.StrengthenCell(h.ID)
	}
}

// StrengthenCell implements cell shift: advance the cell's current IL
// along the ⟨ICC, ICP⟩ spiral (pitch √3·Rt, oriented by GR, anchored at
// the OIL) to the next IL inside the cell's coverage whose candidate
// area is non-empty, then hand the head role to the best node there. If
// no such IL exists, or the shifted IL would violate the hexagonal
// relation with the neighboring cells beyond the allowed deviation, the
// cell is abandoned.
func (nw *Network) StrengthenCell(id radio.NodeID) {
	h := nw.node(id)
	if h == nil || !h.Status.IsHeadRole() {
		return
	}
	cfg := nw.cfg
	lat := hexlat.New(h.OIL, math.Sqrt(3)*cfg.Rt, cfg.GR)

	// Members that can serve the shifted cell: current associates plus
	// bootup nodes inside the cell's coverage.
	members := nw.cellMembers(h)

	maxRing := int(cfg.R/(math.Sqrt(3)*cfg.Rt)) + 2
	idx := h.Spiral
	for steps := 0; steps < 1+3*maxRing*(maxRing+1); steps++ {
		idx = hexlat.NextSpiral(idx)
		if int(idx.ICC) > maxRing {
			break
		}
		il := lat.Center(hexlat.SpiralPoint(idx))
		if il.Dist(h.OIL) > cfg.R {
			continue // outside the cell's coverage
		}
		ca := nw.caOf(il, members)
		if len(ca) == 0 {
			continue
		}
		if nw.ilDeviatesTooMuch(h, il) {
			break // heavy perturbation: abandon below
		}
		// Shift the cell and hand over the head role.
		nw.metrics.CellShifts++
		nw.emit(trace.KindCellShift, h.ID, radio.None, il)
		h.IL = il
		h.Spiral = idx
		nw.touch(h.ID)
		best, _ := BestCandidate(il, cfg.GR, ca, nw.Position)
		if best != h.ID {
			nw.transferHeadRole(h, nw.node(best))
			nw.metrics.HeadShifts++
		}
		return
	}
	nw.AbandonCell(id)
}

// ilDeviatesTooMuch implements the abandonment trigger: the distance
// between the shifted IL and a living neighbor's IL must stay within
// (0, 2·√3·R) — the bound the GS³-D invariant places on neighboring ILs
// with different ⟨ICC, ICP⟩ — minus the configured slack.
func (nw *Network) ilDeviatesTooMuch(h *Node, il geom.Point) bool {
	limit := 2*nw.cfg.HeadSpacing() - nw.cfg.AbandonSlack
	for _, nid := range h.Neighbors {
		nh := nw.node(nid)
		if nh == nil || !nw.Alive(nid) || !nh.Status.IsHeadRole() {
			continue
		}
		d := il.Dist(nh.IL)
		if d <= 0 || d >= limit {
			return true
		}
	}
	return false
}

// cellMembers returns the nodes eligible to serve cell h: its alive
// associates and any bootup node within the cell's coverage.
// The result aliases the network's scratch buffer (see filterQuery).
func (nw *Network) cellMembers(h *Node) []radio.NodeID {
	hid := h.ID
	return nw.filterQuery(h.OIL, nw.cfg.R+nw.cfg.Rt, hid, func(n *Node) bool {
		if n.IsBig || !nw.Alive(n.ID) || nw.med.InBlackout(n.ID) {
			return false
		}
		return (n.Status == StatusAssociate && n.Head == hid) || n.Status == StatusBootup
	})
}

// transferHeadRole moves the entire cell-head state from old to new:
// the paper's head_retreat + candidate election, or the handover after
// a cell shift. Parent, children, and neighbor links are re-pointed.
func (nw *Network) transferHeadRole(old, repl *Node) {
	nw.emit(trace.KindHeadShift, old.ID, repl.ID, old.IL)
	nw.setStatus(repl, StatusHead)
	repl.IL, repl.OIL, repl.Spiral = old.IL, old.OIL, old.Spiral
	repl.Parent, repl.ParentIL, repl.Hops = old.Parent, old.ParentIL, old.Hops
	repl.Children = nw.cloneIDs(old.Children)
	repl.Neighbors = nw.cloneIDs(old.Neighbors)
	repl.Head = radio.None
	repl.Candidate = false
	repl.Children = removeID(repl.Children, repl.ID)
	repl.Neighbors = removeID(repl.Neighbors, repl.ID)
	nw.touch(repl.ID)
	nw.touch(old.ID)

	nw.repointLinks(old.ID, repl.ID)

	if old.IsBig {
		// BIG_SLIDE: the big node cedes headship but stays special; it
		// reclaims the role when the cell's IL returns to it.
		nw.setStatus(old, StatusBigSlide)
		old.Head = repl.ID
		nw.resetHeadState(old)
	} else {
		nw.becomeAssociate(old, repl.ID)
		old.Candidate = nw.Position(old.ID).Dist(repl.IL) <= nw.cfg.Rt
	}
	nw.setStatus(repl, StatusWork)
}

// repointLinks rewrites parent/children/neighbor references from old to
// repl on the surrounding heads and re-homes the old head's associates.
func (nw *Network) repointLinks(old, repl radio.NodeID) {
	for _, id := range nw.SortedIDs() {
		n := nw.node(id)
		if n == nil || id == old || id == repl {
			continue
		}
		changed := false
		if n.Parent == old {
			n.Parent = repl
			if rn := nw.node(repl); rn != nil {
				n.ParentIL = rn.IL
			}
			changed = true
		}
		if containsID(n.Children, old) {
			n.removeChild(old)
			n.Children = nw.addUniqueID(n.Children, repl)
			changed = true
		}
		if containsID(n.Neighbors, old) {
			n.removeNeighbor(old)
			n.Neighbors = nw.addUniqueID(n.Neighbors, repl)
			changed = true
		}
		if n.Status == StatusAssociate && n.Head == old {
			n.Head = repl
			changed = true
		}
		if cd := nw.coldOf(id); cd.Proxy == old {
			cd.Proxy = repl
			changed = true
		}
		if changed {
			nw.touch(id)
		}
	}
}

// AbandonCell implements cell abandonment: every node of the cell
// (including the head) transits to bootup and re-joins a neighboring
// cell on its next sweep.
func (nw *Network) AbandonCell(id radio.NodeID) {
	h := nw.node(id)
	if h == nil || !h.Status.IsHeadRole() {
		return
	}
	nw.metrics.Abandonments++
	nw.emit(trace.KindAbandon, id, radio.None, h.IL)
	for _, aid := range nw.Associates(id) {
		nw.becomeBootup(nw.node(aid))
		nw.touch(aid)
	}
	if h.IsBig {
		nw.setStatus(h, StatusBigSlide)
		nw.resetHeadState(h)
		nw.touch(id)
		return
	}
	nw.becomeBootup(h)
	nw.touch(id)
}

// associateIntraCell is the maintenance sweep of an associate (and of a
// candidate, which is an associate within Rt of the cell's IL): detect
// head failure and heal it by head shift (candidates) or by re-joining
// (non-candidates); otherwise keep the best head.
func (nw *Network) associateIntraCell(n *Node) {
	head := nw.node(n.Head)
	headOK := head != nil && nw.Alive(n.Head) && (head.Status.IsHeadRole() || head.IsBig) &&
		!nw.med.InBlackout(n.Head) &&
		nw.med.Dist(n.ID, n.Head) <= nw.cfg.SearchRadius()

	if headOK && head.Status.IsHeadRole() {
		// Heartbeat succeeded: re-evaluate candidacy and head choice.
		// Writes are guarded on change so a settled cell stays
		// epoch-quiet sweep after sweep.
		cand := nw.Position(n.ID).Dist(head.IL) <= nw.cfg.Rt
		if cand {
			if !n.Candidate || n.CellIL != head.IL || n.CellOIL != head.OIL || n.CellSpiral != head.Spiral {
				n.Candidate = true
				n.CellIL, n.CellOIL, n.CellSpiral = head.IL, head.OIL, head.Spiral
				nw.touch(n.ID)
			}
		} else if n.Candidate {
			n.Candidate = false
			nw.touch(n.ID)
		}
		nw.ChooseHead(n.ID) // switch if a better head appeared
		return
	}

	// Head failed (or left the head role without telling us).
	if n.Candidate {
		nw.electFromCandidates(n)
		return
	}
	nw.becomeBootup(n)
	nw.touch(n.ID)
	nw.ChooseHead(n.ID)
}

// electFromCandidates implements the candidate coordination after a
// head failure: the candidates of the dead head's cell (identified by
// the cell IL each candidate carries) elect the highest-ranked one as
// the new head, which inherits the cell state the candidates replicate.
func (nw *Network) electFromCandidates(detector *Node) {
	deadHead := detector.Head
	il := detector.CellIL
	candidates := nw.filterQuery(il, nw.cfg.Rt, radio.None, func(c *Node) bool {
		return nw.Alive(c.ID) && c.Status == StatusAssociate && c.Head == deadHead &&
			!nw.med.InBlackout(c.ID)
	})
	best, ok := BestCandidate(il, nw.cfg.GR, candidates, nw.Position)
	if !ok {
		nw.becomeBootup(detector)
		nw.touch(detector.ID)
		nw.ChooseHead(detector.ID)
		return
	}
	repl := nw.node(best)
	nw.setStatus(repl, StatusWork)
	repl.IL, repl.OIL, repl.Spiral = detector.CellIL, detector.CellOIL, detector.CellSpiral
	repl.Parent = radio.None // re-acquired by inter-cell maintenance
	repl.Hops = unknownHops
	repl.Head = radio.None
	repl.Candidate = false
	nw.touch(best)
	nw.metrics.Promotions++
	nw.metrics.HeadShifts++
	nw.emit(trace.KindPromotion, best, deadHead, repl.IL)
	// Remaining members re-attach; the dead head's ID is dangling state
	// that each member clears on its own sweep, but re-pointing the
	// obvious ones now models the election broadcast within the cell.
	nw.repointLinks(deadHead, best)
	// Under sustained faults, promotions happen continuously and each
	// parentless window would keep the convergence watchdog from ever
	// seeing a clean sweep; the election announcement doubles as the
	// neighbor discovery, so the new head seeks its parent right away.
	if nw.faults.Active() {
		pos := nw.Position(best)
		repl.Neighbors = repl.Neighbors[:0]
		for _, nid := range nw.reachableHeadsAt(pos, nw.cfg.SearchRadius()) {
			if nid != best {
				repl.Neighbors = nw.appendID(repl.Neighbors, nid)
			}
		}
		nw.ParentSeek(best)
	}
}

// unknownHops marks a hop count that must be re-learned from neighbors.
const unknownHops = 1 << 20

// ---- Inter-cell maintenance (HEAD_INTER_CELL) ----

// headInterCell executes inter-cell maintenance at head h: refresh the
// neighbor-head set, maintain the min-distance parent (fixpoint F₁.₂),
// repair failed children by re-organizing, and rescan the boundary for
// newly appeared nodes.
func (nw *Network) headInterCell(h *Node) {
	cfg := nw.cfg

	// head_inter_alive: the neighbor set is re-derived from the medium
	// every sweep, which makes it self-stabilizing by construction. The
	// query result aliases the network scratch buffer, so it is copied
	// into the node's own (capacity-reused) Neighbors slice — but only
	// when it actually differs, to keep a steady state epoch-quiet.
	pos := nw.Position(h.ID)
	neighbors := nw.reachableHeadsAt(pos, cfg.SearchRadius())
	same := true
	j := 0
	for _, id := range neighbors {
		if id == h.ID {
			continue
		}
		if j >= len(h.Neighbors) || h.Neighbors[j] != id {
			same = false
			break
		}
		j++
	}
	if !same || j != len(h.Neighbors) {
		h.Neighbors = h.Neighbors[:0]
		for _, id := range neighbors {
			if id != h.ID {
				h.Neighbors = nw.appendID(h.Neighbors, id)
			}
		}
		nw.touch(h.ID)
	}

	// Children list hygiene: drop entries that are no longer heads.
	// Backward iteration keeps the in-place removal safe (removeID
	// shifts the tail left, which only re-visits already-kept entries).
	lostChild := false
	for i := len(h.Children) - 1; i >= 0; i-- {
		c := h.Children[i]
		cn := nw.node(c)
		if cn == nil || !nw.Alive(c) || !cn.Status.IsHeadRole() {
			h.removeChild(c)
			lostChild = true
		}
	}
	if lostChild {
		nw.touch(h.ID)
	}

	nw.ParentSeek(h.ID)

	// A lost child's cell gets one heartbeat of grace for its own
	// intra-cell maintenance (head shift) before the parent repairs it
	// with HEAD_ORG — the paper's priority order. The periodic boundary
	// rescan runs unconditionally.
	hc := nw.coldOf(h.ID)
	repairDue := hc.pendingChildRepair
	hc.pendingChildRepair = lostChild
	if repairDue || hc.sweep%uint32(cfg.BoundaryRescanEvery) == 0 {
		hc.pendingChildRepair = false
		nw.RescanAround(h.ID)
	}
}

// ParentSeek maintains h's parent as the neighboring head closest (in
// head-graph hops) to the big node, the distributed Bellman–Ford step
// that realizes fixpoint F₁.₂. The big node and the current proxy are
// the distance-0 roots.
func (nw *Network) ParentSeek(id radio.NodeID) {
	h := nw.node(id)
	if h == nil || !h.Status.IsHeadRole() {
		return
	}
	if nw.isRootHead(h) {
		if h.Hops != 0 || h.Parent != id || h.ParentIL != h.IL {
			h.Hops = 0
			h.Parent = id
			h.ParentIL = h.IL
			nw.touch(id)
		}
		return
	}
	nw.metrics.ParentSeeks++

	bestParent := radio.None
	bestHops := int32(unknownHops)
	bestDist := math.Inf(1)
	for _, nid := range h.Neighbors {
		nh := nw.node(nid)
		if nh == nil || !nw.Reachable(nid) || !nh.Status.IsHeadRole() {
			continue
		}
		d := nw.med.Dist(id, nid)
		if nh.Hops < bestHops || (nh.Hops == bestHops && d < bestDist) {
			bestParent, bestHops, bestDist = nid, nh.Hops, d
		}
	}
	if bestParent == radio.None {
		// Disconnected from every head: hold state; a later sweep or a
		// neighbor's rescan will reconnect us.
		if h.Hops != unknownHops {
			h.Hops = unknownHops
			nw.touch(id)
		}
		return
	}
	// Paper rule: switch only when a neighbor is strictly closer to the
	// big node than the current parent. A live current parent at the
	// same hop distance is kept — this stickiness is what contains the
	// impact of a big-node move to the √3·d/2 region of Theorem 11.
	if cp := nw.node(h.Parent); h.Parent != radio.None && cp != nil &&
		nw.Reachable(h.Parent) && cp.Status.IsHeadRole() &&
		containsID(h.Neighbors, h.Parent) && cp.Hops <= bestHops {
		if h.ParentIL != cp.IL || h.Hops != cp.Hops+1 {
			h.ParentIL = cp.IL
			h.Hops = cp.Hops + 1
			nw.touch(id)
		}
		return
	}
	old := h.Parent
	h.Parent = bestParent
	h.ParentIL = nw.node(bestParent).IL
	h.Hops = bestHops + 1
	nw.touch(id)
	if old != bestParent {
		if on := nw.node(old); on != nil {
			on.removeChild(id)
			nw.touch(old)
		}
		nw.node(bestParent).Children = nw.addUniqueID(nw.node(bestParent).Children, id)
		nw.touch(bestParent)
		nw.emit(trace.KindParentChange, id, bestParent, h.IL)
	}
}

// isRootHead reports whether h anchors the head graph: the big node
// acting as head, the proxy of a moving big node, or — during a
// BIG_SLIDE — the head of the cell the big node is a member of.
// Without the slide clause the head graph has no distance-0 root while
// the big node's cell IL is away, and ParentSeek counts to infinity.
func (nw *Network) isRootHead(h *Node) bool {
	if h.IsBig {
		return true
	}
	big := nw.node(nw.bigID)
	if big == nil {
		return false
	}
	if big.Status == StatusBigMove && nw.coldOf(nw.bigID).Proxy == h.ID {
		return true
	}
	if big.Status == StatusBigSlide && big.Head == h.ID {
		return true
	}
	return false
}

// RescanAround runs HEAD_ORG at head id over the full circle of six
// neighboring ILs: the boundary-rescan and child-repair duty of
// HEAD_INTER_CELL. Unowned ILs with a non-empty candidate area get a
// head; newly appeared bootup nodes in range re-choose heads.
func (nw *Network) RescanAround(id radio.NodeID) {
	h := nw.node(id)
	if h == nil || !nw.Alive(id) || !h.Status.IsHeadRole() {
		return
	}
	nw.metrics.HeadOrgs++
	nw.emit(trace.KindHeadOrg, id, radio.None, h.IL)
	cfg := nw.cfg
	receivers, _ := nw.med.Broadcast(id, cfg.SearchRadius()+cfg.Rt)

	// The small-node scratch is owned by this frame for the duration:
	// nothing RescanAround calls synchronously re-enters it.
	smallNodes := nw.smallBuf[:0]
	nw.smallBuf = nil
	for _, rid := range receivers {
		rn := nw.node(rid)
		if rn == nil || !nw.Alive(rid) {
			continue
		}
		nw.metrics.ReplyMessages++
		if rn.Status == StatusBootup || rn.Status == StatusAssociate {
			smallNodes = append(smallNodes, rid)
		}
	}

	for _, il := range nw.sixILs(h) {
		if owner, ok := nw.ilOwner(il); ok {
			nw.linkNeighbors(id, owner)
			continue
		}
		if nw.ilConflicts(il) {
			continue
		}
		ca := nw.caOf(il, smallNodes)
		best, ok := BestCandidate(il, cfg.GR, ca, nw.Position)
		if !ok {
			continue
		}
		nw.promoteToHead(best, il, h, h.Hops+1)
		nw.linkNeighbors(id, best)
		if !containsID(h.Children, best) {
			h.Children = nw.appendID(h.Children, best)
			nw.touch(id)
		}
		nw.scheduleHeadOrg(best, nw.orgLatency())
	}

	nw.med.Broadcast(id, cfg.SearchRadius()+cfg.Rt)
	for _, rid := range smallNodes {
		if nw.Alive(rid) && !nw.node(rid).Status.IsHeadRole() {
			nw.ChooseHead(rid)
		}
	}
	nw.smallBuf = smallNodes
}

// sixILs returns the six neighboring-cell ILs around h's cell, oriented
// by the direction from the parent's IL (or GR at the root) — the full
// local view of the cell lattice.
func (nw *Network) sixILs(h *Node) []geom.Point {
	base := nw.cfg.GR
	if ref := h.IL.Sub(h.ParentIL); ref.Len() > 0 {
		base = ref.Angle()
	}
	out := nw.ilBuf[:6]
	for j := 0; j < 6; j++ {
		out[j] = h.IL.Add(geom.UnitAt(base + float64(j)*math.Pi/3).Scale(nw.cfg.HeadSpacing()))
	}
	return out
}

// ---- Sanity checking (SANITY_CHECK) ----

// SanityCheck verifies head id's state against the hexagonal invariant
// and retreats (head_retreat_corrupted) when the state is found corrupt
// while every neighboring head attests a valid state. If some neighbor
// is invalid too, the node cannot decide and re-checks next period
// (exactly the paper's rule). It returns true when the state was found
// valid.
//
// Validity is a head's *self* consistency with the structure it claims
// membership of: it sits within Rt of its IL, and its IL lies on its
// parent's cell lattice (distance exactly √3·R when both cells are in
// the same ⟨ICC, ICP⟩ shift state, and within the DI bound otherwise).
// A corrupted node fails its own check while leaving its neighbors'
// checks intact, so a lone corruption is always decided; contiguous
// corrupted regions are peeled from their boundary inward, giving the
// O(D_c) stabilization of Theorem 7.
func (nw *Network) SanityCheck(id radio.NodeID) bool {
	h := nw.node(id)
	if h == nil || !nw.Alive(id) || !h.Status.IsHeadRole() {
		return true
	}
	// Self-evident corruption — my own position versus my own claimed
	// IL — needs no attestation: retreat immediately.
	if nw.headSelfEvidentCorrupt(h) {
		nw.sanityRetreat(h)
		return false
	}
	if nw.headRelationalValid(h) {
		return true
	}
	// Relational violation: either I am corrupt or a neighbor is.
	// sanity_check_req: retreat only if every neighbor attests a fully
	// valid state; otherwise wait and re-check next period.
	for _, nid := range h.Neighbors {
		nh := nw.node(nid)
		// A blacked-out neighbor cannot answer the attestation request;
		// it simply does not vote, like a dead one.
		if nh == nil || !nw.Reachable(nid) || !nh.Status.IsHeadRole() {
			continue
		}
		if !nw.headStateValid(nh) {
			return false
		}
	}
	nw.sanityRetreat(h)
	return false
}

// sanityRetreat implements head_retreat_corrupted: the head and every
// member of its cell transit to bootup and re-join fresh, so corrupted
// cell state (a displaced IL replicated into the candidates) cannot
// re-elect itself.
func (nw *Network) sanityRetreat(h *Node) {
	nw.metrics.SanityRetreats++
	nw.emit(trace.KindSanityRetreat, h.ID, radio.None, h.IL)
	id := h.ID
	for _, aid := range nw.Associates(id) {
		nw.becomeBootup(nw.node(aid))
		nw.touch(aid)
	}
	nw.becomeBootup(h)
	nw.touch(id)
	nw.ChooseHead(id)
}

// ilLatticeTol is the tolerance for "exactly √3R" IL distances; ILs are
// derived by exact lattice arithmetic, so only float error accumulates.
func (nw *Network) ilLatticeTol() float64 {
	return 1e-6 * nw.cfg.R
}

// headSelfEvidentCorrupt holds when a head's state contradicts facts it
// can observe alone: it is farther than Rt from the IL it claims to
// serve, or it is a non-root head with no parent.
func (nw *Network) headSelfEvidentCorrupt(h *Node) bool {
	if nw.Position(h.ID).Dist(h.IL) > nw.cfg.Rt {
		return true
	}
	return !nw.isRootHead(h) && h.Parent == radio.None
}

// headRelationalValid checks the hexagonal relation between h's IL and
// its live parent's IL: exactly √3·R when both cells share a ⟨ICC,ICP⟩
// shift state, within the DI bound (0, 2√3·R) otherwise. A parent in
// transition cannot invalidate the child.
func (nw *Network) headRelationalValid(h *Node) bool {
	if nw.isRootHead(h) {
		return true
	}
	p := nw.node(h.Parent)
	if p == nil || !nw.Alive(h.Parent) || !p.Status.IsHeadRole() {
		return true
	}
	d := h.IL.Dist(p.IL)
	if p.Spiral == h.Spiral {
		return math.Abs(d-nw.cfg.HeadSpacing()) <= nw.ilLatticeTol()
	}
	return d > 0 && d < 2*nw.cfg.HeadSpacing()
}

// headStateValid is the full validity predicate used when attesting to
// a neighbor's sanity_check_req.
func (nw *Network) headStateValid(h *Node) bool {
	return !nw.headSelfEvidentCorrupt(h) && nw.headRelationalValid(h)
}

// ---- Node join (SMALL_NODE_BOOT_UP) ----

// Join adds a new small node at p to a running network and lets it find
// a head (or stay bootup and retry on its sweeps). It returns the new
// node's ID.
func (nw *Network) Join(p geom.Point) radio.NodeID {
	id, _ := nw.AddNode(p, false)
	nw.metrics.Joins++
	nw.emit(trace.KindJoin, id, radio.None, p)
	nw.ChooseHead(id)
	if nw.maintaining {
		nw.scheduleSweep(id, nw.cfg.HeartbeatInterval*float64(int(id)%17)/17)
	}
	return id
}
