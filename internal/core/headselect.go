package core

import (
	"math"
	"slices"

	"gs3/internal/geom"
	"gs3/internal/radio"
)

// NeighborILs computes the ideal locations of the neighboring cells in a
// head's search region (HEAD_SELECT Step 1, paper Figure 3).
//
// The reference direction RD′ is IL(P(i)) → IL(i); candidate ILs are the
// points √3·R from IL(i) at angles j·60° from RD′. The big node (its own
// parent, search region ⟨0°, 360°⟩) gets all six directions starting at
// GR; every other head gets the three forward directions j ∈ {−1, 0, 1}
// (search region ⟨−60°−a, 60°+a⟩).
func NeighborILs(cfg Config, il, parentIL geom.Point, isRoot bool) []geom.Point {
	return neighborILsAppend(nil, cfg, il, parentIL, isRoot)
}

// neighborILsAppend is NeighborILs into a caller-provided buffer (at
// most six entries are appended), so the configure hot path computes
// the ILs without allocating.
func neighborILsAppend(dst []geom.Point, cfg Config, il, parentIL geom.Point, isRoot bool) []geom.Point {
	spacing := cfg.HeadSpacing()
	if isRoot {
		for j := 0; j < 6; j++ {
			dst = append(dst, il.Add(geom.UnitAt(cfg.GR+float64(j)*math.Pi/3).Scale(spacing)))
		}
		return dst
	}
	ref := il.Sub(parentIL)
	if ref.Len() == 0 {
		// Degenerate (corrupted) parent pointer: fall back to GR so the
		// action stays total; sanity checking will repair the state.
		ref = geom.UnitAt(cfg.GR)
	}
	base := ref.Angle()
	for j := -1.0; j <= 1.0; j++ {
		dst = append(dst, il.Add(geom.UnitAt(base+j*math.Pi/3).Scale(spacing)))
	}
	return dst
}

// SearchSector returns the angular search region of a head for
// organizing (HEAD_ORG's ⟨LD, RD⟩): the full circle for the big node,
// ⟨−60°−a, 60°+a⟩ around IL(P(i))→IL(i) otherwise, with radius
// √3·R + 2·Rt.
func SearchSector(cfg Config, il, parentIL geom.Point, isRoot bool) geom.Sector {
	if isRoot {
		return geom.Sector{Apex: il, Ref: geom.UnitAt(cfg.GR), Lo: -math.Pi, Hi: math.Pi, Radius: cfg.SearchRadius()}
	}
	ref := il.Sub(parentIL)
	if ref.Len() == 0 {
		ref = geom.UnitAt(cfg.GR)
	}
	a := cfg.Alpha()
	return geom.Sector{
		Apex:   il,
		Ref:    ref,
		Lo:     -math.Pi/3 - a,
		Hi:     math.Pi/3 + a,
		Radius: cfg.SearchRadius(),
	}
}

// Ranked is a node together with its HEAD_SELECT ranking key.
type Ranked struct {
	ID   radio.NodeID
	D    float64 // distance to the ideal location (highest significance)
	AbsA float64 // |A|: magnitude of the angle from GR to IL→node
	A    float64 // signed angle (clockwise negative)
}

// rankKeyLess implements the paper's lexicographic order ⟨d, |A|, A⟩,
// with node ID as a final deterministic tie-break (two nodes at the
// exact same position are not distinguishable geometrically).
func rankKeyLess(a, b Ranked) bool {
	return rankKeyCmp(a, b) < 0
}

// rankKeyCmp is rankKeyLess as a three-way comparison for slices.SortFunc.
// The key is total (ID breaks every tie), so the sort is deterministic.
func rankKeyCmp(a, b Ranked) int {
	switch {
	case a.D != b.D:
		return cmpFloat(a.D, b.D)
	case a.AbsA != b.AbsA:
		return cmpFloat(a.AbsA, b.AbsA)
	case a.A != b.A:
		return cmpFloat(a.A, b.A)
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	if a < b {
		return -1
	}
	return 1
}

// RankCandidates orders the nodes in CA(il) — candidates for heading the
// cell whose ideal location is il — by the paper's ⟨d, |A|, A⟩ key
// (HEAD_SELECT Step 4). pos maps candidate IDs to their positions; gr is
// the global reference direction.
func RankCandidates(il geom.Point, gr float64, ids []radio.NodeID, pos func(radio.NodeID) geom.Point) []Ranked {
	ref := geom.UnitAt(gr)
	out := make([]Ranked, 0, len(ids))
	for _, id := range ids {
		out = append(out, rankOf(il, ref, id, pos(id)))
	}
	slices.SortFunc(out, rankKeyCmp)
	return out
}

// rankOf computes one node's ⟨d, |A|, A⟩ ranking key.
func rankOf(il geom.Point, ref geom.Vec, id radio.NodeID, p geom.Point) Ranked {
	v := p.Sub(il)
	a := 0.0
	if v.Len() > 0 {
		a = geom.SignedAngle(ref, v)
	}
	return Ranked{ID: id, D: il.Dist(p), AbsA: math.Abs(a), A: a}
}

// BestCandidate returns the highest-ranked node of CA(il), or
// (radio.None, false) if ids is empty. The ranking key is a total order
// (ID breaks every tie), so a single min-scan finds exactly the node a
// full RankCandidates sort would put first — without allocating or
// sorting, which matters because this runs inside every HEAD_SELECT,
// ChooseHead, and candidate election.
func BestCandidate(il geom.Point, gr float64, ids []radio.NodeID, pos func(radio.NodeID) geom.Point) (radio.NodeID, bool) {
	if len(ids) == 0 {
		return radio.None, false
	}
	ref := geom.UnitAt(gr)
	best := rankOf(il, ref, ids[0], pos(ids[0]))
	for _, id := range ids[1:] {
		if r := rankOf(il, ref, id, pos(id)); rankKeyCmp(r, best) < 0 {
			best = r
		}
	}
	return best.ID, true
}
