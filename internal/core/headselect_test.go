package core

import (
	"math"
	"testing"

	"gs3/internal/geom"
	"gs3/internal/radio"
)

func testConfig() Config {
	return DefaultConfig(100) // R=100, Rt=25
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(*Config) {}, true},
		{"zero R", func(c *Config) { c.R = 0 }, false},
		{"zero Rt", func(c *Config) { c.Rt = 0 }, false},
		{"Rt > R", func(c *Config) { c.Rt = c.R * 2 }, false},
		{"zero heartbeat", func(c *Config) { c.HeartbeatInterval = 0 }, false},
		{"zero rescan", func(c *Config) { c.BoundaryRescanEvery = 0 }, false},
		{"negative energy", func(c *Config) { c.InitialEnergy = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := testConfig()
	if math.Abs(cfg.HeadSpacing()-100*math.Sqrt(3)) > 1e-9 {
		t.Errorf("HeadSpacing = %v", cfg.HeadSpacing())
	}
	if math.Abs(cfg.SearchRadius()-(100*math.Sqrt(3)+50)) > 1e-9 {
		t.Errorf("SearchRadius = %v", cfg.SearchRadius())
	}
	wantAlpha := math.Asin(25 / (100 * math.Sqrt(3)))
	if math.Abs(cfg.Alpha()-wantAlpha) > 1e-12 {
		t.Errorf("Alpha = %v, want %v", cfg.Alpha(), wantAlpha)
	}
	if math.Abs(cfg.CellRadiusBound()-(100+50/math.Sqrt(3))) > 1e-9 {
		t.Errorf("CellRadiusBound = %v", cfg.CellRadiusBound())
	}
	if cfg.NeighborDistMin() >= cfg.NeighborDistMax() {
		t.Error("neighbor distance bounds inverted")
	}
}

func TestNeighborILsRoot(t *testing.T) {
	cfg := testConfig()
	il := geom.Point{X: 10, Y: 20}
	ils := NeighborILs(cfg, il, il, true)
	if len(ils) != 6 {
		t.Fatalf("root has %d neighbor ILs, want 6", len(ils))
	}
	for i, p := range ils {
		d := p.Dist(il)
		if math.Abs(d-cfg.HeadSpacing()) > 1e-9 {
			t.Errorf("IL %d at distance %v, want √3R", i, d)
		}
	}
	// First IL lies in the GR direction.
	want := il.Add(geom.UnitAt(cfg.GR).Scale(cfg.HeadSpacing()))
	if ils[0].Dist(want) > 1e-9 {
		t.Errorf("first IL = %v, want %v", ils[0], want)
	}
	// Consecutive ILs are 60° apart, i.e. √3R from each other too.
	for i := 0; i < 6; i++ {
		d := ils[i].Dist(ils[(i+1)%6])
		if math.Abs(d-cfg.HeadSpacing()) > 1e-9 {
			t.Errorf("consecutive ILs %d,%d at distance %v", i, i+1, d)
		}
	}
}

func TestNeighborILsSmallHead(t *testing.T) {
	cfg := testConfig()
	parentIL := geom.Point{}
	il := parentIL.Add(geom.UnitAt(cfg.GR).Scale(cfg.HeadSpacing()))
	ils := NeighborILs(cfg, il, parentIL, false)
	if len(ils) != 3 {
		t.Fatalf("small head has %d neighbor ILs, want 3", len(ils))
	}
	outward := il.Sub(parentIL)
	for i, p := range ils {
		if math.Abs(p.Dist(il)-cfg.HeadSpacing()) > 1e-9 {
			t.Errorf("IL %d distance wrong", i)
		}
		// Forward ILs are within ±60° of the outward direction.
		a := geom.SignedAngle(outward, p.Sub(il))
		if math.Abs(a) > math.Pi/3+1e-9 {
			t.Errorf("IL %d at angle %v beyond ±60°", i, geom.ToDegrees(a))
		}
		// None of the forward ILs is the parent's IL.
		if p.Dist(parentIL) < 1e-9 {
			t.Errorf("IL %d is the parent's IL", i)
		}
	}
}

func TestNeighborILsLieOnLattice(t *testing.T) {
	// The ILs a child computes must coincide with lattice points of the
	// ideal structure anchored at the root: deviation must not
	// accumulate (paper §3.2).
	cfg := testConfig()
	root := geom.Point{}
	rootILs := NeighborILs(cfg, root, root, true)
	child := rootILs[2]
	grand := NeighborILs(cfg, child, root, false)
	// Every grandchild IL must be √3R from child and either √3R or 2·...
	// from root — i.e. a lattice point. Check against the root's own
	// 2-ring lattice by distance tests.
	for _, p := range grand {
		dRoot := p.Dist(root)
		ok := false
		for _, want := range []float64{cfg.HeadSpacing(), cfg.HeadSpacing() * math.Sqrt(3), 2 * cfg.HeadSpacing()} {
			if math.Abs(dRoot-want) < 1e-6 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("grandchild IL %v at non-lattice distance %v from root", p, dRoot)
		}
	}
}

func TestNeighborILsDegenerateParent(t *testing.T) {
	cfg := testConfig()
	il := geom.Point{X: 5, Y: 5}
	// Corrupted state: parent IL equals own IL. Must not panic and must
	// still return 3 well-formed ILs.
	ils := NeighborILs(cfg, il, il, false)
	if len(ils) != 3 {
		t.Fatalf("got %d ILs", len(ils))
	}
	for _, p := range ils {
		if math.Abs(p.Dist(il)-cfg.HeadSpacing()) > 1e-9 {
			t.Error("degenerate case produced malformed IL")
		}
	}
}

func TestSearchSectorRoot(t *testing.T) {
	cfg := testConfig()
	s := SearchSector(cfg, geom.Point{}, geom.Point{}, true)
	// Full circle: contains points in every direction within radius.
	for _, theta := range []float64{0, 1, 2, 3, -1, -2} {
		p := geom.Point{}.Add(geom.UnitAt(theta).Scale(cfg.SearchRadius() * 0.9))
		if !s.Contains(p) {
			t.Errorf("root sector missing direction %v", theta)
		}
	}
}

func TestSearchSectorSmallHead(t *testing.T) {
	cfg := testConfig()
	parentIL := geom.Point{}
	il := geom.Point{X: cfg.HeadSpacing(), Y: 0}
	s := SearchSector(cfg, il, parentIL, false)

	forward := il.Add(geom.UnitAt(0).Scale(cfg.R))
	if !s.Contains(forward) {
		t.Error("sector must contain the forward direction")
	}
	if s.Contains(parentIL) {
		t.Error("sector must not contain the parent's IL")
	}
	// The widened edge: a node at 60°+α/2 must be inside.
	edge := il.Add(geom.UnitAt(math.Pi/3 + cfg.Alpha()/2).Scale(cfg.R))
	if !s.Contains(edge) {
		t.Error("sector must include the ±α widening")
	}
	beyond := il.Add(geom.UnitAt(math.Pi/3 + 2*cfg.Alpha()).Scale(cfg.R))
	if s.Contains(beyond) {
		t.Error("sector too wide")
	}
}

func TestRankCandidatesOrder(t *testing.T) {
	il := geom.Point{}
	pos := map[radio.NodeID]geom.Point{
		1: {X: 10, Y: 0}, // d=10, A=0
		2: {X: 5, Y: 0},  // d=5, A=0 — closest wins
		3: {X: 0, Y: 5},  // d=5, A=+90°
		4: {X: 0, Y: -5}, // d=5, A=−90°
		5: {X: -5, Y: 0}, // d=5, A=180°
	}
	ranked := RankCandidates(il, 0, []radio.NodeID{1, 2, 3, 4, 5}, func(id radio.NodeID) geom.Point { return pos[id] })
	// d has highest significance: 2,3,4 (d=5) before 1 (d=10).
	// At equal d and equal |A|, negative (clockwise) A ranks first.
	wantOrder := []radio.NodeID{2, 4, 3, 5, 1}
	for i, w := range wantOrder {
		if ranked[i].ID != w {
			t.Fatalf("rank %d = %d, want %d (full: %+v)", i, ranked[i].ID, w, ranked)
		}
	}
}

func TestRankCandidatesTieBreakByID(t *testing.T) {
	il := geom.Point{}
	samePos := geom.Point{X: 3, Y: 4}
	pos := func(radio.NodeID) geom.Point { return samePos }
	ranked := RankCandidates(il, 0, []radio.NodeID{9, 2, 5}, pos)
	if ranked[0].ID != 2 || ranked[1].ID != 5 || ranked[2].ID != 9 {
		t.Errorf("tie-break order: %+v", ranked)
	}
}

func TestBestCandidateEmpty(t *testing.T) {
	if id, ok := BestCandidate(geom.Point{}, 0, nil, func(radio.NodeID) geom.Point { return geom.Point{} }); ok || id != radio.None {
		t.Errorf("empty candidates = (%d,%v)", id, ok)
	}
}

func TestBestCandidateAtIL(t *testing.T) {
	// A node exactly on the IL beats everything.
	pos := map[radio.NodeID]geom.Point{1: {X: 1, Y: 1}, 2: {}}
	id, ok := BestCandidate(geom.Point{}, 0, []radio.NodeID{1, 2}, func(id radio.NodeID) geom.Point { return pos[id] })
	if !ok || id != 2 {
		t.Errorf("best = %d", id)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusBootup: "bootup", StatusHead: "head", StatusWork: "work",
		StatusAssociate: "associate", StatusBigSlide: "big_slide",
		StatusBigMove: "big_move", StatusDead: "dead",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Status(0).String() != "invalid" {
		t.Error("zero status should be invalid")
	}
}

func TestStatusIsHeadRole(t *testing.T) {
	if !StatusHead.IsHeadRole() || !StatusWork.IsHeadRole() {
		t.Error("head/work must be head roles")
	}
	for _, s := range []Status{StatusBootup, StatusAssociate, StatusBigSlide, StatusBigMove, StatusDead} {
		if s.IsHeadRole() {
			t.Errorf("%v must not be a head role", s)
		}
	}
}

func TestVariantString(t *testing.T) {
	if VariantS.String() != "GS3-S" || VariantD.String() != "GS3-D" || VariantM.String() != "GS3-M" {
		t.Error("variant names wrong")
	}
	if Variant(0).String() != "invalid" {
		t.Error("zero variant should be invalid")
	}
}

func TestRemoveAddContainsID(t *testing.T) {
	ids := []radio.NodeID{1, 2, 3}
	ids = removeID(ids, 2)
	if len(ids) != 2 || containsID(ids, 2) {
		t.Errorf("removeID: %v", ids)
	}
	ids = removeID(ids, 99) // absent: unchanged
	if len(ids) != 2 {
		t.Errorf("removeID absent: %v", ids)
	}
	var nw Network // zero value: arena off, plain appends
	ids = nw.addUniqueID(ids, 1)
	if len(ids) != 2 {
		t.Errorf("addUniqueID duplicate: %v", ids)
	}
	ids = nw.addUniqueID(ids, 7)
	if !containsID(ids, 7) {
		t.Errorf("addUniqueID: %v", ids)
	}
}
