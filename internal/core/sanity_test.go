package core

import (
	"testing"

	"gs3/internal/radio"
)

// relationalVictim picks a small head whose corruption will be purely
// relational: it sits close enough to its IL that a displacement of
// delta keeps the position within Rt (not self-evident), and no other
// head names it as parent, so displacing its IL leaves every neighbor's
// own validity intact and the attestation quorum can form.
func relationalVictim(t *testing.T, nw *Network, delta float64) NodeView {
	t.Helper()
	snap := nw.Snapshot()
	heads := snap.Heads()
outer:
	for _, h := range heads {
		if h.IsBig || h.Parent == radio.None || h.Parent == h.ID {
			continue
		}
		if h.Pos.Dist(h.IL)+delta >= nw.Config().Rt {
			continue // displacement would be self-evident
		}
		for _, o := range heads {
			if o.ID != h.ID && o.Parent == h.ID {
				continue outer // a child's validity would break too
			}
		}
		return h
	}
	t.Fatal("no childless head close to its IL")
	return NodeView{}
}

// A relationally corrupted head — IL off the parent lattice but still
// within Rt of its own position — must retreat exactly when every
// neighbor attests a valid state (the sanity_check_req quorum).
func TestSanityRetreatOnAttestationQuorum(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	victim := relationalVictim(t, nw, cfg.Rt/3)

	nw.Corrupt(victim.ID, CorruptIL, cfg.Rt/3)
	v := nw.Node(victim.ID)
	if nw.headSelfEvidentCorrupt(v) {
		t.Fatal("corruption is self-evident; test wants the attestation path")
	}
	if nw.headRelationalValid(v) {
		t.Fatal("corruption did not break the parent relation")
	}

	before := nw.Metrics().SanityRetreats
	if nw.SanityCheck(victim.ID) {
		t.Fatal("corrupted head passed its sanity check")
	}
	if nw.Metrics().SanityRetreats != before+1 {
		t.Errorf("retreats %d -> %d, want exactly one: all neighbors attested valid",
			before, nw.Metrics().SanityRetreats)
	}
	if nw.Node(victim.ID).Status.IsHeadRole() {
		t.Error("victim still holds the head role after retreating")
	}
}

// A correct head whose PARENT is corrupted sees the same relational
// violation but must NOT retreat: the attestation round finds the
// corrupt neighbor, the quorum fails, and the head waits for the next
// period (the corrupt node retreats on its own check instead).
func TestCorrectHeadHoldsUnderCorruptedNeighbor(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)

	// Find a small head whose parent is also a small head.
	var child NodeView
	found := false
	for _, h := range nw.Snapshot().Heads() {
		if h.IsBig || h.Parent == radio.None || h.Parent == h.ID {
			continue
		}
		if p := nw.Node(h.Parent); p != nil && !p.IsBig && p.Status.IsHeadRole() {
			child, found = h, true
			break
		}
	}
	if !found {
		t.Fatal("no small head with a small parent")
	}

	// Self-evident corruption at the parent: its IL jumps 3Rt away from
	// its position, so the child's relational check fails while the
	// parent fails its own attestation.
	nw.Corrupt(child.Parent, CorruptIL, 3*cfg.Rt)
	if nw.headRelationalValid(nw.Node(child.ID)) {
		t.Fatal("parent corruption did not reach the child's relation")
	}

	before := nw.Metrics().SanityRetreats
	if nw.SanityCheck(child.ID) {
		t.Fatal("child reported valid state despite the broken relation")
	}
	if nw.Metrics().SanityRetreats != before {
		t.Error("correct head retreated although a neighbor could not attest")
	}
	if !nw.Node(child.ID).Status.IsHeadRole() {
		t.Error("correct head lost the head role")
	}

	// The corrupted parent, by contrast, decides alone and retreats.
	if nw.SanityCheck(child.Parent) {
		t.Error("self-evidently corrupt parent passed its sanity check")
	}
	if nw.Metrics().SanityRetreats != before+1 {
		t.Error("corrupt parent did not retreat on its own check")
	}
}
