package core

import (
	"testing"

	"gs3/internal/geom"
	"gs3/internal/radio"
)

// runSweeps advances the network by n heartbeat intervals of virtual
// time, letting the scheduled maintenance sweeps fire.
func runSweeps(nw *Network, n int) {
	deadline := nw.Engine().Now() + nw.cfg.HeartbeatInterval*float64(n)
	nw.Engine().RunUntil(deadline)
}

// configureDynamic builds a configured network with maintenance running.
func configureDynamic(t *testing.T, regionRadius float64) (*Network, Config) {
	t.Helper()
	nw, cfg := configureGridFresh(t, 100, regionRadius)
	nw.StartMaintenance(VariantD)
	return nw, cfg
}

// someSmallHead returns a non-big head at least margin inside the
// region boundary.
func someSmallHead(t *testing.T, nw *Network, regionRadius, margin float64) NodeView {
	t.Helper()
	for _, h := range nw.Snapshot().Heads() {
		if !h.IsBig && h.Pos.Dist(geom.Point{}) < regionRadius-margin {
			return h
		}
	}
	t.Fatal("no inner small head found")
	return NodeView{}
}

func TestHeadShiftMasksHeadDeath(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	victim := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	members := nw.Snapshot().Members(victim.ID)
	if len(members) == 0 {
		t.Fatal("victim has no associates")
	}

	nw.Kill(victim.ID)
	runSweeps(nw, 4)

	// A new head must exist near the victim's IL, and the cell's
	// members must be re-attached to it.
	snap := nw.Snapshot()
	var newHead radio.NodeID = radio.None
	for _, h := range snap.Heads() {
		if h.IL.Dist(victim.IL) < cfg.Rt && h.ID != victim.ID {
			newHead = h.ID
		}
	}
	if newHead == radio.None {
		t.Fatal("no replacement head near the dead head's IL")
	}
	if nw.Metrics().Promotions == 0 {
		t.Error("promotion not counted")
	}
	reattached := 0
	for _, m := range members {
		if v, ok := snap.View(m); ok && (v.Head == newHead || v.ID == newHead) {
			reattached++
		}
	}
	if reattached < len(members)/2 {
		t.Errorf("only %d/%d members re-attached", reattached, len(members))
	}
}

func TestHeadDeathPreservesStructureElsewhere(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	victim := someSmallHead(t, nw, 400, cfg.HeadSpacing())

	// Record heads far from the victim.
	before := map[radio.NodeID]geom.Point{}
	for _, h := range nw.Snapshot().Heads() {
		if h.Pos.Dist(victim.Pos) > cfg.SearchRadius() {
			before[h.ID] = h.IL
		}
	}

	nw.Kill(victim.ID)
	runSweeps(nw, 6)

	// Locality: distant cells are untouched (§4.3.5.1 item 2).
	snap := nw.Snapshot()
	for id, il := range before {
		v, ok := snap.View(id)
		if !ok || !v.IsHead() {
			t.Errorf("distant head %d lost its role", id)
			continue
		}
		if v.IL.Dist(il) > 1e-9 {
			t.Errorf("distant head %d IL moved", id)
		}
	}
}

func TestCellShiftWhenCandidatesDie(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	h := someSmallHead(t, nw, 400, cfg.HeadSpacing())

	// Kill every node within Rt of the IL except the head itself: the
	// candidate set is now empty, so the head's next intra-cell sweep
	// must shift the cell's IL to a populated candidate area.
	for _, id := range nw.Medium().WithinRange(h.IL, cfg.Rt, h.ID) {
		nw.Kill(id)
	}
	runSweeps(nw, 4)

	snap := nw.Snapshot()
	var shifted *NodeView
	for i := range snap.Nodes {
		v := snap.Nodes[i]
		if v.IsHead() && v.OIL.Dist(h.OIL) < cfg.Rt {
			shifted = &snap.Nodes[i]
		}
	}
	if shifted == nil {
		t.Fatal("cell did not survive by shifting")
	}
	if shifted.Spiral == h.Spiral {
		t.Errorf("cell did not shift: spiral still %+v", shifted.Spiral)
	}
	if shifted.IL.Dist(shifted.OIL) > cfg.R+1e-9 {
		t.Error("shifted IL left the cell coverage")
	}
	if nw.Metrics().CellShifts == 0 {
		t.Error("cell shift not counted")
	}
}

func TestHeadAndCandidateDiskDeathHealsViaNeighbors(t *testing.T) {
	// When the head AND the whole Rt-disk around the IL die at once,
	// the cell state is lost; the paper heals this like abandonment —
	// members join neighboring cells — and the area is re-covered later
	// by boundary rescans.
	nw, cfg := configureDynamic(t, 400)
	h := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	members := nw.Snapshot().Members(h.ID)
	for _, id := range nw.Medium().WithinRange(h.IL, cfg.Rt, radio.None) {
		nw.Kill(id)
	}
	nw.Kill(h.ID)
	runSweeps(nw, 3*cfg.BoundaryRescanEvery)

	snap := nw.Snapshot()
	for _, m := range members {
		v, ok := snap.View(m)
		if !ok {
			continue // killed above
		}
		if v.Status != StatusAssociate && !v.IsHead() {
			t.Errorf("orphaned member %d stuck at %v", m, v.Status)
		}
	}
}

func TestStrengthenCellAdvancesSpiral(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	h := someSmallHead(t, nw, 400, cfg.HeadSpacing())

	// Empty the candidate area around the current IL (but not the
	// head itself), then force a strengthen.
	for _, id := range nw.Medium().WithinRange(h.IL, cfg.Rt, h.ID) {
		nw.Kill(id)
	}
	nw.StrengthenCell(h.ID)

	hv := nw.Node(h.ID)
	// Either the head handed over to a node at the shifted IL (then the
	// cell state lives elsewhere), or it advanced its own spiral.
	snap := nw.Snapshot()
	found := false
	for _, v := range snap.Heads() {
		if v.OIL.Dist(h.OIL) < 1e-9 && v.Spiral != h.Spiral {
			found = true
			if v.IL.Dist(v.OIL) > cfg.R+1e-9 {
				t.Errorf("shifted IL left the cell coverage: %v", v.IL.Dist(v.OIL))
			}
		}
	}
	if !found {
		t.Errorf("spiral did not advance (head now %+v)", hv.Spiral)
	}
}

func TestAbandonCellWhenEmpty(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	h := someSmallHead(t, nw, 400, cfg.HeadSpacing())

	// Kill everything in the cell's coverage except the head: no IL can
	// be strengthened, so the cell must be abandoned.
	for _, id := range nw.Medium().WithinRange(h.OIL, cfg.R+cfg.Rt, h.ID) {
		if !nw.Node(id).IsBig {
			nw.Kill(id)
		}
	}
	nw.StrengthenCell(h.ID)

	if nw.Metrics().Abandonments == 0 {
		t.Fatal("cell not abandoned")
	}
	if nw.Node(h.ID).Status != StatusBootup {
		t.Errorf("abandoning head status = %v, want bootup", nw.Node(h.ID).Status)
	}

	// The former head either joins a neighboring cell or — being the
	// only node left in the area — is re-selected as the head of a
	// singleton cell by a neighbor's rescan (coverage requires it).
	runSweeps(nw, 4)
	if st := nw.Node(h.ID).Status; st != StatusAssociate && !st.IsHeadRole() {
		t.Errorf("abandoned head ended as %v", st)
	}
}

func TestJoinAttachesToBestHead(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	h := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	p := h.Pos.Add(geom.Vec{X: cfg.Rt / 2, Y: 0})
	id := nw.Join(p)
	v := nw.Node(id)
	if v.Status != StatusAssociate {
		t.Fatalf("joined node status = %v", v.Status)
	}
	// Must have chosen the closest head.
	chosen := nw.Medium().Dist(id, v.Head)
	for _, other := range nw.Snapshot().Heads() {
		if d := p.Dist(other.Pos); d < chosen-1e-9 {
			t.Errorf("closer head %d at %v exists (chose %v)", other.ID, d, chosen)
		}
	}
	if nw.Metrics().Joins != 1 {
		t.Error("join not counted")
	}
}

func TestJoinOutsideCoverageStaysBootup(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	id := nw.Join(geom.Point{X: 400 + 3*cfg.SearchRadius(), Y: 0})
	if nw.Node(id).Status != StatusBootup {
		t.Errorf("stranded join status = %v", nw.Node(id).Status)
	}
}

func TestBoundaryRescanAbsorbsNewPopulation(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	// Populate a fresh patch just outside the current coverage and let
	// the boundary heads discover it (HEAD_INTER_CELL duty vi).
	base := geom.Point{X: 400 + cfg.R, Y: 0}
	ids := make([]radio.NodeID, 0, 60)
	for i := 0; i < 60; i++ {
		dx := float64(i%8) * cfg.Rt * 0.6
		dy := float64(i/8) * cfg.Rt * 0.6
		ids = append(ids, nw.Join(base.Add(geom.Vec{X: dx, Y: dy})))
	}
	runSweeps(nw, 3*cfg.BoundaryRescanEvery)

	attached := 0
	for _, id := range ids {
		if st := nw.Node(id).Status; st == StatusAssociate || st.IsHeadRole() {
			attached++
		}
	}
	if attached < len(ids)*3/4 {
		t.Errorf("only %d/%d new nodes absorbed", attached, len(ids))
	}
}

func TestSanityCheckHealsCorruptedIL(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	victim := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	nw.Corrupt(victim.ID, CorruptIL, 3*cfg.Rt)
	runSweeps(nw, 3*cfg.SanityCheckEvery)

	if nw.Metrics().SanityRetreats == 0 {
		t.Fatal("sanity check never fired")
	}
	// The corrupt head must have retreated, and a replacement must
	// serve its old cell.
	v := nw.Node(victim.ID)
	if v.Status.IsHeadRole() && nw.Position(victim.ID).Dist(v.IL) > cfg.Rt {
		t.Errorf("victim still heads with corrupt IL")
	}
	found := false
	for _, h := range nw.Snapshot().Heads() {
		if h.IL.Dist(victim.OIL) <= cfg.Rt+1e-9 {
			found = true
		}
	}
	if !found {
		t.Error("no head serving the corrupted cell after healing")
	}
}

func TestSanityCheckValidHeadUntouched(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	h := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	if !nw.SanityCheck(h.ID) {
		t.Error("valid head failed sanity check")
	}
	if nw.Node(h.ID).Status != StatusWork {
		t.Error("valid head was demoted")
	}
	_ = cfg
}

func TestCorruptStatusHealed(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	// Pick an inner associate and corrupt it into a fake head.
	var victim radio.NodeID = radio.None
	for _, v := range nw.Snapshot().Nodes {
		if v.Status == StatusAssociate && v.Pos.Dist(geom.Point{}) < 400-2*cfg.HeadSpacing() {
			victim = v.ID
			break
		}
	}
	if victim == radio.None {
		t.Fatal("no inner associate")
	}
	nw.Corrupt(victim, CorruptStatus, 0)
	if !nw.Node(victim).Status.IsHeadRole() {
		t.Fatal("corruption did not take")
	}
	runSweeps(nw, 4*cfg.SanityCheckEvery)
	if nw.Node(victim).Status.IsHeadRole() {
		t.Error("fake head survived sanity checking")
	}
}

func TestCorruptHopsHealedByParentSeek(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	victim := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	nw.Corrupt(victim.ID, CorruptHops, 9999)
	runSweeps(nw, 6)
	if got := nw.Node(victim.ID).Hops; got >= 9999 {
		t.Errorf("hops still corrupt: %d", got)
	}
	_ = cfg
}

func TestParentSeekPicksMinHops(t *testing.T) {
	nw, _ := configureDynamic(t, 400)
	runSweeps(nw, 5)
	snap := nw.Snapshot()
	views := map[radio.NodeID]NodeView{}
	for _, v := range snap.Nodes {
		views[v.ID] = v
	}
	for _, h := range snap.Heads() {
		if h.IsBig {
			continue
		}
		p, ok := views[h.Parent]
		if !ok || !p.IsHead() {
			t.Errorf("head %d has invalid parent %d", h.ID, h.Parent)
			continue
		}
		if h.Hops != p.Hops+1 {
			t.Errorf("head %d hops %d, parent %d hops %d", h.ID, h.Hops, p.ID, p.Hops)
		}
		// No neighbor has strictly fewer hops than the chosen parent.
		for _, nid := range h.Neighbors {
			if nv, ok := views[nid]; ok && nv.IsHead() && nv.Hops < p.Hops {
				t.Errorf("head %d parent hops %d but neighbor %d has %d", h.ID, p.Hops, nid, nv.Hops)
			}
		}
	}
}

func TestEnergyDrainKillsAndStructureSurvives(t *testing.T) {
	nw, cfg := configureGridFresh(t, 100, 350)
	// Enable the energy model post-hoc by reconfiguring nodes: heads
	// dissipate 5× faster, so head shift must rotate the role.
	nw.cfg.InitialEnergy = 60
	nw.cfg.AssociateDissipation = 1
	nw.cfg.HeadEnergyFactor = 5
	for _, id := range nw.SortedIDs() {
		nw.SetEnergy(id, 60)
	}
	headCount := len(nw.Snapshot().Heads())
	nw.StartMaintenance(VariantD)
	runSweeps(nw, 25)

	// Some nodes must have died, yet the structure persists: heads
	// still cover the region.
	snap := nw.Snapshot()
	if len(snap.Nodes) == 0 {
		t.Fatal("everyone died")
	}
	alive := len(snap.Heads())
	if alive < headCount/2 {
		t.Errorf("structure collapsed: %d heads of %d", alive, headCount)
	}
	if nw.Metrics().HeadShifts == 0 {
		t.Error("no head shifts under energy pressure")
	}
	_ = cfg
}

func TestTransferHeadRoleMovesLinks(t *testing.T) {
	nw, cfg := configureDynamic(t, 400)
	h := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	cands := nw.Candidates(h.ID)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	repl := cands[0]
	old := nw.Node(h.ID)
	parentBefore := old.Parent
	childrenBefore := append([]radio.NodeID(nil), old.Children...)

	nw.transferHeadRole(old, nw.Node(repl))

	rn := nw.Node(repl)
	if !rn.Status.IsHeadRole() {
		t.Fatal("replacement not a head")
	}
	if rn.Parent != parentBefore {
		t.Errorf("parent not inherited: %d vs %d", rn.Parent, parentBefore)
	}
	for _, c := range childrenBefore {
		if nw.Node(c).Parent != repl {
			t.Errorf("child %d not re-pointed", c)
		}
	}
	if old.Status != StatusAssociate || old.Head != repl {
		t.Errorf("old head state: %v head=%d", old.Status, old.Head)
	}
	if pn := nw.Node(parentBefore); pn != nil && parentBefore != h.ID {
		if containsID(pn.Children, h.ID) || !containsID(pn.Children, repl) {
			t.Error("parent's children list not re-pointed")
		}
	}
}

func TestSweepStopsAfterStopMaintenance(t *testing.T) {
	nw, _ := configureDynamic(t, 300)
	runSweeps(nw, 2)
	nw.StopMaintenance()
	fired := nw.Engine().Fired()
	runSweeps(nw, 5)
	// Queued sweeps fire as no-ops and do not reschedule, so the event
	// stream must dry up.
	if nw.Engine().Pending() > 0 && nw.Engine().Fired() > fired+uint64(len(nw.SortedIDs()))+1 {
		t.Error("sweeps kept rescheduling after stop")
	}
}

func TestStartMaintenanceIdempotent(t *testing.T) {
	nw, _ := configureGridFresh(t, 100, 300)
	nw.StartMaintenance(VariantD)
	pending := nw.Engine().Pending()
	nw.StartMaintenance(VariantD) // second call must not double the timers
	if nw.Engine().Pending() > pending {
		t.Error("maintenance timers duplicated")
	}
}

func TestVariantSMaintenanceIsNoop(t *testing.T) {
	nw, _ := configureGridFresh(t, 100, 300)
	nw.StartMaintenance(VariantS)
	if nw.Engine().Pending() != 0 {
		t.Error("VariantS scheduled sweeps")
	}
}
