package core

import "gs3/internal/radio"

// This file is the struct-of-arrays node store. Node IDs are dense
// small integers allocated sequentially from 0, so per-node state lives
// in parallel ID-indexed slices instead of a map of heap pointers:
//
//   - nodes []Node       — the hot protocol state (node.go), inline;
//   - cold  []nodeCold   — fields no configure/sweep inner loop reads;
//   - caches []sweepCache — the quiescent-sweep caches, allocated lazily
//     on the first maintenance sweep so configure-only runs (the
//     million-node scaling experiments) never pay for them.
//
// The layout makes a cold configure cache-friendly (sequential sweeps
// walk contiguous memory) and collapses per-node allocation to a
// handful of slab growths. The cost is a pointer-stability contract:
// a *Node points into the slice and is invalidated by AddNode/Join.
// No protocol path holds a *Node across an AddNode — joins happen
// between engine events — and external callers get snapshots.
//
// Field widths are audited against their actual ranges, because at
// million-node scale every byte here is a megabyte: radio.NodeID is
// int32 (dense IDs), Status is uint8, Node.Hops and the SpiralIndex
// ranks are int32 (unknownHops = 1<<20 is the ceiling), nodeCold.sweep
// is uint32, and the sweepCache deltas pack their counter increments
// as uint16 (node.go). Snapshot/JSON view types keep wide ints, so
// none of this narrows the wire form. The other per-node line item —
// the engine's event bookkeeping — is pooled slots plus 24-byte queue
// entries in internal/sim, and the jitter path's sweepTimers is a
// dense []sim.Handle rather than a map.
//
// Link slices (Children/Neighbors) come from a chunk arena: fixed
// eight-entry chunks carved out of slabs and recycled through a free
// list when a node leaves the head role. Eight covers the paper's
// bounds (≤5 children, ≤6 neighbors) with slack; a transiently larger
// list silently escapes to the ordinary heap and is simply not
// recycled.

// nodeCold is the cold half of a node's state: fields that exist for
// every node but are read only by low-frequency paths (mobility,
// energy accounting, sweep scheduling), kept out of the hot Node
// struct so configure and sweep loops don't drag them through cache.
type nodeCold struct {
	// Proxy is the big-node mobility state (GS³-M): the head acting
	// for the big node while it moves.
	Proxy radio.NodeID
	// Energy is the node's remaining energy (the lifetime model).
	Energy float64
	// sweep counts maintenance rounds, for low-frequency sub-actions.
	sweep uint32
	// pendingChildRepair delays parent-side repair of a lost child by
	// one heartbeat, giving the cell's own head shift priority.
	pendingChildRepair bool
}

// linkCap is the arena chunk capacity for Children/Neighbors lists.
const linkCap = 8

// arenaSlabChunks is how many chunks each slab carves.
const arenaSlabChunks = 256

// idArena hands out fixed-capacity []radio.NodeID chunks carved from
// slabs, with a free list for recycling. A chunk is always created with
// the three-index slice expression, so cap == linkCap identifies
// recyclable chunks; anything append grew past linkCap has a different
// capacity and is left to the garbage collector.
type idArena struct {
	slab []radio.NodeID   // current slab; len marks the carve position
	free [][]radio.NodeID // recycled chunks (len 0, cap linkCap)
}

// get returns an empty chunk with capacity linkCap.
func (a *idArena) get() []radio.NodeID {
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		return s
	}
	if len(a.slab)+linkCap > cap(a.slab) {
		a.slab = make([]radio.NodeID, 0, linkCap*arenaSlabChunks)
	}
	n := len(a.slab)
	a.slab = a.slab[:n+linkCap]
	return a.slab[n:n : n+linkCap]
}

// put recycles a chunk the caller exclusively owns. Non-chunks (nil,
// heap-grown slices) are ignored.
func (a *idArena) put(s []radio.NodeID) {
	if cap(s) == linkCap {
		a.free = append(a.free, s[:0])
	}
}

// node returns a pointer to the node with the given ID, or nil if no
// such node was ever added. The pointer is into the dense store: valid
// until the next AddNode/Join.
func (nw *Network) node(id radio.NodeID) *Node {
	if id < 0 || int(id) >= len(nw.nodes) {
		return nil
	}
	return &nw.nodes[id]
}

// coldOf returns the cold-state record for an existing node ID.
func (nw *Network) coldOf(id radio.NodeID) *nodeCold {
	return &nw.cold[id]
}

// cacheFor returns the node's quiescent-sweep cache, allocating the
// cache array on first use (configure-only runs never call this).
func (nw *Network) cacheFor(id radio.NodeID) *sweepCache {
	nw.ensureCaches()
	return &nw.caches[id]
}

// ensureCaches grows the sweep-cache slice to cover every node. The
// sharded sweep executor calls it before its parallel phases so that
// concurrent cache reads never race with lazy growth.
func (nw *Network) ensureCaches() {
	for len(nw.caches) < len(nw.nodes) {
		nw.caches = append(nw.caches, sweepCache{})
	}
}

// Reserve pre-sizes the store (and the medium's per-node state) for n
// nodes, so bulk deployment grows nothing. Purely an optimization.
func (nw *Network) Reserve(n int) {
	if n > cap(nw.nodes) {
		nw.nodes = append(make([]Node, 0, n), nw.nodes...)
		nw.cold = append(make([]nodeCold, 0, n), nw.cold...)
	}
	nw.med.Reserve(n)
}

// setStatus is the one place a node's status changes (outside Kill,
// whose medium removal clears the head index itself): it keeps the
// medium's head-role index exactly in sync with Status.IsHeadRole, the
// invariant headRoleAt and reachableHeadsAt depend on.
func (nw *Network) setStatus(n *Node, s Status) {
	if n.Status == s {
		return
	}
	was := n.Status.IsHeadRole()
	n.Status = s
	if is := s.IsHeadRole(); is != was {
		nw.med.SetHeadRole(n.ID, is)
	}
}

// appendID appends id to a link list, drawing a fresh arena chunk for
// nil lists (plain heap growth when the arena is gated off during
// parallel configure phases).
func (nw *Network) appendID(s []radio.NodeID, id radio.NodeID) []radio.NodeID {
	if s == nil && nw.arenaOn {
		s = nw.arena.get()
	}
	return append(s, id)
}

// addUniqueID appends id to a link list if absent.
func (nw *Network) addUniqueID(s []radio.NodeID, id radio.NodeID) []radio.NodeID {
	if containsID(s, id) {
		return s
	}
	return nw.appendID(s, id)
}

// cloneIDs copies a link list into a fresh arena chunk (nil for empty).
func (nw *Network) cloneIDs(s []radio.NodeID) []radio.NodeID {
	if len(s) == 0 {
		return nil
	}
	var out []radio.NodeID
	if nw.arenaOn {
		out = nw.arena.get()
	}
	return append(out, s...)
}

// resetHeadState clears head-role fields when a node leaves the head
// role, recycling its link chunks.
func (nw *Network) resetHeadState(n *Node) {
	if nw.arenaOn {
		nw.arena.put(n.Children)
		nw.arena.put(n.Neighbors)
	}
	n.Children = nil
	n.Neighbors = nil
	n.Parent = radio.None
	n.Hops = 0
}

// becomeAssociate transitions the node to associate of head h.
func (nw *Network) becomeAssociate(n *Node, h radio.NodeID) {
	nw.setStatus(n, StatusAssociate)
	n.Head = h
	n.Candidate = false
	nw.resetHeadState(n)
}

// becomeBootup clears all relationships.
func (nw *Network) becomeBootup(n *Node) {
	nw.setStatus(n, StatusBootup)
	n.Head = radio.None
	n.Candidate = false
	nw.resetHeadState(n)
}
