package core

import (
	"fmt"

	"gs3/internal/trace"

	"gs3/internal/fault"
	"gs3/internal/geom"
	"gs3/internal/radio"
	"gs3/internal/rng"
	"gs3/internal/sim"
)

// Metrics counts protocol-level actions and messages. Radio-level
// traffic (broadcasts, deliveries) is counted by the medium itself.
type Metrics struct {
	HeadOrgs       uint64 // HEAD_ORG executions
	HeadsSelected  uint64 // nodes promoted to head by HEAD_SELECT
	ReplyMessages  uint64 // org_reply / head_org_reply unicasts
	HeadShifts     uint64 // intra-cell head replacements
	CellShifts     uint64 // STRENGTHEN_CELL IL advances
	Abandonments   uint64 // cells abandoned
	SanityRetreats uint64 // heads retreating after failed sanity check
	ParentSeeks    uint64 // PARENT_SEEK executions
	Joins          uint64 // nodes that joined a configured network
	Promotions     uint64 // candidate promotions on head failure
}

// Network is the simulated GS³ network: the medium, the event engine,
// and all node state. All protocol actions are methods on Network and
// execute atomically with respect to one another.
type Network struct {
	cfg Config
	med *radio.Medium
	eng *sim.Engine
	src *rng.Source

	// The struct-of-arrays node store (see store.go): hot protocol
	// state inline in nodes, cold per-node state in the parallel cold
	// slice, lazily allocated sweep caches in caches, and the chunk
	// arena feeding Children/Neighbors lists. arenaOn gates the arena's
	// free list: the parallel configure executor turns it off while
	// worker goroutines run, because get/put mutate shared slabs.
	nodes   []Node
	cold    []nodeCold
	caches  []sweepCache
	arena   idArena
	arenaOn bool
	nextID  radio.NodeID

	metrics Metrics

	// bigID is the big node (always 0 by construction).
	bigID radio.NodeID

	// maintaining gates the GS³-D/GS³-M sweep loop; variant selects the
	// algorithm layer the sweeps run.
	maintaining bool
	variant     Variant

	// sortedIDs caches the ascending ID list served by SortedIDs; nil
	// means stale. The ID set only grows (AddNode); Kill marks nodes
	// dead but keeps them listed.
	sortedIDs []radio.NodeID

	// queryBuf is the reusable scratch buffer behind headRoleAt,
	// Associates, Candidates, and the other medium-query filters: their
	// results alias it, so steady-state membership queries allocate
	// nothing. See those methods for the aliasing contract.
	queryBuf []radio.NodeID

	// caBuf is the scratch behind caOf. It is separate from queryBuf
	// because HEAD_ORG evaluates CA(il) while holding headRoleAt
	// results for the same IL loop iteration.
	caBuf []radio.NodeID

	// smallBuf is the scratch behind RescanAround's small-node receiver
	// list, and ilBuf the backing array of sixILs; both live across the
	// whole rescan, so they are separate from the query scratches above.
	smallBuf []radio.NodeID
	ilBuf    [6]geom.Point

	// orgSmall and orgAll are HEAD_ORG's receiver-partition scratch
	// (small nodes eligible for promotion; all small receivers). They
	// live across the whole HEAD_ORG — including its nested queries and
	// ChooseHead calls — so they are separate from the buffers above.
	orgSmall []radio.NodeID
	orgAll   []radio.NodeID

	// faults, when set, injects radio unreliability and node blackouts
	// (see internal/fault); nil runs the reliable model unchanged.
	faults *fault.Injector

	// tracer, when set, records protocol events.
	tracer *trace.Log

	// cacheOn gates the quiescent-sweep fast path (SetSweepCache). The
	// cache additionally disables itself whenever the fault layer or a
	// lossy radio is active: those paths consume randomness per query,
	// and eliding work would shift the draw order.
	cacheOn bool
	// lossy mirrors radio.Params.BroadcastLoss > 0 (fixed at build).
	lossy bool

	// batches maps a sweep fire time to the open batch of node IDs due
	// then: one engine event per run of consecutively scheduled sweeps
	// instead of one per node. A batch is sealed — later sweeps for the
	// same time open a fresh batch — as soon as any other event is
	// scheduled, so the relative order of sweeps and non-sweep events at
	// a shared instant is exactly the per-event order (see
	// scheduleSweep). pending tracks every undrained batch (open or
	// sealed) for eager removal on StopMaintenance, and batchFree
	// recycles drained ones. sweepTimers tracks per-node sweep events in
	// the jittered-scheduling fallback so stopping maintenance can drop
	// them eagerly too: a dense slice keyed by NodeID, not a map —
	// handles are generation-checked by the engine, so a slot left
	// behind by a fired sweep is a harmless no-op to Remove.
	batches     map[sim.Time]*sweepBatch
	pending     []*sweepBatch
	batchFree   []*sweepBatch
	batchEvents uint64
	sweepTimers []sim.Handle

	// sweepWorkers is the worker budget of the sharded maintenance
	// executor (sweepshard.go); ≤ 1 keeps every batch on the serial
	// path. shardKinds, shardFull, shardStats, and shardMetrics are that
	// executor's reusable classification and per-chunk aggregation
	// scratch.
	sweepWorkers int
	shardKinds   []sweepKind
	shardFull    []int
	shardStats   []radio.Stats
	shardMetrics []Metrics
}

// sweepBatch collects nodes whose maintenance sweeps were scheduled
// back-to-back for one fire time; runSweepBatch executes them in append
// (= per-event scheduling) order. seqMark/evMark are the engine's
// Scheduled reading and the network's batch-creation count right after
// the batch's own event went in: an append is only legal while every
// scheduling since has been another batch's creation — a batch for a
// different fire time cannot interleave at this one's instant, but any
// other event might, and seals the batch. idx is the batch's position
// in the network's pending list.
type sweepBatch struct {
	ids     []radio.NodeID
	handle  sim.Handle
	seqMark uint64
	evMark  uint64
	idx     int
}

// NewNetwork creates an empty network. The big node must be added first
// via AddNode with big=true.
func NewNetwork(cfg Config, radioParams radio.Params, src *rng.Source) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if radioParams.CellSize == 0 {
		radioParams.CellSize = cfg.SearchRadius()
	}
	med, err := radio.NewMedium(radioParams, src)
	if err != nil {
		return nil, err
	}
	return &Network{
		cfg:     cfg,
		med:     med,
		eng:     sim.NewEngine(),
		src:     src,
		arenaOn: true,
		bigID:   radio.None,
		cacheOn: true,
		lossy:   radioParams.BroadcastLoss > 0,
		batches: make(map[sim.Time]*sweepBatch),
	}, nil
}

// AddNode places a new node at p and returns its ID. The first big node
// becomes the network's big node; adding a second big node is an error.
// Growing the store may relocate it: any *Node held across an AddNode
// is invalid (see store.go).
func (nw *Network) AddNode(p geom.Point, big bool) (radio.NodeID, error) {
	if big && nw.bigID != radio.None {
		return radio.None, fmt.Errorf("core: network already has big node %d", nw.bigID)
	}
	id := nw.nextID
	nw.nextID++
	nw.nodes = append(nw.nodes, Node{
		ID:     id,
		IsBig:  big,
		Status: StatusBootup,
		Parent: radio.None,
		Head:   radio.None,
	})
	nw.cold = append(nw.cold, nodeCold{
		Proxy:  radio.None,
		Energy: nw.cfg.InitialEnergy,
	})
	nw.med.Place(id, p)
	if big {
		nw.bigID = id
	}
	return id, nil
}

// Config returns the protocol parameters.
func (nw *Network) Config() Config { return nw.cfg }

// Engine returns the event engine driving the network.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Medium returns the radio medium.
func (nw *Network) Medium() *radio.Medium { return nw.med }

// Metrics returns a copy of the protocol action counters.
func (nw *Network) Metrics() Metrics { return nw.metrics }

// sub returns the counter delta m−prev (field-wise).
func (m Metrics) sub(prev Metrics) Metrics {
	return Metrics{
		HeadOrgs:       m.HeadOrgs - prev.HeadOrgs,
		HeadsSelected:  m.HeadsSelected - prev.HeadsSelected,
		ReplyMessages:  m.ReplyMessages - prev.ReplyMessages,
		HeadShifts:     m.HeadShifts - prev.HeadShifts,
		CellShifts:     m.CellShifts - prev.CellShifts,
		Abandonments:   m.Abandonments - prev.Abandonments,
		SanityRetreats: m.SanityRetreats - prev.SanityRetreats,
		ParentSeeks:    m.ParentSeeks - prev.ParentSeeks,
		Joins:          m.Joins - prev.Joins,
		Promotions:     m.Promotions - prev.Promotions,
	}
}

// add returns the field-wise sum m+d. The sharded sweep executor uses
// it to aggregate replay deltas per chunk before crediting them; all
// fields are uint64, so chunked addition matches the serial running
// total bit for bit.
func (m Metrics) add(d Metrics) Metrics {
	return Metrics{
		HeadOrgs:       m.HeadOrgs + d.HeadOrgs,
		HeadsSelected:  m.HeadsSelected + d.HeadsSelected,
		ReplyMessages:  m.ReplyMessages + d.ReplyMessages,
		HeadShifts:     m.HeadShifts + d.HeadShifts,
		CellShifts:     m.CellShifts + d.CellShifts,
		Abandonments:   m.Abandonments + d.Abandonments,
		SanityRetreats: m.SanityRetreats + d.SanityRetreats,
		ParentSeeks:    m.ParentSeeks + d.ParentSeeks,
		Joins:          m.Joins + d.Joins,
		Promotions:     m.Promotions + d.Promotions,
	}
}

// addMetrics credits a recorded delta onto the live counters (the
// metrics side of replaying an elided sweep).
func (nw *Network) addMetrics(d Metrics) {
	nw.metrics.HeadOrgs += d.HeadOrgs
	nw.metrics.HeadsSelected += d.HeadsSelected
	nw.metrics.ReplyMessages += d.ReplyMessages
	nw.metrics.HeadShifts += d.HeadShifts
	nw.metrics.CellShifts += d.CellShifts
	nw.metrics.Abandonments += d.Abandonments
	nw.metrics.SanityRetreats += d.SanityRetreats
	nw.metrics.ParentSeeks += d.ParentSeeks
	nw.metrics.Joins += d.Joins
	nw.metrics.Promotions += d.Promotions
}

// SetSweepCache enables or disables the quiescent-sweep fast path.
// With the cache off every sweep re-derives its queries from scratch —
// the brute-force reference the property tests compare against. The
// results are identical either way; only the work differs.
func (nw *Network) SetSweepCache(on bool) { nw.cacheOn = on }

// cacheable reports whether sweep results may be cached at all. Any
// active fault plan (loss, duplication, jitter, blackouts) or a lossy
// broadcast model consumes randomness inside the swept queries, and
// eliding those would shift every later draw — so chaos runs always
// take the full path. Per-send energy costs also force the full path:
// an elided broadcast drains no battery, so eliding would change when
// nodes die.
func (nw *Network) cacheable() bool {
	return nw.cacheOn && !nw.lossy && !nw.faults.Active() && !nw.sendCostsActive()
}

// sendCostsActive reports whether the per-transmission half of the
// energy model is on: a battery to drain and a non-zero cost to charge.
func (nw *Network) sendCostsActive() bool {
	return nw.cfg.InitialEnergy > 0 && (nw.cfg.BroadcastCost > 0 || nw.cfg.UnicastCost > 0)
}

// touch records a protocol-state change at node id in the medium's
// topology epochs, invalidating every sweep cache whose query cone
// covers the node. Changes to the big node's state are visible to the
// root test of every head regardless of distance, so they invalidate
// globally.
func (nw *Network) touch(id radio.NodeID) {
	if id == nw.bigID {
		nw.med.TouchAll()
		return
	}
	nw.med.Touch(id)
}

// coneRadius bounds how far a node's sweep reads: an associate hears
// heads within the search radius; a head's boundary rescan additionally
// lets every small receiver (≤ SearchRadius+Rt away) re-choose among
// heads within SearchRadius of *it*, so the head's cone is 2·SR+Rt.
func (nw *Network) coneRadius(isHead bool) float64 {
	sr := nw.cfg.SearchRadius()
	if isHead {
		return 2*sr + nw.cfg.Rt
	}
	return sr
}

// SetFaults installs (or, with nil, removes) a deterministic fault
// injector on the network and its medium. With faults installed,
// broadcasts lose/duplicate deliveries, delays jitter, small nodes
// suffer transient blackouts during maintenance, and heads arm
// timeout/retry timers after HEAD_ORG. A nil injector restores the
// reliable model bit-for-bit.
func (nw *Network) SetFaults(inj *fault.Injector) {
	nw.faults = inj
	nw.med.SetFaults(inj)
}

// Faults returns the installed fault injector (nil when reliable).
func (nw *Network) Faults() *fault.Injector { return nw.faults }

// jittered applies the fault injector's delay jitter to a scheduling
// delay; it is the identity when faults are off.
func (nw *Network) jittered(d float64) float64 {
	return nw.faults.JitterDelay(d)
}

// Reachable reports whether id is alive and currently able to exchange
// messages — i.e. not transiently blacked out by the fault layer.
func (nw *Network) Reachable(id radio.NodeID) bool {
	return nw.Alive(id) && !nw.med.InBlackout(id)
}

// BigID returns the big node's ID, or radio.None if absent.
func (nw *Network) BigID() radio.NodeID { return nw.bigID }

// RootHead returns the head the parent tree currently drains to: the
// big node while it holds the head role, otherwise the big node's live
// proxy head (GS³-M), or radio.None in the transient instants of a
// slide when neither is a head. It is the live-network analogue of the
// snapshot-based root lookup in internal/gather.
func (nw *Network) RootHead() radio.NodeID {
	big := nw.node(nw.bigID)
	if big == nil {
		return radio.None
	}
	if big.Status.IsHeadRole() {
		return nw.bigID
	}
	if proxy := nw.coldOf(nw.bigID).Proxy; proxy != radio.None {
		if pn := nw.node(proxy); pn != nil && pn.Status.IsHeadRole() {
			return proxy
		}
	}
	return radio.None
}

// Node returns the node with the given ID, or nil. The pointer is into
// the dense store: it is invalidated by the next AddNode/Join.
func (nw *Network) Node(id radio.NodeID) *Node {
	return nw.node(id)
}

// Proxy returns the big-node mobility proxy recorded for id (GS³-M),
// or radio.None.
func (nw *Network) Proxy(id radio.NodeID) radio.NodeID {
	if nw.node(id) == nil {
		return radio.None
	}
	return nw.coldOf(id).Proxy
}

// Energy returns the remaining energy recorded for id (0 for unknown
// IDs).
func (nw *Network) Energy(id radio.NodeID) float64 {
	if nw.node(id) == nil {
		return 0
	}
	return nw.coldOf(id).Energy
}

// SetEnergy overwrites the remaining energy recorded for id (test and
// scenario setup hook; the protocol itself only drains).
func (nw *Network) SetEnergy(id radio.NodeID, e float64) {
	if nw.node(id) != nil {
		nw.coldOf(id).Energy = e
	}
}

// Position returns a node's current position. It returns the zero point
// for nodes no longer on the medium.
func (nw *Network) Position(id radio.NodeID) geom.Point {
	p, _ := nw.med.Position(id)
	return p
}

// Alive reports whether the node exists and is on the medium.
func (nw *Network) Alive(id radio.NodeID) bool {
	n := nw.node(id)
	return n != nil && n.Status != StatusDead && nw.med.Alive(id)
}

// SortedIDs returns all node IDs (including dead ones) in ascending
// order; deterministic iteration order for sweeps and snapshots. IDs
// are dense, so this is simply 0..N-1. The returned slice is a cache
// owned by the network: callers must not modify it, and it is valid
// until the next AddNode/Join.
func (nw *Network) SortedIDs() []radio.NodeID {
	if len(nw.sortedIDs) != len(nw.nodes) {
		ids := nw.sortedIDs[:0]
		if cap(ids) < len(nw.nodes) {
			ids = make([]radio.NodeID, 0, len(nw.nodes))
		}
		for id := range len(nw.nodes) {
			ids = append(ids, radio.NodeID(id))
		}
		nw.sortedIDs = ids
	}
	return nw.sortedIDs
}

// filterQuery runs a range query into the network's scratch buffer and
// keeps, in place, only the IDs that satisfy keep. The result aliases
// queryBuf: it is valid until the next filterQuery-backed call, and
// callers that retain it (e.g. into node state) must copy it out. None
// of the keep predicates below touch the medium, so a result is never
// clobbered while it is being built.
func (nw *Network) filterQuery(p geom.Point, dist float64, exclude radio.NodeID, keep func(*Node) bool) []radio.NodeID {
	nw.queryBuf = nw.med.WithinRangeAppend(nw.queryBuf[:0], p, dist, exclude)
	out := nw.queryBuf[:0]
	for _, id := range nw.queryBuf {
		if n := nw.node(id); n != nil && keep(n) {
			out = append(out, id)
		}
	}
	return out
}

// headRoleAt returns the alive head-role nodes within dist of p,
// served by the medium's head index (setStatus keeps it exactly in
// sync with Status.IsHeadRole, and death removes nodes from the
// medium), so the cost scales with the number of heads near p rather
// than the number of nodes. The result aliases the network's scratch
// buffer: valid until the next filterQuery-backed or head query.
func (nw *Network) headRoleAt(p geom.Point, dist float64) []radio.NodeID {
	nw.queryBuf = nw.med.HeadsWithinRangeAppend(nw.queryBuf[:0], p, dist, radio.None)
	return nw.queryBuf
}

// reachableHeadsAt returns the alive head-role nodes within dist of p
// that a small node could actually hear — blacked-out heads are
// excluded. Structure-consistency queries (ilOwner, ilConflicts) keep
// using headRoleAt so a transiently crashed head still owns its cell.
// The result aliases the network's scratch buffer (see headRoleAt).
func (nw *Network) reachableHeadsAt(p geom.Point, dist float64) []radio.NodeID {
	nw.queryBuf = nw.med.HeadsWithinRangeAppend(nw.queryBuf[:0], p, dist, radio.None)
	out := nw.queryBuf[:0]
	for _, id := range nw.queryBuf {
		if !nw.med.InBlackout(id) {
			out = append(out, id)
		}
	}
	return out
}

// Associates returns the alive associates of head h (nodes whose Head
// field names h), found by a local range query around h's cell.
// The result aliases the network's scratch buffer (see filterQuery).
func (nw *Network) Associates(h radio.NodeID) []radio.NodeID {
	hn := nw.node(h)
	if hn == nil {
		return nil
	}
	// Members can be up to √3R+2Rt from the IL in perturbed cells.
	return nw.filterQuery(hn.IL, nw.cfg.SearchRadius(), h, func(n *Node) bool {
		return n.Status == StatusAssociate && n.Head == h
	})
}

// Candidates returns the alive associates of h within Rt of h's current
// IL — the head-candidate set of §4.1. Blacked-out associates are
// excluded: they can neither refresh their replica nor take the role.
// The result aliases the network's scratch buffer (see filterQuery).
func (nw *Network) Candidates(h radio.NodeID) []radio.NodeID {
	hn := nw.node(h)
	if hn == nil {
		return nil
	}
	return nw.filterQuery(hn.IL, nw.cfg.Rt, h, func(n *Node) bool {
		return n.Status == StatusAssociate && n.Head == h && !nw.med.InBlackout(n.ID)
	})
}

// Kill removes a node from the network abruptly (fail-stop / death).
// Healing is left to the maintenance actions of the surviving nodes.
func (nw *Network) Kill(id radio.NodeID) {
	n := nw.node(id)
	if n == nil || n.Status == StatusDead {
		return
	}
	// Dead nodes stay listed by SortedIDs (the store keeps their slot),
	// and the medium removal below clears the head-role index entry, so
	// a plain status write suffices here.
	n.Status = StatusDead
	nw.emit(trace.KindDeath, id, radio.None, nw.Position(id))
	nw.med.Remove(id)
}

// Move changes a node's position (GS³-M perturbation). The protocol
// reacts through the maintenance sweeps.
func (nw *Network) Move(id radio.NodeID, p geom.Point) {
	if nw.Alive(id) {
		nw.med.Place(id, p)
	}
}
