package core

import (
	"fmt"

	"gs3/internal/geom"
	"gs3/internal/hexlat"
	"gs3/internal/radio"
	"gs3/internal/trace"
)

// StartConfiguration boots the GS³-S diffusing computation: the big node
// assumes the head role for the 0-band cell (its IL is its own location)
// and schedules its HEAD_ORG. Call Engine().Run to let the computation
// diffuse; it terminates when the event queue drains (Corollary 4).
func (nw *Network) StartConfiguration() error {
	if err := nw.prepareRoot(); err != nil {
		return err
	}
	nw.scheduleHeadOrg(nw.bigID, 0)
	return nil
}

// prepareRoot installs the head role on the big node for the 0-band
// cell without scheduling anything — the shared setup of the serial
// (StartConfiguration) and sharded (ConfigureSharded) configure paths.
func (nw *Network) prepareRoot() error {
	if nw.bigID == radio.None {
		return fmt.Errorf("core: no big node in the network")
	}
	big := nw.node(nw.bigID)
	pos := nw.Position(nw.bigID)
	nw.setStatus(big, StatusHead)
	big.IL = pos
	big.OIL = pos
	big.Spiral = hexlat.SpiralIndex{}
	big.Parent = nw.bigID // P(H₀) = H₀
	big.ParentIL = pos
	big.Hops = 0
	nw.touch(nw.bigID)
	return nil
}

// orgLatency is the virtual-time cost of one HEAD_ORG round: the org
// broadcast out, the replies back, and the HeadSet broadcast out, each
// covering the search radius.
func (nw *Network) orgLatency() float64 {
	return 3 * nw.med.Delay(nw.cfg.SearchRadius()+nw.cfg.Rt)
}

// scheduleHeadOrg queues a HEAD_ORG action for head id after delay
// (jittered when faults are active).
func (nw *Network) scheduleHeadOrg(id radio.NodeID, delay float64) {
	nw.eng.After(nw.jittered(delay), "head_org", func() { nw.HeadOrg(id) })
}

// scheduleOrgRetry arms the HEAD_ORG timeout of head id: when it fires
// with the head's neighborhood still incomplete — an unowned,
// conflict-free neighboring IL with nodes in its candidate area, the
// state a lost HEAD_ORG reply leaves behind — the head re-issues its
// organization broadcast. Waits start at RetryBackoff round latencies
// and double per attempt, bounded by OrgRetries. Reliable radios never
// arm the timer.
func (nw *Network) scheduleOrgRetry(id radio.NodeID, attempt int) {
	if !nw.faults.Active() || attempt > nw.cfg.OrgRetries {
		return
	}
	wait := nw.cfg.RetryBackoff * nw.orgLatency() * float64(uint64(1)<<uint(attempt-1))
	nw.eng.After(nw.jittered(wait), "head_org_retry", func() { nw.orgRetry(id, attempt) })
}

// orgRetry fires one HEAD_ORG timeout: if the neighborhood is still
// incomplete, re-issue via a full rescan (counted in radio.Stats as a
// retry) and re-arm with doubled backoff; otherwise the timer dies.
func (nw *Network) orgRetry(id radio.NodeID, attempt int) {
	h := nw.node(id)
	if h == nil || !nw.Reachable(id) || !h.Status.IsHeadRole() {
		return
	}
	if !nw.orgIncomplete(h) {
		return
	}
	nw.med.CountRetry()
	nw.RescanAround(id)
	nw.scheduleOrgRetry(id, attempt+1)
}

// orgIncomplete reports whether some neighboring IL of h is unowned yet
// serviceable: no head owns it, no existing head conflicts with it, and
// its candidate area holds at least one small node that could head it.
func (nw *Network) orgIncomplete(h *Node) bool {
	for _, il := range nw.sixILs(h) {
		if _, ok := nw.ilOwner(il); ok {
			continue
		}
		if nw.ilConflicts(il) {
			continue
		}
		if len(nw.smallAt(il, nw.cfg.Rt)) > 0 {
			return true
		}
	}
	return false
}

// smallAt returns the alive small (non-big, non-head) nodes within dist
// of p. The result aliases the network's scratch buffer (filterQuery).
func (nw *Network) smallAt(p geom.Point, dist float64) []radio.NodeID {
	return nw.filterQuery(p, dist, radio.None, func(n *Node) bool {
		return !n.IsBig && (n.Status == StatusBootup || n.Status == StatusAssociate)
	})
}

// HeadOrg executes the HEAD_ORG module at head id: it discovers the
// nodes in its search region, selects heads for the neighboring cells
// whose ILs are not yet owned (HEAD_SELECT), announces the selection,
// and lets the small nodes in range (re-)choose their best head
// (ASSOCIATE_ORG_RESP). The head then transitions to status work.
//
// The action is a no-op if id is dead or no longer in a head role —
// exactly the behaviour of a crashed initiator in the paper's model.
func (nw *Network) HeadOrg(id radio.NodeID) {
	nw.headOrg(id, nil)
}

// headOrg is HeadOrg parameterized over an execution context. With
// sk == nil it runs directly against shared state — the classic serial
// path, byte-for-byte the pre-sharding behaviour. With a sink it runs
// as one event of a sharded configure wave (see shard.go): spatial
// queries go through the sink (uncounted reads plus an overlay of this
// event's own promotions), and every effect on shared state — medium
// head-index flips, topology touches, stats, metrics, child HEAD_ORG
// scheduling — is buffered in the sink for ordered application at the
// wave barrier. Node-state writes stay direct in both modes: the
// sharded executor only runs non-conflicting events concurrently, so
// their write sets are disjoint.
func (nw *Network) headOrg(id radio.NodeID, sk *orgSink) {
	h := nw.node(id)
	if h == nil || !nw.Alive(id) || !h.Status.IsHeadRole() {
		return
	}
	if sk == nil {
		nw.metrics.HeadOrgs++
		nw.emit(trace.KindHeadOrg, id, radio.None, h.IL)
	} else {
		sk.metrics.HeadOrgs++
	}
	cfg := nw.cfg

	// The org broadcast must reach the whole search region, whose apex
	// is IL(i); the head itself may sit up to Rt from its IL, so it
	// widens its transmission range by Rt.
	var receivers []radio.NodeID
	if sk == nil {
		receivers, _ = nw.med.Broadcast(id, cfg.SearchRadius()+cfg.Rt)
	} else {
		receivers = sk.broadcast(id, cfg.SearchRadius()+cfg.Rt)
	}

	isRoot := h.IsBig && h.Parent == id
	sector := SearchSector(cfg, h.IL, h.ParentIL, isRoot)

	// Partition the responders. Head selection (HEAD_SELECT) considers
	// only nodes inside the search sector, but ASSOCIATE_ORG_RESP runs
	// at every small node that hears the org broadcast. The partitions
	// live in the HEAD_ORG scratch (the network's orgSmall/orgAll, or
	// the sink's): they are read across the whole action, including its
	// nested queries.
	var smallNodes, allSmall []radio.NodeID
	if sk == nil {
		smallNodes, allSmall = nw.orgSmall[:0], nw.orgAll[:0]
	} else {
		smallNodes, allSmall = sk.smallBuf[:0], sk.allBuf[:0]
	}
	replies := uint64(0)
	for _, rid := range receivers {
		rn := nw.node(rid)
		if rn == nil || !nw.Alive(rid) {
			continue
		}
		if rn.Status == StatusBootup || rn.Status == StatusAssociate {
			allSmall = append(allSmall, rid)
		}
		p := nw.Position(rid)
		if !sector.Contains(p) {
			continue
		}
		// Every sector member replies — existing heads included, though
		// only small nodes feed HEAD_SELECT.
		replies++
		if rn.Status == StatusBootup || rn.Status == StatusAssociate {
			smallNodes = append(smallNodes, rid)
		}
	}
	if sk == nil {
		nw.orgSmall, nw.orgAll = smallNodes, allSmall
		nw.metrics.ReplyMessages += replies
	} else {
		sk.smallBuf, sk.allBuf = smallNodes, allSmall
		sk.metrics.ReplyMessages += replies
	}

	// HEAD_SELECT over the neighboring ILs.
	ilDst := nw.ilBuf[:0]
	if sk != nil {
		ilDst = sk.ilBuf[:0]
	}
	for _, il := range neighborILsAppend(ilDst, cfg, h.IL, h.ParentIL, isRoot) {
		if owner, ok := nw.ilOwnerIn(il, sk); ok {
			// Step 2: the IL already has a head; record neighborhood.
			nw.linkNeighborsIn(id, owner, sk)
			continue
		}
		if nw.ilConflictsIn(il, sk) {
			continue
		}
		ca := nw.caOfIn(il, smallNodes, sk)
		best, ok := BestCandidate(il, cfg.GR, ca, nw.Position)
		if !ok {
			// Rt-gap at this IL (or boundary): GS³-D skips the cell and
			// re-checks later (boundary rescan).
			continue
		}
		nw.promoteToHeadIn(best, il, h, h.Hops+1, sk)
		nw.linkNeighborsIn(id, best, sk)
		if !containsID(h.Children, best) {
			h.Children = nw.appendID(h.Children, best)
			nw.touchIn(id, sk)
		}
		if sk == nil {
			nw.scheduleHeadOrg(best, nw.orgLatency())
		} else {
			sk.children = append(sk.children, best)
		}
	}

	// HeadSet broadcast; every small node in range re-chooses its best
	// head (ASSOCIATE_ORG_RESP).
	if sk == nil {
		nw.med.Broadcast(id, cfg.SearchRadius()+cfg.Rt)
	} else {
		sk.broadcast(id, cfg.SearchRadius()+cfg.Rt)
	}
	if sk != nil && sk.par > 1 && len(allSmall) >= minChooseParallel {
		nw.chooseHeadsParallel(allSmall, sk)
	} else {
		for _, rid := range allSmall {
			if nw.Alive(rid) && !nw.node(rid).Status.IsHeadRole() {
				nw.chooseHeadIn(rid, sk)
			}
		}
	}

	if h.Status != StatusWork {
		nw.setStatus(h, StatusWork) // Head→Work: no head-role flip
		nw.touchIn(id, sk)
	}
	if sk == nil {
		nw.scheduleOrgRetry(id, 1)
	}
	// Sharded mode never arms the retry timer: shardable() requires an
	// inactive fault plan, under which scheduleOrgRetry is a no-op.
}

// touchIn routes a topology touch directly into the medium's epochs
// (sk == nil), or into a sharded event's deferred buffer for ordered
// application at the wave barrier.
func (nw *Network) touchIn(id radio.NodeID, sk *orgSink) {
	if sk == nil {
		nw.touch(id)
		return
	}
	sk.touches = append(sk.touches, id)
}

// headsAtIn is headRoleAt through an execution context: the shared
// counted query when sk == nil, the sink's uncounted-plus-overlay query
// otherwise.
func (nw *Network) headsAtIn(p geom.Point, dist float64, sk *orgSink) []radio.NodeID {
	if sk == nil {
		return nw.headRoleAt(p, dist)
	}
	return sk.headsAt(p, dist)
}

// ilOwner reports whether some existing head owns the cell at il, i.e.
// its own IL is within Rt of il. It prefers the closest owner.
func (nw *Network) ilOwner(il geom.Point) (radio.NodeID, bool) {
	return nw.ilOwnerIn(il, nil)
}

// ilOwnerIn is ilOwner through an execution context (see headOrg).
func (nw *Network) ilOwnerIn(il geom.Point, sk *orgSink) (radio.NodeID, bool) {
	best := radio.None
	bestD := nw.cfg.Rt
	for _, hid := range nw.headsAtIn(il, nw.cfg.Rt, sk) {
		hn := nw.node(hid)
		if d := hn.IL.Dist(il); d <= bestD {
			best, bestD = hid, d
		}
	}
	return best, best != radio.None
}

// ilConflicts reports whether creating a cell head at il would put two
// heads illegally close: some existing head sits within the minimum
// legal neighbor-head distance √3R − 2Rt of il. A corrupted node's
// off-lattice ILs always conflict with the real structure, so this
// guard keeps state corruption from cascading through HEAD_ORG.
func (nw *Network) ilConflicts(il geom.Point) bool {
	return nw.ilConflictsIn(il, nil)
}

// ilConflictsIn is ilConflicts through an execution context.
func (nw *Network) ilConflictsIn(il geom.Point, sk *orgSink) bool {
	return len(nw.headsAtIn(il, nw.cfg.NeighborDistMin(), sk)) > 0
}

// caOf returns CA(il): the small nodes within Rt of il (HEAD_SELECT
// Step 3). The result aliases the network's caBuf scratch: it is valid
// until the next caOf call and must not be retained.
func (nw *Network) caOf(il geom.Point, smallNodes []radio.NodeID) []radio.NodeID {
	return nw.caOfIn(il, smallNodes, nil)
}

// caOfIn is caOf through an execution context: the filter runs into the
// sink's candidate scratch instead of the network's when sharded.
func (nw *Network) caOfIn(il geom.Point, smallNodes []radio.NodeID, sk *orgSink) []radio.NodeID {
	buf := nw.caBuf
	if sk != nil {
		buf = sk.caBuf
	}
	out := buf[:0]
	for _, id := range smallNodes {
		if nw.Position(id).Dist(il) <= nw.cfg.Rt {
			out = append(out, id)
		}
	}
	if sk != nil {
		sk.caBuf = out
	} else {
		nw.caBuf = out
	}
	return out
}

// promoteToHead installs the head role on node id for the cell at il.
// The new cell inherits the selecting head's ⟨ICC, ICP⟩ shift state
// (the SYN_CELL convention): its OIL is the unshifted lattice point, so
// same-spiral neighbor ILs stay exactly √3·R apart even after slides.
func (nw *Network) promoteToHead(id radio.NodeID, il geom.Point, scanner *Node, hops int32) {
	nw.promoteToHeadIn(id, il, scanner, hops, nil)
}

// promoteToHeadIn is promoteToHead through an execution context. In
// sharded mode the medium's head-index flip is deferred to the level
// barrier — SetHeadRole mutates the shared head grid — and recorded in
// the sink's overlay so the event's own later queries see it.
func (nw *Network) promoteToHeadIn(id radio.NodeID, il geom.Point, scanner *Node, hops int32, sk *orgSink) {
	n := nw.node(id)
	if sk == nil {
		nw.setStatus(n, StatusHead)
	} else {
		n.Status = StatusHead // small node before: the flip is to head
		sk.promote(id, nw.Position(id))
	}
	n.IL = il
	n.OIL = il.Add(scanner.OIL.Sub(scanner.IL))
	n.Spiral = scanner.Spiral
	n.Parent = scanner.ID
	n.ParentIL = scanner.IL
	n.Hops = hops
	n.Head = radio.None
	n.Candidate = false
	nw.touchIn(id, sk)
	if sk == nil {
		nw.metrics.HeadsSelected++
		nw.emit(trace.KindHeadSelected, id, scanner.ID, il)
	} else {
		sk.metrics.HeadsSelected++
	}
}

// linkNeighbors records a–b as neighboring cell heads on both sides.
func (nw *Network) linkNeighbors(a, b radio.NodeID) {
	nw.linkNeighborsIn(a, b, nil)
}

// linkNeighborsIn is linkNeighbors through an execution context.
func (nw *Network) linkNeighborsIn(a, b radio.NodeID, sk *orgSink) {
	if a == b {
		return
	}
	an, bn := nw.node(a), nw.node(b)
	if an == nil || bn == nil {
		return
	}
	if !containsID(an.Neighbors, b) {
		an.Neighbors = nw.appendID(an.Neighbors, b)
		nw.touchIn(a, sk)
	}
	if !containsID(bn.Neighbors, a) {
		bn.Neighbors = nw.appendID(bn.Neighbors, a)
		nw.touchIn(b, sk)
	}
}

// ChooseHead runs ASSOCIATE_ORG_RESP for small node id: among the alive
// head-role nodes within the local-coordination range of the node, pick
// the best (closest; ties broken by the ⟨d,|A|,A⟩ angle rule with GR)
// and become its associate. The node becomes (or stays) bootup when no
// head is in range. Returns the chosen head or radio.None.
func (nw *Network) ChooseHead(id radio.NodeID) radio.NodeID {
	return nw.chooseHeadIn(id, nil)
}

// chooseHeadIn is ChooseHead through an execution context: the head
// query goes through the sink (uncounted + own-promotion overlay) and
// the topology touch is deferred when sharded. The node-state writes
// themselves are direct — the associate being written belongs to
// exactly one event of a wave level (events writing the same node
// always conflict and so run on different levels, in order).
func (nw *Network) chooseHeadIn(id radio.NodeID, sk *orgSink) radio.NodeID {
	n := nw.node(id)
	if n == nil || !nw.Alive(id) || n.Status.IsHeadRole() || n.IsBig {
		return radio.None
	}
	p := nw.Position(id)
	var heads []radio.NodeID
	if sk == nil {
		heads = nw.reachableHeadsAt(p, nw.cfg.SearchRadius())
	} else {
		heads = sk.reachableHeadsAt(p, nw.cfg.SearchRadius())
	}
	best, ok := BestCandidate(p, nw.cfg.GR, heads, nw.Position)
	if !ok {
		if n.Status != StatusBootup || n.Head != radio.None || n.Candidate {
			nw.becomeBootup(n)
			nw.touchIn(id, sk)
		}
		return radio.None
	}
	bn := nw.node(best)
	cand := p.Dist(bn.IL) <= nw.cfg.Rt
	// Guarded on change: a settled associate re-choosing the same head
	// (the steady-state outcome every sweep) stays epoch-quiet.
	if n.Status != StatusAssociate || n.Head != best || n.Candidate != cand ||
		(cand && (n.CellIL != bn.IL || n.CellOIL != bn.OIL || n.CellSpiral != bn.Spiral)) {
		nw.becomeAssociate(n, best)
		n.Candidate = cand
		if cand {
			// Candidates replicate the cell state from the HeadSet
			// broadcast so the cell survives its head's death.
			n.CellIL, n.CellOIL, n.CellSpiral = bn.IL, bn.OIL, bn.Spiral
		}
		nw.touchIn(id, sk)
	}
	return best
}

// SettleAssociates runs ChooseHead for every alive non-head small node,
// in ID order. It is the network-wide equivalent of every node having
// heard the org broadcasts of all nearby heads, and is used by the
// harness to verify fixpoint F₃ (each associate has the best head).
// It returns the number of nodes whose head changed.
func (nw *Network) SettleAssociates() int {
	changed := 0
	for _, id := range nw.SortedIDs() {
		n := nw.node(id)
		if n == nil || !nw.Alive(id) || n.Status.IsHeadRole() || n.IsBig {
			continue
		}
		before := n.Head
		nw.ChooseHead(id)
		if n.Head != before {
			changed++
		}
	}
	return changed
}
