package core

import (
	"math"
	"testing"
	"testing/quick"

	"gs3/internal/geom"
	"gs3/internal/radio"
	"gs3/internal/rng"
)

// TestRankingPermutationInvariant: the HEAD_SELECT winner must not
// depend on the order candidates are presented in.
func TestRankingPermutationInvariant(t *testing.T) {
	src := rng.New(99)
	f := func(seed uint64, n uint8) bool {
		count := int(n%12) + 2
		local := rng.New(seed)
		pos := make(map[radio.NodeID]geom.Point, count)
		ids := make([]radio.NodeID, count)
		for i := 0; i < count; i++ {
			x, y := local.InDisk(25)
			ids[i] = radio.NodeID(i)
			pos[radio.NodeID(i)] = geom.Point{X: x, Y: y}
		}
		at := func(id radio.NodeID) geom.Point { return pos[id] }
		best1, ok1 := BestCandidate(geom.Point{}, 0.3, ids, at)

		shuffled := append([]radio.NodeID(nil), ids...)
		src.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		best2, ok2 := BestCandidate(geom.Point{}, 0.3, shuffled, at)
		return ok1 == ok2 && best1 == best2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRankingTotalOrder: the ranking is a strict total order — ranked
// output is sorted and contains every input exactly once.
func TestRankingTotalOrder(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%15) + 1
		local := rng.New(seed)
		pos := make(map[radio.NodeID]geom.Point, count)
		ids := make([]radio.NodeID, count)
		for i := 0; i < count; i++ {
			x, y := local.InDisk(25)
			ids[i] = radio.NodeID(i)
			pos[radio.NodeID(i)] = geom.Point{X: x, Y: y}
		}
		ranked := RankCandidates(geom.Point{X: 1, Y: 2}, 0.7, ids, func(id radio.NodeID) geom.Point { return pos[id] })
		if len(ranked) != count {
			return false
		}
		seen := map[radio.NodeID]bool{}
		for i, r := range ranked {
			if seen[r.ID] {
				return false
			}
			seen[r.ID] = true
			if i > 0 && rankKeyLess(r, ranked[i-1]) {
				return false // out of order
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRankingDistanceDominates: a strictly closer node always outranks
// a farther one, regardless of angles (d has highest significance).
func TestRankingDistanceDominates(t *testing.T) {
	f := func(theta1, theta2 float64, d1, d2 uint8) bool {
		if math.IsNaN(theta1) || math.IsNaN(theta2) {
			return true
		}
		r1 := float64(d1%20) + 1
		r2 := r1 + float64(d2%20) + 1 // strictly farther
		pos := map[radio.NodeID]geom.Point{
			1: geom.Point{}.Add(geom.UnitAt(theta1).Scale(r1)),
			2: geom.Point{}.Add(geom.UnitAt(theta2).Scale(r2)),
		}
		best, ok := BestCandidate(geom.Point{}, 0, []radio.NodeID{1, 2}, func(id radio.NodeID) geom.Point { return pos[id] })
		return ok && best == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNeighborILsFormLattice: from any head IL and parent IL one cell
// apart, every generated neighbor IL is exactly √3R away and the three
// forward ILs are mutually √3R apart or 2·√3R·sin(60°) apart — lattice
// geometry regardless of orientation.
func TestNeighborILsFormLattice(t *testing.T) {
	cfg := testConfig()
	f := func(theta float64, px, py int16) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		parent := geom.Point{X: float64(px), Y: float64(py)}
		il := parent.Add(geom.UnitAt(theta).Scale(cfg.HeadSpacing()))
		ils := NeighborILs(cfg, il, parent, false)
		if len(ils) != 3 {
			return false
		}
		for _, p := range ils {
			if math.Abs(p.Dist(il)-cfg.HeadSpacing()) > 1e-6 {
				return false
			}
		}
		// Consecutive forward ILs are one lattice edge apart.
		if math.Abs(ils[0].Dist(ils[1])-cfg.HeadSpacing()) > 1e-6 {
			return false
		}
		if math.Abs(ils[1].Dist(ils[2])-cfg.HeadSpacing()) > 1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSearchSectorContainsItsILs: every candidate IL of a head lies
// inside (the closure of) that head's search sector — otherwise
// HEAD_SELECT could select heads it cannot talk to.
func TestSearchSectorContainsItsILs(t *testing.T) {
	cfg := testConfig()
	f := func(theta float64, px, py int16) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		parent := geom.Point{X: float64(px), Y: float64(py)}
		il := parent.Add(geom.UnitAt(theta).Scale(cfg.HeadSpacing()))
		sector := SearchSector(cfg, il, parent, false)
		for _, p := range NeighborILs(cfg, il, parent, false) {
			if !sector.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConfigDerivedQuantitiesConsistent: for any valid (R, Rt) the
// derived bounds nest correctly.
func TestConfigDerivedQuantitiesConsistent(t *testing.T) {
	f := func(r16, rt16 uint16) bool {
		r := float64(r16%1000) + 1
		rt := math.Mod(float64(rt16), r) + 0.001
		cfg := DefaultConfig(r)
		cfg.Rt = rt
		if cfg.Validate() != nil {
			return true
		}
		if cfg.NeighborDistMin() >= cfg.NeighborDistMax() {
			return false
		}
		if cfg.SearchRadius() <= cfg.HeadSpacing() {
			return false
		}
		if cfg.CellRadiusBound() <= cfg.R {
			return false
		}
		if cfg.Alpha() <= 0 || cfg.Alpha() >= math.Pi/2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
