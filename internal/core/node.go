package core

import (
	"math"

	"gs3/internal/geom"
	"gs3/internal/hexlat"
	"gs3/internal/radio"
)

// Status is a node's protocol status (paper Figures 2, 6, 9).
type Status uint8

// Node statuses. Head and Work are both "head roles": Head means
// selected but HEAD_ORG not yet executed; Work means organizing is done.
const (
	StatusBootup Status = iota + 1
	StatusHead
	StatusWork
	StatusAssociate
	StatusBigSlide // big node ceded headship during a cell slide
	StatusBigMove  // big node moving, represented by a proxy
	StatusDead
)

var statusNames = map[Status]string{
	StatusBootup:    "bootup",
	StatusHead:      "head",
	StatusWork:      "work",
	StatusAssociate: "associate",
	StatusBigSlide:  "big_slide",
	StatusBigMove:   "big_move",
	StatusDead:      "dead",
}

// String returns the paper's name for the status.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return "invalid"
}

// IsHeadRole reports whether the status carries the head role.
func (s Status) IsHeadRole() bool {
	return s == StatusHead || s == StatusWork
}

// Node is the per-node protocol state the configure and sweep paths
// read on every action — the hot half of the store. GS³'s scalability
// claim is that this state references only a constant number of other
// nodes: one head for associates, and parent + ≤6 neighbors + ≤5
// children for heads.
//
// Nodes live inline in the network's dense slice (see store.go), not
// behind individual heap pointers: a *Node is a pointer into that
// slice, invalidated by the next AddNode/Join. Cold per-node state —
// energy, mobility proxy, sweep counters, caches — lives in parallel
// arrays keyed by the same dense ID (nodeCold, sweepCache).
type Node struct {
	ID    radio.NodeID
	IsBig bool

	Status Status

	// Head-role state.
	IL        geom.Point         // current ideal location of the cell
	OIL       geom.Point         // original ideal location
	Spiral    hexlat.SpiralIndex // ⟨ICC, ICP⟩ of IL relative to OIL
	Parent    radio.NodeID
	ParentIL  geom.Point // IL of the parent's cell: the reference direction source
	Children  []radio.NodeID
	Neighbors []radio.NodeID // neighboring cell heads
	Hops      int32          // hop distance to the big node in the head graph

	// Associate-role state.
	Head      radio.NodeID
	Candidate bool // within Rt of its cell's current IL
	// Candidates replicate the cell state they hear in heartbeats, so
	// the cell survives its head's death (head shift).
	CellIL     geom.Point
	CellOIL    geom.Point
	CellSpiral hexlat.SpiralIndex
}

// sweepDelta is the externally observable accounting of one recorded
// no-op sweep: the radio and protocol counter increments the sweep
// produced. A sweep elided by the fast path replays the delta so every
// printed statistic matches a run that did the work.
//
// The increments are stored as uint16, not as full radio.Stats/Metrics
// structs: a single no-op sweep moves each counter by at most a
// handful of sends and replies, and the narrow form cuts the per-node
// cache from ~370 B to ~110 B — the store's biggest single line item
// at million-node scale. record refuses (returns false, leaving the
// delta invalid) in the off-nominal case of an increment beyond
// uint16, which merely costs that node its fast path.
type sweepDelta struct {
	valid   bool
	stats   [11]uint16 // radio.Stats increments, field order as declared
	metrics [10]uint16 // Metrics increments, field order as declared
}

// record packs the given counter increments, failing (and leaving the
// delta invalid) if any of them overflows uint16.
func (d *sweepDelta) record(s radio.Stats, m Metrics) bool {
	st := [11]uint64{
		s.Broadcasts, s.Unicasts, s.Deliveries, s.Dropped, s.RangeQueries,
		s.FaultDrops, s.FaultDups, s.BlackoutDrops, s.Blackouts, s.Retries,
		s.OcclusionBlocks,
	}
	mt := [10]uint64{
		m.HeadOrgs, m.HeadsSelected, m.ReplyMessages, m.HeadShifts,
		m.CellShifts, m.Abandonments, m.SanityRetreats, m.ParentSeeks,
		m.Joins, m.Promotions,
	}
	for _, v := range st {
		if v > math.MaxUint16 {
			d.valid = false
			return false
		}
	}
	for _, v := range mt {
		if v > math.MaxUint16 {
			d.valid = false
			return false
		}
	}
	for i, v := range st {
		d.stats[i] = uint16(v)
	}
	for i, v := range mt {
		d.metrics[i] = uint16(v)
	}
	d.valid = true
	return true
}

// statsDelta expands the packed radio counter increments.
func (d *sweepDelta) statsDelta() radio.Stats {
	return radio.Stats{
		Broadcasts: uint64(d.stats[0]), Unicasts: uint64(d.stats[1]),
		Deliveries: uint64(d.stats[2]), Dropped: uint64(d.stats[3]),
		RangeQueries: uint64(d.stats[4]), FaultDrops: uint64(d.stats[5]),
		FaultDups: uint64(d.stats[6]), BlackoutDrops: uint64(d.stats[7]),
		Blackouts: uint64(d.stats[8]), Retries: uint64(d.stats[9]),
		OcclusionBlocks: uint64(d.stats[10]),
	}
}

// metricsDelta expands the packed protocol counter increments.
func (d *sweepDelta) metricsDelta() Metrics {
	return Metrics{
		HeadOrgs: uint64(d.metrics[0]), HeadsSelected: uint64(d.metrics[1]),
		ReplyMessages: uint64(d.metrics[2]), HeadShifts: uint64(d.metrics[3]),
		CellShifts: uint64(d.metrics[4]), Abandonments: uint64(d.metrics[5]),
		SanityRetreats: uint64(d.metrics[6]), ParentSeeks: uint64(d.metrics[7]),
		Joins: uint64(d.metrics[8]), Promotions: uint64(d.metrics[9]),
	}
}

// sweepCache holds a node's recorded quiescent sweeps. Two flavors
// exist because a head's periodic boundary rescan produces a different
// (but equally state-preserving) counter delta than a plain heartbeat
// sweep. The stamps tie both flavors to the topology epoch of the
// node's query cone at record time: worldStamp is the global epoch (an
// O(1) "nothing anywhere changed" test), regionStamp the cone maximum
// (the precise test when the world moved elsewhere).
type sweepCache struct {
	plain  sweepDelta
	rescan sweepDelta
	// sane records whether the head's state passed the sanity-check
	// predicate at record time; only a sane head may skip its periodic
	// SANITY_CHECK sweeps (an insane one might need to retreat).
	sane        bool
	worldStamp  uint64
	regionStamp uint64
}

// removeChild deletes id from the children list.
func (n *Node) removeChild(id radio.NodeID) {
	n.Children = removeID(n.Children, id)
}

// removeNeighbor deletes id from the neighbor-head list.
func (n *Node) removeNeighbor(id radio.NodeID) {
	n.Neighbors = removeID(n.Neighbors, id)
}

func removeID(ids []radio.NodeID, id radio.NodeID) []radio.NodeID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

func containsID(ids []radio.NodeID, id radio.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
