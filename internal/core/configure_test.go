package core

import (
	"math"
	"testing"

	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/radio"
	"gs3/internal/rng"
)

func testRadioParams(cfg Config) radio.Params {
	return radio.Params{
		MaxRange:           cfg.SearchRadius() + cfg.Rt,
		DiffusionSpeed:     cfg.SearchRadius(), // one search radius per time unit
		PerMessageOverhead: 0.001,
	}
}

// buildNetwork creates a network from a deployment and returns it.
func buildNetwork(t *testing.T, cfg Config, dep field.Deployment) *Network {
	t.Helper()
	nw, err := NewNetwork(cfg, testRadioParams(cfg), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range dep.Positions {
		if _, err := nw.AddNode(p, i == 0); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// configureGridFresh builds a dense deterministic deployment and runs
// GS³-S to completion. Use it for tests that mutate the network.
func configureGridFresh(t *testing.T, r, regionRadius float64) (*Network, Config) {
	t.Helper()
	cfg := DefaultConfig(r)
	dep, err := field.Grid(regionRadius, cfg.Rt*0.9, 0.15, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	nw := buildNetwork(t, cfg, dep)
	if err := nw.StartConfiguration(); err != nil {
		t.Fatal(err)
	}
	nw.Engine().Run(0)
	return nw, cfg
}

var configuredCache = map[[2]float64]*Network{}

// configureGrid returns a shared configured network for read-only
// tests, building it on first use.
func configureGrid(t *testing.T, r, regionRadius float64) (*Network, Config) {
	t.Helper()
	key := [2]float64{r, regionRadius}
	if nw, ok := configuredCache[key]; ok {
		return nw, nw.Config()
	}
	nw, cfg := configureGridFresh(t, r, regionRadius)
	configuredCache[key] = nw
	return nw, cfg
}

func TestStartConfigurationRequiresBigNode(t *testing.T) {
	cfg := testConfig()
	nw, err := NewNetwork(cfg, testRadioParams(cfg), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.StartConfiguration(); err == nil {
		t.Error("configuration started without a big node")
	}
}

func TestAddNodeRejectsSecondBig(t *testing.T) {
	cfg := testConfig()
	nw, _ := NewNetwork(cfg, testRadioParams(cfg), rng.New(1))
	if _, err := nw.AddNode(geom.Point{}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode(geom.Point{X: 1}, true); err == nil {
		t.Error("second big node accepted")
	}
}

func TestConfigureProducesHeads(t *testing.T) {
	nw, cfg := configureGrid(t, 100, 450)
	snap := nw.Snapshot()
	heads := snap.Heads()
	if len(heads) < 7 {
		t.Fatalf("only %d heads configured", len(heads))
	}
	// The big node is a head with itself as parent.
	big, ok := snap.View(nw.BigID())
	if !ok || !big.IsHead() || big.Parent != nw.BigID() || big.Hops != 0 {
		t.Errorf("big node view: %+v", big)
	}
	_ = cfg
}

func TestConfigureHeadsNearTheirILs(t *testing.T) {
	nw, cfg := configureGrid(t, 100, 450)
	for _, h := range nw.Snapshot().Heads() {
		if d := h.Pos.Dist(h.IL); d > cfg.Rt {
			t.Errorf("head %d is %v from its IL, beyond Rt=%v", h.ID, d, cfg.Rt)
		}
	}
}

func TestConfigureNeighborHeadDistances(t *testing.T) {
	// Corollary 1: neighboring heads are √3R ± 2Rt apart.
	nw, cfg := configureGrid(t, 100, 450)
	snap := nw.Snapshot()
	views := make(map[radio.NodeID]NodeView)
	for _, v := range snap.Nodes {
		views[v.ID] = v
	}
	checked := 0
	for _, h := range snap.Heads() {
		for _, nid := range h.Neighbors {
			nv, ok := views[nid]
			if !ok || !nv.IsHead() {
				continue
			}
			d := h.Pos.Dist(nv.Pos)
			if d < cfg.NeighborDistMin()-1e-9 || d > cfg.NeighborDistMax()+1e-9 {
				t.Errorf("heads %d,%d at distance %v outside [%v,%v]",
					h.ID, nid, d, cfg.NeighborDistMin(), cfg.NeighborDistMax())
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no neighbor pairs checked")
	}
}

func TestConfigureILsOnLattice(t *testing.T) {
	// All cell ILs must be exact points of the hexagonal lattice rooted
	// at the big node: deviation must not accumulate.
	nw, cfg := configureGrid(t, 100, 450)
	snap := nw.Snapshot()
	big, _ := snap.View(nw.BigID())
	for _, h := range snap.Heads() {
		// Distance from the root IL must be a lattice distance: for a
		// hex lattice all center distances are √(a²+ab+b²)·√3R for
		// integers a,b — verify by snapping to the nearest lattice point.
		v := h.IL.Sub(big.IL)
		// Rotate into lattice frame and check integrality.
		e1 := geom.UnitAt(cfg.GR)
		e2 := geom.UnitAt(cfg.GR + math.Pi/3)
		det := e1.X*e2.Y - e2.X*e1.Y
		a := (e2.Y*v.X - e2.X*v.Y) / (det * cfg.HeadSpacing())
		b := (-e1.Y*v.X + e1.X*v.Y) / (det * cfg.HeadSpacing())
		if math.Abs(a-math.Round(a)) > 1e-6 || math.Abs(b-math.Round(b)) > 1e-6 {
			t.Errorf("head %d IL %v is off-lattice (a=%v b=%v)", h.ID, h.IL, a, b)
		}
	}
}

func TestConfigureAssociatesChooseClosestHead(t *testing.T) {
	// Fixpoint F₃/invariant I₃: each associate's head is the closest.
	nw, _ := configureGrid(t, 100, 450)
	snap := nw.Snapshot()
	heads := snap.Heads()
	for _, v := range snap.Nodes {
		if v.Status != StatusAssociate {
			continue
		}
		chosen := v.Pos.Dist(positionOf(snap, v.Head))
		for _, h := range heads {
			if d := v.Pos.Dist(h.Pos); d < chosen-1e-9 {
				t.Errorf("associate %d chose head at %v but head %d is at %v", v.ID, chosen, h.ID, d)
			}
		}
	}
}

func positionOf(s Snapshot, id radio.NodeID) geom.Point {
	v, _ := s.View(id)
	return v.Pos
}

func TestConfigureCellRadiusBound(t *testing.T) {
	// Invariant I₂.₄: associates within R + 2Rt/√3 of their head for
	// inner cells. Boundary cells may exceed it, so only check
	// associates well inside the deployment.
	nw, cfg := configureGrid(t, 100, 450)
	snap := nw.Snapshot()
	bound := cfg.CellRadiusBound()
	for _, v := range snap.Nodes {
		if v.Status != StatusAssociate {
			continue
		}
		if v.Pos.Dist(geom.Point{}) > 450-2*cfg.R {
			continue
		}
		if d := v.Pos.Dist(positionOf(snap, v.Head)); d > bound+1e-9 {
			t.Errorf("inner associate %d at distance %v from head, bound %v", v.ID, d, bound)
		}
	}
}

func TestConfigureChildrenBound(t *testing.T) {
	// Invariant I₂.₃: ≤3 children per head; the big node ≤6.
	nw, _ := configureGrid(t, 100, 450)
	for _, h := range nw.Snapshot().Heads() {
		limit := 3
		if h.IsBig {
			limit = 6
		}
		if len(h.Children) > limit {
			t.Errorf("head %d has %d children (limit %d)", h.ID, len(h.Children), limit)
		}
	}
}

func TestConfigureHeadGraphIsTree(t *testing.T) {
	// Invariant I₁.₂: the head graph is a tree rooted at the big node.
	nw, _ := configureGrid(t, 100, 450)
	snap := nw.Snapshot()
	for _, h := range snap.Heads() {
		if h.IsBig {
			continue
		}
		// Walk to the root; must terminate at the big node without
		// cycles.
		seen := map[radio.NodeID]bool{h.ID: true}
		cur := h
		for !cur.IsBig {
			p, ok := snap.View(cur.Parent)
			if !ok {
				t.Fatalf("head %d has dangling parent %d", cur.ID, cur.Parent)
			}
			if seen[p.ID] {
				t.Fatalf("cycle in head graph at %d", p.ID)
			}
			seen[p.ID] = true
			cur = p
		}
	}
}

func TestConfigureCoverage(t *testing.T) {
	// Fixpoint F₄: every node connected to the big node ends up in a
	// cell (head or associate); no bootup stragglers in a gap-free
	// dense deployment.
	nw, _ := configureGrid(t, 100, 450)
	for _, v := range nw.Snapshot().Nodes {
		if v.Status == StatusBootup {
			t.Errorf("node %d left at bootup (pos %v)", v.ID, v.Pos)
		}
	}
}

func TestConfigureInnerHeadsHaveSixNeighbors(t *testing.T) {
	// Invariant I₂.₁: inner heads have exactly 6 neighboring heads.
	nw, cfg := configureGrid(t, 100, 450)
	snap := nw.Snapshot()
	for _, h := range snap.Heads() {
		if h.Pos.Dist(geom.Point{}) > 450-2*cfg.HeadSpacing() {
			continue // boundary cell
		}
		// Count head-role nodes within the neighbor distance band.
		count := 0
		for _, other := range snap.Heads() {
			if other.ID == h.ID {
				continue
			}
			d := h.Pos.Dist(other.Pos)
			if d <= cfg.NeighborDistMax() {
				count++
			}
		}
		if count != 6 {
			t.Errorf("inner head %d has %d neighbors, want 6", h.ID, count)
		}
	}
}

func TestConfigureConvergenceTimeLinearInRadius(t *testing.T) {
	// Theorem 4: convergence within θ(D_b). Doubling the region radius
	// should roughly double the virtual completion time.
	if testing.Short() {
		t.Skip("scaling test")
	}
	times := make([]float64, 0, 2)
	for _, radius := range []float64{400, 800} {
		cfg := DefaultConfig(100)
		dep, err := field.Grid(radius, cfg.Rt*0.9, 0.1, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		nw := buildNetwork(t, cfg, dep)
		if err := nw.StartConfiguration(); err != nil {
			t.Fatal(err)
		}
		nw.Engine().Run(0)
		times = append(times, nw.Engine().Now())
	}
	ratio := times[1] / times[0]
	if ratio < 1.4 || ratio > 2.8 {
		t.Errorf("time ratio for 2× radius = %v, want ≈2", ratio)
	}
}

func TestSettleAssociatesIdempotentAfterConfigure(t *testing.T) {
	nw, _ := configureGrid(t, 100, 450)
	if changed := nw.SettleAssociates(); changed != 0 {
		t.Errorf("configuration left %d associates on non-best heads", changed)
	}
}

func TestSnapshotExcludesDead(t *testing.T) {
	nw, _ := configureGridFresh(t, 100, 300)
	snap := nw.Snapshot()
	n := len(snap.Nodes)
	victim := snap.Nodes[len(snap.Nodes)-1].ID
	nw.Kill(victim)
	snap2 := nw.Snapshot()
	if len(snap2.Nodes) != n-1 {
		t.Errorf("dead node still in snapshot")
	}
	if _, ok := snap2.View(victim); ok {
		t.Error("victim still visible")
	}
}

func TestMetricsCounted(t *testing.T) {
	nw, _ := configureGrid(t, 100, 300)
	m := nw.Metrics()
	if m.HeadOrgs == 0 || m.HeadsSelected == 0 || m.ReplyMessages == 0 {
		t.Errorf("metrics not recorded: %+v", m)
	}
	if nw.Medium().Stats().Broadcasts == 0 {
		t.Error("no broadcasts recorded")
	}
}

func TestKillIsIdempotent(t *testing.T) {
	nw, _ := configureGridFresh(t, 100, 300)
	id := nw.Snapshot().Nodes[1].ID
	nw.Kill(id)
	nw.Kill(id) // no panic
	if nw.Alive(id) {
		t.Error("killed node alive")
	}
}
