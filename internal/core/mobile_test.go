package core

import (
	"testing"

	"gs3/internal/geom"
	"gs3/internal/radio"
)

// configureMobile builds a configured network running GS³-M.
func configureMobile(t *testing.T, regionRadius float64) (*Network, Config) {
	t.Helper()
	nw, cfg := configureGridFresh(t, 100, regionRadius)
	nw.StartMaintenance(VariantM)
	return nw, cfg
}

func TestBigMoveRetreatsAndAdoptsProxy(t *testing.T) {
	nw, cfg := configureMobile(t, 400)
	big := nw.Node(nw.BigID())
	// Move the big node well away from its IL but into known coverage.
	target := geom.Point{X: cfg.HeadSpacing() / 2, Y: cfg.R / 3}
	nw.Move(nw.BigID(), target)
	runSweeps(nw, 3)

	if big.Status.IsHeadRole() {
		// It may have reclaimed a cell if it landed within Rt of an IL;
		// with this target it should not have.
		if nw.Position(nw.BigID()).Dist(big.IL) > cfg.Rt {
			t.Fatal("big node heads a cell it is too far from")
		}
		t.Skip("big node landed within Rt of an IL; proxy path not exercised")
	}
	if big.Status != StatusBigMove {
		t.Fatalf("big node status = %v, want big_move", big.Status)
	}
	if nw.Proxy(nw.BigID()) == radio.None {
		t.Fatal("no proxy adopted")
	}
	// The proxy is the closest head.
	proxyDist := nw.Medium().Dist(nw.BigID(), nw.Proxy(nw.BigID()))
	for _, h := range nw.Snapshot().Heads() {
		if h.IsBig {
			continue
		}
		if d := target.Dist(h.Pos); d < proxyDist-1e-9 {
			t.Errorf("head %d at %v closer than proxy at %v", h.ID, d, proxyDist)
		}
	}
}

func TestBigMoveProxyBecomesHopRoot(t *testing.T) {
	nw, cfg := configureMobile(t, 400)
	nw.Move(nw.BigID(), geom.Point{X: cfg.HeadSpacing() / 2, Y: cfg.R / 3})
	runSweeps(nw, 6)
	big := nw.Node(nw.BigID())
	if big.Status != StatusBigMove || nw.Proxy(nw.BigID()) == radio.None {
		t.Skip("proxy path not reached")
	}
	if got := nw.Node(nw.Proxy(nw.BigID())).Hops; got != 0 {
		t.Errorf("proxy hops = %d, want 0", got)
	}
	// All other heads have hops = parent's + 1 (tree re-rooted).
	snap := nw.Snapshot()
	views := map[radio.NodeID]NodeView{}
	for _, v := range snap.Nodes {
		views[v.ID] = v
	}
	for _, h := range snap.Heads() {
		if h.ID == nw.Proxy(nw.BigID()) || h.IsBig {
			continue
		}
		p, ok := views[h.Parent]
		if ok && p.IsHead() && h.Hops != p.Hops+1 {
			t.Errorf("head %d hops %d, parent hops %d", h.ID, h.Hops, p.Hops)
		}
	}
}

func TestBigNodeReclaimsCellOnReturn(t *testing.T) {
	nw, cfg := configureMobile(t, 400)
	home := nw.Position(nw.BigID())
	nw.Move(nw.BigID(), geom.Point{X: cfg.HeadSpacing() / 2, Y: cfg.R / 3})
	runSweeps(nw, 4)
	// Return home: the big node must replace whoever heads its old cell.
	nw.Move(nw.BigID(), home)
	runSweeps(nw, 4)
	big := nw.Node(nw.BigID())
	if !big.Status.IsHeadRole() {
		t.Fatalf("big node did not reclaim headship: %v", big.Status)
	}
	if big.IL.Dist(home) > cfg.Rt+1e-9 {
		t.Errorf("big node heads a cell with IL %v away from home", big.IL.Dist(home))
	}
	if nw.Proxy(nw.BigID()) != radio.None {
		t.Error("proxy not cleared after reclaim")
	}
	if big.Hops != 0 {
		t.Errorf("big node hops = %d", big.Hops)
	}
}

func TestBigMoveImpactContained(t *testing.T) {
	// Theorem 11: moving the big node distance d changes the head graph
	// only within a circle of radius √3·d/2 around the segment midpoint
	// (plus one cell of slack for the discrete structure).
	nw, cfg := configureMobile(t, 500)
	runSweeps(nw, 6) // settle parents first

	before := map[radio.NodeID]radio.NodeID{}
	for _, h := range nw.Snapshot().Heads() {
		before[h.ID] = h.Parent
	}

	a := nw.Position(nw.BigID())
	d := 1.8 * cfg.HeadSpacing()
	b := a.Add(geom.Vec{X: d, Y: 0})
	nw.Move(nw.BigID(), b)
	runSweeps(nw, 12)

	mid := a.Midpoint(b)
	// Discrete slack: heads sit up to Rt off their ILs, and a handful
	// of equal-hop tie flips can occur at the 60° lattice-sector
	// boundaries regardless of distance (the paper's bound is for the
	// idealized continuous analysis). Require the bulk of the impact to
	// be contained.
	allowed := 1.7320508*d/2 + cfg.SearchRadius()
	changed, outside := 0, 0
	for _, h := range nw.Snapshot().Heads() {
		old, existed := before[h.ID]
		if !existed || h.IsBig || h.Parent == old {
			continue
		}
		changed++
		if h.Pos.Dist(mid) > allowed {
			outside++
		}
	}
	if changed == 0 {
		t.Fatal("big-node move changed nothing")
	}
	if outside > (changed+4)/5 || outside > 4 {
		t.Errorf("%d of %d parent changes outside the √3d/2 region", outside, changed)
	}
}

func TestSmallNodeMoveRejoins(t *testing.T) {
	nw, cfg := configureMobile(t, 400)
	// Pick an inner associate and teleport it to the other side.
	var victim radio.NodeID = radio.None
	var from geom.Point
	for _, v := range nw.Snapshot().Nodes {
		if v.Status == StatusAssociate && !v.Candidate && v.Pos.Dist(geom.Point{}) < 150 {
			victim, from = v.ID, v.Pos
			break
		}
	}
	if victim == radio.None {
		t.Fatal("no inner associate")
	}
	to := geom.Point{X: -from.X, Y: -from.Y + 40}
	nw.Move(victim, to)
	runSweeps(nw, 3)

	v := nw.Node(victim)
	if v.Status != StatusAssociate {
		t.Fatalf("moved node status = %v", v.Status)
	}
	// Its head must now be local to the new position.
	if d := nw.Medium().Dist(victim, v.Head); d > cfg.SearchRadius() {
		t.Errorf("moved node still attached to a head %v away", d)
	}
}

func TestMovedHeadIsReplaced(t *testing.T) {
	nw, cfg := configureMobile(t, 400)
	h := someSmallHead(t, nw, 400, cfg.HeadSpacing())
	// Move the head beyond Rt of its IL: head shift must replace it.
	nw.Move(h.ID, h.IL.Add(geom.Vec{X: 3 * cfg.Rt, Y: 0}))
	runSweeps(nw, 3*cfg.SanityCheckEvery)

	snap := nw.Snapshot()
	replaced := false
	for _, v := range snap.Heads() {
		if v.ID != h.ID && v.IL.Dist(h.IL) <= cfg.Rt {
			replaced = true
		}
	}
	if !replaced {
		t.Error("no replacement head for the moved head's cell")
	}
	if v := nw.Node(h.ID); v.Status.IsHeadRole() && nw.Position(h.ID).Dist(v.IL) > cfg.Rt {
		t.Error("moved head kept serving a cell it left")
	}
}

func TestMoveDeadNodeIgnored(t *testing.T) {
	nw, _ := configureMobile(t, 300)
	id := nw.Snapshot().Nodes[2].ID
	nw.Kill(id)
	nw.Move(id, geom.Point{X: 1, Y: 1}) // no panic, no resurrection
	if nw.Alive(id) {
		t.Error("moving a dead node revived it")
	}
}
