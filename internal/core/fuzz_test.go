package core

import (
	"encoding/json"
	"testing"

	"gs3/internal/field"
	"gs3/internal/rng"
)

// fuzzSeedSnapshot builds a small configured network and returns its
// marshaled snapshot — a structurally valid starting point for the
// fuzzer to corrupt.
func fuzzSeedSnapshot(f *testing.F) []byte {
	cfg := DefaultConfig(100)
	nw, err := NewNetwork(cfg, testRadioParams(cfg), rng.New(1))
	if err != nil {
		f.Fatal(err)
	}
	dep, err := field.Grid(80, cfg.Rt*0.9, 0.15, rng.New(7))
	if err != nil {
		f.Fatal(err)
	}
	for i, p := range dep.Positions {
		if _, err := nw.AddNode(p, i == 0); err != nil {
			f.Fatal(err)
		}
	}
	if err := nw.StartConfiguration(); err != nil {
		f.Fatal(err)
	}
	nw.Engine().Run(0)
	data, err := json.Marshal(nw.Snapshot())
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzSnapshotUnmarshal feeds corrupt snapshot bytes to UnmarshalJSON:
// it must either decode successfully or return an error — never panic —
// and anything it accepts must survive a marshal/unmarshal round-trip.
func FuzzSnapshotUnmarshal(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"config":{"r":-5}}`))
	f.Add([]byte(`{"config":{"r":100,"rt":0}}`))
	f.Add([]byte(`{"config":{"r":100,"rt":500}}`))
	f.Add([]byte(`{"config":{"r":100,"rt":25},"nodes":[{"status":"bogus"}]}`))
	f.Add([]byte(`{"config":{"r":100,"rt":25},"nodes":[{"id":-1,"status":"head"}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Snapshot
		if err := s.UnmarshalJSON(data); err != nil {
			return
		}
		// Accepted input: the decoded snapshot must re-encode and decode
		// to the same thing (the wire form is a fixpoint).
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted snapshot fails to marshal: %v", err)
		}
		var s2 Snapshot
		if err := s2.UnmarshalJSON(out); err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
	})
}
