package core

import (
	"slices"
	"sync"

	"gs3/internal/geom"
	"gs3/internal/radio"
)

// This file implements the sharded configure executor: the classic
// GS³-S diffusing computation run wave-parallel across worker
// goroutines, byte-identical to the serial path for any worker count.
//
// The serial configure is perfectly round-synchronous on a reliable
// radio: the root's HEAD_ORG fires at t=0 and every head promoted in
// wave k fires its HEAD_ORG at (k+1)·L, where L is the org round
// latency. Within a wave the engine executes events in scheduling
// (seq) order. The executor reproduces exactly that order where it
// matters: two HEAD_ORGs of one wave are ordered only if their
// read/write regions can overlap — they are "in conflict" — and the
// conflict radius is bounded geometrically (see conflictDist). The
// wave is therefore partitioned into levels by a greedy seq-ordered
// graph coloring: an event's level is one past the highest level among
// earlier-seq events it conflicts with. Conflicting events land on
// different levels in seq order; events sharing a level are mutually
// non-conflicting and run concurrently, each against a private orgSink
// that buffers every effect on shared state. Barriers between levels
// apply the deferred medium head-index flips, and a final per-wave
// merge applies topology touches, stats, and metrics in seq order — so
// epoch counters, stats, and metrics advance exactly as the serial
// schedule would have advanced them.

// orgSink is the per-event execution context of a sharded HEAD_ORG: a
// private substitute for the network's scratch buffers, plus deferred
// buffers for every effect the event would have had on shared state.
// Sinks are pooled across waves (reset) so steady-state waves allocate
// only on buffer growth.
type orgSink struct {
	nw *Network

	// par is this event's intra-event parallelism budget: how many
	// goroutines the ASSOCIATE_ORG_RESP loop may fan across (set per
	// level by ConfigureSharded; 1 = serial loop). subs is the pool of
	// per-chunk sub-sinks the fan-out borrows.
	par  int
	subs []*orgSink

	// promoted is the overlay of this event's own head promotions:
	// SetHeadRole is deferred to the level barrier, so the event's own
	// head queries merge these in to see exactly what the serial
	// execution would have seen. Cross-event invisibility is sound
	// because same-level events are farther apart than any query
	// reaches (the conflict radius).
	promoted []promotedHead

	// Deferred effects, applied in event-seq order at the wave merge.
	touches  []radio.NodeID // touch calls, in occurrence order
	children []radio.NodeID // heads to schedule for the next wave
	stats    radio.Stats    // broadcast/query accounting delta
	metrics  Metrics        // protocol counter delta

	// Private scratch mirroring the network's HEAD_ORG buffers.
	queryBuf []radio.NodeID
	caBuf    []radio.NodeID
	recvBuf  []radio.NodeID
	smallBuf []radio.NodeID
	allBuf   []radio.NodeID
	ilBuf    [6]geom.Point
}

// promotedHead is one overlay entry: a node this event promoted, with
// its position for range filtering.
type promotedHead struct {
	id  radio.NodeID
	pos geom.Point
}

// reset clears the sink for reuse, keeping buffer capacity.
func (sk *orgSink) reset() {
	sk.promoted = sk.promoted[:0]
	sk.touches = sk.touches[:0]
	sk.children = sk.children[:0]
	sk.stats = radio.Stats{}
	sk.metrics = Metrics{}
}

// promote records a head promotion in the overlay.
func (sk *orgSink) promote(id radio.NodeID, p geom.Point) {
	sk.promoted = append(sk.promoted, promotedHead{id, p})
}

// broadcast mirrors the reliable-radio Medium.Broadcast — receiver
// query plus accounting — without touching shared state: the stats
// deltas go to the sink and the receiver list into private scratch.
// shardable() guarantees the reliable model (no loss, no faults, no
// blackouts, no traffic trace), under which the real Broadcast does
// exactly this.
func (sk *orgSink) broadcast(sender radio.NodeID, radius float64) []radio.NodeID {
	m := sk.nw.med
	p, ok := m.Position(sender)
	if !ok {
		return nil
	}
	sk.stats.Broadcasts++
	sk.stats.RangeQueries++
	sk.recvBuf = m.WithinRangeUncounted(sk.recvBuf[:0], p, radius, sender)
	sk.stats.Deliveries += uint64(len(sk.recvBuf))
	return sk.recvBuf
}

// headsAt is the sink's counted head query: the uncounted head-grid
// read merged with the event's own promotion overlay, ascending by ID
// — exactly the serial headRoleAt result.
func (sk *orgSink) headsAt(p geom.Point, dist float64) []radio.NodeID {
	sk.stats.RangeQueries++
	sk.queryBuf = sk.nw.med.HeadsWithinRangeUncounted(sk.queryBuf[:0], p, dist, radio.None)
	if len(sk.promoted) > 0 {
		r2 := dist * dist
		for _, ph := range sk.promoted {
			if ph.pos.Dist2(p) <= r2 {
				i, _ := slices.BinarySearch(sk.queryBuf, ph.id)
				sk.queryBuf = slices.Insert(sk.queryBuf, i, ph.id)
			}
		}
	}
	return sk.queryBuf
}

// reachableHeadsAt is the sink's counterpart of the network method: no
// blackouts exist under the shardable() gate, but the filter runs for
// exact behavioral parity.
func (sk *orgSink) reachableHeadsAt(p geom.Point, dist float64) []radio.NodeID {
	heads := sk.headsAt(p, dist)
	out := heads[:0]
	for _, id := range heads {
		if !sk.nw.med.InBlackout(id) {
			out = append(out, id)
		}
	}
	return out
}

// minChooseParallel is the smallest ASSOCIATE_ORG_RESP receiver list
// worth fanning across goroutines; below it the spawn overhead beats
// the per-receiver work (a head query plus a candidate ranking).
const minChooseParallel = 64

// chooseHeadsParallel runs the ASSOCIATE_ORG_RESP loop of one sharded
// HEAD_ORG across up to sk.par goroutines. This is where dense-lattice
// parallelism actually lives: same-wave neighboring HEAD_ORGs conflict
// (their boundary associates hear both), so conflict levels on a dense
// field degenerate to one event each — but within an event, receivers
// are independent. Each re-chooses against the same fixed head set and
// writes only its own node state, so contiguous chunks run concurrently
// on per-chunk sub-sinks; deferred touches are concatenated in chunk
// (= receiver) order and the query counts summed, making the result
// independent of the chunk count and byte-identical to the serial loop.
func (nw *Network) chooseHeadsParallel(recv []radio.NodeID, sk *orgSink) {
	chunks := sk.par
	if m := len(recv) / (minChooseParallel / 2); chunks > m {
		chunks = m
	}
	if chunks < 2 {
		for _, rid := range recv {
			nw.chooseHeadIn(rid, sk)
		}
		return
	}
	for len(sk.subs) < chunks {
		sk.subs = append(sk.subs, &orgSink{nw: nw})
	}
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		sub := sk.subs[c]
		sub.promoted = sk.promoted // read-only during the loop
		part := recv[c*len(recv)/chunks : (c+1)*len(recv)/chunks]
		wg.Add(1)
		go func(sub *orgSink, part []radio.NodeID) {
			defer wg.Done()
			for _, rid := range part {
				nw.chooseHeadIn(rid, sub)
			}
		}(sub, part)
	}
	wg.Wait()
	for c := 0; c < chunks; c++ {
		sub := sk.subs[c]
		sk.touches = append(sk.touches, sub.touches...)
		// chooseHeadIn touches shared accounting only through the head
		// query counter; everything else lands in per-node state.
		sk.stats.RangeQueries += sub.stats.RangeQueries
		sub.promoted = nil
		sub.reset()
	}
}

// conflictDist bounds how far apart two same-wave HEAD_ORGs must be to
// touch disjoint state. An event writes within W = SR+Rt of its head
// (promotions, neighbor links, and every re-choosing associate are
// inside the org broadcast range) and reads within R = 2SR+Rt (an
// associate up to SR+Rt away re-chooses among heads within SR of
// itself). Events farther than W+R = 3SR+2Rt apart can neither read
// each other's writes nor write each other's reads, in either order —
// so they commute and may run concurrently.
func (nw *Network) conflictDist() float64 {
	return 3*nw.cfg.SearchRadius() + 2*nw.cfg.Rt
}

// shardable reports whether the sharded configure executor may run at
// all. Anything that consumes per-delivery randomness, observes
// per-event timing, or mutates state outside the wave model forces the
// serial path: an active fault plan (jitter, loss, blackouts, retry
// timers), a lossy broadcast model, an installed protocol tracer, a
// medium traffic trace, running maintenance sweeps, or a non-empty
// event queue. Obstacles do NOT disqualify: occlusion only filters
// receivers out of a broadcast or range query — a blocked line of
// sight removes a node from the result, it never admits one beyond the
// unoccluded radius — so every read and write of a HEAD_ORG stays
// inside the free-space envelopes the conflict-distance bound above is
// computed from, and the bound holds a fortiori on occluded media.
// (Occlusion's only counter, Stats.OcclusionBlocks, ticks in Unicast
// alone, and configuration never unicasts — so sink accounting stays
// exact too.)
func (nw *Network) shardable() bool {
	return !nw.faults.Active() &&
		!nw.lossy &&
		nw.tracer == nil &&
		!nw.med.Tracing() &&
		!nw.maintaining &&
		nw.eng.Pending() == 0
}

// ConfigureSharded runs the full GS³-S configuration like
// StartConfiguration + Engine().Run(0), but executes each wave of
// HEAD_ORGs on up to workers goroutines. The result — node state,
// snapshot bytes, medium stats, metrics, topology epochs, and the
// engine clock — is byte-identical to the serial path for every
// workers value. With workers ≤ 1, or when the network is not
// shardable() (faults, lossy radio, tracers, running maintenance, or a
// non-empty event queue), it simply runs the serial path.
func (nw *Network) ConfigureSharded(workers int) error {
	if workers <= 1 || !nw.shardable() {
		if err := nw.StartConfiguration(); err != nil {
			return err
		}
		nw.eng.Run(0)
		return nil
	}
	if err := nw.prepareRoot(); err != nil {
		return err
	}

	// The arena free list is single-threaded; park it while worker
	// goroutines run. Link appends fall back to the heap.
	nw.arenaOn = false
	defer func() { nw.arenaOn = true }()

	L := nw.orgLatency()
	// at tracks the current wave's fire time by the serial schedule:
	// each wave's orgs fire L after their parents', and the serial
	// engine computes that by repeated addition (Now()+L per After), so
	// accumulate — never multiply, float64 addition does not distribute
	// and (waves−1)·L can differ from the sum in the last ulp.
	at := nw.eng.Now()
	first := true

	wave := []radio.NodeID{nw.bigID}
	var sinks []*orgSink
	var next []radio.NodeID
	var levels []int32
	for len(wave) > 0 {
		if !first {
			at += L
		}
		first = false
		for len(sinks) < len(wave) {
			sinks = append(sinks, &orgSink{nw: nw})
		}
		levels = planWaveLevels(nw, wave, levels)
		maxLevel := int32(0)
		for _, l := range levels {
			if l > maxLevel {
				maxLevel = l
			}
		}

		for level := int32(1); level <= maxLevel; level++ {
			// Divide the worker budget between across-event fan-out and
			// each event's own ASSOCIATE_ORG_RESP loop. Dense lattices
			// produce one-event levels (adjacent HEAD_ORGs conflict), so
			// the whole budget usually goes intra-event.
			count := 0
			for i := range wave {
				if levels[i] == level {
					count++
				}
			}
			par := workers / count
			if par < 1 {
				par = 1
			}
			for i := range wave {
				if levels[i] == level {
					sinks[i].par = par
				}
			}
			runWaveLevel(nw, wave, levels, level, sinks, workers)
			// Level barrier: install the head-index flips in seq order
			// so the next level's queries (and the final grid) see them.
			for i := range wave {
				if levels[i] != level {
					continue
				}
				for _, ph := range sinks[i].promoted {
					nw.med.SetHeadRole(ph.id, true)
				}
			}
		}

		// Wave merge, in seq order: topology touches (epoch counters
		// advance exactly as under the serial schedule), stats, metrics,
		// and the next wave's HEAD_ORGs in promotion order.
		next = next[:0]
		for i := range wave {
			sk := sinks[i]
			for _, id := range sk.touches {
				nw.touch(id)
			}
			nw.med.AddStats(sk.stats)
			nw.addMetrics(sk.metrics)
			next = append(next, sk.children...)
			sk.reset()
		}
		wave, next = next, wave
	}

	// The serial run's clock ends at the last wave's fire time.
	nw.eng.RunUntil(at)
	return nil
}

// runWaveLevel executes every wave event on the given level
// concurrently on up to workers goroutines. Events are dealt round-
// robin; each runs against its own sink, so the goroutines share only
// read-only state.
func runWaveLevel(nw *Network, wave []radio.NodeID, levels []int32, level int32, sinks []*orgSink, workers int) {
	if workers > len(wave) {
		workers = len(wave)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(wave); i += workers {
				if levels[i] == level {
					nw.headOrg(wave[i], sinks[i])
				}
			}
		}(w)
	}
	wg.Wait()
}

// planWaveLevels assigns each wave event (in seq order) its execution
// level: 1 + the highest level among earlier-seq events within the
// conflict distance, via a bucket grid of conflictDist-sized cells (a
// 3×3 ring covers every candidate pair). The assignment is a pure
// function of event positions and order, so it is identical for every
// worker count. levels is reused as the backing for the result.
func planWaveLevels(nw *Network, wave []radio.NodeID, levels []int32) []int32 {
	levels = levels[:0]
	if cap(levels) < len(wave) {
		levels = make([]int32, 0, len(wave))
	}
	d := nw.conflictDist()
	d2 := d * d
	type cellKey struct{ x, y int }
	cells := make(map[cellKey][]int32, len(wave))
	key := func(p geom.Point) cellKey {
		return cellKey{int(p.X / d), int(p.Y / d)}
	}
	for i, id := range wave {
		p := nw.Position(id)
		level := int32(1)
		base := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range cells[cellKey{base.x + dx, base.y + dy}] {
					if nw.Position(wave[j]).Dist2(p) <= d2 && levels[j] >= level {
						level = levels[j] + 1
					}
				}
			}
		}
		levels = append(levels, level)
		cells[base] = append(cells[base], int32(i))
	}
	return levels
}
