package core

import (
	"encoding/json"
	"fmt"
	"math"

	"gs3/internal/geom"
	"gs3/internal/hexlat"
	"gs3/internal/radio"
)

// snapshotJSON is the stable wire form of a Snapshot. Field names are
// part of the tooling contract (gs3sim -dump, external analysis).
type snapshotJSON struct {
	Config configJSON     `json:"config"`
	Time   float64        `json:"time"`
	BigID  radio.NodeID   `json:"bigId"`
	Nodes  []nodeViewJSON `json:"nodes"`
}

type configJSON struct {
	R                 float64 `json:"r"`
	Rt                float64 `json:"rt"`
	GR                float64 `json:"gr"`
	HeartbeatInterval float64 `json:"heartbeatInterval"`
}

type nodeViewJSON struct {
	ID        radio.NodeID   `json:"id"`
	X         float64        `json:"x"`
	Y         float64        `json:"y"`
	IsBig     bool           `json:"isBig,omitempty"`
	Status    string         `json:"status"`
	ILX       float64        `json:"ilX,omitempty"`
	ILY       float64        `json:"ilY,omitempty"`
	OILX      float64        `json:"oilX,omitempty"`
	OILY      float64        `json:"oilY,omitempty"`
	ICC       int            `json:"icc,omitempty"`
	ICP       int            `json:"icp,omitempty"`
	Parent    radio.NodeID   `json:"parent"`
	Children  []radio.NodeID `json:"children,omitempty"`
	Neighbors []radio.NodeID `json:"neighbors,omitempty"`
	Hops      int            `json:"hops,omitempty"`
	Head      radio.NodeID   `json:"head"`
	Candidate bool           `json:"candidate,omitempty"`
	Proxy     radio.NodeID   `json:"proxy"`
	Energy    float64        `json:"energy,omitempty"`
	Blackout  bool           `json:"blackout,omitempty"`
}

var statusByName = func() map[string]Status {
	out := make(map[string]Status, len(statusNames))
	for s, n := range statusNames {
		out[n] = s
	}
	return out
}()

// MarshalJSON encodes the snapshot in the stable wire form.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	out := snapshotJSON{
		Config: configJSON{
			R: s.Config.R, Rt: s.Config.Rt, GR: s.Config.GR,
			HeartbeatInterval: s.Config.HeartbeatInterval,
		},
		Time:  s.Time,
		BigID: s.BigID,
	}
	for _, v := range s.Nodes {
		out.Nodes = append(out.Nodes, nodeViewJSON{
			ID: v.ID, X: v.Pos.X, Y: v.Pos.Y, IsBig: v.IsBig,
			Status: v.Status.String(),
			ILX:    v.IL.X, ILY: v.IL.Y, OILX: v.OIL.X, OILY: v.OIL.Y,
			ICC: int(v.Spiral.ICC), ICP: int(v.Spiral.ICP),
			Parent: v.Parent, Children: v.Children, Neighbors: v.Neighbors,
			Hops: v.Hops, Head: v.Head, Candidate: v.Candidate,
			Proxy: v.Proxy, Energy: v.Energy, Blackout: v.Blackout,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the stable wire form.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var in snapshotJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	if !(in.Config.R > 0) || math.IsInf(in.Config.R, 0) {
		return fmt.Errorf("core: decode snapshot: bad R %v", in.Config.R)
	}
	cfg := DefaultConfig(in.Config.R)
	cfg.Rt = in.Config.Rt
	if !(cfg.Rt > 0) || cfg.Rt > cfg.R {
		return fmt.Errorf("core: decode snapshot: bad Rt %v for R %v", cfg.Rt, cfg.R)
	}
	cfg.GR = in.Config.GR
	if math.IsNaN(cfg.GR) || math.IsInf(cfg.GR, 0) {
		return fmt.Errorf("core: decode snapshot: bad GR %v", cfg.GR)
	}
	if in.Config.HeartbeatInterval > 0 {
		cfg.HeartbeatInterval = in.Config.HeartbeatInterval
	}
	out := Snapshot{Config: cfg, Time: in.Time, BigID: in.BigID}
	for _, v := range in.Nodes {
		st, ok := statusByName[v.Status]
		if !ok {
			return fmt.Errorf("core: decode snapshot: unknown status %q", v.Status)
		}
		out.Nodes = append(out.Nodes, NodeView{
			ID: v.ID, Pos: geom.Point{X: v.X, Y: v.Y}, IsBig: v.IsBig,
			Status: st,
			IL:     geom.Point{X: v.ILX, Y: v.ILY},
			OIL:    geom.Point{X: v.OILX, Y: v.OILY},
			Spiral: hexlat.SpiralIndex{ICC: int32(v.ICC), ICP: int32(v.ICP)},
			Parent: v.Parent, Children: v.Children, Neighbors: v.Neighbors,
			Hops: v.Hops, Head: v.Head, Candidate: v.Candidate,
			Proxy: v.Proxy, Energy: v.Energy, Blackout: v.Blackout,
		})
	}
	*s = out
	return nil
}
