package core

import (
	"testing"
)

// perSendNetwork builds a configured network with the per-send energy
// model active: big batteries, zero duty dissipation (so every joule
// lost is a transmission), and maintenance running.
func perSendNetwork(t *testing.T) *Network {
	t.Helper()
	nw, _ := configureGridFresh(t, 100, 400)
	nw.cfg.InitialEnergy = 1e6
	nw.cfg.AssociateDissipation = 0
	nw.cfg.BroadcastCost = 0.5
	nw.cfg.UnicastCost = 0.25
	for _, id := range nw.SortedIDs() {
		nw.SetEnergy(id, 1e6)
	}
	nw.StartMaintenance(VariantD)
	return nw
}

func TestPerSendCostsDrainSenders(t *testing.T) {
	nw := perSendNetwork(t)
	runSweeps(nw, 5)
	drained := 0
	for _, v := range nw.Snapshot().Nodes {
		if v.IsBig {
			continue
		}
		if v.Energy > 1e6 {
			t.Fatalf("node %d gained energy: %v", v.ID, v.Energy)
		}
		if v.Energy < 1e6 {
			drained++
		}
	}
	if drained == 0 {
		t.Error("no node paid for any transmission in 5 sweeps")
	}
	// Total drain must equal what the medium actually sent during the
	// sweeps (the big node sends for free, so only bound from above).
	stats := nw.med.Stats()
	maxDrain := 0.5*float64(stats.Broadcasts) + 0.25*float64(stats.Unicasts)
	var total float64
	for _, v := range nw.Snapshot().Nodes {
		total += 1e6 - v.Energy
	}
	if total <= 0 || total > maxDrain {
		t.Errorf("total drain %v outside (0, %v]", total, maxDrain)
	}
}

func TestEnergyDepletionKillsAfterAction(t *testing.T) {
	nw := perSendNetwork(t)
	victim := someSmallHead(t, nw, 400, nw.cfg.HeadSpacing())
	// One broadcast (cost 0.5) empties this battery; death must follow
	// at the latest after the periodic boundary rescan (every 5th
	// sweep), which every head's inter-cell duty runs unconditionally.
	nw.SetEnergy(victim.ID, 0.4)
	runSweeps(nw, 6)
	if n := nw.node(victim.ID); n.Status != StatusDead {
		t.Fatalf("depleted head still %v with energy %v", n.Status, nw.Energy(victim.ID))
	}
	// Healing proceeds: a head-role node reappears near the victim's IL.
	runSweeps(nw, 4)
	found := false
	for _, h := range nw.Snapshot().Heads() {
		if h.IL.Dist(victim.IL) < nw.cfg.Rt && h.ID != victim.ID {
			found = true
		}
	}
	if !found {
		t.Error("no replacement head after energy death")
	}
}

func TestSendCostsDisableSweepCache(t *testing.T) {
	nw, _ := configureGridFresh(t, 100, 200)
	if !nw.cacheable() {
		t.Fatal("baseline network should be cacheable")
	}
	nw.cfg.InitialEnergy = 100
	nw.cfg.BroadcastCost = 1
	if nw.cacheable() {
		t.Error("per-send costs must force the full sweep path")
	}
	nw.cfg.BroadcastCost = 0
	if !nw.cacheable() {
		t.Error("zero-cost energy model should not disable the cache")
	}
}

func TestSendHookRemovedOnStop(t *testing.T) {
	nw := perSendNetwork(t)
	runSweeps(nw, 1)
	nw.StopMaintenance()
	victim := someSmallHead(t, nw, 400, nw.cfg.HeadSpacing())
	before := nw.Energy(victim.ID)
	nw.med.Broadcast(victim.ID, nw.cfg.SearchRadius())
	if got := nw.Energy(victim.ID); got != before {
		t.Errorf("broadcast after StopMaintenance drained %v", before-got)
	}
}
