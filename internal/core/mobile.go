package core

import (
	"math"

	"gs3/internal/radio"
	"gs3/internal/trace"
)

// sweepBig is the big node's maintenance round. In dynamic networks
// (GS³-D) the big node participates through BIG_SLIDE: it cedes the head
// role when its cell's IL slides away and reclaims it when the IL
// returns. In mobile networks (GS³-M) it additionally runs BIG_MOVE:
// when it has moved more than Rt from its cell's IL it retreats,
// appoints the closest head as its proxy (distance-to-big 0), and
// reclaims headship when it re-enters the Rt-disk of some cell's IL.
func (nw *Network) sweepBig(b *Node) {
	switch b.Status {
	case StatusHead, StatusWork:
		nw.bigAsHead(b)
	case StatusBigSlide:
		nw.bigSlide(b)
	case StatusBigMove:
		nw.bigMove(b)
	case StatusBootup:
		// A freshly perturbed big node re-enters through the same path
		// as BIG_MOVE: adopt a proxy, then reclaim a cell.
		nw.setStatus(b, StatusBigMove)
		nw.touch(b.ID)
		nw.bigMove(b)
	}
}

// bigAsHead runs while the big node holds the head role.
func (nw *Network) bigAsHead(b *Node) {
	pos := nw.Position(b.ID)
	if pos.Dist(b.IL) > nw.cfg.Rt {
		// The big node is no longer a legal head for its cell (it moved,
		// or the cell shifted under it).
		candidates := nw.Candidates(b.ID)
		if best, ok := BestCandidate(b.IL, nw.cfg.GR, candidates, nw.Position); ok {
			nw.transferHeadRole(b, nw.node(best))
			nw.metrics.HeadShifts++
		} else {
			// Nobody can take the cell over; abandon it.
			nw.AbandonCell(b.ID)
		}
		if nw.variant == VariantM {
			nw.setStatus(b, StatusBigMove)
			nw.touch(b.ID)
			nw.adoptProxy(b)
		}
		return
	}
	// Normal head duties.
	nw.headIntraCell(b)
	if b.Status.IsHeadRole() {
		nw.headInterCell(b)
	}
}

// bigSlide implements BIG_SLIDE: while the head level structure slides,
// the big node stays an ordinary cell member; it resumes the head role
// when the current IL of the cell it sits in comes back within Rt.
func (nw *Network) bigSlide(b *Node) {
	if nw.variant == VariantM {
		// In mobile networks the big node handles this state as a move.
		nw.setStatus(b, StatusBigMove)
		nw.touch(b.ID)
		nw.bigMove(b)
		return
	}
	nw.reclaimIfPossible(b)
}

// bigMove implements BIG_MOVE: keep the closest head as proxy and
// reclaim headship when possible.
func (nw *Network) bigMove(b *Node) {
	if nw.reclaimIfPossible(b) {
		return
	}
	nw.adoptProxy(b)
}

// reclaimIfPossible replaces the head of a cell whose current IL is
// within Rt of the big node (the paper's replacing_head message) and
// returns true on success.
func (nw *Network) reclaimIfPossible(b *Node) bool {
	pos := nw.Position(b.ID)
	for _, hid := range nw.headRoleAt(pos, nw.cfg.SearchRadius()) {
		h := nw.node(hid)
		if h.IsBig {
			continue
		}
		if pos.Dist(h.IL) <= nw.cfg.Rt {
			nw.clearProxy(b)
			nw.transferHeadRole(h, b)
			nw.metrics.HeadShifts++
			nw.emit(trace.KindBigReclaim, b.ID, h.ID, h.IL)
			return true
		}
	}
	return false
}

// adoptProxy points the big node at the closest alive head and lets the
// head-graph distances re-root there (ParentSeek treats the proxy as
// distance 0).
func (nw *Network) adoptProxy(b *Node) {
	pos := nw.Position(b.ID)
	best := radio.None
	bestD := math.Inf(1)
	for _, hid := range nw.headRoleAt(pos, nw.cfg.SearchRadius()) {
		if nw.node(hid).IsBig {
			continue
		}
		if d := nw.med.Dist(b.ID, hid); d < bestD {
			best, bestD = hid, d
		}
	}
	if bc := nw.coldOf(b.ID); best != radio.None && best != bc.Proxy {
		bc.Proxy = best
		nw.touch(b.ID)
		nw.emit(trace.KindProxyChange, b.ID, best, pos)
	}
}

// clearProxy drops the proxy relationship when the big node resumes a
// head role.
func (nw *Network) clearProxy(b *Node) {
	if bc := nw.coldOf(b.ID); bc.Proxy != radio.None {
		bc.Proxy = radio.None
		nw.touch(b.ID)
	}
}
