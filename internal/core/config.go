// Package core implements the GS³ protocol itself: the node state
// machine and the network-level actions of GS³-S (self-configuration in
// static networks), GS³-D (self-healing in dynamic networks), and GS³-M
// (mobile dynamic networks).
//
// The implementation follows the paper's granularity: each algorithm
// module (HEAD_ORG, HEAD_SELECT, intra-/inter-cell maintenance, sanity
// checking, …) executes as one atomic action on the simulated network,
// and actions are charged virtual-time costs derived from the radio
// model, so the convergence-time theorems can be checked directly.
package core

import (
	"fmt"
	"math"
)

// Config holds the protocol parameters.
type Config struct {
	// R is the ideal cell radius (problem statement requirement a).
	R float64
	// Rt is the radius tolerance: with high probability every disk of
	// radius Rt contains a node. The paper's default is R/4.
	Rt float64
	// GR is the global reference direction (radians) diffused with the
	// computation. Any value works; it must only be consistent.
	GR float64

	// HeartbeatInterval is the period of the intra-/inter-cell
	// maintenance sweeps.
	HeartbeatInterval float64
	// BoundaryRescanEvery is how many sweeps pass between a boundary
	// head's HEAD_ORG re-scans for newly appeared nodes.
	BoundaryRescanEvery int
	// SanityCheckEvery is how many sweeps pass between SANITY_CHECK
	// executions at a head (the paper runs it "with low frequency").
	SanityCheckEvery int

	// AbandonSlack is the extra deviation (beyond the invariant's
	// ±2·Rt) of the shifted IL's distance-to-neighbor-ILs that triggers
	// cell abandonment.
	AbandonSlack float64

	// OrgRetries bounds how many times a head re-issues its
	// organization broadcast after a timeout finds its neighborhood
	// still incomplete — the liveness repair for HEAD_ORG replies lost
	// by an unreliable radio. Retry timers are armed only when a fault
	// injector is active: a reliable radio never drops a reply, so
	// re-issuing could only repeat work the proofs already cover.
	OrgRetries int
	// RetryBackoff is the initial re-issue timeout in units of one
	// HEAD_ORG round latency; the wait doubles after every retry.
	RetryBackoff float64

	// InitialEnergy is each small node's energy budget; 0 disables the
	// energy model. The big node never runs out.
	InitialEnergy float64
	// AssociateDissipation is energy consumed per unit time by an
	// associate; heads consume HeadEnergyFactor times as much. These
	// drive the cell-shift "slide" behaviour of §4.1.
	AssociateDissipation float64
	HeadEnergyFactor     float64

	// BroadcastCost and UnicastCost are the per-transmission energy
	// drains: each actual send during maintenance subtracts the matching
	// cost from the sender's battery, on top of the per-sweep duty
	// dissipation above. Both default to 0 (duty-only model); they take
	// effect only when InitialEnergy > 0. A node whose battery a send
	// empties dies — after the in-flight action completes, never inside
	// it.
	BroadcastCost float64
	UnicastCost   float64
}

// DefaultConfig returns the parameters used throughout the paper's
// examples: Rt = R/4 (the default named in the proof of I₂.₃).
func DefaultConfig(r float64) Config {
	return Config{
		R:                    r,
		Rt:                   r / 4,
		GR:                   0,
		HeartbeatInterval:    1,
		BoundaryRescanEvery:  5,
		SanityCheckEvery:     7,
		AbandonSlack:         0,
		OrgRetries:           4,
		RetryBackoff:         2,
		InitialEnergy:        0,
		AssociateDissipation: 1,
		HeadEnergyFactor:     5,
	}
}

// Validate reports parameter errors.
func (c Config) Validate() error {
	if c.R <= 0 {
		return fmt.Errorf("core: R must be positive, got %v", c.R)
	}
	if c.Rt <= 0 || c.Rt > c.R {
		return fmt.Errorf("core: Rt must be in (0, R], got %v", c.Rt)
	}
	if c.HeartbeatInterval <= 0 {
		return fmt.Errorf("core: HeartbeatInterval must be positive, got %v", c.HeartbeatInterval)
	}
	if c.BoundaryRescanEvery <= 0 || c.SanityCheckEvery <= 0 {
		return fmt.Errorf("core: rescan/sanity periods must be positive")
	}
	if c.OrgRetries < 0 {
		return fmt.Errorf("core: negative OrgRetries %d", c.OrgRetries)
	}
	if c.RetryBackoff <= 0 {
		return fmt.Errorf("core: RetryBackoff must be positive, got %v", c.RetryBackoff)
	}
	if c.InitialEnergy < 0 || c.AssociateDissipation < 0 || c.HeadEnergyFactor < 0 {
		return fmt.Errorf("core: energy parameters must be non-negative")
	}
	if c.BroadcastCost < 0 || c.UnicastCost < 0 {
		return fmt.Errorf("core: per-send energy costs must be non-negative")
	}
	return nil
}

// HeadSpacing returns √3·R, the ideal distance between neighboring cell
// heads.
func (c Config) HeadSpacing() float64 {
	return math.Sqrt(3) * c.R
}

// SearchRadius returns √3·R + 2·Rt, the radius of a head's search
// region and the range of all local coordination in GS³.
func (c Config) SearchRadius() float64 {
	return c.HeadSpacing() + 2*c.Rt
}

// Alpha returns the angular slack a = asin(Rt/(√3·R)) that widens a
// head's search sector so boundary nodes are not missed (paper §3.2).
func (c Config) Alpha() float64 {
	return math.Asin(c.Rt / c.HeadSpacing())
}

// NeighborDistMin and NeighborDistMax bound the distance between
// neighboring heads with equal ⟨ICC, ICP⟩ (invariant I₂.₁/Corollary 1).
func (c Config) NeighborDistMin() float64 { return c.HeadSpacing() - 2*c.Rt }

// NeighborDistMax is the upper bound of Corollary 1.
func (c Config) NeighborDistMax() float64 { return c.HeadSpacing() + 2*c.Rt }

// CellRadiusBound returns R + 2·Rt/√3, the maximum associate-to-head
// distance of invariant I₂.₄ for inner cells.
func (c Config) CellRadiusBound() float64 {
	return c.R + 2*c.Rt/math.Sqrt(3)
}
