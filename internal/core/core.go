package core
