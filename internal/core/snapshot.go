package core

import (
	"slices"

	"gs3/internal/geom"
	"gs3/internal/hexlat"
	"gs3/internal/radio"
)

// NodeView is an immutable copy of one node's protocol state, taken for
// invariant checking, metrics, and rendering.
type NodeView struct {
	ID        radio.NodeID
	Pos       geom.Point
	IsBig     bool
	Status    Status
	IL        geom.Point
	OIL       geom.Point
	Spiral    hexlat.SpiralIndex
	Parent    radio.NodeID
	Children  []radio.NodeID
	Neighbors []radio.NodeID
	Hops      int
	Head      radio.NodeID
	Candidate bool
	Proxy     radio.NodeID
	Energy    float64
	// Blackout marks a node transiently down (fault layer): its state
	// is intact but it neither transmits nor hears until it restores.
	// Always false without an active fault injector.
	Blackout bool
}

// IsHead reports whether the node holds the head role in this view.
func (v NodeView) IsHead() bool {
	return v.Status.IsHeadRole()
}

// Snapshot is a consistent copy of the whole network state.
type Snapshot struct {
	Config Config
	Time   float64
	BigID  radio.NodeID
	// Obstacles are the medium's occluding polygons at snapshot time
	// (shared read-only with the medium, which copies on install; nil in
	// free space). The invariant checker consults them so clauses about
	// what a node can hear respect the links occlusion kills.
	Obstacles []geom.Polygon
	// Nodes holds the views in strictly ascending ID order with dead
	// nodes excluded. The ordering is load-bearing: View binary-searches
	// it, and the invariant checker's indexes rely on it for
	// deterministic iteration. Network.Snapshot builds it from
	// SortedIDs, which guarantees the order.
	Nodes []NodeView
}

// Snapshot captures the current network state. Dead nodes are omitted:
// they have left the system model.
//
// All per-view Children/Neighbors clones are carved from one backing
// array sized by a counting pre-pass, so a snapshot costs three
// allocations regardless of node count. Empty lists stay nil, matching
// what a per-view clone would produce.
func (nw *Network) Snapshot() Snapshot {
	s := Snapshot{Config: nw.cfg, Time: nw.eng.Now(), BigID: nw.bigID, Obstacles: nw.med.Obstacles()}
	ids := nw.SortedIDs()
	alive, links := 0, 0
	for _, id := range ids {
		n := nw.node(id)
		if n == nil || n.Status == StatusDead {
			continue
		}
		alive++
		links += len(n.Children) + len(n.Neighbors)
	}
	s.Nodes = make([]NodeView, 0, alive)
	backing := make([]radio.NodeID, 0, links)
	clone := func(src []radio.NodeID) []radio.NodeID {
		if len(src) == 0 {
			return nil
		}
		start := len(backing)
		backing = append(backing, src...)
		return backing[start:len(backing):len(backing)]
	}
	for _, id := range ids {
		n := nw.node(id)
		if n == nil || n.Status == StatusDead {
			continue
		}
		s.Nodes = append(s.Nodes, NodeView{
			ID:        id,
			Pos:       nw.Position(id),
			IsBig:     n.IsBig,
			Status:    n.Status,
			IL:        n.IL,
			OIL:       n.OIL,
			Spiral:    n.Spiral,
			Parent:    n.Parent,
			Children:  clone(n.Children),
			Neighbors: clone(n.Neighbors),
			Hops:      int(n.Hops),
			Head:      n.Head,
			Candidate: n.Candidate,
			Proxy:     nw.coldOf(id).Proxy,
			Energy:    nw.coldOf(id).Energy,
			Blackout:  nw.med.InBlackout(id),
		})
	}
	return s
}

// Heads returns the views of all head-role nodes.
func (s Snapshot) Heads() []NodeView {
	var out []NodeView
	for _, v := range s.Nodes {
		if v.IsHead() {
			out = append(out, v)
		}
	}
	return out
}

// View returns the view of node id, or (zero, false). It binary-searches
// Nodes, which is ascending by ID by construction.
func (s Snapshot) View(id radio.NodeID) (NodeView, bool) {
	i, ok := slices.BinarySearchFunc(s.Nodes, id, func(v NodeView, id radio.NodeID) int {
		return int(v.ID - id)
	})
	if !ok {
		return NodeView{}, false
	}
	return s.Nodes[i], true
}

// Members returns the IDs of the associates of head id in this
// snapshot.
func (s Snapshot) Members(id radio.NodeID) []radio.NodeID {
	var out []radio.NodeID
	for _, v := range s.Nodes {
		if v.Status == StatusAssociate && v.Head == id {
			out = append(out, v.ID)
		}
	}
	return out
}

// CorruptionKind selects a state-corruption perturbation.
type CorruptionKind int

// Kinds of state corruption the harness can inject (paper: "node state
// corruptions" are arbitrary; these cover the protocol-relevant state).
const (
	CorruptIL CorruptionKind = iota + 1
	CorruptHops
	CorruptStatus
)

// Corrupt injects a state corruption at node id: displace its IL, smash
// its hop count, or flip an associate into a bogus head. delta scales
// the damage (for CorruptIL it is the displacement distance). Healing is
// left to sanity checking and the maintenance sweeps.
func (nw *Network) Corrupt(id radio.NodeID, kind CorruptionKind, delta float64) {
	n := nw.node(id)
	if n == nil || n.Status == StatusDead {
		return
	}
	// Corruption is a topology-visible state change like any other.
	nw.touch(id)
	switch kind {
	case CorruptIL:
		if n.Status.IsHeadRole() {
			n.IL = n.IL.Add(geom.UnitAt(float64(id)).Scale(delta))
		}
	case CorruptHops:
		if n.Status.IsHeadRole() {
			n.Hops = int32(delta)
		}
	case CorruptStatus:
		if n.Status == StatusAssociate {
			// The node wrongly believes it is a head of a cell at its
			// own position — a classic arbitrary-state start.
			nw.setStatus(n, StatusWork)
			n.IL = nw.Position(id)
			n.OIL = n.IL
			n.Spiral = hexlat.SpiralIndex{}
			n.Parent = radio.None
			n.Hops = unknownHops
		}
	}
}
