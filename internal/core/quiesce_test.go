package core

import (
	"testing"

	"gs3/internal/radio"
)

// TestStopMaintenanceDrainsEngine pins the fix for the retention bug:
// StopMaintenance must eagerly remove every queued sweep batch and
// jittered per-node timer from the engine, so no closure keeps the
// Network reachable after the caller is done with it.
func TestStopMaintenanceDrainsEngine(t *testing.T) {
	nw, _ := configureDynamic(t, 300)
	runSweeps(nw, 3)
	if nw.Engine().Pending() == 0 {
		t.Fatal("expected queued sweep events while maintaining")
	}
	nw.StopMaintenance()
	if got := nw.Engine().Pending(); got != 0 {
		t.Fatalf("Engine().Pending() = %d after StopMaintenance, want 0", got)
	}
	if len(nw.pending) != 0 || len(nw.batches) != 0 {
		t.Fatalf("batch bookkeeping not cleared: pending=%d batches=%d",
			len(nw.pending), len(nw.batches))
	}
	// Restart must work from the drained state.
	nw.StartMaintenance(VariantD)
	if nw.Engine().Pending() == 0 {
		t.Fatal("restart scheduled nothing")
	}
	runSweeps(nw, 2)
	nw.StopMaintenance()
	if got := nw.Engine().Pending(); got != 0 {
		t.Fatalf("Engine().Pending() = %d after second stop, want 0", got)
	}
}

// TestQuiescentSweepZeroAllocs pins the steady-state fast path at zero
// heap allocations: once a node's recorded sweep is current, replaying
// it must not allocate. The pin covers a head (both plain and rescan
// flavors recorded) and an associate.
func TestQuiescentSweepZeroAllocs(t *testing.T) {
	nw, _ := configureDynamic(t, 300)
	// Enough rounds for every node to record both sweep flavors and for
	// heads to pass (and record) a sanity check.
	runSweeps(nw, 40)

	var headID, assocID radio.NodeID = radio.None, radio.None
	for _, id := range nw.SortedIDs() {
		n := nw.node(id)
		if n == nil || n.IsBig || n.Status == StatusDead {
			continue
		}
		c := nw.cacheFor(id)
		if n.Status.IsHeadRole() && c.plain.valid && c.rescan.valid && c.sane {
			if headID == radio.None {
				headID = id
			}
		}
		if n.Status == StatusAssociate && c.plain.valid {
			if assocID == radio.None {
				assocID = id
			}
		}
	}
	if headID == radio.None || assocID == radio.None {
		t.Fatalf("no cached head/associate after settling: head=%v assoc=%v", headID, assocID)
	}

	for _, tc := range []struct {
		name string
		id   radio.NodeID
	}{
		{"head", headID},
		{"associate", assocID},
	} {
		id := tc.id
		allocs := testing.AllocsPerRun(100, func() {
			if !nw.sweepOnce(id) {
				t.Fatal("quiescent sweep asked not to reschedule")
			}
		})
		if allocs != 0 {
			t.Errorf("%s quiescent sweepOnce: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestQuiescentSweepReplaysAccounting checks the replay is not a silent
// skip: an elided sweep must add exactly the recorded counter deltas.
func TestQuiescentSweepReplaysAccounting(t *testing.T) {
	nw, _ := configureDynamic(t, 300)
	runSweeps(nw, 40)

	var n *Node
	for _, id := range nw.SortedIDs() {
		cand := nw.node(id)
		if cand != nil && !cand.IsBig && cand.Status == StatusAssociate && nw.cacheFor(id).plain.valid {
			n = cand
			break
		}
	}
	if n == nil {
		t.Fatal("no cached associate after settling")
	}
	want := nw.cacheFor(n.ID).plain
	statsBefore := nw.med.Stats()
	metricsBefore := nw.metrics
	if !nw.quiescentSweep(n) {
		t.Fatal("quiescentSweep declined a valid cached associate")
	}
	if got := nw.med.Stats().Sub(statsBefore); got != want.statsDelta() {
		t.Errorf("replayed stats delta = %+v, want %+v", got, want.statsDelta())
	}
	if got := nw.metrics.sub(metricsBefore); got != want.metricsDelta() {
		t.Errorf("replayed metrics delta = %+v, want %+v", got, want.metricsDelta())
	}
}
