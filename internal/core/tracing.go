package core

import (
	"gs3/internal/geom"
	"gs3/internal/radio"
	"gs3/internal/trace"
)

// SetTracer installs a protocol event log; pass nil to disable tracing.
// The engine is single-threaded, so the log needs no synchronization.
func (nw *Network) SetTracer(l *trace.Log) {
	nw.tracer = l
}

// Tracer returns the installed event log, or nil.
func (nw *Network) Tracer() *trace.Log {
	return nw.tracer
}

// emit records a protocol event when tracing is enabled.
func (nw *Network) emit(kind trace.Kind, node, other radio.NodeID, pos geom.Point) {
	if nw.tracer == nil {
		return
	}
	nw.tracer.Record(trace.Event{
		Time:  nw.eng.Now(),
		Kind:  kind,
		Node:  node,
		Other: other,
		Pos:   pos,
	})
}
