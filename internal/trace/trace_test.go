package trace

import (
	"strings"
	"testing"

	"gs3/internal/geom"
	"gs3/internal/radio"
)

func TestKindString(t *testing.T) {
	if KindHeadShift.String() != "head_shift" || KindJoin.String() != "join" {
		t.Error("kind names wrong")
	}
	if Kind(0).String() != "invalid" {
		t.Error("zero kind should be invalid")
	}
}

func TestRecordAndEvents(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 3; i++ {
		l.Record(Event{Time: float64(i), Kind: KindJoin, Node: radio.NodeID(i)})
	}
	evs := l.Events()
	if len(evs) != 3 || l.Len() != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	for i, e := range evs {
		if e.Time != float64(i) {
			t.Errorf("order broken at %d", i)
		}
	}
	if l.Dropped() != 0 {
		t.Errorf("dropped = %d", l.Dropped())
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 7; i++ {
		l.Record(Event{Time: float64(i), Kind: KindDeath})
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d", len(evs))
	}
	if evs[0].Time != 4 || evs[2].Time != 6 {
		t.Errorf("wrong window: %v..%v", evs[0].Time, evs[2].Time)
	}
	if l.Dropped() != 4 {
		t.Errorf("dropped = %d", l.Dropped())
	}
}

func TestFilterAndCounts(t *testing.T) {
	l := NewLog(10)
	l.Record(Event{Kind: KindJoin})
	l.Record(Event{Kind: KindDeath})
	l.Record(Event{Kind: KindJoin})
	if got := len(l.Filter(KindJoin)); got != 2 {
		t.Errorf("joins = %d", got)
	}
	c := l.Counts()
	if c[KindJoin] != 2 || c[KindDeath] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 1.5, Kind: KindHeadShift, Node: 3, Other: 9, Pos: geom.Point{X: 1, Y: 2}}
	s := e.String()
	for _, want := range []string{"head_shift", "node=3", "other=9", "t=1.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	solo := Event{Kind: KindDeath, Node: 4, Other: radio.None}
	if strings.Contains(solo.String(), "other=") {
		t.Error("solo event printed other")
	}
}

func TestDump(t *testing.T) {
	l := NewLog(2)
	l.Record(Event{Kind: KindJoin, Other: radio.None})
	l.Record(Event{Kind: KindDeath, Other: radio.None})
	l.Record(Event{Kind: KindJoin, Other: radio.None})
	d := l.Dump()
	if !strings.Contains(d, "dropped") {
		t.Errorf("dump missing drop note:\n%s", d)
	}
	if strings.Count(d, "\n") != 3 {
		t.Errorf("dump lines = %d", strings.Count(d, "\n"))
	}
}

func TestNewLogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLog(0) did not panic")
		}
	}()
	NewLog(0)
}
