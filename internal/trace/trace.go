// Package trace records structured protocol events — head selections,
// shifts, abandonments, sanity retreats, proxy changes — so runs can be
// audited and debugged without string-grepping logs. The event engine
// is single-threaded, so the log needs no locking.
package trace

import (
	"fmt"
	"strings"

	"gs3/internal/geom"
	"gs3/internal/radio"
)

// Kind classifies a protocol event.
type Kind int

// Event kinds, one per externally meaningful protocol transition.
const (
	KindHeadSelected  Kind = iota + 1 // HEAD_SELECT promoted a node
	KindHeadOrg                       // a head ran HEAD_ORG / rescan
	KindHeadShift                     // head role handed to a candidate
	KindCellShift                     // STRENGTHEN_CELL advanced the IL
	KindAbandon                       // cell abandoned
	KindSanityRetreat                 // head retreated as corrupt
	KindPromotion                     // candidates elected a new head
	KindJoin                          // node joined the network
	KindDeath                         // node died / was killed
	KindParentChange                  // head switched parents
	KindProxyChange                   // big node adopted a proxy
	KindBigReclaim                    // big node reclaimed headship
)

var kindNames = map[Kind]string{
	KindHeadSelected:  "head_selected",
	KindHeadOrg:       "head_org",
	KindHeadShift:     "head_shift",
	KindCellShift:     "cell_shift",
	KindAbandon:       "cell_abandoned",
	KindSanityRetreat: "sanity_retreat",
	KindPromotion:     "candidate_promotion",
	KindJoin:          "join",
	KindDeath:         "death",
	KindParentChange:  "parent_change",
	KindProxyChange:   "proxy_change",
	KindBigReclaim:    "big_reclaim",
}

// String returns the event kind's wire name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "invalid"
}

// Event is one recorded protocol transition.
type Event struct {
	Time  float64
	Kind  Kind
	Node  radio.NodeID // primary subject
	Other radio.NodeID // counterpart (new head, parent, proxy, …)
	Pos   geom.Point   // location the event concerns (IL or position)
}

// String renders the event as one log line.
func (e Event) String() string {
	if e.Other != radio.None {
		return fmt.Sprintf("t=%.3f %s node=%d other=%d at=(%.1f,%.1f)",
			e.Time, e.Kind, e.Node, e.Other, e.Pos.X, e.Pos.Y)
	}
	return fmt.Sprintf("t=%.3f %s node=%d at=(%.1f,%.1f)",
		e.Time, e.Kind, e.Node, e.Pos.X, e.Pos.Y)
}

// Log is a bounded in-memory event log. When full it drops the oldest
// events (ring behaviour) and counts the drops.
type Log struct {
	events  []Event
	start   int
	count   int
	dropped int
}

// NewLog returns a log holding at most capacity events. It panics on a
// non-positive capacity (a programmer error).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Log{events: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (l *Log) Record(e Event) {
	if l.count == len(l.events) {
		l.events[l.start] = e
		l.start = (l.start + 1) % len(l.events)
		l.dropped++
		return
	}
	l.events[(l.start+l.count)%len(l.events)] = e
	l.count++
}

// Len returns the number of retained events.
func (l *Log) Len() int { return l.count }

// Dropped returns how many events were evicted.
func (l *Log) Dropped() int { return l.dropped }

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	out := make([]Event, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.events[(l.start+i)%len(l.events)]
	}
	return out
}

// Filter returns the retained events of the given kind, oldest first.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Counts returns a histogram of retained events by kind.
func (l *Log) Counts() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range l.Events() {
		out[e.Kind]++
	}
	return out
}

// Dump renders the whole log, one event per line.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if l.dropped > 0 {
		fmt.Fprintf(&b, "(%d older events dropped)\n", l.dropped)
	}
	return b.String()
}
