package hexlat

import (
	"math"
	"testing"
	"testing/quick"

	"gs3/internal/geom"
)

func TestRingDistance(t *testing.T) {
	tests := []struct {
		c    Axial
		want int
	}{
		{Axial{0, 0}, 0},
		{Axial{1, 0}, 1},
		{Axial{0, 1}, 1},
		{Axial{-1, 1}, 1},
		{Axial{1, -1}, 1},
		{Axial{2, 0}, 2},
		{Axial{1, 1}, 2},
		{Axial{-2, 1}, 2},
		{Axial{3, -5}, 5},
	}
	for _, tt := range tests {
		if got := tt.c.Ring(); got != tt.want {
			t.Errorf("Ring(%v) = %d, want %d", tt.c, got, tt.want)
		}
	}
}

func TestNeighborsAreRingOne(t *testing.T) {
	for _, n := range (Axial{0, 0}).Neighbors() {
		if n.Ring() != 1 {
			t.Errorf("neighbor %v has ring %d", n, n.Ring())
		}
	}
}

func TestNeighborDistancesEqualPitch(t *testing.T) {
	l := New(geom.Point{X: 10, Y: -5}, 7.3, 0.4)
	c := Axial{2, -1}
	center := l.Center(c)
	for _, n := range c.Neighbors() {
		d := center.Dist(l.Center(n))
		if math.Abs(d-7.3) > 1e-9 {
			t.Errorf("neighbor distance = %v, want pitch 7.3", d)
		}
	}
}

func TestCenterOrigin(t *testing.T) {
	l := New(geom.Point{X: 1, Y: 2}, 5, 1.1)
	if got := l.Center(Axial{0, 0}); got != (geom.Point{X: 1, Y: 2}) {
		t.Errorf("Center(origin) = %v", got)
	}
}

func TestCenterGRDirection(t *testing.T) {
	gr := 0.7
	l := New(geom.Point{}, 3, gr)
	p := l.Center(Axial{1, 0})
	want := geom.Point{}.Add(geom.UnitAt(gr).Scale(3))
	if p.Dist(want) > 1e-9 {
		t.Errorf("Center((1,0)) = %v, want %v", p, want)
	}
}

func TestNearestRoundTripProperty(t *testing.T) {
	l := New(geom.Point{X: -3, Y: 4}, 11, 0.9)
	f := func(a, b int8) bool {
		c := Axial{int(a), int(b)}
		return l.Nearest(l.Center(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNearestWithJitter(t *testing.T) {
	l := New(geom.Point{}, 10, 0)
	// A point slightly off a center must still round to that center.
	for _, c := range Spiral(30) {
		p := l.Center(c).Add(geom.Vec{X: 1.2, Y: -0.8}) // well within pitch/2
		if got := l.Nearest(p); got != c {
			t.Errorf("Nearest(jittered %v) = %v", c, got)
		}
	}
}

func TestRingPointsCount(t *testing.T) {
	for k := 0; k <= 6; k++ {
		want := 6 * k
		if k == 0 {
			want = 1
		}
		if got := len(RingPoints(k)); got != want {
			t.Errorf("len(RingPoints(%d)) = %d, want %d", k, got, want)
		}
	}
}

func TestRingPointsAllOnRing(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for _, p := range RingPoints(k) {
			if p.Ring() != k {
				t.Errorf("RingPoints(%d) contains %v with ring %d", k, p, p.Ring())
			}
		}
	}
}

func TestRingPointsDistinct(t *testing.T) {
	for k := 1; k <= 5; k++ {
		seen := make(map[Axial]bool)
		for _, p := range RingPoints(k) {
			if seen[p] {
				t.Errorf("RingPoints(%d) repeats %v", k, p)
			}
			seen[p] = true
		}
	}
}

func TestRingPointsStartAtGR(t *testing.T) {
	for k := 1; k <= 4; k++ {
		if got := RingPoints(k)[0]; got != (Axial{k, 0}) {
			t.Errorf("RingPoints(%d)[0] = %v, want {%d 0}", k, got, k)
		}
	}
}

func TestRingPointsClockwise(t *testing.T) {
	// In a lattice with GR = 0, walking the ring clockwise means the
	// planar angle of successive points decreases (mod 2π).
	l := New(geom.Point{}, 1, 0)
	pts := RingPoints(3)
	prev := l.Center(pts[0]).Sub(geom.Point{}).Angle()
	for i := 1; i < len(pts); i++ {
		a := l.Center(pts[i]).Sub(geom.Point{}).Angle()
		diff := geom.NormalizeAngle(a - prev)
		if diff > 1e-9 {
			t.Fatalf("ring walk turned counter-clockwise at index %d (Δ=%v)", i, diff)
		}
		prev = a
	}
}

func TestRingWalkIsContiguous(t *testing.T) {
	for k := 1; k <= 4; k++ {
		pts := RingPoints(k)
		for i := 0; i < len(pts); i++ {
			next := pts[(i+1)%len(pts)]
			d := Axial{next.A - pts[i].A, next.B - pts[i].B}
			if d.Ring() != 1 {
				t.Errorf("ring %d: points %v→%v are not adjacent", k, pts[i], next)
			}
		}
	}
}

func TestSpiral(t *testing.T) {
	s := Spiral(8)
	if len(s) != 8 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] != (Axial{0, 0}) {
		t.Errorf("spiral[0] = %v", s[0])
	}
	// First ring occupies indices 1..6; index 7 starts ring 2.
	for i := 1; i <= 6; i++ {
		if s[i].Ring() != 1 {
			t.Errorf("spiral[%d] = %v, ring %d", i, s[i], s[i].Ring())
		}
	}
	if s[7].Ring() != 2 {
		t.Errorf("spiral[7] ring = %d", s[7].Ring())
	}
}

func TestSpiralIndexRoundTrip(t *testing.T) {
	for _, c := range Spiral(60) {
		idx := SpiralIndexOf(c)
		if got := SpiralPoint(idx); got != c {
			t.Errorf("SpiralPoint(SpiralIndexOf(%v)) = %v", c, got)
		}
	}
}

func TestNextSpiralCoversAll(t *testing.T) {
	idx := SpiralIndex{}
	seen := map[Axial]bool{SpiralPoint(idx): true}
	for i := 0; i < 36; i++ {
		idx = NextSpiral(idx)
		p := SpiralPoint(idx)
		if seen[p] {
			t.Fatalf("NextSpiral revisited %v", p)
		}
		seen[p] = true
	}
	// 1 + 6 + 12 + 18 = 37 points covers rings 0..3.
	if len(seen) != 37 {
		t.Errorf("covered %d points, want 37", len(seen))
	}
	if idx.ICC != 3 {
		t.Errorf("final ICC = %d, want 3", idx.ICC)
	}
}

func TestSpiralIndexLess(t *testing.T) {
	a := SpiralIndex{ICC: 1, ICP: 5}
	b := SpiralIndex{ICC: 2, ICP: 0}
	c := SpiralIndex{ICC: 2, ICP: 1}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("spiral index ordering broken")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
}

func TestCellsWithinRadius(t *testing.T) {
	l := New(geom.Point{}, 10, 0)
	cells := l.CellsWithinRadius(25)
	// Ring 0 (1), ring 1 at distance 10 (6), ring 2 at distances 20 and
	// 10√3 ≈ 17.3 (12): all within 25.
	if len(cells) != 19 {
		t.Errorf("got %d cells, want 19", len(cells))
	}
	for _, c := range cells {
		if d := l.Center(c).Dist(geom.Point{}); d > 25 {
			t.Errorf("cell %v at distance %v > 25", c, d)
		}
	}
}

func TestCellsWithinRadiusZeroPitch(t *testing.T) {
	l := New(geom.Point{}, 0, 0)
	if got := l.CellsWithinRadius(10); got != nil {
		t.Errorf("zero pitch should yield nil, got %v", got)
	}
}

func TestHexDistanceMatchesPlanarShells(t *testing.T) {
	// For the standard lattice, points on axial ring k lie at planar
	// distance between k·pitch·(√3/2) and k·pitch.
	l := New(geom.Point{}, 1, 0)
	for k := 1; k <= 4; k++ {
		for _, p := range RingPoints(k) {
			d := l.Center(p).Dist(geom.Point{})
			lo := float64(k) * math.Sqrt(3) / 2
			hi := float64(k)
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Errorf("ring %d point %v at planar distance %v outside [%v,%v]", k, p, d, lo, hi)
			}
		}
	}
}
