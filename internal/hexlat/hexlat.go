// Package hexlat implements the ideal hexagonal lattice geometry of GS³.
//
// The lattice of Ideal Locations (ILs) is the set of hexagon centers of
// the cellular hexagonal structure (paper Figure 1): neighboring centers
// are √3·R apart, so each cell is a hexagon of circumradius R. The
// lattice is anchored at an origin (the big node's IL) and oriented by
// the Global Reference direction GR that the diffusing computation
// carries across the network.
//
// The same lattice, scaled down to pitch √3·R_t, orders the candidate
// ILs inside a single cell for cell shift: each ring around the original
// IL is an Intra-Cell Cycle (ICC) and positions on a ring are numbered
// clockwise from GR (Intra-Cycle Position, ICP) — paper Figure 5.
package hexlat

import (
	"math"

	"gs3/internal/geom"
)

// Axial is a lattice coordinate. The lattice point (A, B) lies at
// Origin + Pitch·(A·e₁ + B·e₂) where e₁ points along GR and e₂ along
// GR + 60°.
type Axial struct {
	A, B int
}

// axialDirs are the six neighbor offsets in counter-clockwise order
// starting from the GR direction (0°, 60°, …, 300°).
var axialDirs = [6]Axial{
	{1, 0}, {0, 1}, {-1, 1}, {-1, 0}, {0, -1}, {1, -1},
}

// Neighbors returns the six lattice neighbors of c.
func (c Axial) Neighbors() [6]Axial {
	var out [6]Axial
	for i, d := range axialDirs {
		out[i] = Axial{c.A + d.A, c.B + d.B}
	}
	return out
}

// Add returns c translated by d.
func (c Axial) Add(d Axial) Axial {
	return Axial{c.A + d.A, c.B + d.B}
}

// Scale returns c with both coordinates multiplied by k.
func (c Axial) Scale(k int) Axial {
	return Axial{c.A * k, c.B * k}
}

// Ring returns the hex-distance of c from the lattice origin. Ring 0 is
// the origin itself; ring d corresponds to the paper's d-band (for the
// cell lattice) or ICC = d (for the intra-cell lattice).
func (c Axial) Ring() int {
	return (abs(c.A) + abs(c.B) + abs(c.A+c.B)) / 2
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Lattice is a hexagonal lattice embedded in the plane.
type Lattice struct {
	Origin geom.Point // lattice point (0,0)
	Pitch  float64    // distance between neighboring lattice points
	GR     float64    // orientation of the e₁ axis, radians
}

// New returns the lattice anchored at origin with the given pitch and
// global-reference orientation.
func New(origin geom.Point, pitch, gr float64) Lattice {
	return Lattice{Origin: origin, Pitch: pitch, GR: gr}
}

// Center returns the planar location of lattice point c.
func (l Lattice) Center(c Axial) geom.Point {
	e1 := geom.UnitAt(l.GR)
	e2 := geom.UnitAt(l.GR + math.Pi/3)
	v := e1.Scale(float64(c.A) * l.Pitch).Add(e2.Scale(float64(c.B) * l.Pitch))
	return l.Origin.Add(v)
}

// Nearest returns the lattice point closest to p.
func (l Lattice) Nearest(p geom.Point) Axial {
	// Invert p = Origin + Pitch·(a·e₁ + b·e₂). With e₁ = (c₁,s₁) and
	// e₂ = (c₂,s₂), the determinant c₁s₂ − c₂s₁ = sin 60° exactly.
	v := p.Sub(l.Origin)
	c1, s1 := math.Cos(l.GR), math.Sin(l.GR)
	c2, s2 := math.Cos(l.GR+math.Pi/3), math.Sin(l.GR+math.Pi/3)
	det := (c1*s2 - c2*s1) * l.Pitch
	a := (s2*v.X - c2*v.Y) / det
	b := (-s1*v.X + c1*v.Y) / det
	return roundAxial(a, b)
}

// roundAxial rounds fractional axial coordinates to the nearest lattice
// point using cube rounding (x = a, z = b, y = −a−b; re-derive the
// coordinate with the largest rounding error from the other two).
func roundAxial(a, b float64) Axial {
	x, z := a, b
	y := -a - b
	rx, ry, rz := math.Round(x), math.Round(y), math.Round(z)
	dx, dy, dz := math.Abs(rx-x), math.Abs(ry-y), math.Abs(rz-z)
	switch {
	case dx > dy && dx > dz:
		rx = -ry - rz
	case dy > dz:
		// y is re-derived implicitly; nothing to fix in (a, b).
	default:
		rz = -rx - ry
	}
	return Axial{int(rx), int(rz)}
}

// RingPoints returns the lattice points of ring k in clockwise order
// starting from the point in the GR direction. Ring 0 is the single
// origin point; ring k has 6k points. This is the paper's ⟨ICC, ICP⟩
// ordering: the i-th returned point of ring k has ICC = k, ICP = i.
func RingPoints(k int) []Axial {
	if k == 0 {
		return []Axial{{0, 0}}
	}
	out := make([]Axial, 0, 6*k)
	// Clockwise corner order: direction indices 0, 5, 4, 3, 2, 1. From
	// the corner at direction index j, the edge toward the next
	// clockwise corner runs along direction index (j+4) mod 6.
	corners := [6]int{0, 5, 4, 3, 2, 1}
	pos := axialDirs[0].Scale(k)
	for _, j := range corners {
		step := axialDirs[(j+4)%6]
		for s := 0; s < k; s++ {
			out = append(out, pos)
			pos = pos.Add(step)
		}
	}
	return out
}

// SpiralIndex identifies a lattice point by its ⟨ICC, ICP⟩ rank: ring
// number and clockwise position within the ring.
type SpiralIndex struct {
	ICC int32 // ring (Intra-Cell Cycle)
	ICP int32 // clockwise position on the ring (Intra-Cycle Position)
}

// Less reports whether s precedes t in the lexicographic ⟨ICC, ICP⟩
// order the paper uses to advance a cell's current IL.
func (s SpiralIndex) Less(t SpiralIndex) bool {
	if s.ICC != t.ICC {
		return s.ICC < t.ICC
	}
	return s.ICP < t.ICP
}

// SpiralPoint returns the lattice point at the given spiral index.
func SpiralPoint(idx SpiralIndex) Axial {
	return RingPoints(int(idx.ICC))[idx.ICP]
}

// NextSpiral returns the spiral index that follows idx in ⟨ICC, ICP⟩
// order: the next position on the same ring, or position 0 of the next
// ring.
func NextSpiral(idx SpiralIndex) SpiralIndex {
	if idx.ICC == 0 {
		return SpiralIndex{ICC: 1, ICP: 0}
	}
	if idx.ICP+1 < 6*idx.ICC {
		return SpiralIndex{ICC: idx.ICC, ICP: idx.ICP + 1}
	}
	return SpiralIndex{ICC: idx.ICC + 1, ICP: 0}
}

// Spiral returns the first n lattice points in ⟨ICC, ICP⟩ order,
// starting with the origin.
func Spiral(n int) []Axial {
	out := make([]Axial, 0, n)
	for k := 0; len(out) < n; k++ {
		for _, p := range RingPoints(k) {
			out = append(out, p)
			if len(out) == n {
				return out
			}
		}
	}
	return out
}

// SpiralIndexOf returns the ⟨ICC, ICP⟩ rank of lattice point c.
func SpiralIndexOf(c Axial) SpiralIndex {
	k := c.Ring()
	if k == 0 {
		return SpiralIndex{}
	}
	for i, p := range RingPoints(k) {
		if p == c {
			return SpiralIndex{ICC: int32(k), ICP: int32(i)}
		}
	}
	// Unreachable: every axial coordinate of ring k appears in
	// RingPoints(k).
	return SpiralIndex{ICC: int32(k)}
}

// CellsWithinRadius returns all lattice points whose centers lie within
// radius of the lattice origin, in ⟨ICC, ICP⟩ order. Useful for
// enumerating the ideal virtual structure covering a deployment region.
func (l Lattice) CellsWithinRadius(radius float64) []Axial {
	if l.Pitch <= 0 {
		return nil
	}
	maxRing := int(radius/l.Pitch) + 2
	var out []Axial
	for k := 0; k <= maxRing; k++ {
		for _, c := range RingPoints(k) {
			if l.Center(c).Dist(l.Origin) <= radius {
				out = append(out, c)
			}
		}
	}
	return out
}
