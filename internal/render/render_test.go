package render

import (
	"strings"
	"testing"

	"gs3/internal/core"
	"gs3/internal/field"
	"gs3/internal/netsim"
)

func snapshot(t *testing.T) core.Snapshot {
	t.Helper()
	s, err := netsim.Build(netsim.DefaultOptions(100, 300))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	return s.Net.Snapshot()
}

func TestSVGWellFormed(t *testing.T) {
	svg := SVG(snapshot(t), DefaultOptions())
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not wrapped in <svg>")
	}
	if strings.Count(svg, "<circle") < 100 {
		t.Errorf("too few circles: %d", strings.Count(svg, "<circle"))
	}
	if strings.Count(svg, "<path") < 7 {
		t.Errorf("too few hexagons: %d", strings.Count(svg, "<path"))
	}
	if strings.Count(svg, "<line") < 6 {
		t.Errorf("too few head-graph edges: %d", strings.Count(svg, "<line"))
	}
	// Exactly one big-node marker.
	if got := strings.Count(svg, "#c23b22"); got != 1 {
		t.Errorf("big markers = %d", got)
	}
}

func TestSVGOptionsOff(t *testing.T) {
	svg := SVG(snapshot(t), Options{})
	if strings.Contains(svg, "<path") {
		t.Error("hexes drawn although disabled")
	}
	if strings.Contains(svg, "<line") {
		t.Error("edges drawn although disabled")
	}
}

func TestSVGAssociateLinks(t *testing.T) {
	opt := Options{DrawAssociateLinks: true}
	svg := SVG(snapshot(t), opt)
	if strings.Count(svg, "<line") < 100 {
		t.Errorf("associate links missing: %d lines", strings.Count(svg, "<line"))
	}
}

func TestSVGEmptySnapshot(t *testing.T) {
	dep := field.Deployment{}
	_ = dep
	svg := SVG(core.Snapshot{Config: core.DefaultConfig(100)}, DefaultOptions())
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("empty snapshot broke rendering")
	}
}

func TestSVGExplicitScale(t *testing.T) {
	svg := SVG(snapshot(t), Options{Scale: 0.5})
	if !strings.Contains(svg, "<svg") {
		t.Error("scaled render failed")
	}
}
