// Package render draws a network snapshot as an SVG image: the cell
// hexagons around each IL, the head graph, and the nodes colored by
// role. Used by cmd/gs3sim to visualize the configured structure
// (paper Figures 1 and 4).
package render

import (
	"fmt"
	"math"
	"strings"

	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/radio"
)

// Options controls the rendering.
type Options struct {
	// Scale in SVG pixels per plane unit; 0 picks a scale that yields
	// roughly a 1000px-wide image.
	Scale float64
	// DrawHexes outlines each cell's ideal hexagon.
	DrawHexes bool
	// DrawHeadGraph draws parent edges between heads.
	DrawHeadGraph bool
	// DrawAssociateLinks draws a light line from each associate to its
	// head.
	DrawAssociateLinks bool
}

// DefaultOptions enables everything.
func DefaultOptions() Options {
	return Options{DrawHexes: true, DrawHeadGraph: true, DrawAssociateLinks: false}
}

// SVG renders the snapshot.
func SVG(s core.Snapshot, opt Options) string {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, v := range s.Nodes {
		minX = math.Min(minX, v.Pos.X)
		minY = math.Min(minY, v.Pos.Y)
		maxX = math.Max(maxX, v.Pos.X)
		maxY = math.Max(maxY, v.Pos.Y)
	}
	if len(s.Nodes) == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	pad := s.Config.R
	minX, minY = minX-pad, minY-pad
	maxX, maxY = maxX+pad, maxY+pad
	scale := opt.Scale
	if scale <= 0 {
		scale = 1000 / (maxX - minX)
	}
	w := (maxX - minX) * scale
	h := (maxY - minY) * scale
	tx := func(p geom.Point) (float64, float64) {
		return (p.X - minX) * scale, (maxY - p.Y) * scale // flip y for SVG
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="#ffffff"/>`+"\n")

	views := make(map[radio.NodeID]core.NodeView, len(s.Nodes))
	for _, v := range s.Nodes {
		views[v.ID] = v
	}

	if opt.DrawHexes {
		for _, v := range s.Heads() {
			b.WriteString(hexPath(v.IL, s.Config.R, s.Config.GR, tx, scale))
		}
	}
	if opt.DrawAssociateLinks {
		for _, v := range s.Nodes {
			if v.Status != core.StatusAssociate {
				continue
			}
			hv, ok := views[v.Head]
			if !ok {
				continue
			}
			x1, y1 := tx(v.Pos)
			x2, y2 := tx(hv.Pos)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d8e2ef" stroke-width="0.5"/>`+"\n", x1, y1, x2, y2)
		}
	}
	if opt.DrawHeadGraph {
		for _, v := range s.Heads() {
			if v.Parent == v.ID || v.Parent == radio.None {
				continue
			}
			pv, ok := views[v.Parent]
			if !ok {
				continue
			}
			x1, y1 := tx(v.Pos)
			x2, y2 := tx(pv.Pos)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#8aa2c8" stroke-width="1.5"/>`+"\n", x1, y1, x2, y2)
		}
	}
	for _, v := range s.Nodes {
		x, y := tx(v.Pos)
		switch {
		case v.IsBig:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#c23b22"/>`+"\n", x, y, 6.0)
		case v.IsHead():
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#1f5fbf"/>`+"\n", x, y, 4.0)
		case v.Status == core.StatusAssociate && v.Candidate:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#4f8f4f"/>`+"\n", x, y, 2.0)
		case v.Status == core.StatusAssociate:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#9db79d"/>`+"\n", x, y, 1.5)
		default:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#c9a227"/>`+"\n", x, y, 2.0)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// hexPath outlines the ideal hexagon of a cell: circumradius R around
// the IL, with a flat side facing the GR direction (vertices at
// GR + 30° + k·60°, matching a lattice whose neighbor centers sit at
// GR + k·60°).
func hexPath(il geom.Point, r, gr float64, tx func(geom.Point) (float64, float64), scale float64) string {
	var b strings.Builder
	b.WriteString(`<path d="`)
	for k := 0; k < 6; k++ {
		p := il.Add(geom.UnitAt(gr + math.Pi/6 + float64(k)*math.Pi/3).Scale(r))
		x, y := tx(p)
		if k == 0 {
			fmt.Fprintf(&b, "M %.1f %.1f ", x, y)
		} else {
			fmt.Fprintf(&b, "L %.1f %.1f ", x, y)
		}
	}
	b.WriteString(`Z" fill="none" stroke="#c8d4e8" stroke-width="1"/>` + "\n")
	return b.String()
}
