package gs3

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestDocComments is the doc-comment lint pass for the simulation
// substrate, the data plane, and the protocol core: every exported
// symbol of internal/sim, internal/netsim, internal/runner,
// internal/traffic, internal/gather, internal/core, internal/radio,
// and internal/adversary must carry a doc comment (these are the packages whose thread-safety
// contracts the concurrency model depends on — including the node
// store and the sharded configure executor — so their godoc is
// required to state them).
func TestDocComments(t *testing.T) {
	for _, dir := range []string{
		"internal/sim", "internal/netsim", "internal/runner",
		"internal/traffic", "internal/gather",
		"internal/core", "internal/radio", "internal/adversary",
	} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				checkFileDocs(t, fset, filepath.Base(path), file)
			}
		}
	}
}

// receiverExported reports whether fn is a plain function or a method
// whose receiver type is itself exported.
func receiverExported(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	typ := fn.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func checkFileDocs(t *testing.T, fset *token.FileSet, name string, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, what string) {
		t.Errorf("%s:%d: exported %s has no doc comment", name, fset.Position(pos).Line, what)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			// Methods on unexported types (e.g. heap plumbing) are not
			// part of the package's godoc surface.
			if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
				report(d.Pos(), "func "+d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "value "+n.Name)
						}
					}
				}
			}
		}
	}
}
