package gs3

import (
	"gs3/internal/gather"
	"gs3/internal/radio"
)

// GatherResult is one convergecast round over the head graph.
type GatherResult struct {
	// Mean/Min/Max/Count aggregate the readings that reached the sink.
	Mean  float64
	Min   float64
	Max   float64
	Count int
	// IntraMessages counts associate→head reports; InterMessages counts
	// head→parent forwards; MaxDepth is the longest head-graph path an
	// aggregate traveled.
	IntraMessages int
	InterMessages int
	MaxDepth      int
	// Unreported lists nodes whose readings could not reach the sink.
	Unreported []NodeID
}

// Collect runs one in-network aggregation round: every covered node's
// reading flows to its cell head (one short intra-cell message), heads
// merge their cells' samples, and aggregates converge up the head graph
// to the big node — the hierarchical data-gathering pattern the GS³
// structure exists to support.
//
// Collect is instantaneous: it computes the round over a snapshot of
// the structure, with no virtual time passing, no per-packet loss, and
// no interaction with in-flight healing. Use ServeTraffic to route the
// same workload as real packets on the virtual clock.
func (n *Network) Collect(readings map[NodeID]float64) (GatherResult, error) {
	internal := make(map[radio.NodeID]float64, len(readings))
	for id, v := range readings {
		internal[id] = v
	}
	res, err := gather.Collect(n.nw.Snapshot(), internal)
	if err != nil {
		return GatherResult{}, err
	}
	return GatherResult{
		Mean:          res.Root.Mean(),
		Min:           res.Root.Min,
		Max:           res.Root.Max,
		Count:         res.Root.Count,
		IntraMessages: res.IntraMessages,
		InterMessages: res.InterMessages,
		MaxDepth:      res.MaxDepth,
		Unreported:    res.Unreported,
	}, nil
}
