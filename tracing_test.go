package gs3

import (
	"testing"
)

func TestTracingCapturesConfiguration(t *testing.T) {
	pts, err := GridDeployment(300, 22, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Options{CellRadius: 100, Seed: 7}, pts)
	if err != nil {
		t.Fatal(err)
	}
	net.EnableTracing(10000)
	if _, err := net.Configure(); err != nil {
		t.Fatal(err)
	}
	counts := net.TraceCounts()
	if counts["head_selected"] == 0 || counts["head_org"] == 0 {
		t.Errorf("configuration events missing: %v", counts)
	}
	// One head_selected per non-big cell.
	cells := len(net.Cells())
	if counts["head_selected"] != cells-1 {
		t.Errorf("head_selected = %d, cells = %d", counts["head_selected"], cells)
	}
	// Events are time-ordered.
	evs := net.TraceEvents()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestTracingCapturesHealing(t *testing.T) {
	pts, err := GridDeployment(300, 22, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Options{CellRadius: 100, Seed: 7}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Configure(); err != nil {
		t.Fatal(err)
	}
	net.EnableTracing(10000)
	net.EnableSelfHealing(Dynamic)
	var victim NodeID = None
	for _, c := range net.Cells() {
		if !c.IsBig {
			victim = c.Head
			break
		}
	}
	net.Kill(victim)
	net.RunFor(6)
	counts := net.TraceCounts()
	if counts["death"] == 0 {
		t.Errorf("kill not traced: %v", counts)
	}
	if counts["candidate_promotion"]+counts["head_selected"] == 0 {
		t.Errorf("healing not traced: %v", counts)
	}
	// The promotion event names the dead head as the counterpart.
	found := false
	for _, e := range net.TraceEvents() {
		if e.Kind == "candidate_promotion" && e.Other == victim {
			found = true
		}
	}
	if !found && counts["candidate_promotion"] > 0 {
		t.Error("promotion event does not reference the dead head")
	}
}

func TestTracingDisabled(t *testing.T) {
	pts, err := GridDeployment(250, 22, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Options{CellRadius: 100, Seed: 7}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if net.TraceEvents() != nil || net.TraceCounts() != nil {
		t.Error("tracing data without EnableTracing")
	}
	net.EnableTracing(100)
	net.DisableTracing()
	if _, err := net.Configure(); err != nil {
		t.Fatal(err)
	}
	if net.TraceEvents() != nil {
		t.Error("tracing survived DisableTracing")
	}
}
