package gs3

import (
	"math"
	"testing"
)

func demoNetwork(t *testing.T) *Network {
	t.Helper()
	pts, err := GridDeployment(350, 22, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Options{CellRadius: 100, Seed: 7}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Configure(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}, []Point{{}}); err == nil {
		t.Error("zero CellRadius accepted")
	}
	if _, err := New(Options{CellRadius: 100}, nil); err == nil {
		t.Error("empty positions accepted")
	}
	if _, err := New(Options{CellRadius: 100, RadiusTolerance: 500}, []Point{{}}); err == nil {
		t.Error("Rt > R accepted")
	}
}

func TestConfigureBuildsCells(t *testing.T) {
	net := demoNetwork(t)
	cells := net.Cells()
	if len(cells) < 7 {
		t.Fatalf("only %d cells", len(cells))
	}
	bigCells := 0
	for _, c := range cells {
		if c.IsBig {
			bigCells++
			if c.Hops != 0 {
				t.Errorf("big cell hops = %d", c.Hops)
			}
		}
	}
	if bigCells != 1 {
		t.Errorf("big cells = %d", bigCells)
	}
}

func TestVerifyCleanAfterConfigure(t *testing.T) {
	net := demoNetwork(t)
	if v := net.Verify(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v[:min(5, len(v))])
	}
	if v := net.VerifyStrict(); len(v) != 0 {
		t.Errorf("fixpoint violations: %v", v[:min(5, len(v))])
	}
}

func TestStats(t *testing.T) {
	net := demoNetwork(t)
	s := net.Stats()
	if s.Heads < 7 || s.Associates == 0 || s.Uncovered != 0 {
		t.Errorf("stats = %+v", s)
	}
	// Cell radius within the proved bound for the bulk (boundary cells
	// may stretch to √3R + 2Rt).
	if s.MaxCellRadius > 100*math.Sqrt(3)+2*25+1e-9 {
		t.Errorf("max cell radius = %v", s.MaxCellRadius)
	}
	if math.Abs(s.MeanNeighborDist-100*math.Sqrt(3)) > 2*25 {
		t.Errorf("mean neighbor distance = %v", s.MeanNeighborDist)
	}
	if s.Broadcasts == 0 {
		t.Error("no broadcasts recorded")
	}
}

func TestRouteToSink(t *testing.T) {
	net := demoNetwork(t)
	cells := net.Cells()
	var member NodeID = None
	for _, c := range cells {
		if !c.IsBig && len(c.Members) > 0 && c.Hops >= 2 {
			member = c.Members[0]
			break
		}
	}
	if member == None {
		t.Skip("no distant member found")
	}
	route := net.RouteToSink(member)
	if len(route) < 3 {
		t.Fatalf("route = %v", route)
	}
	if route[0] != member {
		t.Errorf("route starts at %d", route[0])
	}
	last, ok := net.NodeInfo(route[len(route)-1])
	if !ok || !last.IsBig {
		t.Errorf("route ends at %+v", last)
	}
}

func TestRouteToSinkUnknownNode(t *testing.T) {
	net := demoNetwork(t)
	if r := net.RouteToSink(99999); r != nil {
		t.Errorf("route for unknown node = %v", r)
	}
}

func TestSelfHealingMasksHeadDeath(t *testing.T) {
	net := demoNetwork(t)
	net.EnableSelfHealing(Dynamic)
	var victim NodeID = None
	for _, c := range net.Cells() {
		if !c.IsBig {
			victim = c.Head
			break
		}
	}
	headsBefore := len(net.Cells())
	net.Kill(victim)
	net.RunFor(8)
	if got := len(net.Cells()); got < headsBefore-1 {
		t.Errorf("cells = %d, want ≥ %d", got, headsBefore-1)
	}
	if v := net.Verify(); len(v) != 0 {
		t.Errorf("invariant broken after healing: %v", v[:min(5, len(v))])
	}
}

func TestJoinAndInfo(t *testing.T) {
	net := demoNetwork(t)
	net.EnableSelfHealing(Dynamic)
	id := net.Join(Point{X: 120, Y: 40})
	net.RunFor(3)
	info, ok := net.NodeInfo(id)
	if !ok {
		t.Fatal("joined node unknown")
	}
	if info.Role != RoleAssociate && info.Role != RoleHead {
		t.Errorf("joined node role = %v", info.Role)
	}
}

func TestMoveSmallNode(t *testing.T) {
	net := demoNetwork(t)
	net.EnableSelfHealing(Mobile)
	var member NodeID = None
	for _, c := range net.Cells() {
		if !c.IsBig && len(c.Members) > 0 {
			member = c.Members[0]
			break
		}
	}
	net.Move(member, Point{X: -100, Y: -80})
	net.RunFor(4)
	info, _ := net.NodeInfo(member)
	if info.Role == RoleBootup {
		t.Error("moved node left uncovered")
	}
}

func TestNodeInfoDead(t *testing.T) {
	net := demoNetwork(t)
	var victim NodeID
	for _, c := range net.Cells() {
		if !c.IsBig && len(c.Members) > 0 {
			victim = c.Members[0]
			break
		}
	}
	net.Kill(victim)
	if _, ok := net.NodeInfo(victim); ok {
		t.Error("dead node still visible")
	}
}

func TestEnergyModelThroughOptions(t *testing.T) {
	pts, err := GridDeployment(260, 22, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Options{
		CellRadius:       100,
		InitialEnergy:    40,
		EnergyRate:       1,
		HeadEnergyFactor: 5,
		Seed:             7,
	}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Configure(); err != nil {
		t.Fatal(err)
	}
	net.EnableSelfHealing(Dynamic)
	net.RunFor(20)
	if net.Stats().HeadShifts == 0 {
		t.Error("energy pressure caused no head shifts")
	}
}

func TestPoissonDeploymentAPI(t *testing.T) {
	pts, err := PoissonDeployment(100, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("too few points: %d", len(pts))
	}
	if pts[0] != (Point{}) {
		t.Errorf("big node at %v", pts[0])
	}
	if _, err := PoissonDeployment(0, 1, 1); err == nil {
		t.Error("invalid deployment accepted")
	}
}

func TestRunLiveMatchesStructure(t *testing.T) {
	pts, err := GridDeployment(300, 22, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLive(Options{CellRadius: 100, Seed: 7}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heads) < 7 {
		t.Fatalf("live heads = %d", len(res.Heads))
	}
	uncovered := 0
	for _, h := range res.HeadOf {
		if h == None {
			uncovered++
		}
	}
	if uncovered > 0 {
		t.Errorf("%d uncovered in live run", uncovered)
	}
}

func TestRunLiveInvalid(t *testing.T) {
	if _, err := RunLive(Options{}, []Point{{}}); err == nil {
		t.Error("invalid options accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestChannelPlan(t *testing.T) {
	net := demoNetwork(t)
	plan, err := net.ChannelPlan()
	if err != nil {
		t.Fatal(err)
	}
	cells := net.Cells()
	if len(plan) != len(cells) {
		t.Fatalf("plan covers %d of %d cells", len(plan), len(cells))
	}
	// No two neighboring cells share a channel.
	for i, a := range cells {
		for _, b := range cells[i+1:] {
			d := math.Hypot(a.IL.X-b.IL.X, a.IL.Y-b.IL.Y)
			if d <= 100*math.Sqrt(3)+1 && plan[a.Head] == plan[b.Head] {
				t.Errorf("neighbor cells %d and %d share channel %d", a.Head, b.Head, plan[a.Head])
			}
		}
	}
}
