package gs3

import "testing"

func TestServeTrafficFacade(t *testing.T) {
	net := demoNetwork(t)
	net.EnableSelfHealing(Dynamic)
	net.RunFor(10)
	rep, err := net.ServeTraffic(TrafficSpec{Packets: 200, Rate: 100, P2PFraction: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generated != 200 {
		t.Fatalf("generated %d, want 200", rep.Generated)
	}
	if rep.Delivered+rep.Lost != rep.Generated {
		t.Fatalf("accounting leak: %+v", rep)
	}
	if rep.DeliveryRatio != 1.0 {
		t.Fatalf("zero-fault settled run delivered %v, want 1.0 (%+v)", rep.DeliveryRatio, rep)
	}
	if rep.LatencyP50 <= 0 || rep.HeadEnergy <= 0 {
		t.Fatalf("missing latency/energy accounting: %+v", rep)
	}
}

func TestServeTrafficValidation(t *testing.T) {
	net := demoNetwork(t)
	if _, err := net.ServeTraffic(TrafficSpec{Packets: 0, Rate: 10}); err == nil {
		t.Error("zero Packets accepted")
	}
	if _, err := net.ServeTraffic(TrafficSpec{Packets: 10, Rate: 0}); err == nil {
		t.Error("zero Rate accepted")
	}
}
