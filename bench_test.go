// Benchmarks regenerating every figure and table of the paper (one per
// experiment ID in DESIGN.md), plus micro-benchmarks of the protocol's
// hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark prints its reproduced table once (first
// iteration) so `go test -bench` output doubles as the paper-vs-
// measured record; EXPERIMENTS.md archives a full run.
package gs3

import (
	"fmt"
	"sync"
	"testing"

	"gs3/internal/analysis"
	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/exp"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/runner"
	"gs3/internal/traffic"
)

// printOnce prints a reproduced table on the first benchmark iteration
// only, keyed by experiment ID.
var printedTables sync.Map

func printOnce(b *testing.B, id, text string) {
	b.Helper()
	if _, loaded := printedTables.LoadOrStore(id, true); !loaded {
		b.Log("\n" + text)
	}
}

// BenchmarkConfigureStructure is experiment F1: configure the cellular
// hexagonal structure of Figures 1/4 and machine-check Corollaries 1–2
// via the invariant.
func BenchmarkConfigureStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := netsim.Build(netsim.DefaultOptions(100, 400))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Configure(); err != nil {
			b.Fatal(err)
		}
		if r := check.Invariant(s.Net.Snapshot(), check.Static); !r.OK() {
			b.Fatalf("invariant violated: %v", r.Violations[0])
		}
	}
}

// BenchmarkConfigureStructureLarge is F1 at 10,000+ nodes: the serial
// configure plus invariant check on a deployment an order of magnitude
// past the paper's scale. This is the workload the struct-of-arrays
// node store is sized for; compare against BenchmarkConfigureSharded
// for the wave-parallel executor on the same field.
func BenchmarkConfigureStructureLarge(b *testing.B) {
	opt := netsim.DefaultOptions(100, 1250)
	for i := 0; i < b.N; i++ {
		s, err := netsim.Build(opt)
		if err != nil {
			b.Fatal(err)
		}
		if n := len(s.Dep.Positions); n < 10000 {
			b.Fatalf("deployment too small for the large benchmark: %d nodes", n)
		}
		if _, err := s.Configure(); err != nil {
			b.Fatal(err)
		}
		if r := check.Invariant(s.Net.Snapshot(), check.Static); !r.OK() {
			b.Fatalf("invariant violated: %v", r.Violations[0])
		}
	}
}

// BenchmarkConfigureSharded is the wave-parallel executor on the same
// 10,000+ node field as BenchmarkConfigureStructureLarge, one
// sub-benchmark per worker count. Results are byte-identical across
// workers (asserted by TestConfigureShardedMatchesSerial); only the
// wall clock changes.
func BenchmarkConfigureSharded(b *testing.B) {
	opt := netsim.DefaultOptions(100, 1250)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := netsim.Build(opt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.ConfigureSharded(workers); err != nil {
					b.Fatal(err)
				}
				if r := check.Invariant(s.Net.Snapshot(), check.Static); !r.OK() {
					b.Fatalf("invariant violated: %v", r.Violations[0])
				}
			}
		})
	}
}

// TestConfigureAllocBudget pins the allocation count of the F1 path
// (build + configure + snapshot + invariant) so the dense-store and
// dense-checker work cannot silently regress. The measured figure at
// the time of pinning was ~290 allocations per run; the ceiling leaves
// headroom for incidental growth while catching any return of the
// per-node allocation patterns (thousands per run) this budget removed.
func TestConfigureAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run alloc measurement")
	}
	opt := netsim.DefaultOptions(100, 400)
	allocs := testing.AllocsPerRun(5, func() {
		s, err := netsim.Build(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Configure(); err != nil {
			t.Fatal(err)
		}
		if r := check.Invariant(s.Net.Snapshot(), check.Static); !r.OK() {
			t.Fatalf("invariant violated: %v", r.Violations[0])
		}
	})
	if allocs > 600 {
		t.Errorf("configure+check path allocates %.0f times per run, budget is 600", allocs)
	}
}

// BenchmarkNonIdealCellRatio is experiment F7 (paper Figure 7).
func BenchmarkNonIdealCellRatio(b *testing.B) {
	ratios := analysis.DefaultRatios()
	for i := 0; i < b.N; i++ {
		t := exp.Figure7(10, 100, ratios, 20000, 7)
		printOnce(b, "F7", t.Format())
	}
}

// BenchmarkGapRegionDiameter is experiment F8 (paper Figure 8).
func BenchmarkGapRegionDiameter(b *testing.B) {
	ratios := analysis.DefaultRatios()
	for i := 0; i < b.N; i++ {
		t := exp.Figure8(10, 100, ratios, 20000, 7)
		printOnce(b, "F8", t.Format())
	}
}

// BenchmarkPerNodeState is experiment T1 (Appendix 1 row 1).
func BenchmarkPerNodeState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.PerNodeState(runner.Seq, 100, []float64{300, 500}, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "T1", t.Format())
	}
}

// BenchmarkStructureLifetime is experiment T2 (Appendix 1 row 2).
func BenchmarkStructureLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.StructureLifetime(runner.Seq, 100, 260, []float64{30, 18}, 40, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "T2", t.Format())
	}
}

// BenchmarkPerturbationConvergence is experiment T3 (Appendix 1 row 3).
func BenchmarkPerturbationConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := exp.PerturbationConvergence(runner.Seq, 100, 700, []float64{170, 400, 600}, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "T3", t.Format())
	}
}

// BenchmarkStaticConvergence is experiment T4 (Appendix 1 row 4,
// Theorem 4).
func BenchmarkStaticConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, fit, err := exp.StaticConvergence(runner.Seq, 100, []float64{300, 450, 600}, 7)
		if err != nil {
			b.Fatal(err)
		}
		if fit.R2 < 0.9 {
			b.Fatalf("configure time not linear: R2=%v", fit.R2)
		}
		printOnce(b, "T4", t.Format())
	}
}

// BenchmarkArbitraryStateConvergence is experiment T5 (Appendix 1 row
// 5, Theorem 7).
func BenchmarkArbitraryStateConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.ArbitraryStateConvergence(runner.Seq, 100, 500, []float64{150, 300}, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "T5", t.Format())
	}
}

// BenchmarkInvariantCheck is experiment I1/I2: the cost of machine-
// checking SI/DI on a configured snapshot.
func BenchmarkInvariantCheck(b *testing.B) {
	s, err := netsim.Build(netsim.DefaultOptions(100, 500))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		b.Fatal(err)
	}
	snap := s.Net.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := check.Invariant(snap, check.Static); !r.OK() {
			b.Fatal("invariant violated")
		}
	}
}

// BenchmarkBigNodeMoveLocality is experiment M1 (Theorem 11).
func BenchmarkBigNodeMoveLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.BigMoveLocality(runner.Seq, 100, 500, []float64{1.5, 2.5}, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "M1", t.Format())
	}
}

// BenchmarkStructureSlide is experiment S1 (§4.3.5.1 item 3).
func BenchmarkStructureSlide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.SlideConsistency(100, 300, 60, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "S1", t.Format())
	}
}

// BenchmarkVsLEACH is experiment B1 (Related Work vs LEACH).
func BenchmarkVsLEACH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.VsLEACH(runner.Seq, 100, []float64{300, 450}, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "B1", t.Format())
	}
}

// BenchmarkVsHopCluster is experiment B2 (Related Work vs hop-bounded
// clustering).
func BenchmarkVsHopCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.VsHopCluster(100, 400, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "B2", t.Format())
	}
}

// BenchmarkFrequencyReuse is experiment C1: the introduction's
// frequency-reuse claim — reuse-3 channels on the hex lattice vs greedy
// coloring of unstructured clusterings.
func BenchmarkFrequencyReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.FrequencyReuse(100, 400, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "C1", t.Format())
	}
}

// BenchmarkRtSweepAblation is ablation A1 (Rt tolerance vs tightness).
func BenchmarkRtSweepAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.RtSweep(runner.Seq, 100, 350, []float64{0.15, 0.4}, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "A1", t.Format())
	}
}

// BenchmarkRescanPeriodAblation is ablation A2 (rescan period vs
// healing latency).
func BenchmarkRescanPeriodAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.RescanPeriodAblation(runner.Seq, 100, 500, []int{2, 8}, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "A2", t.Format())
	}
}

// BenchmarkHeartbeatAblation is ablation A3 (heartbeat interval vs
// masking latency).
func BenchmarkHeartbeatAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.HeartbeatAblation(runner.Seq, 100, 350, []float64{0.5, 2}, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "A3", t.Format())
	}
}

// ---- Hot-path micro-benchmarks ----

// BenchmarkHeadOrgAction measures one HEAD_ORG module execution on a
// configured network (re-running it at an existing head is a no-op
// selection pass over its neighborhood).
func BenchmarkHeadOrgAction(b *testing.B) {
	s, err := netsim.Build(netsim.DefaultOptions(100, 400))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		b.Fatal(err)
	}
	var head core.NodeView
	for _, h := range s.Net.Snapshot().Heads() {
		if !h.IsBig {
			head = h
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Net.RescanAround(head.ID)
	}
}

// BenchmarkMaintenanceSweepRound measures one full heartbeat round of
// GS³-D maintenance across a 400-radius network.
func BenchmarkMaintenanceSweepRound(b *testing.B) {
	s, err := netsim.Build(netsim.DefaultOptions(100, 400))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		b.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunSweeps(1)
	}
}

// BenchmarkSweepSteadyState measures heartbeat rounds once the
// structure has settled: after warm-up sweeps every cell is stable, so
// the per-round work is pure re-verification — the regime where the
// reusable query buffers matter most. Run with -benchmem: the allocs/op
// here is the steady-state cost of the whole maintenance stack.
func BenchmarkSweepSteadyState(b *testing.B) {
	s, err := netsim.Build(netsim.DefaultOptions(100, 400))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		b.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(5) // settle: first rounds still strengthen cells
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunSweeps(1)
	}
}

// BenchmarkSweepSteadyStateLarge is the settled-round benchmark at
// 5,000+ nodes. At this scale a settled round is almost entirely
// quiescent replays, so ns/op tracks the cache fast path and the
// per-sweep mandatory work (counters, energy, batch dispatch) rather
// than neighborhood scans.
func BenchmarkSweepSteadyStateLarge(b *testing.B) {
	s, err := netsim.Build(netsim.DefaultOptions(100, 850))
	if err != nil {
		b.Fatal(err)
	}
	if n := len(s.Dep.Positions); n < 5000 {
		b.Fatalf("deployment too small for the large benchmark: %d nodes", n)
	}
	if _, err := s.Configure(); err != nil {
		b.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunSweeps(1)
	}
}

// BenchmarkSweepSteadyStateSharded is the settled-round benchmark on
// the same 5,000+ node field as BenchmarkSweepSteadyStateLarge, one
// sub-benchmark per sweep-worker count. workers=1 is the serial
// engine; results are byte-identical across workers (asserted by
// TestShardedSweepMatchesSerial), only the wall clock changes — and
// only on multi-core hosts: the parallel classification phase
// degenerates gracefully to near-serial cost on one CPU.
func BenchmarkSweepSteadyStateSharded(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := netsim.DefaultOptions(100, 850)
			opt.SweepWorkers = workers
			s, err := netsim.Build(opt)
			if err != nil {
				b.Fatal(err)
			}
			if n := len(s.Dep.Positions); n < 5000 {
				b.Fatalf("deployment too small for the large benchmark: %d nodes", n)
			}
			if _, err := s.Configure(); err != nil {
				b.Fatal(err)
			}
			s.Net.StartMaintenance(core.VariantD)
			s.RunSweeps(5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunSweeps(1)
			}
		})
	}
}

// TestSweepAllocBudget pins the allocation count of one settled
// maintenance round on the large field under the sharded executor, so
// the parallel phases cannot silently start allocating per node. The
// cost is dominated by the worker goroutines themselves (two spawns
// per chunk per batch, 17 batches per round); all classification and
// aggregation scratch is reused across batches.
func TestSweepAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run alloc measurement")
	}
	opt := netsim.DefaultOptions(100, 850)
	opt.SweepWorkers = 8
	s, err := netsim.Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(6) // settle, and warm every reusable scratch buffer
	allocs := testing.AllocsPerRun(5, func() {
		s.RunSweeps(1)
	})
	if allocs > 1200 {
		t.Errorf("settled sharded round allocates %.0f times, budget is 1200", allocs)
	}
}

// BenchmarkSweepAfterFault measures the expensive end of the cache
// spectrum: the three heartbeat rounds right after a cell-sized kill,
// when every cache in the blast region is invalid and the sweeps do
// real detection and healing. Each iteration rebuilds and settles the
// network off the clock so the timed region is stationary.
func BenchmarkSweepAfterFault(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := netsim.Build(netsim.DefaultOptions(100, 300))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Configure(); err != nil {
			b.Fatal(err)
		}
		s.Net.StartMaintenance(core.VariantD)
		s.RunSweeps(5)
		cfg := s.Opt.Config
		b.StartTimer()
		s.KillDisk(geom.Point{X: 120}, cfg.Rt)
		s.RunSweeps(3)
	}
}

// BenchmarkSnapshot measures the cost of capturing a full network
// snapshot (the observability path used by all checks).
func BenchmarkSnapshot(b *testing.B) {
	s, err := netsim.Build(netsim.DefaultOptions(100, 500))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := s.Net.Snapshot(); len(snap.Nodes) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkServeTraffic measures the data plane's packet throughput on
// a settled structure: 10,000 packets (30% point-to-point geographic,
// rest convergecast) routed per iteration, every hop a scheduled radio
// delivery on a zero-fault medium. Divide ns/op by 10,000 for the
// per-packet cost of the whole stack — generator, routing, event
// engine, radio — and watch allocs/op: the packet pool keeps the
// steady state off the heap.
func BenchmarkServeTraffic(b *testing.B) {
	s, err := netsim.Build(netsim.DefaultOptions(50, 300))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Configure(); err != nil {
		b.Fatal(err)
	}
	s.Net.StartMaintenance(core.VariantD)
	s.RunSweeps(15) // settle: geographic routing needs full neighbor tables
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane, err := s.ServeTraffic(traffic.Config{Packets: 10000, Rate: 1000, P2PFraction: 0.3})
		if err != nil {
			b.Fatal(err)
		}
		if rep := plane.Run(); rep.DeliveryRatio != 1 {
			b.Fatalf("settled zero-fault run delivered %v, want 1", rep.DeliveryRatio)
		}
	}
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// ---- Parallel runner smoke benchmarks ----
//
// The pair below measures the same T4 scaling sweep executed serially
// and fanned across GOMAXPROCS workers by internal/runner — the
// parallel-vs-serial smoke check. Guarded by -short so quick benchmark
// runs skip the heavy sweep; compare the pair's ns/op to see the
// trial-level speedup on a multi-core machine.

var smokeSweepRadii = []float64{300, 450, 600}

// BenchmarkScalingSweepSerial runs the T4 sweep one trial at a time.
func BenchmarkScalingSweepSerial(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy scaling sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.StaticConvergence(runner.Seq, 100, smokeSweepRadii, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingSweepParallel runs the identical sweep on a
// GOMAXPROCS worker pool; the output tables are byte-identical to the
// serial run (asserted by TestParallelSerialDeterminism), only the
// wall-clock differs.
func BenchmarkScalingSweepParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy scaling sweep")
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.StaticConvergence(runner.Parallel(0), 100, smokeSweepRadii, 7); err != nil {
			b.Fatal(err)
		}
	}
}
