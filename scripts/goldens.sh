#!/usr/bin/env sh
# Replays the archived experiment scenarios and either regenerates the
# golden stdout files (generate) or diffs fresh output against them
# (diff). The golden set covers zero-fault and chaos runs, serial and
# parallel trial fan-out, healing, mobility, and the gs3bench tables —
# the determinism contract every perf PR must preserve byte-for-byte.
#
# Usage: scripts/goldens.sh generate|diff
set -eu

mode="${1:-diff}"
root="$(cd "$(dirname "$0")/.." && pwd)"
golden="$root/testdata/goldens"
bindir="$(mktemp -d)"
trap 'rm -rf "$bindir"' EXIT

cd "$root"
go build -o "$bindir/gs3sim" ./cmd/gs3sim
go build -o "$bindir/gs3bench" ./cmd/gs3bench

case "$mode" in
generate) outdir="$golden"; mkdir -p "$outdir" ;;
diff) outdir="$bindir/out"; mkdir -p "$outdir" ;;
*) echo "usage: $0 generate|diff" >&2; exit 2 ;;
esac

# name command... — stdout is the golden; stderr (timing) is discarded.
run() {
    name="$1"
    shift
    echo "golden: $name" >&2
    "$@" >"$outdir/$name.txt" 2>/dev/null
}

run sweep_seed3 "$bindir/gs3sim" -region 300 -sweeps 30 -seed 3
run heal_seed1 "$bindir/gs3sim" -region 400 -kill-disk 150,80,120 -sweeps 40 -seed 1
run trials_par "$bindir/gs3sim" -region 300 -trials 4 -sweeps 20 -seed 5
run trials_seq "$bindir/gs3sim" -region 300 -trials 4 -sweeps 20 -seed 5 -seq
run chaos_seed7 "$bindir/gs3sim" -region 300 -loss 0.2 -blackout-rate 0.02 \
    -blackout-sweeps 3 -chaos -sweeps 120 -seed 7
run faults_jitter_seed9 "$bindir/gs3sim" -region 300 -loss 0.15 -dup 0.05 \
    -jitter 0.2 -sweeps 40 -seed 9
run mobile_seed2 "$bindir/gs3sim" -region 250 -mobile -sweeps 40 -seed 2
run traffic_settled_seed3 "$bindir/gs3sim" -region 300 -r 50 -sweeps 15 \
    -packets 10000 -traffic-rate 500 -p2p 0.3 -seed 3
run traffic_chaos_seed4 "$bindir/gs3sim" -region 300 -r 50 -sweeps 15 \
    -packets 10000 -traffic-rate 500 -p2p 0.3 -loss 0.1 -blackout-rate 0.01 \
    -blackout-sweeps 3 -churn 20 -seed 4
run bench_quick_par "$bindir/gs3bench" -quick -seed 7 -exp A2,T3
run bench_quick_seq "$bindir/gs3bench" -quick -seed 7 -exp A2,T3 -seq
run disaster_seed6 "$bindir/gs3sim" -region 300 -disaster 150,80,90 \
    -disaster-at 4 -sweeps 30 -seed 6
run obstacle_seed8 "$bindir/gs3sim" -region 300 \
    -obstacle "120,-80,160,-80,160,80,120,80" -sweeps 30 -seed 8

if [ "$mode" = diff ]; then
    status=0
    for f in "$golden"/*.txt; do
        name="$(basename "$f")"
        if ! diff -u "$f" "$outdir/$name" >&2; then
            echo "golden-diff: $name DIFFERS" >&2
            status=1
        fi
    done
    [ "$status" -eq 0 ] && echo "golden-diff: all $(ls "$golden" | wc -l) scenarios byte-identical" >&2
    exit "$status"
fi
echo "goldens: regenerated into $golden" >&2
