package gs3

import (
	"gs3/internal/trace"
)

// TraceEvent is one recorded protocol transition, in public form.
type TraceEvent struct {
	Time  float64
	Kind  string // e.g. "head_shift", "cell_shift", "sanity_retreat"
	Node  NodeID
	Other NodeID
	Pos   Point
}

// EnableTracing starts recording protocol events into a bounded ring of
// the given capacity (older events are evicted). Call before Configure
// to capture the self-configuration too.
func (n *Network) EnableTracing(capacity int) {
	n.nw.SetTracer(trace.NewLog(capacity))
}

// DisableTracing stops recording and discards the log.
func (n *Network) DisableTracing() {
	n.nw.SetTracer(nil)
}

// TraceEvents returns the recorded protocol events, oldest first
// (empty when tracing is disabled).
func (n *Network) TraceEvents() []TraceEvent {
	l := n.nw.Tracer()
	if l == nil {
		return nil
	}
	evs := l.Events()
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		out[i] = TraceEvent{
			Time:  e.Time,
			Kind:  e.Kind.String(),
			Node:  e.Node,
			Other: e.Other,
			Pos:   Point(e.Pos),
		}
	}
	return out
}

// TraceCounts returns a histogram of recorded events by kind name.
func (n *Network) TraceCounts() map[string]int {
	l := n.nw.Tracer()
	if l == nil {
		return nil
	}
	out := map[string]int{}
	for k, v := range l.Counts() {
		out[k.String()] = v
	}
	return out
}
