// Package gs3 is the public API of this GS³ implementation — the
// self-configuration and self-healing algorithm of Zhang & Arora
// (PODC 2002) for multi-hop wireless sensor networks.
//
// A Network wraps a simulated deployment: the big node (sink) plus
// small nodes on a 2-D plane. Configure runs the GS³-S diffusing
// computation that organizes the nodes into a cellular hexagonal
// structure of cells with radius R ± O(Rt); EnableSelfHealing turns on
// the GS³-D/GS³-M maintenance that heals joins, leaves, deaths, moves,
// and state corruption locally.
//
//	net, _ := gs3.New(gs3.Options{CellRadius: 100}, positions)
//	_ = net.Configure()
//	net.EnableSelfHealing(gs3.Mobile)
//	net.RunFor(10)              // advance virtual time
//	cells := net.Cells()        // inspect the structure
//	route := net.RouteToSink(id) // head-graph path to the big node
//
// Two data-plane entry points ride on the structure: Collect computes
// one instantaneous aggregation round over a snapshot, and
// ServeTraffic routes individual packets hop-by-hop on the virtual
// clock — convergecast to the sink and point-to-point geographic —
// measuring delivery, latency, and head load while healing runs.
package gs3

import (
	"fmt"
	"math"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/live"
	"gs3/internal/radio"
	"gs3/internal/rng"
)

// Point is a location on the plane.
type Point struct {
	X, Y float64
}

// NodeID identifies a node; the big node is always 0.
type NodeID = radio.NodeID

// None is the absent-node sentinel.
const None = radio.None

// Healing selects the self-healing variant.
type Healing int

// Healing variants: Dynamic enables GS³-D (joins, leaves, deaths,
// corruption); Mobile additionally enables GS³-M (node movement, big
// node proxying).
const (
	Dynamic Healing = iota + 1
	Mobile
)

// Options configures a network.
type Options struct {
	// CellRadius is the ideal cell radius R. Required.
	CellRadius float64
	// RadiusTolerance is Rt; with high probability every Rt-disk in the
	// deployment holds a node. Defaults to CellRadius/4.
	RadiusTolerance float64
	// ReferenceDirection is the GR angle in radians (any consistent
	// value works; defaults to 0).
	ReferenceDirection float64
	// Seed makes runs reproducible. Defaults to 1.
	Seed uint64

	// HeartbeatInterval is the maintenance period in virtual seconds.
	// Defaults to 1.
	HeartbeatInterval float64

	// InitialEnergy enables the energy model when positive: nodes spend
	// EnergyRate per second as associates and HeadEnergyFactor times
	// that as heads, and die at zero.
	InitialEnergy    float64
	EnergyRate       float64
	HeadEnergyFactor float64
}

func (o Options) toConfig() (core.Config, error) {
	if o.CellRadius <= 0 {
		return core.Config{}, fmt.Errorf("gs3: CellRadius must be positive, got %v", o.CellRadius)
	}
	cfg := core.DefaultConfig(o.CellRadius)
	if o.RadiusTolerance > 0 {
		cfg.Rt = o.RadiusTolerance
	}
	cfg.GR = o.ReferenceDirection
	if o.HeartbeatInterval > 0 {
		cfg.HeartbeatInterval = o.HeartbeatInterval
	}
	if o.InitialEnergy > 0 {
		cfg.InitialEnergy = o.InitialEnergy
		if o.EnergyRate > 0 {
			cfg.AssociateDissipation = o.EnergyRate
		}
		if o.HeadEnergyFactor > 0 {
			cfg.HeadEnergyFactor = o.HeadEnergyFactor
		}
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("gs3: %w", err)
	}
	return cfg, nil
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Network is a GS³-managed network.
type Network struct {
	nw  *core.Network
	cfg core.Config
}

// New creates a network from node positions. positions[0] is the big
// node (the sink). At least one node is required.
func New(opts Options, positions []Point) (*Network, error) {
	cfg, err := opts.toConfig()
	if err != nil {
		return nil, err
	}
	if len(positions) == 0 {
		return nil, fmt.Errorf("gs3: at least the big node is required")
	}
	params := radio.Params{
		MaxRange:           cfg.SearchRadius() + cfg.Rt,
		DiffusionSpeed:     cfg.SearchRadius(),
		PerMessageOverhead: 0.001,
	}
	nw, err := core.NewNetwork(cfg, params, rng.New(opts.seed()))
	if err != nil {
		return nil, err
	}
	for i, p := range positions {
		if _, err := nw.AddNode(geom.Point(p), i == 0); err != nil {
			return nil, err
		}
	}
	return &Network{nw: nw, cfg: cfg}, nil
}

// Configure runs the GS³-S self-configuration to completion and returns
// the virtual time it took.
func (n *Network) Configure() (float64, error) {
	start := n.nw.Engine().Now()
	if err := n.nw.StartConfiguration(); err != nil {
		return 0, err
	}
	n.nw.Engine().Run(0)
	return n.nw.Engine().Now() - start, nil
}

// EnableSelfHealing starts the GS³-D (Dynamic) or GS³-M (Mobile)
// maintenance sweeps.
func (n *Network) EnableSelfHealing(h Healing) {
	switch h {
	case Mobile:
		n.nw.StartMaintenance(core.VariantM)
	default:
		n.nw.StartMaintenance(core.VariantD)
	}
}

// RunFor advances virtual time by d seconds, executing all protocol
// actions that fall due.
func (n *Network) RunFor(d float64) {
	e := n.nw.Engine()
	e.RunUntil(e.Now() + d)
}

// Now returns the current virtual time.
func (n *Network) Now() float64 {
	return n.nw.Engine().Now()
}

// Join adds a small node at p to the running network and returns its ID.
func (n *Network) Join(p Point) NodeID {
	return n.nw.Join(geom.Point(p))
}

// Kill removes a node abruptly (fail-stop).
func (n *Network) Kill(id NodeID) {
	n.nw.Kill(id)
}

// Move changes a node's position.
func (n *Network) Move(id NodeID, p Point) {
	n.nw.Move(id, geom.Point(p))
}

// Role is a node's role in the structure.
type Role int

// Roles.
const (
	RoleBootup Role = iota + 1
	RoleHead
	RoleAssociate
	RoleBigMoving
	RoleDead
)

func roleOf(s core.Status) Role {
	switch {
	case s.IsHeadRole():
		return RoleHead
	case s == core.StatusAssociate:
		return RoleAssociate
	case s == core.StatusBigSlide || s == core.StatusBigMove:
		return RoleBigMoving
	case s == core.StatusDead:
		return RoleDead
	default:
		return RoleBootup
	}
}

// Info is a node's public state.
type Info struct {
	ID        NodeID
	Pos       Point
	Role      Role
	IsBig     bool
	Head      NodeID // for associates: their cell head
	Candidate bool
	Energy    float64
}

// NodeInfo returns a node's state; ok is false for unknown or dead
// nodes.
func (n *Network) NodeInfo(id NodeID) (Info, bool) {
	v, ok := n.nw.Snapshot().View(id)
	if !ok {
		return Info{}, false
	}
	return Info{
		ID: v.ID, Pos: Point(v.Pos), Role: roleOf(v.Status), IsBig: v.IsBig,
		Head: v.Head, Candidate: v.Candidate, Energy: v.Energy,
	}, true
}

// Cell is one cell of the configured structure.
type Cell struct {
	Head     NodeID
	IL       Point // the cell's current ideal location
	Parent   NodeID
	Hops     int // head-graph distance to the big node
	Members  []NodeID
	IsBig    bool
	Boundary bool // fewer than 6 neighboring cells
}

// Cells returns the current cellular structure.
func (n *Network) Cells() []Cell {
	snap := n.nw.Snapshot()
	heads := snap.Heads()
	out := make([]Cell, 0, len(heads))
	for _, h := range heads {
		neighbors := 0
		for _, o := range heads {
			if o.ID != h.ID && h.Pos.Dist(o.Pos) <= n.cfg.NeighborDistMax()+1e-9 {
				neighbors++
			}
		}
		out = append(out, Cell{
			Head:     h.ID,
			IL:       Point(h.IL),
			Parent:   h.Parent,
			Hops:     h.Hops,
			Members:  snap.Members(h.ID),
			IsBig:    h.IsBig,
			Boundary: neighbors < 6,
		})
	}
	return out
}

// RouteToSink returns the head-graph path from the given node to the
// big node: its cell head, then parent heads up the tree. It returns
// nil when the node is not attached to the structure.
func (n *Network) RouteToSink(id NodeID) []NodeID {
	snap := n.nw.Snapshot()
	v, ok := snap.View(id)
	if !ok {
		return nil
	}
	var route []NodeID
	cur := v
	if !cur.IsHead() {
		if cur.Status != core.StatusAssociate {
			return nil
		}
		route = append(route, cur.ID)
		cur, ok = snap.View(cur.Head)
		if !ok {
			return nil
		}
	}
	for hops := 0; hops <= len(snap.Nodes); hops++ {
		route = append(route, cur.ID)
		if cur.IsBig || cur.Parent == cur.ID {
			return route
		}
		next, ok := snap.View(cur.Parent)
		if !ok || !next.IsHead() {
			return route
		}
		cur = next
	}
	return route
}

// Verify machine-checks the GS³ invariant on the current state and
// returns human-readable violations (empty means the invariant holds).
// Use VerifyStrict for the stronger fixpoint check.
func (n *Network) Verify() []string {
	return render(check.Invariant(n.nw.Snapshot(), check.Dynamic))
}

// VerifyStrict checks the full fixpoint (coverage, optimality,
// min-distance tree).
func (n *Network) VerifyStrict() []string {
	return render(check.Fixpoint(n.nw.Snapshot(), check.Dynamic))
}

func render(r check.Result) []string {
	out := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		out = append(out, v.String())
	}
	return out
}

// Stats summarizes the structure.
type Stats struct {
	Nodes            int
	Heads            int
	Associates       int
	Uncovered        int
	MeanCellRadius   float64
	MaxCellRadius    float64
	MeanNeighborDist float64
	Broadcasts       uint64
	HeadShifts       uint64
	CellShifts       uint64
}

// Stats computes summary statistics of the current structure.
func (n *Network) Stats() Stats {
	st := check.Stats(n.nw.Snapshot())
	var s Stats
	s.Nodes = st.Heads + st.Associates + st.Bootup
	s.Heads = st.Heads
	s.Associates = st.Associates
	s.Uncovered = st.Bootup
	if len(st.CellRadii) > 0 {
		sum, maxR := 0.0, 0.0
		for _, r := range st.CellRadii {
			sum += r
			maxR = math.Max(maxR, r)
		}
		s.MeanCellRadius = sum / float64(len(st.CellRadii))
		s.MaxCellRadius = maxR
	}
	if len(st.NeighborDists) > 0 {
		sum := 0.0
		for _, d := range st.NeighborDists {
			sum += d
		}
		s.MeanNeighborDist = sum / float64(len(st.NeighborDists))
	}
	s.Broadcasts = n.nw.Medium().Stats().Broadcasts
	m := n.nw.Metrics()
	s.HeadShifts = m.HeadShifts
	s.CellShifts = m.CellShifts
	return s
}

// PoissonDeployment generates node positions with a planar Poisson
// process of the given density λ (mean nodes per unit-radius disk, the
// paper's convention) in a disk of regionRadius; index 0 is the big
// node at the center.
func PoissonDeployment(regionRadius, lambda float64, seed uint64) ([]Point, error) {
	dep, err := field.Poisson(field.Config{Radius: regionRadius, Lambda: lambda}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return toPoints(dep), nil
}

// GridDeployment generates node positions on a jittered triangular grid
// with the given spacing; index 0 is the big node at the center. A
// spacing of at most √3·Rt guarantees every Rt-disk holds a node.
func GridDeployment(regionRadius, spacing, jitter float64, seed uint64) ([]Point, error) {
	dep, err := field.Grid(regionRadius, spacing, jitter, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return toPoints(dep), nil
}

func toPoints(dep field.Deployment) []Point {
	out := make([]Point, len(dep.Positions))
	for i, p := range dep.Positions {
		out[i] = Point(p)
	}
	return out
}

// LiveResult is the outcome of RunLive.
type LiveResult struct {
	// Heads maps each elected head to its ideal location.
	Heads map[NodeID]Point
	// HeadOf maps each non-head node to its chosen head (None when
	// uncovered).
	HeadOf map[NodeID]NodeID
}

// RunLive executes the GS³-S diffusing computation with one goroutine
// per node (message-level concurrency) instead of the event-driven
// engine, and returns the resulting structure. It demonstrates that
// the structure emerges from the distributed protocol itself.
func RunLive(opts Options, positions []Point) (LiveResult, error) {
	cfg, err := opts.toConfig()
	if err != nil {
		return LiveResult{}, err
	}
	dep := field.Deployment{Positions: make([]geom.Point, len(positions))}
	for i, p := range positions {
		dep.Positions[i] = geom.Point(p)
	}
	res, err := live.Run(cfg, dep)
	if err != nil {
		return LiveResult{}, err
	}
	out := LiveResult{Heads: map[NodeID]Point{}, HeadOf: map[NodeID]NodeID{}}
	for _, rep := range res.Reports {
		if rep.IsHead {
			out.Heads[rep.ID] = Point(rep.IL)
		} else {
			out.HeadOf[rep.ID] = rep.Head
		}
	}
	return out, nil
}
