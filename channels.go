package gs3

import (
	"gs3/internal/channel"
)

// ChannelPlan assigns every cell one of three radio channels using the
// cellular reuse-3 pattern on the hexagonal lattice: no two neighboring
// cells share a channel, and the same-channel reuse distance is 3·R.
// This is the frequency-reuse payoff of the bounded, exactly placed
// cells (paper §1). The plan stays valid through self-healing: a
// replacement head inherits its cell's lattice position and therefore
// its channel.
func (n *Network) ChannelPlan() (map[NodeID]int, error) {
	a, err := channel.Reuse3(n.nw.Snapshot())
	if err != nil {
		return nil, err
	}
	out := make(map[NodeID]int, len(a.Channels))
	for id, ch := range a.Channels {
		out[id] = ch
	}
	return out, nil
}
