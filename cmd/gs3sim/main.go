// Command gs3sim runs one GS³ scenario and reports the resulting
// structure: configure a deployment, optionally perturb it, verify the
// invariant, print statistics, and (optionally) write an SVG rendering.
//
// Usage examples:
//
//	gs3sim -region 500 -r 100
//	gs3sim -region 500 -r 100 -lambda 0.02
//	gs3sim -region 500 -kill-disk 150,80,120 -sweeps 40
//	gs3sim -region 400 -svg structure.svg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/render"
	"gs3/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gs3sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gs3sim", flag.ContinueOnError)
	var (
		r        = fs.Float64("r", 100, "ideal cell radius R")
		rt       = fs.Float64("rt", 0, "radius tolerance Rt (default R/4)")
		region   = fs.Float64("region", 500, "deployment disk radius")
		lambda   = fs.Float64("lambda", 0, "Poisson density (nodes per unit-radius disk); 0 = grid deployment")
		spacing  = fs.Float64("spacing", 0, "grid spacing (default 0.9*Rt)")
		seed     = fs.Uint64("seed", 1, "random seed")
		sweeps   = fs.Int("sweeps", 0, "maintenance sweeps to run after configuring (enables GS3-D)")
		mobile   = fs.Bool("mobile", false, "run GS3-M instead of GS3-D maintenance")
		killDisk = fs.String("kill-disk", "", "kill all nodes in disk \"x,y,radius\" after configuring")
		svgPath  = fs.String("svg", "", "write an SVG rendering of the final structure to this file")
		traceN   = fs.Int("trace", 0, "record protocol events and print the last N")
		dumpPath = fs.String("dump", "", "write the final snapshot as JSON to this file")
		quiet    = fs.Bool("q", false, "print only the one-line summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := netsim.DefaultOptions(*r, *region)
	opt.Seed = *seed
	if *rt > 0 {
		opt.Config.Rt = *rt
	}
	if *lambda > 0 {
		opt.GridSpacing = 0
		opt.Lambda = *lambda
	} else if *spacing > 0 {
		opt.GridSpacing = *spacing
	}

	s, err := netsim.Build(opt)
	if err != nil {
		return err
	}
	if *traceN > 0 {
		s.Net.SetTracer(trace.NewLog(*traceN))
	}
	elapsed, err := s.Configure()
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("configured %d nodes in %.2f virtual seconds\n", s.Net.Medium().Count(), elapsed)
	}

	if *killDisk != "" {
		c, radius, err := parseDisk(*killDisk)
		if err != nil {
			return err
		}
		variant := core.VariantD
		if *mobile {
			variant = core.VariantM
		}
		s.Net.StartMaintenance(variant)
		killed := s.KillDisk(c, radius)
		if !*quiet {
			fmt.Printf("killed %d nodes in disk (%.0f,%.0f) r=%.0f\n", killed, c.X, c.Y, radius)
		}
	}
	if *sweeps > 0 {
		variant := core.VariantD
		if *mobile {
			variant = core.VariantM
		}
		s.Net.StartMaintenance(variant)
		s.RunSweeps(*sweeps)
		if !*quiet {
			fmt.Printf("ran %d maintenance sweeps (%s)\n", *sweeps, variant)
		}
	}

	snap := s.Net.Snapshot()
	st := check.Stats(snap)
	mode := check.Static
	if *sweeps > 0 || *killDisk != "" {
		mode = check.Dynamic
	}
	inv := check.Invariant(snap, mode)

	fmt.Printf("nodes=%d heads=%d associates=%d bootup=%d ilDeviationMax=%.1f invariantOK=%v\n",
		len(snap.Nodes), st.Heads, st.Associates, st.Bootup, st.MaxILDeviation, inv.OK())
	if !*quiet {
		for i, v := range inv.Violations {
			if i >= 10 {
				fmt.Printf("  ... and %d more violations\n", len(inv.Violations)-10)
				break
			}
			fmt.Printf("  violation: %v\n", v)
		}
		m := s.Net.Metrics()
		fmt.Printf("actions: headOrgs=%d headsSelected=%d headShifts=%d cellShifts=%d abandonments=%d sanityRetreats=%d\n",
			m.HeadOrgs, m.HeadsSelected, m.HeadShifts, m.CellShifts, m.Abandonments, m.SanityRetreats)
		rs := s.Net.Medium().Stats()
		fmt.Printf("radio: broadcasts=%d unicasts=%d deliveries=%d\n", rs.Broadcasts, rs.Unicasts, rs.Deliveries)
	}

	if *traceN > 0 {
		if l := s.Net.Tracer(); l != nil {
			fmt.Printf("--- last %d protocol events (%d dropped) ---\n%s", l.Len(), l.Dropped(), l.Dump())
		}
	}

	if *svgPath != "" {
		svg := render.SVG(snap, render.DefaultOptions())
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return fmt.Errorf("write svg: %w", err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *svgPath)
		}
	}
	if *dumpPath != "" {
		data, err := json.MarshalIndent(snap, "", " ")
		if err != nil {
			return fmt.Errorf("encode snapshot: %w", err)
		}
		if err := os.WriteFile(*dumpPath, data, 0o644); err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *dumpPath)
		}
	}
	return nil
}

func parseDisk(s string) (geom.Point, float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return geom.Point{}, 0, fmt.Errorf("bad disk %q: want x,y,radius", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Point{}, 0, fmt.Errorf("bad disk %q: %w", s, err)
		}
		vals[i] = v
	}
	return geom.Point{X: vals[0], Y: vals[1]}, vals[2], nil
}
