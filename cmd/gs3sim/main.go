// Command gs3sim runs one GS³ scenario and reports the resulting
// structure: configure a deployment, optionally perturb it, verify the
// invariant, print statistics, and (optionally) write an SVG rendering.
//
// With -trials N it replicates the scenario N times with per-trial
// seeds derived from -seed (trial 0 keeps the base seed, so -trials 1
// reproduces the single run exactly), fanning the replicas across a
// worker pool. Reports print in trial order regardless of completion
// order; per-trial timing goes to stderr. SVG/JSON/trace output always
// comes from trial 0, the base-seed run.
//
// Usage examples:
//
//	gs3sim -region 500 -r 100
//	gs3sim -region 500 -r 100 -lambda 0.02
//	gs3sim -region 500 -kill-disk 150,80,120 -sweeps 40
//	gs3sim -region 400 -svg structure.svg
//	gs3sim -region 400 -trials 8            # 8 seed replicates in parallel
//	gs3sim -region 400 -trials 8 -seq       # same reports, one at a time
//	gs3sim -region 400 -loss 0.2 -sweeps 40           # lossy radio
//	gs3sim -region 400 -loss 0.2 -chaos -sweeps 120   # chaos watchdog
//	gs3sim -region 400 -sweeps 20 -packets 50000              # data plane
//	gs3sim -region 400 -sweeps 20 -packets 50000 -p2p 0.3 -loss 0.1 -churn 50
//	gs3sim -region 300 -disaster 150,80,90 -disaster-at 4 -sweeps 30  # scheduled disaster
//	gs3sim -region 300 -obstacle "120,-80,160,-80,160,80,120,80" -sweeps 30
//	gs3sim -region 300 -sweeps 40 -energy 200 -energy-send 0.5,0.25   # battery death
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"gs3/internal/check"
	"gs3/internal/core"
	"gs3/internal/fault"
	"gs3/internal/field"
	"gs3/internal/geom"
	"gs3/internal/netsim"
	"gs3/internal/profiling"
	"gs3/internal/render"
	"gs3/internal/runner"
	"gs3/internal/trace"
	"gs3/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gs3sim:", err)
		os.Exit(1)
	}
}

// scenario is one fully resolved gs3sim run: options plus the
// perturbation and reporting knobs. Each trial executes its own copy —
// scenarios share nothing, so replicas can run concurrently.
type scenario struct {
	opt         netsim.Options
	mobile      bool
	workers     int
	hasKill     bool
	killC       geom.Point
	killR       float64
	hasDisaster bool
	disC        geom.Point
	disR        float64
	disAt       float64
	sweeps      int
	chaos       bool
	packets     int
	rate        float64
	p2p         float64
	churn       int
	traceN      int
	svgPath     string
	dumpPath    string
	quiet       bool
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("gs3sim", flag.ContinueOnError)
	var (
		r        = fs.Float64("r", 100, "ideal cell radius R")
		rt       = fs.Float64("rt", 0, "radius tolerance Rt (default R/4)")
		region   = fs.Float64("region", 500, "deployment disk radius")
		lambda   = fs.Float64("lambda", 0, "Poisson density (nodes per unit-radius disk); 0 = grid deployment")
		spacing  = fs.Float64("spacing", 0, "grid spacing (default 0.9*Rt)")
		seed     = fs.Uint64("seed", 1, "random seed (base seed when -trials > 1)")
		sweeps   = fs.Int("sweeps", 0, "maintenance sweeps to run after configuring (enables GS3-D)")
		mobile   = fs.Bool("mobile", false, "run GS3-M instead of GS3-D maintenance")
		killDisk = fs.String("kill-disk", "", "kill all nodes in disk \"x,y,radius\" after configuring")
		disaster = fs.String("disaster", "", "schedule a disaster disk \"x,y,radius\" to strike mid-run")
		disAt    = fs.Float64("disaster-at", 5, "sweeps into the run at which -disaster strikes")
		obstacle = fs.String("obstacle", "", "polygonal obstacles \"x1,y1,x2,y2,...[;...]\": cleared of nodes and radio-occluding")
		energy   = fs.Float64("energy", 0, "initial per-node battery (0 = energy model off)")
		enSend   = fs.String("energy-send", "", "per-transmission drain \"broadcast,unicast\" (needs -energy)")
		loss     = fs.Float64("loss", 0, "per-delivery message loss probability [0,1)")
		dup      = fs.Float64("dup", 0, "per-delivery duplication probability [0,1)")
		jitter   = fs.Float64("jitter", 0, "delay jitter factor (delay scaled by up to 1+jitter)")
		boRate   = fs.Float64("blackout-rate", 0, "per-node per-sweep blackout start probability [0,1)")
		boSweeps = fs.Float64("blackout-sweeps", 3, "mean blackout duration in sweeps")
		chaos    = fs.Bool("chaos", false, "run the convergence watchdog over -sweeps instead of a fixed sweep count; exit nonzero on non-convergence")
		packets  = fs.Int("packets", 0, "route this many packets over the structure after -sweeps settle it (enables the data plane)")
		rate     = fs.Float64("traffic-rate", 500, "packet arrival rate (packets per virtual second) for -packets")
		p2p      = fs.Float64("p2p", 0, "fraction of -packets routed point-to-point geographic; rest convergecast")
		churn    = fs.Int("churn", 0, "random kill+join membership events, one per 2 heartbeats, during traffic")
		svgPath  = fs.String("svg", "", "write an SVG rendering of the final structure to this file")
		traceN   = fs.Int("trace", 0, "record protocol events and print the last N")
		dumpPath = fs.String("dump", "", "write the final snapshot as JSON to this file")
		quiet    = fs.Bool("q", false, "print only the one-line summary")
		workers  = fs.Int("workers", 0, "sharded-executor workers for configuration and maintenance sweeps (0 = serial; output is identical either way)")
		trials   = fs.Int("trials", 1, "seed replicates of the scenario (seeds derived from -seed)")
		parallel = fs.Int("parallel", 0, "workers for -trials fan-out (0 = GOMAXPROCS)")
		seq      = fs.Bool("seq", false, "run trials strictly serially (same reports, slower)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials < 1 {
		return fmt.Errorf("-trials must be at least 1, got %d", *trials)
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	base := scenario{
		workers:  *workers,
		mobile:   *mobile,
		sweeps:   *sweeps,
		chaos:    *chaos,
		packets:  *packets,
		rate:     *rate,
		p2p:      *p2p,
		churn:    *churn,
		traceN:   *traceN,
		svgPath:  *svgPath,
		dumpPath: *dumpPath,
		quiet:    *quiet,
	}
	base.opt = netsim.DefaultOptions(*r, *region)
	base.opt.Seed = *seed
	base.opt.SweepWorkers = *workers
	base.opt.Faults = fault.Plan{
		Loss:           *loss,
		Dup:            *dup,
		Jitter:         *jitter,
		BlackoutRate:   *boRate,
		BlackoutSweeps: *boSweeps,
	}
	if base.chaos && base.sweeps <= 0 {
		return fmt.Errorf("-chaos needs a positive -sweeps budget")
	}
	if base.chaos && base.packets > 0 {
		return fmt.Errorf("-chaos and -packets are mutually exclusive: the watchdog and the traffic run both own the sweep schedule")
	}
	if base.packets <= 0 && (base.p2p != 0 || base.churn != 0) {
		return fmt.Errorf("-p2p/-churn need -packets")
	}
	if *rt > 0 {
		base.opt.Config.Rt = *rt
	}
	if *lambda > 0 {
		base.opt.GridSpacing = 0
		base.opt.Lambda = *lambda
	} else if *spacing > 0 {
		base.opt.GridSpacing = *spacing
	}
	if *killDisk != "" {
		c, radius, err := parseDisk(*killDisk)
		if err != nil {
			return err
		}
		base.hasKill = true
		base.killC, base.killR = c, radius
	}
	if *disaster != "" {
		c, radius, err := parseDisk(*disaster)
		if err != nil {
			return err
		}
		if base.sweeps <= 0 && base.packets <= 0 {
			return fmt.Errorf("-disaster needs -sweeps or -packets to run the clock")
		}
		base.hasDisaster = true
		base.disC, base.disR, base.disAt = c, radius, *disAt
	}
	if *obstacle != "" {
		obs, err := parsePolygons(*obstacle)
		if err != nil {
			return err
		}
		base.opt.Obstacles = obs
	}
	if *energy > 0 {
		base.opt.Config.InitialEnergy = *energy
	}
	if *enSend != "" {
		if *energy <= 0 {
			return fmt.Errorf("-energy-send needs -energy")
		}
		parts := strings.Split(*enSend, ",")
		if len(parts) != 2 {
			return fmt.Errorf("bad -energy-send %q: want broadcast,unicast", *enSend)
		}
		b, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		u, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -energy-send %q: want broadcast,unicast", *enSend)
		}
		base.opt.Config.BroadcastCost = b
		base.opt.Config.UnicastCost = u
	}

	if *trials == 1 {
		return base.run(os.Stdout)
	}

	pool := runner.Parallel(*parallel)
	if *seq {
		pool = runner.Seq
	}
	reports, stats, err := runner.MapTimed(pool, *trials, func(i int) (string, error) {
		sc := base
		sc.opt.Seed = runner.TrialSeed(*seed, i)
		if i != 0 {
			// File and trace output belong to the base-seed trial only;
			// replicas report their summary lines.
			sc.svgPath, sc.dumpPath, sc.traceN = "", "", 0
		}
		var buf bytes.Buffer
		if err := sc.run(&buf); err != nil {
			return "", err
		}
		return buf.String(), nil
	})
	if err != nil {
		return err
	}
	for i, report := range reports {
		fmt.Printf("--- trial %d (seed %d) ---\n%s", i, runner.TrialSeed(*seed, i), report)
	}
	for _, tt := range stats.Trials {
		fmt.Fprintf(os.Stderr, "# timing: trial %d %v\n", tt.Trial, tt.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "# timing: wall %v, serial-equivalent %v, speedup %.2fx on %d workers\n",
		stats.Wall.Round(time.Millisecond), stats.Serial().Round(time.Millisecond),
		stats.Speedup(), stats.Workers)
	return nil
}

// run executes the scenario and writes its report to w. It is safe to
// call concurrently on distinct scenario values: each call builds a
// private simulation and touches nothing shared.
func (sc scenario) run(w io.Writer) error {
	s, err := netsim.Build(sc.opt)
	if err != nil {
		return err
	}
	if sc.traceN > 0 {
		s.Net.SetTracer(trace.NewLog(sc.traceN))
	}
	configure := s.Configure
	if sc.workers > 1 {
		// Sharded configure and sweeps are byte-identical to serial, so
		// -workers changes only the wall clock of a report.
		configure = func() (float64, error) { return s.ConfigureSharded(sc.workers) }
	}
	elapsed, err := configure()
	if err != nil {
		return err
	}
	if !sc.quiet {
		fmt.Fprintf(w, "configured %d nodes in %.2f virtual seconds\n", s.Net.Medium().Count(), elapsed)
	}

	if sc.hasKill {
		variant := core.VariantD
		if sc.mobile {
			variant = core.VariantM
		}
		s.Net.StartMaintenance(variant)
		killed := s.KillDisk(sc.killC, sc.killR)
		if !sc.quiet {
			fmt.Fprintf(w, "killed %d nodes in disk (%.0f,%.0f) r=%.0f\n", killed, sc.killC.X, sc.killC.Y, sc.killR)
		}
	}
	if sc.hasDisaster {
		at := s.Net.Engine().Now() + sc.disAt*sc.opt.Config.HeartbeatInterval
		if err := s.ScheduleDisaster(netsim.Disaster{At: at, Center: sc.disC, Radius: sc.disR}); err != nil {
			return err
		}
	}
	var chaosErr error
	if sc.sweeps > 0 {
		variant := core.VariantD
		if sc.mobile {
			variant = core.VariantM
		}
		s.Net.StartMaintenance(variant)
		if sc.chaos {
			rep := s.RunChaos(check.Dynamic, 3, sc.sweeps)
			fmt.Fprintf(w, "chaos: converged=%v healTime=%.2f sweeps=%d violations=%d retries=%d\n",
				rep.Converged, rep.HealTime, rep.Sweeps, rep.Violations, rep.Retries)
			if !rep.Converged {
				chaosErr = fmt.Errorf("chaos: no convergence within %d sweeps (%w)", sc.sweeps, netsim.ErrNoConvergence)
			}
		} else {
			s.RunSweeps(sc.sweeps)
			if !sc.quiet {
				fmt.Fprintf(w, "ran %d maintenance sweeps (%s)\n", sc.sweeps, variant)
			}
		}
	}

	if sc.packets > 0 {
		// Maintenance (if -sweeps settled the structure) keeps running on
		// the same engine, so healing interleaves with packet hops.
		if sc.churn > 0 {
			s.StartChurn(2*sc.opt.Config.HeartbeatInterval, sc.churn)
		}
		plane, err := s.ServeTraffic(traffic.Config{
			Packets:     sc.packets,
			Rate:        sc.rate,
			P2PFraction: sc.p2p,
		})
		if err != nil {
			return err
		}
		rep := plane.Run()
		fmt.Fprintf(w, "traffic: generated=%d delivered=%d ratio=%.4f lost: noroute=%d hopfail=%d ttl=%d expired=%d\n",
			rep.Generated, rep.Delivered, rep.DeliveryRatio,
			rep.LostNoRoute, rep.LostHopFail, rep.LostTTL, rep.Expired)
		fmt.Fprintf(w, "traffic: latency p50=%.3f p99=%.3f p999=%.3f max=%.3f hops mean=%.2f max=%.0f detours=%d retries=%d\n",
			rep.LatencyP50, rep.LatencyP99, rep.LatencyP999, rep.LatencyMax,
			rep.MeanHops, rep.MaxHops, rep.Detours, rep.Retries)
		fmt.Fprintf(w, "traffic: heads=%d forwards=%d fwdPerHead=%.2f headEnergy=%.0f maxHeadEnergy=%.0f\n",
			rep.HeadsUsed, rep.Forwards, rep.MeanHeadForwards, rep.HeadEnergy, rep.MaxHeadEnergy)
	}

	if sc.hasDisaster {
		for _, d := range s.Disasters() {
			fmt.Fprintf(w, "disaster: at=%.2f center=(%.0f,%.0f) r=%.0f killed=%d\n",
				d.At, d.Center.X, d.Center.Y, d.Radius, d.Killed)
		}
	}

	snap := s.Net.Snapshot()
	st := check.Stats(snap)
	mode := check.Static
	if sc.sweeps > 0 || sc.hasKill {
		mode = check.Dynamic
	}
	inv := check.Invariant(snap, mode)

	fmt.Fprintf(w, "nodes=%d heads=%d associates=%d bootup=%d ilDeviationMax=%.1f invariantOK=%v\n",
		len(snap.Nodes), st.Heads, st.Associates, st.Bootup, st.MaxILDeviation, inv.OK())
	if !sc.quiet {
		for i, v := range inv.Violations {
			if i >= 10 {
				fmt.Fprintf(w, "  ... and %d more violations\n", len(inv.Violations)-10)
				break
			}
			fmt.Fprintf(w, "  violation: %v\n", v)
		}
		m := s.Net.Metrics()
		fmt.Fprintf(w, "actions: headOrgs=%d headsSelected=%d headShifts=%d cellShifts=%d abandonments=%d sanityRetreats=%d\n",
			m.HeadOrgs, m.HeadsSelected, m.HeadShifts, m.CellShifts, m.Abandonments, m.SanityRetreats)
		rs := s.Net.Medium().Stats()
		fmt.Fprintf(w, "radio: broadcasts=%d unicasts=%d deliveries=%d\n", rs.Broadcasts, rs.Unicasts, rs.Deliveries)
		if len(sc.opt.Obstacles) > 0 {
			fmt.Fprintf(w, "obstacles: polygons=%d occlusionBlocks=%d\n", len(sc.opt.Obstacles), rs.OcclusionBlocks)
		}
		if sc.opt.Config.InitialEnergy > 0 {
			minE, sumE, small := 0.0, 0.0, 0
			for _, v := range snap.Nodes {
				if v.IsBig {
					continue
				}
				if small == 0 || v.Energy < minE {
					minE = v.Energy
				}
				sumE += v.Energy
				small++
			}
			meanE := 0.0
			if small > 0 {
				meanE = sumE / float64(small)
			}
			fmt.Fprintf(w, "energy: alive=%d min=%.2f mean=%.2f\n", small, minE, meanE)
		}
		if sc.opt.Faults.Active() {
			fmt.Fprintf(w, "faults: drops=%d dups=%d blackouts=%d blackoutDrops=%d retries=%d\n",
				rs.FaultDrops, rs.FaultDups, rs.Blackouts, rs.BlackoutDrops, rs.Retries)
		}
	}

	if sc.traceN > 0 {
		if l := s.Net.Tracer(); l != nil {
			fmt.Fprintf(w, "--- last %d protocol events (%d dropped) ---\n%s", l.Len(), l.Dropped(), l.Dump())
		}
	}

	if sc.svgPath != "" {
		svg := render.SVG(snap, render.DefaultOptions())
		if err := os.WriteFile(sc.svgPath, []byte(svg), 0o644); err != nil {
			return fmt.Errorf("write svg: %w", err)
		}
		if !sc.quiet {
			fmt.Fprintf(w, "wrote %s\n", sc.svgPath)
		}
	}
	if sc.dumpPath != "" {
		data, err := json.MarshalIndent(snap, "", " ")
		if err != nil {
			return fmt.Errorf("encode snapshot: %w", err)
		}
		if err := os.WriteFile(sc.dumpPath, data, 0o644); err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		if !sc.quiet {
			fmt.Fprintf(w, "wrote %s\n", sc.dumpPath)
		}
	}
	return chaosErr
}

// parsePolygons parses semicolon-separated polygons, each a flat
// comma-separated list of at least three x,y vertex pairs.
func parsePolygons(s string) ([]field.Obstacle, error) {
	var out []field.Obstacle
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nums := strings.Split(part, ",")
		if len(nums) < 6 || len(nums)%2 != 0 {
			return nil, fmt.Errorf("bad polygon %q: want x1,y1,x2,y2,... with at least 3 vertices", part)
		}
		pg := make(field.Obstacle, 0, len(nums)/2)
		for i := 0; i < len(nums); i += 2 {
			x, err1 := strconv.ParseFloat(strings.TrimSpace(nums[i]), 64)
			y, err2 := strconv.ParseFloat(strings.TrimSpace(nums[i+1]), 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad polygon vertex %q,%q", nums[i], nums[i+1])
			}
			pg = append(pg, geom.Point{X: x, Y: y})
		}
		out = append(out, pg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no polygons in %q", s)
	}
	return out, nil
}

func parseDisk(s string) (geom.Point, float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return geom.Point{}, 0, fmt.Errorf("bad disk %q: want x,y,radius", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Point{}, 0, fmt.Errorf("bad disk %q: %w", s, err)
		}
		vals[i] = v
	}
	return geom.Point{X: vals[0], Y: vals[1]}, vals[2], nil
}
