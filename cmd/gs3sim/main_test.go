package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultScenario(t *testing.T) {
	if err := run([]string{"-region", "300", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPoisson(t *testing.T) {
	if err := run([]string{"-region", "250", "-lambda", "0.02", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunKillDiskAndSweeps(t *testing.T) {
	if err := run([]string{"-region", "300", "-kill-disk", "100,50,60", "-sweeps", "10", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMobileSweeps(t *testing.T) {
	if err := run([]string{"-region", "300", "-sweeps", "5", "-mobile", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := run([]string{"-region", "250", "-svg", path, "-q"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-region", "0"}); err == nil {
		t.Error("zero region accepted")
	}
	if err := run([]string{"-kill-disk", "nope"}); err == nil {
		t.Error("bad disk accepted")
	}
	if err := run([]string{"-kill-disk", "1,2"}); err == nil {
		t.Error("two-field disk accepted")
	}
	if err := run([]string{"-notaflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestParseDisk(t *testing.T) {
	c, r, err := parseDisk("10, -5, 30")
	if err != nil || c.X != 10 || c.Y != -5 || r != 30 {
		t.Errorf("parseDisk = %v %v %v", c, r, err)
	}
}

func TestRunWritesDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := run([]string{"-region", "250", "-dump", path, "-q"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"bigId\"") {
		t.Error("dump missing expected fields")
	}
}

func TestRunTraceFlag(t *testing.T) {
	if err := run([]string{"-region", "250", "-trace", "20", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsFanOut(t *testing.T) {
	if err := run([]string{"-region", "250", "-trials", "3", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsRejectsZero(t *testing.T) {
	if err := run([]string{"-region", "250", "-trials", "0"}); err == nil {
		t.Error("zero trials accepted")
	}
}

// TestRunTrialsDeterministic captures stdout of a parallel and a serial
// -trials run and requires byte-identical reports in trial order.
func TestRunTrialsDeterministic(t *testing.T) {
	capture := func(args []string) string {
		t.Helper()
		old := os.Stdout
		rd, wr, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = wr
		runErr := run(args)
		wr.Close()
		os.Stdout = old
		data, err := io.ReadAll(rd)
		if err != nil {
			t.Fatal(err)
		}
		if runErr != nil {
			t.Fatal(runErr)
		}
		return string(data)
	}
	seq := capture([]string{"-region", "250", "-trials", "3", "-seed", "9", "-q", "-seq"})
	par := capture([]string{"-region", "250", "-trials", "3", "-seed", "9", "-q", "-parallel", "4"})
	if seq != par {
		t.Errorf("trial reports differ between -seq and -parallel:\n--- seq ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "--- trial 2") {
		t.Errorf("missing trial headers:\n%s", seq)
	}
}
