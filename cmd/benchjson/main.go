// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON record, so performance PRs can archive their
// before/after numbers next to the code (see BENCH_PR2.json).
//
// It reads benchmark output on stdin, extracts name → {ns/op, B/op,
// allocs/op} for every benchmark line, and merges the result into the
// JSON file under the given run label:
//
//	go test -bench='WithinRange|ConfigureStructure' -benchmem |
//	    go run ./cmd/benchjson -file BENCH_PR2.json -run post-pr2
//
// The file accumulates runs — e.g. "pre-pr2" captured before an
// optimization and "post-pr2" after — so a reviewer can diff the two
// without re-running anything. Existing runs with other labels are
// preserved; re-using a label overwrites that run only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metric is one benchmark's measurements. B/op and allocs/op are
// pointers because they only appear with -benchmem.
type metric struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// document is the schema of the output file: a label → benchmarks map
// plus a schema tag so future tooling can detect format changes.
type document struct {
	Schema string                       `json:"schema"`
	Runs   map[string]map[string]metric `json:"runs"`
}

const schemaTag = "gs3-bench-v1"

func main() {
	file := flag.String("file", "BENCH_PR2.json", "JSON file to create or merge into")
	run := flag.String("run", "run", "label for this benchmark run")
	flag.Parse()

	parsed, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(parsed) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	doc := document{Schema: schemaTag, Runs: map[string]map[string]metric{}}
	if raw, err := os.ReadFile(*file); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			fatal(fmt.Errorf("%s: %w", *file, err))
		}
		if doc.Schema != schemaTag {
			fatal(fmt.Errorf("%s: schema %q, want %q", *file, doc.Schema, schemaTag))
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}
	if doc.Runs == nil {
		doc.Runs = map[string]map[string]metric{}
	}
	doc.Runs[*run] = parsed

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*file, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(parsed))
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: run %q, %d benchmarks: %s\n", *file, *run, len(names), strings.Join(names, ", "))
}

// parseBench extracts benchmark results from `go test -bench` output.
// A benchmark line looks like:
//
//	BenchmarkWithinRange/append-8   301254  3937 ns/op  0 B/op  0 allocs/op
//
// i.e. name, iteration count, then unit-suffixed value pairs. The
// -NCPU suffix is stripped from the name so labels are stable across
// machines.
func parseBench(r *os.File) (map[string]metric, error) {
	out := map[string]metric{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := metric{NsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				b := v
				m.BytesPerOp = &b
			case "allocs/op":
				a := v
				m.AllocsPerOp = &a
			}
		}
		if m.NsPerOp >= 0 {
			out[name] = m
		}
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
