// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON record, so performance PRs can archive their
// before/after numbers next to the code (see BENCH_PR2.json).
//
// It reads benchmark output on stdin, extracts name → {ns/op, B/op,
// allocs/op} for every benchmark line, and merges the result into the
// JSON file under the given run label. When a benchmark appears more
// than once (`go test -count=N`), the fastest repetition is kept —
// the noise-floor estimate that makes regression thresholds usable on
// shared hosts:
//
//	go test -bench='WithinRange|ConfigureStructure' -benchmem |
//	    go run ./cmd/benchjson -file BENCH_PR2.json -run post-pr2
//
// The file accumulates runs — e.g. "pre-pr2" captured before an
// optimization and "post-pr2" after — so a reviewer can diff the two
// without re-running anything. Existing runs with other labels are
// preserved; re-using a label overwrites that run only.
//
// With -diff, benchjson compares two archived runs instead of reading
// stdin, printing the per-benchmark ns/op delta and exiting nonzero if
// any benchmark present in both runs regressed by more than 10%:
//
//	go run ./cmd/benchjson -file BENCH_PR7.json -diff pre-pr7,post-pr7
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metric is one benchmark's measurements. B/op and allocs/op are
// pointers because they only appear with -benchmem.
type metric struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// document is the schema of the output file: a label → benchmarks map
// plus a schema tag so future tooling can detect format changes.
type document struct {
	Schema string                       `json:"schema"`
	Runs   map[string]map[string]metric `json:"runs"`
}

const schemaTag = "gs3-bench-v1"

func main() {
	file := flag.String("file", "BENCH_PR2.json", "JSON file to create or merge into")
	run := flag.String("run", "run", "label for this benchmark run")
	diff := flag.String("diff", "", "compare two archived runs: old,new (no stdin read)")
	flag.Parse()

	if *diff != "" {
		doc, err := readDoc(*file)
		if err != nil {
			fatal(err)
		}
		labels := strings.SplitN(*diff, ",", 2)
		if len(labels) != 2 {
			fatal(fmt.Errorf("-diff wants two labels: old,new"))
		}
		report, regressed, err := diffRuns(doc, labels[0], labels[1], 0.10)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		if regressed {
			fatal(fmt.Errorf("ns/op regression over 10%% between %q and %q", labels[0], labels[1]))
		}
		return
	}

	parsed, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(parsed) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	doc, err := readDoc(*file)
	if err != nil {
		fatal(err)
	}
	doc.Runs[*run] = parsed

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*file, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(parsed))
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: run %q, %d benchmarks: %s\n", *file, *run, len(names), strings.Join(names, ", "))
}

// readDoc loads the archive file, returning an empty document when the
// file does not exist yet.
func readDoc(path string) (document, error) {
	doc := document{Schema: schemaTag, Runs: map[string]map[string]metric{}}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return doc, nil
	}
	if err != nil {
		return document{}, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return document{}, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != schemaTag {
		return document{}, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, schemaTag)
	}
	if doc.Runs == nil {
		doc.Runs = map[string]map[string]metric{}
	}
	return doc, nil
}

// diffRuns renders an aligned per-benchmark comparison of two archived
// runs and reports whether any benchmark present in both regressed its
// ns/op by more than threshold (0.10 = 10%). Benchmarks present in only
// one run are listed but never count as regressions — new benchmarks
// have no baseline, removed ones no measurement.
func diffRuns(doc document, oldLabel, newLabel string, threshold float64) (string, bool, error) {
	oldRun, ok := doc.Runs[oldLabel]
	if !ok {
		return "", false, fmt.Errorf("no run %q in archive", oldLabel)
	}
	newRun, ok := doc.Runs[newLabel]
	if !ok {
		return "", false, fmt.Errorf("no run %q in archive", newLabel)
	}
	names := make([]string, 0, len(oldRun)+len(newRun))
	for n := range oldRun {
		names = append(names, n)
	}
	for n := range newRun {
		if _, dup := oldRun[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-50s %14s %14s %9s\n", "benchmark", oldLabel, newLabel, "delta")
	regressed := false
	for _, n := range names {
		o, inOld := oldRun[n]
		nn, inNew := newRun[n]
		switch {
		case !inOld:
			fmt.Fprintf(&b, "%-50s %14s %14.0f %9s\n", n, "-", nn.NsPerOp, "new")
		case !inNew:
			fmt.Fprintf(&b, "%-50s %14.0f %14s %9s\n", n, o.NsPerOp, "-", "gone")
		default:
			delta := (nn.NsPerOp - o.NsPerOp) / o.NsPerOp
			mark := ""
			if delta > threshold {
				mark = " REGRESSION"
				regressed = true
			}
			fmt.Fprintf(&b, "%-50s %14.0f %14.0f %+8.1f%%%s\n", n, o.NsPerOp, nn.NsPerOp, delta*100, mark)
		}
	}
	return b.String(), regressed, nil
}

// parseBench extracts benchmark results from `go test -bench` output.
// A benchmark line looks like:
//
//	BenchmarkWithinRange/append-8   301254  3937 ns/op  0 B/op  0 allocs/op
//
// i.e. name, iteration count, then unit-suffixed value pairs. The
// -NCPU suffix is stripped from the name so labels are stable across
// machines.
func parseBench(r io.Reader) (map[string]metric, error) {
	out := map[string]metric{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := metric{NsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				b := v
				m.BytesPerOp = &b
			case "allocs/op":
				a := v
				m.AllocsPerOp = &a
			}
		}
		if m.NsPerOp < 0 {
			continue
		}
		// With `go test -count=N` the same benchmark appears N times;
		// keep the fastest run. The minimum is the standard noise-floor
		// estimate — scheduler and GC interference only ever add time —
		// and it is what makes a >10% -diff threshold usable on noisy
		// shared hosts.
		if prev, ok := out[name]; !ok || m.NsPerOp < prev.NsPerOp {
			out[name] = m
		}
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
