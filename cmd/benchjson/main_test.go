package main

import (
	"strings"
	"testing"
)

func docWith(runs map[string]map[string]float64) document {
	doc := document{Schema: schemaTag, Runs: map[string]map[string]metric{}}
	for label, benches := range runs {
		doc.Runs[label] = map[string]metric{}
		for name, ns := range benches {
			doc.Runs[label][name] = metric{NsPerOp: ns}
		}
	}
	return doc
}

func TestDiffRunsFlagsRegression(t *testing.T) {
	doc := docWith(map[string]map[string]float64{
		"pre":  {"BenchmarkA": 1000, "BenchmarkB": 1000},
		"post": {"BenchmarkA": 900, "BenchmarkB": 1200},
	})
	report, regressed, err := diffRuns(doc, "pre", "post", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("20% slowdown on BenchmarkB not flagged")
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report lacks REGRESSION marker:\n%s", report)
	}
	if strings.Count(report, "REGRESSION") != 1 {
		t.Errorf("exactly one regression expected:\n%s", report)
	}
}

func TestDiffRunsWithinThreshold(t *testing.T) {
	doc := docWith(map[string]map[string]float64{
		"pre":  {"BenchmarkA": 1000},
		"post": {"BenchmarkA": 1090},
	})
	_, regressed, err := diffRuns(doc, "pre", "post", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("9% slowdown flagged as regression at 10% threshold")
	}
}

func TestDiffRunsDisjointBenchmarks(t *testing.T) {
	doc := docWith(map[string]map[string]float64{
		"pre":  {"BenchmarkOld": 1000},
		"post": {"BenchmarkNew": 99999},
	})
	report, regressed, err := diffRuns(doc, "pre", "post", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("benchmarks without a baseline must not count as regressions")
	}
	if !strings.Contains(report, "new") || !strings.Contains(report, "gone") {
		t.Errorf("report should mark added and removed benchmarks:\n%s", report)
	}
}

func TestParseBenchKeepsFastestRepetition(t *testing.T) {
	out, err := parseBench(strings.NewReader(`
BenchmarkA    	    1000	    150.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkA    	    1000	    120.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkA    	    1000	    140.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkB-8  	    1000	    500.0 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := out["BenchmarkA"].NsPerOp; got != 120 {
		t.Errorf("repeated benchmark: kept %v ns/op, want the 120 minimum", got)
	}
	if got := out["BenchmarkB"].NsPerOp; got != 500 {
		t.Errorf("GOMAXPROCS suffix not stripped or value lost: %+v", out)
	}
}

func TestDiffRunsUnknownLabel(t *testing.T) {
	doc := docWith(map[string]map[string]float64{"pre": {"BenchmarkA": 1}})
	if _, _, err := diffRuns(doc, "pre", "nope", 0.10); err == nil {
		t.Error("unknown run label accepted")
	}
}
