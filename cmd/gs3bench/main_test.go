package main

import (
	"os"
	"strings"
	"testing"
)

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments(10000, 0) {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.desc == "" {
			t.Errorf("experiment %q has no description", e.id)
		}
	}
	// Every experiment promised by DESIGN.md is present.
	for _, id := range []string{"F7", "F8", "T1", "T2", "T3", "T4", "T5", "S1", "M1", "B1", "B2", "N1"} {
		if !seen[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
}

func TestRunList(t *testing.T) {
	out := captureRun(t, []string{"-list"})
	if !strings.Contains(out, "F7") || !strings.Contains(out, "B2") {
		t.Errorf("list output incomplete:\n%s", out)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out := captureRun(t, []string{"-exp", "F7", "-quick"})
	if !strings.Contains(out, "[F7]") || !strings.Contains(out, "analytic") {
		t.Errorf("F7 output malformed:\n%s", out[:min(200, len(out))])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run([]string{"-exp", "ZZZ"}, tmp); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run([]string{"-nope"}, tmp); err == nil {
		t.Error("bad flag accepted")
	}
}

func captureRun(t *testing.T, args []string) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run(args, tmp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestRunScalingExperiment exercises the -nodes flag end to end: N1
// with a small target must print the scaling table.
func TestRunScalingExperiment(t *testing.T) {
	out := captureRun(t, []string{"-exp", "N1", "-quick", "-nodes", "20000"})
	if !strings.Contains(out, "[N1]") || !strings.Contains(out, "broadcastsPerNode") {
		t.Errorf("N1 output malformed:\n%s", out[:min(200, len(out))])
	}
}

// TestRunParallelMatchesSeq is the CLI-level determinism check: the
// same experiment printed under -seq and under -parallel must be
// byte-identical on stdout (timing goes to stderr only).
func TestRunParallelMatchesSeq(t *testing.T) {
	seq := captureRun(t, []string{"-exp", "T1", "-quick", "-seq"})
	par := captureRun(t, []string{"-exp", "T1", "-quick", "-parallel", "4"})
	if seq != par {
		t.Errorf("stdout differs between -seq and -parallel:\n--- seq ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
