// Command gs3bench regenerates the paper's figures and tables. Each
// experiment prints rows directly comparable to what the paper reports;
// EXPERIMENTS.md records paper-vs-measured for each.
//
// Multi-row experiments fan their trials across a worker pool
// (internal/runner); the printed tables are byte-identical whatever the
// worker count, so -parallel/-seq change only the wall-clock time.
// Timing reports go to stderr, keeping stdout tables diffable across
// runs.
//
// Usage:
//
//	gs3bench -exp all          # every experiment (slow)
//	gs3bench -exp F7,F8        # just the Figure 7/8 curves
//	gs3bench -list             # list experiment IDs
//	gs3bench -exp all -parallel 8   # fan trials across 8 workers
//	gs3bench -exp all -seq          # force strictly serial trials
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gs3/internal/analysis"
	"gs3/internal/exp"
	"gs3/internal/profiling"
	"gs3/internal/runner"
)

type experiment struct {
	id   string
	desc string
	run  func(p runner.Pool, seed uint64, quick bool) (string, error)
}

// experiments returns the experiment registry. nodes parameterizes the
// N1/N2 scaling series: the largest target configured is nodes, with
// two smaller decades below it for the trend. shardWorkers is the
// -workers budget for the sharded configure and sweep executors inside
// those series; 0 falls back to the trial pool's width (-parallel),
// then GOMAXPROCS. The printed tables are byte-identical either way.
func experiments(nodes, shardWorkers int) []experiment {
	executorWorkers := func(p runner.Pool) int {
		if shardWorkers > 0 {
			return shardWorkers
		}
		if p.Workers > 0 {
			return p.Workers
		}
		return runtime.GOMAXPROCS(0)
	}
	return []experiment{
		{"N1", "sharded configuration vs node count (largest target: -nodes)", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			targets := []int{nodes / 100, nodes / 10, nodes}
			if quick {
				targets = targets[:2]
			}
			kept := targets[:0]
			for _, n := range targets {
				if n >= 500 {
					kept = append(kept, n)
				}
			}
			t, err := exp.ConfigureScaling(100, kept, executorWorkers(p), seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"N2", "sharded maintenance and healing vs node count (largest target: -nodes)", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			targets := []int{nodes / 100, nodes / 10, nodes}
			if quick {
				targets = targets[:2]
			}
			// The healing phase kills a disk of radius 2*SR; below ~10k
			// nodes the deployment disk itself is barely bigger than
			// that, so the disaster would engulf the field rather than
			// crater it. Keep only targets where the geometry is sane.
			kept := targets[:0]
			for _, n := range targets {
				if n >= 10000 {
					kept = append(kept, n)
				}
			}
			t, err := exp.SweepScaling(100, kept, executorWorkers(p), 40, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"F7", "Figure 7: expected ratio of non-ideal cells vs Rt/R", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			trials := 200000
			if quick {
				trials = 20000
			}
			return exp.Figure7(10, 100, analysis.DefaultRatios(), trials, seed).Format(), nil
		}},
		{"F8", "Figure 8: expected diameter of an Rt-gap perturbed region vs Rt/R", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			trials := 200000
			if quick {
				trials = 20000
			}
			return exp.Figure8(10, 100, analysis.DefaultRatios(), trials, seed).Format(), nil
		}},
		{"F7b", "Rt-gap handling end to end: configure around a gap, absorb after fill", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			t, err := exp.GapResilience(100, 400, 80, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"T1", "Appendix 1 row 1: per-node state is constant", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			radii := []float64{300, 500, 700}
			if quick {
				radii = []float64{300, 500}
			}
			t, err := exp.PerNodeState(p, 100, radii, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"T1b", "local coordination: configuration traffic per node is constant", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			radii := []float64{300, 500, 700}
			if quick {
				radii = []float64{300, 500}
			}
			t, err := exp.MessageLocality(p, 100, radii, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"T2", "Appendix 1 row 2: lifetime lengthened by Omega(nc)", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			spacings := []float64{30, 22, 16}
			if quick {
				spacings = []float64{30, 18}
			}
			t, err := exp.StructureLifetime(p, 100, 260, spacings, 40, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"T3", "Appendix 1 row 3: healing time is O(Dp)", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			diams := []float64{170, 300, 450, 600}
			if quick {
				diams = []float64{170, 400, 600}
			}
			t, _, err := exp.PerturbationConvergence(p, 100, 700, diams, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"T3b", "healing impact radius independent of network size", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			radii := []float64{400, 600, 800}
			if quick {
				radii = []float64{400, 600}
			}
			t, err := exp.HealingLocalityVsSize(p, 100, radii, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"T4", "Appendix 1 row 4: static configuration time is theta(Db)", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			radii := []float64{300, 450, 600, 750}
			if quick {
				radii = []float64{300, 450, 600}
			}
			t, _, err := exp.StaticConvergence(p, 100, radii, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"T5", "Appendix 1 row 5: stabilization from corrupted state is O(Dc)", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			diams := []float64{150, 300, 450}
			if quick {
				diams = []float64{150, 300}
			}
			t, err := exp.ArbitraryStateConvergence(p, 100, 500, diams, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"S1", "structure slides as a whole under uniform death", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			t, err := exp.SlideConsistency(100, 300, 60, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"M1", "Theorem 11: big-node move impact contained in sqrt(3)d/2", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			moves := []float64{1, 1.5, 2, 2.5}
			if quick {
				moves = []float64{1.5, 2.5}
			}
			t, err := exp.BigMoveLocality(p, 100, 500, moves, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"B1", "GS3 vs LEACH: radius control and healing cost", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			radii := []float64{300, 450, 600}
			if quick {
				radii = []float64{300, 450}
			}
			t, err := exp.VsLEACH(p, 100, radii, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"B2", "GS3 vs hop-bounded clustering: radius spread and overlap", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			t, err := exp.VsHopCluster(100, 400, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"C1", "frequency reuse: channels per clustering scheme", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			t, err := exp.FrequencyReuse(100, 400, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"A1", "ablation: radius tolerance Rt vs structure tightness", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			ratios := []float64{0.1, 0.15, 0.25, 0.4}
			if quick {
				ratios = []float64{0.15, 0.4}
			}
			t, err := exp.RtSweep(p, 100, 350, ratios, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"A2", "ablation: boundary-rescan period vs healing latency", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			periods := []int{2, 5, 8}
			if quick {
				periods = []int{2, 8}
			}
			t, err := exp.RescanPeriodAblation(p, 100, 500, periods, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"R1", "robustness: convergence probability and healing time vs message loss", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			rates := []float64{0, 0.05, 0.1, 0.2, 0.3}
			trials, budget := 16, 120
			if quick {
				rates = []float64{0, 0.2}
				trials = 6
			}
			t, err := exp.Robustness(p, 100, 250, rates, trials, budget, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"R2", "disaster recovery: healing time and message overhead vs blast radius", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			radii := []float64{60, 120, 180}
			trials, budget := 8, 80
			if quick {
				radii = []float64{60, 150}
				trials = 3
			}
			t, err := exp.DisasterSweep(p, 100, 300, radii, trials, budget, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"ADV", "adversarial daemon vs random daemon: worst-case healing matrix", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			scenarios := exp.AdversaryScenarios(100, 300)
			draws := 4
			if quick {
				scenarios = scenarios[:2]
				draws = 2
			}
			t, err := exp.AdversaryMatrix(p, scenarios, draws, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"D1", "data plane: delivery ratio, latency, head energy vs loss x churn", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			rates := []float64{0, 0.1, 0.3}
			packets := 200000
			if quick {
				packets = 20000
			}
			t, err := exp.DataPlane(p, 10, 60, rates, packets, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"D1b", "data gathering under loss: GS3 convergecast vs LEACH rounds", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			rates := []float64{0, 0.1, 0.3}
			packets := 50000
			if quick {
				packets = 5000
			}
			t, err := exp.DataGatherVsLEACH(p, 10, 60, rates, packets, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
		{"A3", "ablation: heartbeat interval vs head-death masking latency", func(p runner.Pool, seed uint64, quick bool) (string, error) {
			intervals := []float64{0.5, 1, 2}
			if quick {
				intervals = []float64{0.5, 2}
			}
			t, err := exp.HeartbeatAblation(p, 100, 350, intervals, seed)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		}},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gs3bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) (retErr error) {
	fs := flag.NewFlagSet("gs3bench", flag.ContinueOnError)
	var (
		which    = fs.String("exp", "all", "comma-separated experiment IDs, or \"all\"")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		seed     = fs.Uint64("seed", 7, "random seed")
		quick    = fs.Bool("quick", false, "smaller parameter sweeps")
		nodes    = fs.Int("nodes", 100000, "largest node-count target for the N1/N2 scaling series")
		parallel = fs.Int("parallel", 0, "trial workers per experiment (0 = GOMAXPROCS)")
		workers  = fs.Int("workers", 0, "sharded-executor workers inside N1/N2 simulations (0 = -parallel, then GOMAXPROCS; output is identical either way)")
		seq      = fs.Bool("seq", false, "run trials strictly serially (same output, slower)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	exps := experiments(*nodes, *workers)
	if *list {
		for _, e := range exps {
			fmt.Fprintf(out, "%-5s %s\n", e.id, e.desc)
		}
		return nil
	}
	pool := runner.Parallel(*parallel)
	if *seq {
		pool = runner.Seq
	}
	want := map[string]bool{}
	all := *which == "all"
	if !all {
		for _, id := range strings.Split(*which, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	wallStart := time.Now()
	for _, e := range exps {
		if !all && !want[e.id] {
			continue
		}
		expStart := time.Now()
		text, err := e.run(pool, *seed, *quick)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintln(out, text)
		fmt.Fprintf(os.Stderr, "# timing: %-4s %v\n", e.id, time.Since(expStart).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q (use -list)", *which)
	}
	mode := fmt.Sprintf("parallel=%d", pool.Workers)
	if pool.Workers <= 0 {
		mode = "parallel=GOMAXPROCS"
	}
	if *seq {
		mode = "seq"
	}
	fmt.Fprintf(os.Stderr, "# timing: total %v across %d experiments (%s)\n",
		time.Since(wallStart).Round(time.Millisecond), ran, mode)
	return nil
}
