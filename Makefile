# GS3 build/test entry points. `make check` is the CI gate: it must be
# green before any commit — build, vet, and the full test suite under
# the race detector (the engine is single-threaded per trial, but the
# runner fans trials across goroutines, so the whole tree is required
# to be race-clean).

GO ?= go

.PHONY: all build vet test race bench bench-json bench-diff bench-smoke smoke fuzz-smoke chaos traffic-smoke configure-smoke sweep-smoke engine-smoke adversary-smoke goldens golden-diff check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The paper's tables, regenerated serially (comparable ns/op).
bench:
	$(GO) test -bench=. -benchmem

# Archive the perf-sensitive micro/macro benchmarks into BENCH_FILE
# under the RUN label (see cmd/benchjson). Override RUN to record a
# different label, e.g. `make bench-json RUN=pre-pr9`.
RUN ?= post-pr10
BENCH_FILE ?= BENCH_PR10.json
BENCH_PATTERN := ConfigureStructure|ConfigureSharded|WithinRange|Broadcast|SweepSteadyState|SweepAfterFault|InvariantCheck|ServeTraffic|EngineSchedule|EngineSteadyChurn|EngineRunUntilCanceled
# Repetitions per benchmark; benchjson keeps the fastest, so higher
# counts tighten the noise floor on shared hosts.
BENCH_COUNT ?= 3
bench-json:
	$(GO) test -bench='$(BENCH_PATTERN)' -count=$(BENCH_COUNT) \
		-benchmem -run='^$$' . ./internal/radio ./internal/sim | \
		$(GO) run ./cmd/benchjson -file $(BENCH_FILE) -run $(RUN)

# Performance regression gate: re-run the archived benchmark set fresh,
# merge it into a scratch copy of BENCH_FILE, and fail if any benchmark
# regressed by more than 10% ns/op against the $(RUN) archive.
bench-diff:
	@tmp=$$(mktemp); cp $(BENCH_FILE) $$tmp; \
	$(GO) test -bench='$(BENCH_PATTERN)' -count=$(BENCH_COUNT) -benchmem -run='^$$' . ./internal/radio ./internal/sim | \
		$(GO) run ./cmd/benchjson -file $$tmp -run fresh && \
		$(GO) run ./cmd/benchjson -file $$tmp -diff $(RUN),fresh; \
	status=$$?; rm -f $$tmp; exit $$status

# One iteration of every benchmark — a cheap compile-and-run gate that
# keeps the benchmark suite from bit-rotting. -short skips the heavy
# scaling sweeps; a single iteration proves every other benchmark still
# builds, runs, and passes its internal assertions.
bench-smoke:
	$(GO) test -short -run='^$$' -bench=. -benchtime=1x ./...

# Parallel-vs-serial scaling-sweep smoke benchmark only.
smoke:
	$(GO) test -bench='BenchmarkScalingSweep' -benchtime=1x

# Run every fuzz target briefly: each package with Fuzz* functions gets
# a short randomized burst beyond its checked-in seed corpus.
FUZZTIME ?= 5s
fuzz-smoke:
	@for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target"; \
			$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime $(FUZZTIME) $$pkg || exit 1; \
		done; \
	done

# Chaos smoke scenario: lossy radio with blackouts on the default grid;
# gs3sim exits nonzero if the watchdog sees no convergence.
chaos:
	$(GO) run ./cmd/gs3sim -region 300 -loss 0.2 -blackout-rate 0.02 -blackout-sweeps 3 \
		-chaos -sweeps 120 -seed 7

# Data-plane smoke scenario: routed packets (mixed convergecast and
# point-to-point geographic) through a lossy, churning structure while
# maintenance heals it.
traffic-smoke:
	$(GO) run ./cmd/gs3sim -region 300 -r 50 -sweeps 15 -packets 20000 -traffic-rate 500 \
		-p2p 0.3 -loss 0.1 -blackout-rate 0.01 -churn 20 -seed 4 -q

# Large-scale race gate for the sharded configure executor: a ~50k-node
# field configured wave-parallel under the race detector, exercising the
# level barriers and per-chunk ASSOCIATE_ORG_RESP fan-out at scale.
configure-smoke:
	GS3_CONFIGURE_SMOKE=1 $(GO) test -race -run TestConfigureSmoke50k -v ./internal/netsim

# Large-scale race gate for the sharded sweep executor: a ~56k-node
# field converges under sharded maintenance, loses a disk two search
# radii wide, and re-heals to the dynamic fixpoint — all under the race
# detector, so the classify/apply phases' read-only discipline is
# machine-checked at scale.
sweep-smoke:
	GS3_SWEEP_SMOKE=1 $(GO) test -race -run TestSweepSmoke56k -v ./internal/netsim

# Event-engine churn smoke: a million-event schedule/cancel/remove/fire
# mix (sliding-window churn plus a wide 300k-pending drain) under the
# race detector, asserting exact (At, seq) fire order and live-event
# accounting throughout. The scale gate for the calendar-queue engine.
engine-smoke:
	GS3_ENGINE_SMOKE=1 $(GO) test -race -run TestEngineSmokeMillionEvents -v ./internal/sim

# Adversarial-daemon smoke: the greedy worst-case daemon and the random
# daemon replay the same candidate strikes on the scenario matrix; the
# tests assert greedy healing effort >= random on every scenario.
adversary-smoke:
	$(GO) test -run 'TestGreedyAtLeastRandom|TestAdversaryMatrixGreedyAtLeastRandom' \
		./internal/adversary ./internal/exp

# Re-archive the golden experiment stdout under testdata/goldens/.
goldens:
	./scripts/goldens.sh generate

# Replay every golden scenario and diff its stdout byte-for-byte
# against the archive — the determinism gate for optimization PRs.
golden-diff:
	./scripts/goldens.sh diff

check: build vet race bench-smoke engine-smoke configure-smoke sweep-smoke golden-diff bench-diff fuzz-smoke chaos traffic-smoke adversary-smoke
