# GS3 build/test entry points. `make check` is the CI gate: it must be
# green before any commit — build, vet, and the full test suite under
# the race detector (the engine is single-threaded per trial, but the
# runner fans trials across goroutines, so the whole tree is required
# to be race-clean).

GO ?= go

.PHONY: all build vet test race bench bench-json smoke fuzz-smoke chaos check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The paper's tables, regenerated serially (comparable ns/op).
bench:
	$(GO) test -bench=. -benchmem

# Archive the perf-sensitive micro/macro benchmarks into BENCH_PR2.json
# under the "post-pr2" label (see cmd/benchjson). Override RUN to record
# a different label, e.g. `make bench-json RUN=pre-pr3`.
RUN ?= post-pr2
bench-json:
	$(GO) test -bench='ConfigureStructure|WithinRange|Broadcast|SweepSteadyState|InvariantCheck' \
		-benchmem -run='^$$' . ./internal/radio | \
		$(GO) run ./cmd/benchjson -file BENCH_PR2.json -run $(RUN)

# Parallel-vs-serial scaling-sweep smoke benchmark only.
smoke:
	$(GO) test -bench='BenchmarkScalingSweep' -benchtime=1x

# Run every fuzz target briefly: each package with Fuzz* functions gets
# a short randomized burst beyond its checked-in seed corpus.
FUZZTIME ?= 5s
fuzz-smoke:
	@for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target"; \
			$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime $(FUZZTIME) $$pkg || exit 1; \
		done; \
	done

# Chaos smoke scenario: lossy radio with blackouts on the default grid;
# gs3sim exits nonzero if the watchdog sees no convergence.
chaos:
	$(GO) run ./cmd/gs3sim -region 300 -loss 0.2 -blackout-rate 0.02 -blackout-sweeps 3 \
		-chaos -sweeps 120 -seed 7

check: build vet race fuzz-smoke chaos
