package gs3

import (
	"math"
	"testing"
)

func multiSetup(t *testing.T) *MultiNetwork {
	t.Helper()
	// Two big nodes far apart; small nodes spread across both regions.
	bigs := []Point{{X: -250, Y: 0}, {X: 250, Y: 0}}
	var smalls []Point
	pts, err := GridDeployment(500, 24, 0.15, 13)
	if err != nil {
		t.Fatal(err)
	}
	smalls = append(smalls, pts[1:]...) // drop the generated center big
	m, err := NewMulti(Options{CellRadius: 100, Seed: 13}, bigs, smalls)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMultiRequiresBigNodes(t *testing.T) {
	if _, err := NewMulti(Options{CellRadius: 100}, nil, []Point{{X: 1}}); err == nil {
		t.Error("no big nodes accepted")
	}
}

func TestMultiPartitionsByProximity(t *testing.T) {
	m := multiSetup(t)
	if len(m.Partitions()) != 2 {
		t.Fatalf("partitions = %d", len(m.Partitions()))
	}
	bigs := m.BigNodes()
	for i, net := range m.Partitions() {
		// Every node in partition i is closer to big i than to the
		// other big node.
		for _, c := range net.Cells() {
			for _, member := range c.Members {
				info, ok := net.NodeInfo(member)
				if !ok {
					continue
				}
				own := math.Hypot(info.Pos.X-bigs[i].X, info.Pos.Y-bigs[i].Y)
				other := math.Hypot(info.Pos.X-bigs[1-i].X, info.Pos.Y-bigs[1-i].Y)
				if own > other+1e-9 {
					t.Fatalf("partition %d node at %v closer to the other big node", i, info.Pos)
				}
			}
		}
	}
}

func TestMultiConfigureAndVerify(t *testing.T) {
	m := multiSetup(t)
	elapsed, err := m.Configure()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Errorf("elapsed = %v", elapsed)
	}
	cells := m.Cells()
	if len(cells[0]) < 3 || len(cells[1]) < 3 {
		t.Errorf("cells per partition: %d, %d", len(cells[0]), len(cells[1]))
	}
	if v := m.Verify(); len(v) != 0 {
		t.Errorf("violations: %v", v[:minInt(3, len(v))])
	}
}

func TestMultiHealing(t *testing.T) {
	m := multiSetup(t)
	if _, err := m.Configure(); err != nil {
		t.Fatal(err)
	}
	m.EnableSelfHealing(Dynamic)
	// Kill one head in each partition.
	for _, net := range m.Partitions() {
		for _, c := range net.Cells() {
			if !c.IsBig {
				net.Kill(c.Head)
				break
			}
		}
	}
	m.RunFor(8)
	if v := m.Verify(); len(v) != 0 {
		t.Errorf("violations after healing: %v", v[:minInt(3, len(v))])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
